"""Regenerates Fig. 4: the Fig. 3 sweep with block array partitioning."""

from conftest import save_result

from repro.experiments.fig34 import run_fig3, run_fig4


def test_fig4_partitioned_sweep(benchmark, design_points):
    result = benchmark.pedantic(lambda: run_fig4(design_points), rounds=3, iterations=1)
    save_result("fig4_partitioned_scaling", result.format() + "\n\n" + result.chart())
    naive = run_fig3(design_points).rows
    part = result.rows

    # Partitioning reduces BRAM for every configuration (paper: 15-18
    # percentage points; our allocator model yields a somewhat smaller but
    # consistently positive drop — see EXPERIMENTS.md).
    drops = [n.bram_pct - p.bram_pct for n, p in zip(naive, part)]
    assert all(d >= 0 for d in drops)
    assert max(drops) >= 8.0

    # Paper: low-PE configurations slow down slightly, high-PE ones retain
    # their obtained performance.
    low = min(range(len(part)), key=lambda i: part[i].total_pe)
    high = max(range(len(part)), key=lambda i: part[i].total_pe)
    assert part[low].obtained_fps < naive[low].obtained_fps
    assert part[high].obtained_fps == naive[high].obtained_fps

    # LUT utilization is unchanged by the memory-only optimization.
    for n, p in zip(naive, part):
        assert abs(n.lut_pct - p.lut_pct) < 1e-9


def test_chosen_configuration_matches_paper_rule(benchmark, chosen_design):
    # Selection rule: lowest partitioned BRAM among designs still meeting
    # the 430 img/s anchor.  The paper lands on 32 PEs / 430 img/s / 65%.
    d = benchmark.pedantic(lambda: chosen_design, rounds=1, iterations=1)
    assert 20 <= d.total_pe <= 45
    assert d.performance_partitioned.obtained_fps >= 0.9 * 430
    assert 0.40 <= d.resources_partitioned.bram_utilization <= 0.75
