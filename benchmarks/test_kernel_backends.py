"""Kernels: bit-plane GEMM backend vs the reference XOR-popcount datapath.

The ISSUE acceptance criteria for the kernel backend layer: on the
workbench CNV topology the best backend is >= 3x the reference kernel on
the dominant inner-layer matmul shape and >= 2x end-to-end folded img/s,
with every backend bit-exact against the reference on every shape and on
end-to-end predictions.  Regenerates ``results/BENCH_kernels.json``.
"""

import json

from conftest import RESULTS_DIR

from repro.bnn.kernels.bench import (
    KernelBenchConfig,
    format_kernel_bench,
    run_kernel_bench,
    write_kernel_bench,
)

CONFIG = KernelBenchConfig()  # scale=0.25, batch=64 — the committed artifact


def test_kernel_backends_speedup_and_exactness(benchmark):
    report = benchmark.pedantic(run_kernel_bench, args=(CONFIG,), rounds=1, iterations=1)
    write_kernel_bench(report, RESULTS_DIR / "BENCH_kernels.json")
    print("\n" + format_kernel_bench(report))

    # Every backend is bit-exact on every matmul shape ...
    for shape in report["shapes"]:
        assert all(shape["bit_exact"].values()), shape["label"]
    # ... and produces the reference predictions end-to-end.
    runs = report["end_to_end"]["runs"]
    assert all(run["predictions_match_reference"] for run in runs.values())

    # >= 3x on the dominant (most reference-expensive) matmul shape.
    dominant = report["dominant_shape"]
    assert max(dominant["speedup_vs_reference"].values()) >= 3.0, dominant
    # The autotuner picks a winning backend there, not the baseline.
    assert dominant["autotuned"] != "reference"

    # >= 2x end-to-end folded img/s vs the seed (reference, unpacked) path.
    best_e2e = max(run["speedup_vs_reference"] for run in runs.values())
    assert best_e2e >= 2.0, {k: v["speedup_vs_reference"] for k, v in runs.items()}

    # The committed artifact parses back and matches what we asserted on.
    on_disk = json.loads((RESULTS_DIR / "BENCH_kernels.json").read_text())
    assert on_disk["dominant_shape"]["label"] == dominant["label"]
