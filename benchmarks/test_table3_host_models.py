"""Regenerates Table III: the three host network topologies."""

from conftest import save_result

from repro.experiments import table3


def test_table3_host_models(benchmark):
    result = benchmark.pedantic(table3.run, rounds=3, iterations=1)
    save_result("table3_host_models", result.format())

    by_name = {r.model: r for r in result.rows}
    a, b, c = by_name["Model A"], by_name["Model B"], by_name["Model C"]

    # Table III topologies at full width.
    assert a.conv_channels == [32, 32, 64] and a.dense_layers == 1
    assert b.conv_channels == [192, 160, 96, 192, 192, 192, 192, 192, 10]
    assert c.conv_channels == [96, 96, 96, 192, 192, 192, 192, 192, 10]
    assert b.dense_layers == 0 and c.dense_layers == 0  # global-pool heads

    # Model A is the light/fast classifier of the paper.
    assert a.params < b.params and a.params < c.params
    assert a.mflops_per_image < b.mflops_per_image < c.mflops_per_image
