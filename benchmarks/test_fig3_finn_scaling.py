"""Regenerates Fig. 3: performance/area vs total PE count (naive BRAM)."""

from conftest import save_result

from repro.experiments.fig34 import run_fig3


def test_fig3_scaling_sweep(benchmark, design_points):
    result = benchmark.pedantic(lambda: run_fig3(design_points), rounds=3, iterations=1)
    save_result("fig3_finn_scaling", result.format() + "\n\n" + result.chart())
    rows = result.rows

    # Shape criterion: throughput grows with the total PE count.
    fps = [r.obtained_fps for r in rows]
    assert fps == sorted(fps)
    assert fps[-1] / fps[0] > 10  # an order of magnitude across the sweep

    # Obtained never exceeds expected; gap grows with parallelism.
    gaps = [1 - r.obtained_fps / r.expected_fps for r in rows]
    assert all(0 <= g < 0.25 for g in gaps)
    assert gaps[-1] > gaps[0]

    # Paper's Fig. 3 band: BRAM utilization is high everywhere (the reason
    # the partitioning optimization matters) and LUTs scale with PEs.
    assert all(45.0 <= r.bram_pct <= 105.0 for r in rows)
    luts = [r.lut_pct for r in rows]
    assert luts == sorted(luts)
    assert luts[-1] > 80.0

    # The paper's anchor: some configuration reaches ~430 img/s.
    assert any(abs(r.obtained_fps - 430) / 430 < 0.1 for r in rows)
