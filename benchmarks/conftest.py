"""Shared fixtures for the benchmark harness.

The functional benchmarks need trained networks; training happens once
per configuration and is cached on disk (``.workbench_cache/``), so the
first benchmark run pays the training cost and later runs are fast.

Every benchmark writes the table/figure it regenerates to
``benchmarks/results/<name>.txt`` so the reproduction artefacts persist
regardless of pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import Workbench, WorkbenchConfig, chosen_configuration, standard_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Laptop-scale training budget (DESIGN.md §5).  Chosen so the paper's
#: accuracy ordering emerges clearly: BNN < Model A < Model B < Model C.
#: The DMU operating threshold is selected for a ~30% rerun ratio, the
#: same accuracy/throughput balancing the paper performs around Fig. 5.
BENCH_CONFIG = WorkbenchConfig(
    num_train=2400,
    num_test=600,
    bnn_scale=0.15,
    host_scale=0.25,
    bnn_epochs=10,
    host_epochs=18,
    host_lr=0.001,
    target_rerun_ratio=0.30,
)


@pytest.fixture(scope="session")
def workbench() -> Workbench:
    wb = Workbench(BENCH_CONFIG, cache_dir=REPO_ROOT / ".workbench_cache")
    wb.prepare_all()
    return wb


@pytest.fixture(scope="session")
def design_points():
    return standard_sweep()


@pytest.fixture(scope="session")
def chosen_design():
    return chosen_configuration()


def save_result(name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it for -s runs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
