"""Validates Eqs. (1) and (2) against simulation/measurement."""

import numpy as np
from conftest import save_result

from repro.core.analytic import multi_precision_accuracy
from repro.core.report import render_table
from repro.data import normalize_to_pm1
from repro.experiments.ablations import run_eq1_validation


def test_eq1_validation_grid(benchmark):
    rows = benchmark.pedantic(run_eq1_validation, rounds=1, iterations=1)
    text = render_table(
        ["R_rerun", "Eq.(1) img/s", "simulated img/s", "rel err"],
        [
            [f"{r.rerun_ratio:.3f}", f"{r.analytic_fps:.1f}", f"{r.simulated_fps:.1f}",
             f"{r.relative_error:+.4f}"]
            for r in rows
        ],
        title="Eq. (1) validation: analytic vs event-simulated throughput",
    )
    save_result("eq1_analytic_validation", text)

    # Eq. (1) is a steady-state *optimistic* approximation: the simulation
    # is never faster.  Its error has two structural terms the equation
    # ignores — the per-batch pipeline fill (fill/batch ~ 5% here) and the
    # trailing host call (1/num_batches ~ 2.5%) — so the bound is ~10%.
    assert all(r.relative_error >= -1e-9 for r in rows)
    assert max(r.relative_error for r in rows) < 0.10

    # Both error terms amortize with more batches: a longer stream tracks
    # Eq. (1) strictly more tightly at the paper's operating point.
    from repro.experiments.ablations import run_eq1_validation as rerun

    long_rows = rerun(num_images=16000, rerun_ratios=(0.251,))
    short_rows = [r for r in rows if abs(r.rerun_ratio - 0.251) < 1e-9]
    assert long_rows[0].relative_error < short_rows[0].relative_error

    # The max() structure of Eq. (1): flat (FPGA-bound) at small R, then
    # host-bound decline.
    fps = [r.simulated_fps for r in rows]
    assert fps == sorted(fps, reverse=True)
    # At R=0 the system runs at the BNN rate; at R=1 at the host rate.
    assert abs(fps[0] - 430.15) / 430.15 < 0.05
    assert abs(fps[-1] - 29.68) / 29.68 < 0.05


def test_eq2_accuracy_validation(benchmark, workbench):
    """Eq. (2) predicts the measured cascade accuracy across thresholds."""

    scores = workbench.test_scores
    labels = scores.true_labels
    host = workbench.host_net("model_a")
    images = workbench.splits.test.images

    standalone_acc = workbench.host_accuracy("model_a")

    def sweep():
        rows = []
        for thr in (0.2, 0.39, 0.6, 0.8):
            accepted = workbench.dmu.accept(scores.scores, thr)
            rerun = ~accepted
            cats = workbench.dmu.categorize(scores, thr)
            if rerun.any():
                host_pred = host.predict_classes(images[rerun])
                acc_fp_subset = float((host_pred == labels[rerun]).mean())
            else:
                acc_fp_subset = 0.0
            measured = float(
                ((scores.predicted == labels) & accepted).mean()
            ) + cats.rerun_ratio * acc_fp_subset
            eq2_subset = multi_precision_accuracy(
                scores.classifier_accuracy, acc_fp_subset,
                cats.rerun_ratio, cats.rerun_err_ratio,
            )
            eq2_standalone = multi_precision_accuracy(
                scores.classifier_accuracy, standalone_acc,
                cats.rerun_ratio, cats.rerun_err_ratio,
            )
            rows.append((thr, cats.rerun_ratio, measured, eq2_subset, eq2_standalone))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        ["threshold", "R_rerun", "measured acc", "Eq.(2) subset acc_fp", "Eq.(2) standalone acc_fp"],
        [
            [f"{t:.2f}", f"{r:.3f}", f"{m:.3f}", f"{p:.3f}", f"{q:.3f}"]
            for t, r, m, p, q in rows
        ],
        title="Eq. (2) validation: measured cascade accuracy vs closed form",
    )
    save_result("eq2_accuracy_validation", text)

    for thr, rerun_ratio, measured, eq2_subset, eq2_standalone in rows:
        # With the *subset* host accuracy, Eq. (2) is an exact
        # decomposition (up to rounding) of the measured cascade accuracy.
        assert abs(measured - eq2_subset) < 0.01, (thr, measured, eq2_subset)
        # With the *standalone* host accuracy, Eq. (2) over-predicts —
        # exactly the paper's caveat: "In practice, Acc_multi is lower
        # than the one acquired by (2) as Acc_fp drops when a subset of
        # hard-to-classify images are re-inferred in the host."
        if rerun_ratio > 0.05:
            assert measured <= eq2_standalone + 0.01, (thr, measured, eq2_standalone)
