"""Benchmarks the paper's future-work projections (Section IV)."""

from conftest import save_result

from repro.experiments.future_work import (
    format_armv8,
    format_mixed_precision,
    run_armv8_projection,
    run_mixed_precision_sweep,
)


def test_armv8_host_projection(benchmark):
    rows = benchmark.pedantic(run_armv8_projection, rounds=3, iterations=1)
    save_result("future_armv8_projection", format_armv8(rows))

    # "The results in the tested configuration are limited by the overall
    # low throughput achieved in the weak Cortex A9 processors": every
    # host/cascade rate improves substantially on ARMv8+NEON.
    for r in rows:
        assert r.host_speedup > 2.0
        assert r.a53_cascade_fps > 1.5 * r.a9_cascade_fps


def test_mixed_precision_sweep(benchmark):
    rows = benchmark.pedantic(run_mixed_precision_sweep, rounds=3, iterations=1)
    save_result("future_mixed_precision", format_mixed_precision(rows))

    by_label = {r.label: r for r in rows}
    # Storage grows monotonically with precision at equal latency targets;
    # the fully binarised design is the only one with generous headroom.
    assert by_label["W1A1"].bram_pct < by_label["W2A2"].bram_pct < by_label["W4A4"].bram_pct
    assert by_label["W1A1"].fits_device
    assert not by_label["W8A8"].fits_device
    # Beyond some precision the device can no longer sustain the target
    # rate (throughput collapse) — the quantitative case for binarisation.
    assert by_label["W8A8"].obtained_fps < 0.25 * by_label["W1A1"].obtained_fps
