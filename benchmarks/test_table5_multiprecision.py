"""Regenerates Table V: the heterogeneous multi-precision results."""

from conftest import save_result

from repro.experiments import table4, table5


def test_table5_multiprecision(benchmark, workbench, chosen_design):
    result = benchmark.pedantic(
        lambda: table5.run(workbench, chosen_design), rounds=1, iterations=1
    )
    save_result("table5_multiprecision", result.format())
    standalone = table4.run(workbench, chosen_design)

    for model in ("Model A", "Model B", "Model C"):
        row = result.row(model)
        alone = standalone.row(model)

        # Headline claim: the cascade beats the BNN's accuracy
        # (paper: 78.5% -> 82.5/86/87%).
        assert row.accuracy > row.bnn_accuracy

        # Effective system rate beats the standalone host rate by far
        # (paper: 29.68 -> 90.82 img/s for Model A), and stays below the
        # FPGA-only rate.
        assert row.images_per_second > 2.0 * alone.images_per_second
        assert row.images_per_second < standalone.row("FINN (FPGA)").images_per_second

        # The flagged subset is hard: host accuracy on it sits at or below
        # the host's standalone accuracy (paper: 81.4 -> 65 etc.).  The
        # subset is selected by *BNN* confidence, so per-model noise of a
        # few points is expected on a 600-image test set.
        assert row.host_subset_accuracy < alone.accuracy + 0.05

        # Eq. (1) is an optimistic bound on the simulated rate; Eq. (2)
        # approximates the measured accuracy.
        assert row.images_per_second <= row.eq1_images_per_second * 1.01
        assert abs(row.eq2_accuracy - row.accuracy) < 0.1

    # Rate ordering across combinations mirrors the paper:
    # A&FINN >> B&FINN > C&FINN.
    a, b, c = (result.row(m) for m in ("Model A", "Model B", "Model C"))
    assert a.images_per_second > b.images_per_second > c.images_per_second

    # The paper's hard-subset dip holds for the majority of combinations
    # strictly (it holds for all three in the paper's full-size runs).
    strict_dips = sum(
        result.row(m).host_subset_accuracy < standalone.row(m).accuracy
        for m in ("Model A", "Model B", "Model C")
    )
    assert strict_dips >= 2
