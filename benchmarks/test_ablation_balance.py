"""Ablation: rate balancing vs uniform folding at comparable PE budget."""

from conftest import save_result

from repro.experiments.ablations import run_balance_ablation


def test_balance_ablation(benchmark):
    result = benchmark.pedantic(run_balance_ablation, rounds=3, iterations=1)
    save_result(
        "ablation_balance",
        (
            "Ablation: rate balancing (Section III-A)\n"
            f"balanced: {result.balanced_fps:8.1f} img/s with {result.balanced_total_pe} PEs\n"
            f"uniform:  {result.uniform_fps:8.1f} img/s with {result.uniform_total_pe} PEs\n"
            f"speedup from balancing: {result.speedup:.2f}x"
        ),
    )

    # Rate balancing is why the paper assesses Eq. (3)/(4) per layer: at a
    # comparable compute budget, the uniform design is bottlenecked by its
    # heaviest layer and loses throughput.
    assert result.speedup > 1.2
