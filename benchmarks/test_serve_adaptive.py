"""Serving: adaptive DMU threshold control under host-saturating load.

The scenario of the ISSUE acceptance criteria: offered load sits at 90%
of the Eq. (1) capacity for the target rerun ratio.  A naive static
threshold (picked for accuracy as if the host were free) flags ~70% of
traffic, saturates the bounded host queue and sheds answers; the
adaptive controller, started from the *same* bad threshold, walks it
down until the steady-state rerun ratio holds the target — within
±0.05 — and sustains throughput within 20% of the analytic bound.
"""

from conftest import save_result

from repro.hetero import compare_serving_with_eq1
from repro.serve import ServeBenchConfig, format_serve_bench, run_serve_bench

CONFIG = ServeBenchConfig()  # defaults: R_target=0.3, t_fp=8 ms, t_bnn=0.25 ms


def test_adaptive_controller_holds_target_and_bound(benchmark):
    report = benchmark.pedantic(run_serve_bench, args=(CONFIG,), rounds=1, iterations=1)
    save_result("serve_adaptive", format_serve_bench(report))

    adaptive, naive = report.adaptive, report.naive

    # The naive threshold saturates the host queue and degrades heavily.
    assert naive.total.queues["host"].max_depth == CONFIG.host_queue_capacity
    assert naive.steady.degraded_ratio > 0.2

    # The controller holds the steady-state rerun ratio at the target ...
    assert abs(adaptive.steady.rerun_ratio - CONFIG.target_rerun_ratio) <= 0.05
    # ... without shedding load ...
    assert adaptive.steady.degraded_ratio < 0.02
    # ... at a sustained throughput within 20% of the Eq. (1) bound.
    assert adaptive.steady.images_per_second >= 0.8 * CONFIG.analytic_bound_fps
    # It moved the threshold itself (same naive starting point).
    assert adaptive.final_threshold < CONFIG.naive_threshold - 0.05

    # The hetero-layer bridge agrees: the served interval sits above the
    # Eq. (1) ideal at the realized rerun ratio, but not wildly above.
    comparison = compare_serving_with_eq1(
        adaptive.steady, t_fp=CONFIG.t_fp, t_bnn=CONFIG.t_bnn,
        num_host_workers=CONFIG.num_host_workers,
    )
    assert comparison.relative_error > -0.05
    assert comparison.relative_error < 0.5
