"""Regenerates Table I: the FINN engines of the CNV network."""

from conftest import save_result

from repro.experiments import table1
from repro.finn import finn_cnv_specs


def test_table1_finn_layers(benchmark, chosen_design):
    result = benchmark.pedantic(
        lambda: table1.run(chosen_design), rounds=3, iterations=1
    )
    save_result("table1_finn_layers", result.format())

    # Table I structure: 6 conv engines (64,64,128,128,256,256) + 3 FCs.
    assert [r.layer for r in result.rows] == [s.name for s in finn_cnv_specs()]
    assert [r.weight_rows for r in result.rows[:6]] == [64, 64, 128, 128, 256, 256]
    assert all(r.weight_rows % r.pe == 0 for r in result.rows)
    assert all(r.weight_cols % r.simd == 0 for r in result.rows)
    # Threshold widths: 24-bit first stage, 16-bit inner, none last.
    assert result.rows[0].threshold_bits == 24
    assert result.rows[-1].threshold_bits is None
    # Rate balancing: no engine exceeds the bottleneck by construction and
    # the bottleneck matches the reported cycle counts.
    assert max(r.cycles for r in result.rows) == result.design.balance.bottleneck_cycles
