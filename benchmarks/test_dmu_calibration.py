"""DMU confidence quality: calibration and discrimination diagnostics."""

from conftest import save_result

from repro.core.calibration import auroc, calibration_report


def test_dmu_confidence_quality(benchmark, workbench):
    scores = workbench.test_scores

    def analyze():
        conf = workbench.dmu.confidence(scores.scores)
        return (
            calibration_report(conf, scores.correct),
            auroc(conf, scores.correct),
        )

    report, discrimination = benchmark.pedantic(analyze, rounds=1, iterations=1)
    save_result(
        "dmu_calibration",
        report.format() + f"\nAUROC (confidence vs correctness) = {discrimination:.3f}",
    )

    # The DMU must be genuinely informative about BNN correctness —
    # otherwise the whole cascade mechanism degenerates to random reruns.
    assert discrimination > 0.6
    # And roughly calibrated: average confidence/accuracy gap bounded.
    assert report.expected_calibration_error < 0.25
