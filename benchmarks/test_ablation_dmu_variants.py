"""Ablation: DMU input-feature variants (DESIGN.md design-choice list)."""

from conftest import save_result

from repro.core.report import render_table
from repro.experiments.ablations import run_dmu_variants


def test_dmu_variant_ablation(benchmark, workbench):
    rows = benchmark.pedantic(
        lambda: run_dmu_variants(workbench), rounds=1, iterations=1
    )
    text = render_table(
        ["variant", "DMU acc", "rerun ratio", "max achievable acc"],
        [
            [r.variant, f"{100 * r.dmu_accuracy:.1f}%", f"{100 * r.rerun_ratio:.1f}%",
             f"{100 * r.max_achievable_accuracy:.1f}%"]
            for r in rows
        ],
        title="Ablation: DMU input features",
    )
    save_result("ablation_dmu_variants", text)

    by_name = {r.variant.split(" (")[0]: r for r in rows}
    sorted_dmu = by_name["sorted scores"]
    raw_dmu = by_name["raw scores"]

    # The permutation-invariant (sorted) feature beats raw scores: the
    # correctness signal is in the score distribution's shape.
    assert sorted_dmu.dmu_accuracy >= raw_dmu.dmu_accuracy - 0.02

    # All variants produce valid operating points.
    for r in rows:
        assert 0.0 <= r.rerun_ratio <= 1.0
        assert r.max_achievable_accuracy >= workbench.test_scores.classifier_accuracy - 1e-9
