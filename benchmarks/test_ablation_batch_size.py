"""Ablation: batch-size effect on throughput and latency (Section III)."""

from conftest import save_result

from repro.core.report import render_table
from repro.experiments.ablations import run_batch_size_sweep


def test_batch_size_ablation(benchmark):
    rows = benchmark.pedantic(run_batch_size_sweep, rounds=1, iterations=1)
    text = render_table(
        ["batch size", "img/s", "avg batch latency (s)"],
        [[r.batch_size, f"{r.images_per_second:.1f}", f"{r.average_batch_latency:.4f}"] for r in rows],
        title="Ablation: batch size (paper Section III claim)",
    )
    save_result("ablation_batch_size", text)

    # "Changing batch size does not have a significant effect on
    # multi-precision features": throughput varies by < 15% across a 32x
    # range of batch sizes.
    rates = [r.images_per_second for r in rows]
    assert max(rates) / min(rates) < 1.15

    # "...with higher batch sizes, the latency of an image to pass through
    # the multi-precision system increases": strictly increasing latency.
    latencies = [r.average_batch_latency for r in rows]
    assert latencies == sorted(latencies)
    assert latencies[-1] > 3 * latencies[0]
