"""Regenerates Table II: category fractions at the deployed threshold."""

import pytest
from conftest import save_result

from repro.experiments.fig5_table2 import run_table2


def test_table2_dmu_categories(benchmark, workbench):
    result = benchmark.pedantic(lambda: run_table2(workbench), rounds=1, iterations=1)
    save_result("table2_dmu_categories", result.format())

    for cats in (result.train, result.test):
        # The four fractions partition the dataset.
        total = cats.fs + cats.fbar_sbar + cats.fbar_s + cats.f_sbar
        assert total == pytest.approx(1.0)
        # FS is the dominant category (most images are classified
        # correctly by the BNN and accepted), as in the paper's 66.2%.
        assert cats.fs > max(cats.fbar_sbar, cats.fbar_s, cats.f_sbar)
        # The accuracy cap 1 - F̄S exceeds the BNN's raw accuracy: the
        # cascade has headroom to improve (paper: 78.5% -> cap 91.3%).
        bnn_acc = cats.fs + cats.f_sbar
        assert cats.max_achievable_accuracy > bnn_acc

    # Train/test behaviour is consistent (no gross DMU overfit).
    assert abs(result.train.rerun_ratio - result.test.rerun_ratio) < 0.15
