"""Regenerates Fig. 5: DMU accuracy and F̄S / FS̄ vs Softmax threshold."""

import numpy as np
from conftest import save_result

from repro.experiments.fig5_table2 import run_fig5


def test_fig5_threshold_sweep(benchmark, workbench):
    result = benchmark.pedantic(lambda: run_fig5(workbench), rounds=1, iterations=1)
    save_result("fig5_threshold_sweep", result.format() + "\n\n" + result.chart())
    cats = result.categories

    # Fig. 5's shape on the training set: over thresholds 0.5 -> 1.0,
    # F̄S (missed BNN errors) decreases while FS̄ (wasted reruns) increases.
    fbar_s = [c.fbar_s for c in cats]
    f_sbar = [c.f_sbar for c in cats]
    assert all(a >= b - 1e-12 for a, b in zip(fbar_s, fbar_s[1:]))
    assert all(a <= b + 1e-12 for a, b in zip(f_sbar, f_sbar[1:]))

    # The rerun ratio therefore grows monotonically with the threshold.
    ratios = [c.rerun_ratio for c in cats]
    assert all(a <= b + 1e-12 for a, b in zip(ratios, ratios[1:]))

    # The DMU carries real signal: at every threshold its accuracy beats
    # the trivial accept-everything baseline by construction of training.
    baseline = workbench.train_scores.classifier_accuracy
    assert max(c.dmu_accuracy for c in cats) > baseline
