"""Regenerates Table IV: standalone accuracy and rate of A/B/C and FINN."""

from conftest import save_result

from repro.experiments import table4


def test_table4_standalone(benchmark, workbench, chosen_design):
    result = benchmark.pedantic(
        lambda: table4.run(workbench, chosen_design), rounds=1, iterations=1
    )
    save_result("table4_standalone", result.format())
    a = result.row("Model A")
    b = result.row("Model B")
    c = result.row("Model C")
    finn = result.row("FINN (FPGA)")

    # Rate shape (who wins, by what factor): FINN >> A >> B ~ C.
    assert finn.images_per_second > 10 * a.images_per_second
    assert a.images_per_second > 5 * b.images_per_second
    assert abs(b.images_per_second / c.images_per_second - 1) < 0.5
    # Rates are anchored/predicted by the calibrated model: A and B exact,
    # C within 15% of the paper's 3.09.
    assert abs(a.images_per_second - 29.68) < 0.01
    assert abs(b.images_per_second - 3.63) < 0.01
    assert abs(c.images_per_second - c.paper_images_per_second) / c.paper_images_per_second < 0.15

    # Accuracy shape: the binarized network trails every float model
    # ("its accuracy falls short of even a simple floating-point network
    # such as Model A").
    assert finn.accuracy < a.accuracy
    assert finn.accuracy < b.accuracy
    assert finn.accuracy < c.accuracy
    # All models are well above the 10-class chance level.
    assert finn.accuracy > 0.3
