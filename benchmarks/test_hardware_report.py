"""Per-engine hardware report + DRC for the chosen configuration."""

from conftest import save_result

from repro.finn import check_design, hardware_report


def test_hardware_report_chosen_config(benchmark, chosen_design):
    report = benchmark.pedantic(
        lambda: hardware_report(chosen_design.balance), rounds=3, iterations=1
    )
    drc = check_design(chosen_design.balance, required_fps=60)
    save_result(
        "hardware_report_chosen_config", report.format() + "\n\n" + drc.format()
    )

    # The chosen configuration passes the design-rule checks on the
    # ZC702 at the real-time requirement the paper quotes (60 fps).
    assert drc.ok, drc.format()

    # Storage-efficiency story (Fraser et al.'s observation): naive BRAM
    # allocation leaves a large fraction of allocated storage unused.
    naive = hardware_report(chosen_design.balance, partitioned=False)
    assert naive.resources.storage_efficiency < 0.85
    # Partitioning strictly improves or maintains total BRAM.
    assert report.resources.total_brams <= naive.resources.total_brams
