#!/usr/bin/env python
"""Documentation coverage gate (run by CI and tests/test_doc_coverage.py).

Fails when the importable surface and the documentation drift apart:

* every public ``repro.*`` package and module must be mentioned in
  ``docs/API.md`` — a package by its dotted name, a module by its dotted
  name or by one of its ``__all__`` symbols (so an index line like
  "``run_kernel_bench`` — the bench harness" counts without forcing a
  path-per-module listing style);
* ``docs/OBSERVABILITY.md`` must exist and be linked from the README.

Pure stdlib + ``ast``: nothing is imported, so the check is immune to
import-time side effects and runs in milliseconds.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
API_MD = REPO_ROOT / "docs" / "API.md"
OBSERVABILITY_MD = REPO_ROOT / "docs" / "OBSERVABILITY.md"
README = REPO_ROOT / "README.md"


def public_modules() -> list[tuple[str, Path]]:
    """(dotted_name, path) of every public module/package under repro."""
    found = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC)
        parts = list(rel.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        if any(p.startswith("_") for p in parts):
            continue
        found.append(("repro" + "".join("." + p for p in parts) if parts else "repro", path))
    return found


def module_all(path: Path) -> list[str]:
    """The module's ``__all__`` names via ast (no import)."""
    if path.is_dir():
        path = path / "__init__.py"
    try:
        tree = ast.parse(path.read_text())
    except SyntaxError as exc:  # pragma: no cover - would fail tests anyway
        raise SystemExit(f"cannot parse {path}: {exc}")
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
            return [
                el.value
                for el in node.value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            ]
    return []


def check() -> list[str]:
    """All coverage violations (empty list = documentation is complete)."""
    problems = []
    if not API_MD.exists():
        return [f"missing {API_MD.relative_to(REPO_ROOT)}"]
    api_text = API_MD.read_text()

    for dotted, path in public_modules():
        if dotted == "repro":
            continue
        if dotted in api_text:
            continue
        is_package = path.name == "__init__.py"
        if is_package:
            problems.append(f"package {dotted} is not mentioned in docs/API.md")
            continue
        exported = module_all(path)
        if exported and any(
            re.search(rf"\b{re.escape(name)}\b", api_text) for name in exported
        ):
            continue
        problems.append(
            f"module {dotted} is not mentioned in docs/API.md "
            f"(neither its dotted path nor any of __all__ = {exported or '[]'})"
        )

    if not OBSERVABILITY_MD.exists():
        problems.append("missing docs/OBSERVABILITY.md")
    elif README.exists() and "docs/OBSERVABILITY.md" not in README.read_text():
        problems.append("README.md does not link docs/OBSERVABILITY.md")

    return problems


def main() -> int:
    problems = check()
    modules = public_modules()
    if problems:
        print(f"doc coverage FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"doc coverage OK: {len(modules)} public modules covered by docs/API.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
