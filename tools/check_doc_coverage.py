#!/usr/bin/env python
"""Documentation coverage gate (run by CI and tests/test_doc_coverage.py).

Fails when the importable surface and the documentation drift apart:

* every public ``repro.*`` package and module must be mentioned in
  ``docs/API.md`` — a package by its dotted name, a module by its dotted
  name or by one of its ``__all__`` symbols (so an index line like
  "``run_kernel_bench`` — the bench harness" counts without forcing a
  path-per-module listing style);
* every public module must additionally be referenced **by dotted path**
  from at least one file under ``docs/`` — unless it is listed in
  :data:`INTERNAL_HELPERS`, the explicit allowlist for modules that are
  documented only through their package's public surface.  The allowlist
  is kept honest both ways: an entry that names no real module, or whose
  module *is* dotted-referenced from docs, fails the check;
* ``docs/OBSERVABILITY.md`` must exist and be linked from the README;
* ``docs/LADDER.md`` must exist and be linked from the README,
  ``docs/API.md`` and ``docs/OBSERVABILITY.md`` (the precision-ladder
  guide is the map from serving stages to the paper's equations);
* ``docs/TRAFFIC.md`` must exist and be linked from the README,
  ``docs/API.md`` and ``docs/OBSERVABILITY.md`` (the open-loop load +
  SLO-autoscaler guide owns the ``slo.*`` / ``traffic.*`` obs signals);
* ``docs/TENANCY.md`` must exist and be linked from the README,
  ``docs/API.md`` and ``docs/OBSERVABILITY.md`` (the content-addressed
  cache + multi-tenant scheduling guide owns the ``cache.*`` /
  ``tenant.*`` obs signals and the books-balancing invariant).

Pure stdlib + ``ast``: nothing is imported, so the check is immune to
import-time side effects and runs in milliseconds.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
DOCS = REPO_ROOT / "docs"
API_MD = DOCS / "API.md"
OBSERVABILITY_MD = DOCS / "OBSERVABILITY.md"
LADDER_MD = DOCS / "LADDER.md"
TRAFFIC_MD = DOCS / "TRAFFIC.md"
TENANCY_MD = DOCS / "TENANCY.md"
README = REPO_ROOT / "README.md"

# Modules documented only through their package's public surface (their
# __all__ symbols are indexed in docs/API.md under the package heading).
# Everything NOT listed here must be referenced by dotted path from at
# least one file under docs/.  Entries are verified to exist and to be
# genuinely unreferenced — prune an entry the moment a doc names it.
INTERNAL_HELPERS = frozenset({
    "repro.bnn.binarize",
    "repro.bnn.bitops",
    "repro.bnn.export",
    "repro.bnn.kernels.base",
    "repro.bnn.layers",
    "repro.bnn.packing",
    "repro.bnn.quantize",
    "repro.bnn.thresholding",
    "repro.bnn.xnor",
    "repro.core.ascii_chart",
    "repro.core.report",
    "repro.data.augment",
    "repro.data.cifar_io",
    "repro.data.dataset",
    "repro.data.score_dataset",
    "repro.data.synthetic",
    "repro.experiments.finn_config",
    "repro.experiments.report_all",
    "repro.experiments.workbench",
    "repro.finn.balance",
    "repro.finn.dataflow",
    "repro.finn.device",
    "repro.finn.drc",
    "repro.finn.engine",
    "repro.finn.memory",
    "repro.finn.mixed_precision",
    "repro.finn.report",
    "repro.finn.resources",
    "repro.hetero.devices",
    "repro.hetero.gantt",
    "repro.hetero.scheduler",
    "repro.hetero.timeline",
    "repro.host.cpu",
    "repro.host.flops",
    "repro.host.runtime",
    "repro.models.finn_cnv",
    "repro.models.registry",
    "repro.nn.functional",
    "repro.nn.gradcheck",
    "repro.nn.initializers",
    "repro.nn.layers.activations",
    "repro.nn.layers.batchnorm",
    "repro.nn.layers.conv",
    "repro.nn.layers.dense",
    "repro.nn.layers.dropout",
    "repro.nn.layers.flatten",
    "repro.nn.layers.lrn",
    "repro.nn.layers.pool",
    "repro.nn.losses",
    "repro.nn.metrics",
    "repro.nn.optim",
    "repro.nn.parameter",
    "repro.nn.serialize",
    "repro.nn.trainer",
    "repro.obs.export",
    "repro.obs.stats",
    "repro.obs.tracer",
    "repro.stream.pipeline",
    "repro.stream.roi",
    "repro.stream.video",
})


def public_modules() -> list[tuple[str, Path]]:
    """(dotted_name, path) of every public module/package under repro."""
    found = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC)
        parts = list(rel.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        if any(p.startswith("_") for p in parts):
            continue
        found.append(("repro" + "".join("." + p for p in parts) if parts else "repro", path))
    return found


def module_all(path: Path) -> list[str]:
    """The module's ``__all__`` names via ast (no import)."""
    if path.is_dir():
        path = path / "__init__.py"
    try:
        tree = ast.parse(path.read_text())
    except SyntaxError as exc:  # pragma: no cover - would fail tests anyway
        raise SystemExit(f"cannot parse {path}: {exc}")
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
            return [
                el.value
                for el in node.value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            ]
    return []


def docs_text() -> str:
    """Concatenated contents of every markdown file under docs/."""
    return "\n".join(p.read_text() for p in sorted(DOCS.glob("*.md")))


def _referenced(dotted: str, text: str) -> bool:
    return re.search(rf"\b{re.escape(dotted)}\b", text) is not None


def check() -> list[str]:
    """All coverage violations (empty list = documentation is complete)."""
    problems = []
    if not API_MD.exists():
        return [f"missing {API_MD.relative_to(REPO_ROOT)}"]
    api_text = API_MD.read_text()

    for dotted, path in public_modules():
        if dotted == "repro":
            continue
        if dotted in api_text:
            continue
        is_package = path.name == "__init__.py"
        if is_package:
            problems.append(f"package {dotted} is not mentioned in docs/API.md")
            continue
        exported = module_all(path)
        if exported and any(
            re.search(rf"\b{re.escape(name)}\b", api_text) for name in exported
        ):
            continue
        problems.append(
            f"module {dotted} is not mentioned in docs/API.md "
            f"(neither its dotted path nor any of __all__ = {exported or '[]'})"
        )

    # Docs-wide dotted-path coverage, gated by the allowlist.
    all_docs = docs_text()
    names = {dotted for dotted, _ in public_modules()}
    for dotted, path in public_modules():
        if dotted == "repro" or dotted in INTERNAL_HELPERS:
            continue
        if path.name != "__init__.py" and not _referenced(dotted, all_docs):
            problems.append(
                f"module {dotted} is not referenced by dotted path from any "
                "file under docs/ (reference it, or add it to "
                "INTERNAL_HELPERS in tools/check_doc_coverage.py)"
            )
    for entry in sorted(INTERNAL_HELPERS):
        if entry not in names:
            problems.append(
                f"stale INTERNAL_HELPERS entry {entry}: no such module under "
                "src/repro"
            )
        elif _referenced(entry, all_docs):
            problems.append(
                f"INTERNAL_HELPERS entry {entry} is referenced from docs/ — "
                "drop it from the allowlist"
            )

    if not OBSERVABILITY_MD.exists():
        problems.append("missing docs/OBSERVABILITY.md")
    elif README.exists() and "docs/OBSERVABILITY.md" not in README.read_text():
        problems.append("README.md does not link docs/OBSERVABILITY.md")

    for guide, name in (
        (LADDER_MD, "LADDER.md"),
        (TRAFFIC_MD, "TRAFFIC.md"),
        (TENANCY_MD, "TENANCY.md"),
    ):
        if not guide.exists():
            problems.append(f"missing docs/{name}")
            continue
        for doc, label in (
            (README, "README.md"),
            (API_MD, "docs/API.md"),
            (OBSERVABILITY_MD, "docs/OBSERVABILITY.md"),
        ):
            if doc.exists() and name not in doc.read_text():
                problems.append(f"{label} does not link docs/{name}")

    return problems


def main() -> int:
    problems = check()
    modules = public_modules()
    if problems:
        print(f"doc coverage FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"doc coverage OK: {len(modules)} public modules covered by docs/API.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
