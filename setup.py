"""Legacy setup shim: the build environment in this repo is offline and its
setuptools predates PEP 517 wheel integration, so `pip install -e .` falls
back to this file."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
