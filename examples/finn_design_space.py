"""FINN hardware design-space exploration on the ZC702.

Reproduces the Section III-A scaling analysis without training anything:
rate-balances the CNV network for a range of throughput targets, prints
the Fig. 3 (naive BRAM) and Fig. 4 (block-partitioned) sweeps, and applies
the paper's selection rule to pick the working configuration.

Run:  python examples/finn_design_space.py      (instant — analytical)
"""

from repro.experiments import chosen_configuration, standard_sweep
from repro.experiments.fig34 import run_fig3, run_fig4
from repro.experiments.table1 import run as run_table1
from repro.finn import ZC702_CLOCK_HZ


def main() -> None:
    points = standard_sweep()
    print(run_fig3(points).format())
    print()
    print(run_fig4(points).format())
    print()

    chosen = chosen_configuration()
    perf = chosen.performance_partitioned
    res = chosen.resources_partitioned
    print(
        f"chosen configuration: {chosen.total_pe} total PEs, "
        f"{perf.obtained_fps:.0f} img/s obtained "
        f"({perf.expected_fps:.0f} expected), "
        f"BRAM {100 * res.bram_utilization:.0f}%, "
        f"LUT {100 * res.lut_utilization:.0f}% "
        f"(paper: 32 PEs, 430 img/s, BRAM 65%)"
    )
    print()
    print(run_table1(chosen).format())
    print()
    print("per-engine foldings and bottleneck:")
    bottleneck = chosen.balance.bottleneck
    for engine in chosen.balance.engines:
        marker = "  <-- bottleneck" if engine is bottleneck else ""
        print(
            f"  {engine.spec.name:6s} P={engine.pe:3d} S={engine.simd:3d} "
            f"CC={engine.cycles_per_image:9d} "
            f"({ZC702_CLOCK_HZ / engine.cycles_per_image:8.1f} img/s alone){marker}"
        )


if __name__ == "__main__":
    main()
