"""Real-time video-stream sizing for the multi-precision cascade.

The paper motivates the 430 img/s FINN configuration with "60 fps required
in most real-time video streaming applications".  This example uses the
heterogeneous pipeline simulator to answer the deployment question: given
a target frame rate, how large a rerun ratio (and hence DMU threshold
aggressiveness) can each host model afford?

Run:  python examples/video_stream_cascade.py   (instant — analytical)
"""

import numpy as np

from repro.core.analytic import multi_precision_interval
from repro.experiments import chosen_configuration
from repro.hetero import FPGAExecutor, HostExecutor, simulate_cascade
from repro.host import analyze_network, paper_calibrated_model
from repro.models import build_model_a, build_model_b, build_model_c

TARGET_FPS = 60.0
STREAM_FRAMES = 3600  # one minute of 60 fps video
BATCH = 100


def max_rerun_ratio_for(target_fps: float, t_fp: float, t_bnn: float) -> float:
    """Largest rerun ratio that still meets the frame-rate target (Eq. 1)."""
    if 1.0 / t_bnn < target_fps:
        return 0.0
    # Eq. (1): host-bound interval = t_fp * r <= 1/target.
    return min(1.0, 1.0 / (target_fps * t_fp))


def main() -> None:
    design = chosen_configuration()
    fpga = FPGAExecutor.from_pipeline(design.performance_partitioned)
    host_model = paper_calibrated_model()

    print(f"FPGA configuration: {design.performance_partitioned.obtained_fps:.0f} img/s")
    print(f"target stream rate: {TARGET_FPS:.0f} fps, {STREAM_FRAMES} frames\n")

    builders = {
        "Model A": build_model_a,
        "Model B": build_model_b,
        "Model C": build_model_c,
    }
    for name, builder in builders.items():
        t_fp = host_model.seconds_per_image(analyze_network(builder(scale=1.0)))
        r_max = max_rerun_ratio_for(TARGET_FPS, t_fp, fpga.interval_seconds)

        # Validate the analytic sizing with the event simulator.
        host = HostExecutor(seconds_per_image=t_fp)
        achieved = []
        for r in np.unique(np.clip([r_max * 0.8, r_max, min(1.0, r_max * 1.3)], 0, 1)):
            sim = simulate_cascade(fpga, host, STREAM_FRAMES, BATCH, rerun_ratio=float(r))
            achieved.append((float(r), sim.images_per_second))

        print(f"{name}: t_fp = {t_fp * 1e3:.1f} ms/img "
              f"(standalone {1 / t_fp:.2f} img/s)")
        print(f"  max rerun ratio for {TARGET_FPS:.0f} fps (Eq. 1): {100 * r_max:.1f}%")
        for r, fps in achieved:
            ok = "meets" if fps >= TARGET_FPS else "MISSES"
            eq1 = 1.0 / multi_precision_interval(t_fp, fpga.interval_seconds, r)
            print(f"  simulated @ r={100 * r:5.1f}%: {fps:7.1f} img/s "
                  f"(Eq.1: {eq1:7.1f})  -> {ok} target")
        print()


if __name__ == "__main__":
    main()
