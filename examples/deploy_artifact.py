"""Train once, ship a deployment artifact, classify from it.

FINN's deployment story is "train offline, bake weights+thresholds into
the bitstream".  This example shows the software equivalent: fold a
trained binarized network, save the compact `.npz` artifact, reload it in
a fresh process-like context (no training code, no RNG state), and verify
bit-exact classification — plus the size win binarisation buys.

Run:  python examples/deploy_artifact.py        (~1 minute)
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.bnn import clip_weights, fold_network, load_folded_bnn, save_folded_bnn
from repro.data import normalize_to_pm1, synthetic_cifar10
from repro.models import build_finn_cnv
from repro.nn import Adam, SquaredHinge, Trainer


def main() -> None:
    rng = np.random.default_rng(0)
    splits = synthetic_cifar10(num_train=600, num_test=200, seed=0)
    x_train = normalize_to_pm1(splits.train.images)
    x_test = normalize_to_pm1(splits.test.images)

    print("training a small binarized CNV ...")
    net = build_finn_cnv(scale=0.1, rng=rng)
    trainer = Trainer(
        net, SquaredHinge(), Adam(net.params(), lr=0.003, post_update=clip_weights), rng=rng
    )
    trainer.fit(x_train, splits.train.labels, epochs=4, batch_size=64)

    print("folding to deployment form (BN+sign -> thresholds, packed weights) ...")
    folded = fold_network(net, num_classes=10)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cnv_deploy.npz"
        save_folded_bnn(folded, path)
        artifact_kib = path.stat().st_size / 1024

        float_params_kib = sum(p.size for p in net.params()) * 8 / 1024
        print(f"artifact size: {artifact_kib:.1f} KiB "
              f"(float64 training weights: {float_params_kib:.1f} KiB)")

        print("reloading and verifying bit-exact classification ...")
        loaded = load_folded_bnn(path)
        original = folded.predict(x_test)
        reloaded = loaded.predict(x_test)
        assert (original == reloaded).all(), "deployment artifact mismatch!"

    accuracy = float((original == splits.test.labels).mean())
    print(f"OK — {len(splits.test)} images classified identically; "
          f"accuracy {100 * accuracy:.1f}%")


if __name__ == "__main__":
    main()
