"""Quickstart: build, train and run a multi-precision CNN cascade.

Trains a small binarized (FINN-style) network and a floating-point host
network on the synthetic CIFAR-10 substitute, trains the Decision-Making
Unit on the BNN's training-set scores, then runs the cascade and reports
the paper's headline quantities: BNN accuracy vs cascade accuracy, the
rerun ratio, and the Eq. (1) throughput estimate.

Run:  python examples/quickstart.py          (~2-3 minutes, pure numpy)
"""

import numpy as np

from repro.bnn import clip_weights, fold_network
from repro.core import MultiPrecisionPipeline, estimate, threshold_sweep, train_dmu
from repro.data import build_score_dataset, normalize_to_pm1, synthetic_cifar10
from repro.models import build_finn_cnv, build_model_a
from repro.nn import Adam, SoftmaxCrossEntropy, SquaredHinge, Trainer


def main() -> None:
    rng = np.random.default_rng(0)

    print("1. generating synthetic CIFAR-10 (offline substitute) ...")
    splits = synthetic_cifar10(num_train=1600, num_test=400, seed=0)

    print("2. training the binarized FINN CNV network (scale 0.15) ...")
    bnn = build_finn_cnv(scale=0.15, rng=rng)
    bnn_trainer = Trainer(
        bnn, SquaredHinge(), Adam(bnn.params(), lr=0.003, post_update=clip_weights), rng=rng
    )
    x_pm1 = normalize_to_pm1(splits.train.images)
    bnn_trainer.fit(x_pm1, splits.train.labels, epochs=6, batch_size=64)

    print("3. folding BatchNorm+sign into FINN thresholds (deployment form) ...")
    folded = fold_network(bnn, num_classes=10)
    test_pm1 = normalize_to_pm1(splits.test.images)
    bnn_acc = float((folded.predict(test_pm1) == splits.test.labels).mean())
    print(f"   BNN test accuracy: {100 * bnn_acc:.1f}%")

    print("4. training the floating-point host network (Model A, scale 0.25) ...")
    host = build_model_a(scale=0.25, rng=rng)
    host_trainer = Trainer(host, SoftmaxCrossEntropy(), Adam(host.params(), lr=1e-3), rng=rng)
    host_trainer.fit(splits.train.images, splits.train.labels, epochs=14, batch_size=64)
    host_acc = host_trainer.evaluate(splits.test.images, splits.test.labels)
    print(f"   host test accuracy: {100 * host_acc:.1f}%")

    print("5. training the DMU on the BNN's training-set scores ...")
    train_scores = build_score_dataset(
        folded.class_scores(x_pm1), splits.train.labels
    )
    dmu = train_dmu(train_scores, rng=rng)
    # Pick the threshold whose training rerun ratio is ~30% — the paper's
    # accuracy/throughput balancing around Fig. 5.
    sweep = threshold_sweep(dmu, train_scores, np.linspace(0.05, 0.95, 46))
    dmu.threshold = min(sweep, key=lambda c: abs(c.rerun_ratio - 0.30)).threshold
    print(f"   selected threshold {dmu.threshold:.2f} "
          f"(training rerun ratio ~30%)")

    print("6. running the multi-precision cascade on the test set ...")
    pipeline = MultiPrecisionPipeline(folded, dmu, host)
    result = pipeline.classify(splits.test.images, bnn_images=test_pm1)
    cascade_acc = result.accuracy(splits.test.labels)
    print(f"   cascade accuracy:  {100 * cascade_acc:.1f}% "
          f"(BNN alone: {100 * result.bnn_accuracy(splits.test.labels):.1f}%)")
    print(f"   rerun ratio:       {100 * result.rerun_ratio:.1f}% of images re-inferred on host")

    print("7. Eq. (1)/(2) estimate at the paper's full-width timings ...")
    est = estimate(
        t_fp=1 / 29.68,          # paper's Model A rate on the dual Cortex-A9
        t_bnn=1 / 430.15,        # paper's chosen FINN configuration
        acc_bnn=bnn_acc,
        acc_fp=max(0.0, result.host_subset_accuracy(splits.test.labels)),
        r_rerun=result.rerun_ratio,
        r_rerun_err=0.0,
    )
    print(f"   multi-precision throughput ~= {est.images_per_second:.1f} img/s "
          f"({est.bottleneck}-bound)")


if __name__ == "__main__":
    main()
