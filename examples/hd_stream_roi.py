"""Live-stream scenario: ROI extraction feeding the multi-precision cascade.

The paper selects its low-BRAM FINN configuration precisely so that ROI
extraction hardware can share the FPGA: "image classification designs are
typically part of a bigger design in practice (e.g. used in live video
streams)".  This example runs that scenario end to end in simulation:

  synthetic video -> saliency ROI detector -> 32x32 bilinear crops ->
  BNN + DMU + float-host cascade -> per-frame detections,

then sizes the real-time budget with the hardware models: how many ROIs
per frame can the chosen FPGA configuration sustain at 30/60 fps?

Run:  python examples/hd_stream_roi.py         (~2 minutes)
"""

import numpy as np

from repro.bnn import clip_weights, fold_network
from repro.core import DecisionMakingUnit, MultiPrecisionPipeline
from repro.data import normalize_to_pm1, synthetic_cifar10
from repro.experiments import chosen_configuration
from repro.models import build_finn_cnv, build_model_a
from repro.nn import Adam, SoftmaxCrossEntropy, SquaredHinge, Trainer
from repro.stream import SyntheticVideo, VideoCascade


def train_small_cascade(rng):
    from repro.data import Augmenter, random_shift

    splits = synthetic_cifar10(num_train=1600, num_test=200, seed=0)
    # Shift augmentation: ROI crops are never pixel-aligned with the
    # object, so train with translation jitter.
    augment = Augmenter(transforms=[random_shift], seed=0)

    bnn = build_finn_cnv(scale=0.12, rng=rng)
    Trainer(
        bnn, SquaredHinge(), Adam(bnn.params(), lr=3e-3, post_update=clip_weights),
        rng=rng, augment=lambda x: normalize_to_pm1(augment((x + 1) / 2)),
    ).fit(normalize_to_pm1(splits.train.images), splits.train.labels, epochs=6, batch_size=64)
    host = build_model_a(scale=0.25, rng=rng)
    Trainer(
        host, SoftmaxCrossEntropy(), Adam(host.params(), lr=1e-3), rng=rng, augment=augment
    ).fit(splits.train.images, splits.train.labels, epochs=10, batch_size=64)
    folded = fold_network(bnn, num_classes=10)
    # Margin-style DMU (no separate training run, keeps the example fast).
    weights = np.zeros(10)
    weights[0], weights[1] = 1.0, -1.0
    dmu = DecisionMakingUnit(weights, 0.0, threshold=0.7)
    return MultiPrecisionPipeline(folded, dmu, host)


def main() -> None:
    rng = np.random.default_rng(0)
    print("training a small cascade for the stream demo ...")
    pipeline = train_small_cascade(rng)

    print("processing 20 synthetic video frames (270x480, 3 moving objects) ...")
    video = SyntheticVideo(height=270, width=480, num_objects=3, object_size=36, seed=1)
    cascade = VideoCascade(pipeline)
    report = cascade.run(video, num_frames=20)

    print(f"  detection recall:          {100 * report.detection_recall:.1f}%")
    print(f"  classification accuracy:   {100 * report.classification_accuracy:.1f}% "
          "(on matched objects)")
    print(f"  host rerun ratio:          {100 * report.rerun_ratio:.1f}%")
    print(f"  avg ROIs per frame:        {report.total_patches / len(report.frames):.1f}")

    print("\nreal-time budget on the paper's hardware (chosen FINN config):")
    design = chosen_configuration()
    fpga_rate = design.performance_partitioned.obtained_fps
    for frame_rate in (30, 60):
        budget = fpga_rate / frame_rate
        print(f"  at {frame_rate} fps the FPGA classifies up to "
              f"{budget:.1f} ROIs per frame "
              f"({fpga_rate:.0f} img/s / {frame_rate} fps)")


if __name__ == "__main__":
    main()
