"""Accuracy/throughput frontier of the multi-precision system.

Sweeps the DMU threshold (the paper's single tuning knob, Section III-B)
and reports, for each setting, the cascade's measured accuracy on the
synthetic test set and its simulated throughput — the trade-off curve the
paper describes qualitatively around Fig. 5.

Reuses the shared workbench cache, so the first run trains the networks
(~5-10 minutes) and subsequent runs are instant.

Run:  python examples/accuracy_throughput_tradeoff.py
"""

import numpy as np

from repro.core import MultiPrecisionPipeline
from repro.core.report import render_table
from repro.data import normalize_to_pm1
from repro.experiments import Workbench, WorkbenchConfig, chosen_configuration
from repro.hetero import FPGAExecutor, HostExecutor, simulate_cascade
from repro.host import analyze_network, paper_calibrated_model
from repro.models import build_model_a

THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.84, 0.9, 0.95, 0.99)


def main() -> None:
    # Same budget as benchmarks/conftest.py, so the disk cache is shared.
    config = WorkbenchConfig(
        num_train=2400, num_test=600, bnn_epochs=10, host_epochs=18,
        host_lr=0.001, target_rerun_ratio=0.30,
    )
    wb = Workbench(config)
    print("training / loading workbench models ...")
    wb.prepare_all()

    design = chosen_configuration()
    fpga = FPGAExecutor.from_pipeline(design.performance_partitioned)
    t_fp = paper_calibrated_model().seconds_per_image(
        analyze_network(build_model_a(scale=1.0))
    )
    host = HostExecutor(seconds_per_image=t_fp)

    folded = wb.folded_bnn
    images = wb.splits.test.images
    labels = wb.splits.test.labels
    bnn_images = normalize_to_pm1(images)

    rows = []
    for thr in THRESHOLDS:
        pipeline = MultiPrecisionPipeline(folded, wb.dmu, wb.host_net("model_a"), threshold=thr)
        result = pipeline.classify(images, bnn_images=bnn_images)
        sim = simulate_cascade(
            fpga, host, images.shape[0], batch_size=100, rerun_mask=result.rerun_mask
        )
        rows.append(
            [
                f"{thr:.2f}",
                f"{100 * result.accuracy(labels):.1f}%",
                f"{100 * result.rerun_ratio:.1f}%",
                f"{sim.images_per_second:.1f}",
            ]
        )

    print()
    print(
        render_table(
            ["DMU threshold", "cascade accuracy", "rerun ratio", "img/s (simulated)"],
            rows,
            title=f"Accuracy/throughput frontier (Model A & FINN, "
            f"BNN alone: {100 * wb.bnn_accuracy:.1f}%)",
        )
    )


if __name__ == "__main__":
    main()
