"""Unit tests for the shared-memory slot rings (single-process protocol)."""

import pickle

import numpy as np
import pytest

from repro.parallel.shm import REQ_SEQ, RingSpec, SlotRing, WorkerRing


@pytest.fixture
def ring():
    r = SlotRing(
        capacity=8, item_shape=(3, 4, 4), item_dtype=np.float32,
        resp_shape=(10,), resp_dtype=np.float32, n_slots=2,
    )
    yield r
    r.close()


class TestSlotRing:
    def test_publish_read_roundtrip(self, ring):
        worker = WorkerRing(ring.spec())
        images = np.random.default_rng(0).normal(size=(5, 3, 4, 4)).astype(np.float32)
        slot, seq, n = ring.publish(images)
        got = worker.read_request(slot, seq, n)
        np.testing.assert_array_equal(got, images)
        logits = np.arange(50, dtype=np.float32).reshape(5, 10)
        worker.write_response(slot, seq, logits)
        np.testing.assert_array_equal(ring.read_response(slot, seq, n), logits)
        worker.close()

    def test_publish_casts_into_slab_dtype(self, ring):
        images = np.ones((2, 3, 4, 4), dtype=np.float64)
        slot, seq, n = ring.publish(images)
        assert ring.request[slot, :n].dtype == np.float32

    def test_slots_rotate_and_seqs_increase(self, ring):
        first = ring.publish(np.zeros((1, 3, 4, 4), np.float32))
        second = ring.publish(np.zeros((1, 3, 4, 4), np.float32))
        third = ring.publish(np.zeros((1, 3, 4, 4), np.float32))
        assert first[0] != second[0] and first[0] == third[0]  # 2 slots rotate
        assert first[1] < second[1] < third[1]
        assert all(seq % 2 == 0 for _, seq, _ in (first, second, third))

    def test_capacity_overflow_raises(self, ring):
        with pytest.raises(ValueError):
            ring.publish(np.zeros((9, 3, 4, 4), np.float32))

    def test_stale_seq_detected_by_worker(self, ring):
        worker = WorkerRing(ring.spec())
        slot, seq, n = ring.publish(np.zeros((1, 3, 4, 4), np.float32))
        with pytest.raises(RuntimeError, match="seqlock"):
            worker.read_request(slot, seq + 2, n)  # not published yet
        worker.close()

    def test_torn_write_detected_by_worker(self, ring):
        worker = WorkerRing(ring.spec())
        slot, seq, n = ring.publish(np.zeros((1, 3, 4, 4), np.float32))
        ring.header[slot, REQ_SEQ] = -1  # WRITING sentinel mid-read
        with pytest.raises(RuntimeError):
            worker.read_request(slot, seq, n)
        worker.close()

    def test_stale_response_detected_by_parent(self, ring):
        slot, seq, n = ring.publish(np.zeros((1, 3, 4, 4), np.float32))
        with pytest.raises(RuntimeError, match="seqlock"):
            ring.read_response(slot, seq, n)  # worker never answered

    def test_close_is_idempotent(self):
        r = SlotRing(2, (2,), np.float32, (3,), np.float32)
        r.close()
        r.close()

    def test_spec_is_picklable(self, ring):
        spec = ring.spec()
        clone: RingSpec = pickle.loads(pickle.dumps(spec))
        assert clone.item_shape == (3, 4, 4)
        assert np.dtype(clone.item_dtype) == np.float32
        assert clone.capacity == 8 and clone.n_slots == 2
