"""ParallelHostRunner: bit-identical sharding, fault containment, self-heal."""

import os
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.host_models import build_model_a, build_model_b, build_model_c
from repro.parallel import ParallelHostRunner, resolve_host_workers
from repro.serve.resilience import StageFailure

BUILDERS = {"a": build_model_a, "b": build_model_b, "c": build_model_c}


def make_net(model: str = "a", scale: float = 0.25, seed: int = 0):
    net = BUILDERS[model](scale=scale, rng=np.random.default_rng(seed))
    net.eval_mode()
    return net


def make_images(n: int, seed: int = 1) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, 3, 32, 32))


def crashy_host(images: np.ndarray) -> np.ndarray:
    """Host callable that kills its own process mid-batch on a marker image."""
    if float(images[0].max()) > 1e5:
        os._exit(13)
    return np.full(len(images), 7, dtype=np.int64)


class TestEquivalence:
    @pytest.mark.parametrize("model", ["a", "b", "c"])
    def test_bit_identical_across_worker_counts(self, model):
        net = make_net(model)
        x = make_images(37)  # uneven: 3 micro-batch chunks over k workers
        serial = net.compile_inference().predict_scores(x)
        for k in (1, 2, 4):
            with ParallelHostRunner(model=net, n_workers=k) as pool:
                np.testing.assert_array_equal(pool.predict_scores(x), serial)
                np.testing.assert_array_equal(pool(x), serial.argmax(axis=1))

    def test_empty_batch(self):
        net = make_net()
        with ParallelHostRunner(model=net, n_workers=2) as pool:
            assert pool(make_images(0)).shape == (0,)
            scores = pool.predict_scores(make_images(0))
            assert scores.shape[0] == 0

    def test_callable_mode_matches_contiguous_shards(self):
        def host(images):
            return np.asarray([int(img.sum() > 0) for img in images])

        x = make_images(23)
        with ParallelHostRunner(predict_fn=host, n_workers=3) as pool:
            np.testing.assert_array_equal(pool(x), host(x))

    def test_geometry_change_reallocates_rings(self):
        net = make_net()
        serial = net.compile_inference()
        with ParallelHostRunner(model=net, n_workers=2) as pool:
            small, big = make_images(4), make_images(64)
            np.testing.assert_array_equal(
                pool.predict_scores(small), serial.predict_scores(small)
            )
            np.testing.assert_array_equal(
                pool.predict_scores(big), serial.predict_scores(big)
            )

    def test_worker_stats_account_for_all_images(self):
        net = make_net()
        with ParallelHostRunner(model=net, n_workers=2) as pool:
            pool(make_images(40))
            assert sum(s["images"] for s in pool.worker_stats()) == 40


class TestProperties:
    @given(n=st.integers(0, 80))
    @settings(max_examples=12, deadline=None)
    def test_any_batch_size_matches_serial(self, shared_pool, n):
        net, serial, pool = shared_pool
        x = make_images(n, seed=n)
        np.testing.assert_array_equal(
            pool.predict_scores(x), serial.predict_scores(x)
        )


@pytest.fixture(scope="module")
def shared_pool():
    net = make_net()
    serial = net.compile_inference()
    with ParallelHostRunner(model=net, n_workers=3) as pool:
        yield net, serial, pool


class TestFaultContainment:
    def test_compute_error_is_contained_to_shard(self):
        def flaky(images):
            if float(images[0].max()) > 1e5:
                raise RuntimeError("boom")
            return np.zeros(len(images), dtype=np.int64)

        x = make_images(20)
        x[0, 0] = 1e6  # worker 0's shard carries the poison image
        with ParallelHostRunner(predict_fn=flaky, n_workers=2) as pool:
            report = pool.run_sharded(x)
            assert len(report.errors) == 1
            bad = report.errors[0]
            assert isinstance(bad.error, StageFailure) and bad.error.stage == "host"
            assert bad.start == 0  # only the poisoned shard failed
            ok = [o for o in report.outcomes if o.ok]
            assert ok and all(o.values is not None for o in ok)
            # worker survived its own exception: same pool, clean batch
            assert pool.run_sharded(make_images(20)).ok
            assert all(s["replacements"] == 0 for s in pool.worker_stats())

    def test_worker_death_mid_batch_fails_only_that_shard_and_heals(self):
        x = make_images(20)
        x[0, 0] = 1e6  # marker lands in worker 0's shard -> os._exit mid-batch
        with ParallelHostRunner(predict_fn=crashy_host, n_workers=2) as pool:
            pids = [s["pid"] for s in pool.worker_stats()]
            report = pool.run_sharded(x)
            assert len(report.errors) == 1 and report.errors[0].worker == 0
            assert isinstance(report.errors[0].error, StageFailure)
            assert report.outcomes[1].ok  # sibling shard still answered
            # crash-replace: fresh pid, and the next batch fully succeeds
            clean = pool.run_sharded(make_images(20))
            assert clean.ok
            stats = pool.worker_stats()
            assert stats[0]["replacements"] == 1
            assert stats[0]["pid"] != pids[0] and stats[0]["alive"]

    def test_strict_facade_raises_stage_failure(self):
        x = make_images(20)
        x[0, 0] = 1e6
        with ParallelHostRunner(predict_fn=crashy_host, n_workers=2) as pool:
            with pytest.raises(StageFailure):
                pool(x)
            np.testing.assert_array_equal(
                pool(make_images(4)), np.full(4, 7)
            )

    def test_kill_between_batches_heals_at_dispatch(self):
        def host(images):
            return np.zeros(len(images), dtype=np.int64)

        with ParallelHostRunner(predict_fn=host, n_workers=2) as pool:
            pool(make_images(8))
            os.kill(pool.worker_stats()[1]["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while pool.worker_stats()[1]["alive"] and time.monotonic() < deadline:
                time.sleep(0.01)
            # dead worker is replaced before dispatch: no shard is lost
            assert pool.run_sharded(make_images(8)).ok

    def test_ensure_healthy_replaces_dead_workers(self):
        def host(images):
            return np.zeros(len(images), dtype=np.int64)

        with ParallelHostRunner(predict_fn=host, n_workers=2) as pool:
            pool(make_images(4))
            assert pool.ping() == [True, True]
            os.kill(pool.worker_stats()[0]["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while pool.worker_stats()[0]["alive"] and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.ensure_healthy() == 1
            assert pool.ping() == [True, True]

    def test_closed_pool_rejects_work(self):
        net = make_net()
        pool = ParallelHostRunner(model=net, n_workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool(make_images(2))


class TestResize:
    def test_bit_identity_across_mid_stream_resize(self):
        """Growing/shrinking the pool between batches never changes answers.

        The autoscaler calls ``resize`` while traffic is in flight; shard
        boundaries are per-batch, so every pool size must reproduce the
        serial scores bit for bit.
        """
        net = make_net()
        x = make_images(37)
        serial = net.compile_inference().predict_scores(x)
        with ParallelHostRunner(model=net, n_workers=2) as pool:
            np.testing.assert_array_equal(pool.predict_scores(x), serial)
            assert pool.resize(4) == 4 and pool.n_workers == 4
            np.testing.assert_array_equal(pool.predict_scores(x), serial)
            assert pool.resize(1) == 1 and pool.n_workers == 1
            np.testing.assert_array_equal(pool.predict_scores(x), serial)
            assert pool.ping() == [True]

    def test_resize_is_idempotent_and_validated(self):
        def host(images):
            return np.zeros(len(images), dtype=np.int64)

        with ParallelHostRunner(predict_fn=host, n_workers=2) as pool:
            assert pool.resize(2) == 2  # no-op keeps the same workers
            with pytest.raises(ValueError):
                pool.resize(0)
            assert pool.n_workers == 2
        with pytest.raises(RuntimeError, match="closed"):
            pool.resize(3)

    def test_resize_survives_interleaved_worker_crash(self):
        """A shard-killing batch between resizes leaves a healed, correct pool."""
        x = make_images(20)
        x[0, 0] = 1e6  # poison image: worker 0 os._exits mid-batch
        with ParallelHostRunner(predict_fn=crashy_host, n_workers=2) as pool:
            pool.resize(3)
            report = pool.run_sharded(x)
            assert len(report.errors) == 1
            pool.resize(2)
            np.testing.assert_array_equal(pool(make_images(6)), np.full(6, 7))
            assert pool.n_workers == 2


class TestConfig:
    def test_resolve_host_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOST_WORKERS", raising=False)
        assert resolve_host_workers(None) is None
        assert resolve_host_workers(3) == 3
        monkeypatch.setenv("REPRO_HOST_WORKERS", "2")
        assert resolve_host_workers(None) == 2
        monkeypatch.setenv("REPRO_HOST_WORKERS", "0")
        assert resolve_host_workers(None) is None

    def test_requires_exactly_one_target(self):
        with pytest.raises(ValueError):
            ParallelHostRunner()
        with pytest.raises(ValueError):
            ParallelHostRunner(model=make_net(), predict_fn=lambda x: x)
