"""FLOP analysis and the calibrated ARM host performance model."""

import numpy as np
import pytest

from repro.host import (
    ARM_CORTEX_A9_ZC702,
    ARM_CORTEX_A53_NEON,
    CPUModel,
    HostPerformanceModel,
    analyze_network,
    calibrate_to_paper,
    paper_calibrated_model,
)
from repro.models import build_model_a, build_model_b, build_model_c
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential


class TestCPUModel:
    def test_peak_flops(self):
        assert ARM_CORTEX_A9_ZC702.peak_flops == pytest.approx(2 * 666.7e6 * 2.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            CPUModel("x", cores=0, clock_hz=1e9, flops_per_cycle_per_core=2)

    def test_armv8_is_faster(self):
        assert ARM_CORTEX_A53_NEON.peak_flops > ARM_CORTEX_A9_ZC702.peak_flops


class TestAnalyzeNetwork:
    def test_conv_flops_formula(self):
        net = Sequential([Conv2D(3, 8, 3, pad=1, use_bias=False)])
        cost = analyze_network(net, (3, 8, 8))
        # 2 * K*K*ID * OH*OW * OD
        assert cost.total_flops == pytest.approx(2 * 27 * 64 * 8)
        assert cost.layers[0].is_gemm

    def test_conv_bias_adds(self):
        no_bias = analyze_network(Sequential([Conv2D(3, 8, 3, pad=1, use_bias=False)]), (3, 8, 8))
        bias = analyze_network(Sequential([Conv2D(3, 8, 3, pad=1)]), (3, 8, 8))
        assert bias.total_flops == no_bias.total_flops + 64 * 8

    def test_dense_flops(self):
        cost = analyze_network(Sequential([Flatten(), Dense(48, 10)]), (3, 4, 4))
        assert cost.total_flops == pytest.approx(2 * 48 * 10 + 10)

    def test_elementwise_layers_not_gemm(self):
        net = Sequential([Conv2D(3, 4, 3, pad=1), ReLU(), MaxPool2D(2)])
        cost = analyze_network(net, (3, 8, 8))
        kinds = [l.kind for l in cost.layers]
        assert kinds == ["gemm", "elementwise", "elementwise"]
        assert cost.gemm_flops < cost.total_flops

    def test_model_magnitudes(self):
        # Full-width models: A ~20M, B ~400M, C ~550M FLOPs per image.
        fa = analyze_network(build_model_a(scale=1.0)).total_flops
        fb = analyze_network(build_model_b(scale=1.0)).total_flops
        fc = analyze_network(build_model_c(scale=1.0)).total_flops
        assert 15e6 < fa < 30e6
        assert 300e6 < fb < 500e6
        assert 450e6 < fc < 650e6


class TestHostPerformanceModel:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HostPerformanceModel(ARM_CORTEX_A9_ZC702, eff_max=0.0, half_sat=1e6)
        with pytest.raises(ValueError):
            HostPerformanceModel(ARM_CORTEX_A9_ZC702, eff_max=0.5, half_sat=-1)

    def test_rate_inverse_of_seconds(self):
        model = HostPerformanceModel(ARM_CORTEX_A9_ZC702, 0.5, 1e6)
        net = build_model_a(scale=1.0)
        assert model.images_per_second(net) == pytest.approx(
            1.0 / model.seconds_per_image(net)
        )

    def test_larger_gemms_run_more_efficiently(self):
        model = HostPerformanceModel(ARM_CORTEX_A9_ZC702, 0.7, 5e6)
        from repro.host import LayerCost

        small = LayerCost("s", "gemm", 1e6, gemm_volume=5e5, output_elements=1)
        big = LayerCost("b", "gemm", 1e6, gemm_volume=5e8, output_elements=1)
        assert model.layer_seconds(big) < model.layer_seconds(small)

    def test_zero_flop_layers_free(self):
        from repro.host import LayerCost

        model = HostPerformanceModel(ARM_CORTEX_A9_ZC702, 0.7, 5e6)
        assert model.layer_seconds(LayerCost("d", "none", 0.0, 0.0, 10)) == 0.0


class TestPaperCalibration:
    @pytest.fixture(scope="class")
    def model(self):
        return paper_calibrated_model()

    def test_anchors_exact(self, model):
        # Table IV anchors: Model A 29.68 img/s, Model B 3.63 img/s.
        rate_a = model.images_per_second(analyze_network(build_model_a(scale=1.0)))
        rate_b = model.images_per_second(analyze_network(build_model_b(scale=1.0)))
        assert rate_a == pytest.approx(29.68, rel=1e-6)
        assert rate_b == pytest.approx(3.63, rel=1e-6)

    def test_model_c_prediction_near_paper(self, model):
        # Out-of-sample prediction; paper measured 3.09 img/s.
        rate_c = model.images_per_second(analyze_network(build_model_c(scale=1.0)))
        assert rate_c == pytest.approx(3.09, rel=0.15)

    def test_rate_ordering_matches_table4(self, model):
        rates = [
            model.images_per_second(analyze_network(b(scale=1.0)))
            for b in (build_model_a, build_model_b, build_model_c)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_calibrated_efficiency_physical(self, model):
        assert 0.1 < model.eff_max < 1.0
        assert model.half_sat > 0

    def test_armv8_improves_rates(self):
        # The paper's future-work claim: ARMv8 + NEON raises host rates.
        a9 = paper_calibrated_model()
        a53 = HostPerformanceModel(ARM_CORTEX_A53_NEON, a9.eff_max, a9.half_sat)
        cost = analyze_network(build_model_a(scale=1.0))
        assert a53.images_per_second(cost) > a9.images_per_second(cost)

    def test_inconsistent_anchors_rejected(self):
        cost_a = analyze_network(build_model_a(scale=1.0))
        cost_b = analyze_network(build_model_b(scale=1.0))
        with pytest.raises(ValueError):
            # Model B faster than Model A is impossible under the model.
            calibrate_to_paper(cost_a, cost_b, rate_a=3.0, rate_b=30.0)
