"""Dataset containers and the synthetic CIFAR-10 generator."""

import numpy as np
import pytest

from repro.data import (
    CLASS_NAMES,
    Dataset,
    SyntheticConfig,
    build_score_dataset,
    normalize_to_pm1,
    render_class_image,
    synthetic_cifar10,
)


class TestSyntheticConfig:
    def test_defaults_valid(self):
        SyntheticConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"image_size": 4},
            {"color_overlap": 1.5},
            {"noise": -0.1},
            {"jitter": -0.1},
            {"occluder_prob": 2.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticConfig(**kwargs)


class TestRenderClassImage:
    def test_all_classes_render(self):
        rng = np.random.default_rng(0)
        for label in range(10):
            img = render_class_image(label, rng)
            assert img.shape == (3, 32, 32)
            assert img.min() >= 0.0 and img.max() <= 1.0

    def test_bad_label_raises(self):
        with pytest.raises(ValueError):
            render_class_image(10, np.random.default_rng(0))

    def test_custom_size(self):
        cfg = SyntheticConfig(image_size=16)
        img = render_class_image(0, np.random.default_rng(0), cfg)
        assert img.shape == (3, 16, 16)

    def test_images_vary_between_draws(self):
        rng = np.random.default_rng(0)
        a = render_class_image(3, rng)
        b = render_class_image(3, rng)
        assert not np.allclose(a, b)

    def test_classes_differ_on_average(self):
        # Mean image per class should differ (classes carry signal).
        cfg = SyntheticConfig(noise=0.0, occluder_prob=0.0)
        rng = np.random.default_rng(1)
        means = []
        for label in (0, 8):  # airplane (sky) vs ship (sea)
            imgs = [render_class_image(label, rng, cfg) for _ in range(20)]
            means.append(np.mean(imgs, axis=0))
        assert np.abs(means[0] - means[1]).mean() > 0.02


class TestDataset:
    def test_length_and_distribution(self):
        splits = synthetic_cifar10(num_train=100, num_test=50, seed=0)
        assert len(splits.train) == 100
        assert len(splits.test) == 50
        assert splits.train.class_distribution().sum() == 100
        # Balanced within 1 sample.
        dist = splits.train.class_distribution()
        assert dist.max() - dist.min() <= 1

    def test_deterministic_by_seed(self):
        a = synthetic_cifar10(num_train=20, num_test=10, seed=7)
        b = synthetic_cifar10(num_train=20, num_test=10, seed=7)
        np.testing.assert_allclose(a.train.images, b.train.images)
        np.testing.assert_array_equal(a.train.labels, b.train.labels)

    def test_different_seeds_differ(self):
        a = synthetic_cifar10(num_train=20, num_test=10, seed=1)
        b = synthetic_cifar10(num_train=20, num_test=10, seed=2)
        assert not np.allclose(a.train.images, b.train.images)

    def test_subset(self):
        splits = synthetic_cifar10(num_train=30, num_test=10, seed=0)
        sub = splits.train.subset(np.array([0, 5, 7]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, splits.train.labels[[0, 5, 7]])

    def test_batches_cover_all(self):
        splits = synthetic_cifar10(num_train=25, num_test=10, seed=0)
        seen = 0
        for xb, yb in splits.train.batches(8):
            seen += xb.shape[0]
            assert xb.shape[0] == yb.shape[0]
        assert seen == 25

    def test_batches_shuffled_with_rng(self):
        splits = synthetic_cifar10(num_train=40, num_test=10, seed=0)
        first_plain = next(iter(splits.train.batches(40)))[1]
        first_shuffled = next(iter(splits.train.batches(40, rng=np.random.default_rng(3))))[1]
        assert not np.array_equal(first_plain, first_shuffled)
        np.testing.assert_array_equal(np.sort(first_plain), np.sort(first_shuffled))

    def test_invalid_batch_size(self):
        splits = synthetic_cifar10(num_train=10, num_test=10, seed=0)
        with pytest.raises(ValueError):
            list(splits.train.batches(0))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 3, 8, 8)), np.zeros(2, dtype=int))

    def test_invalid_split_sizes(self):
        with pytest.raises(ValueError):
            synthetic_cifar10(num_train=0, num_test=10)

    def test_class_names(self):
        assert len(CLASS_NAMES) == 10
        assert CLASS_NAMES[0] == "airplane" and CLASS_NAMES[9] == "truck"


class TestNormalize:
    def test_pm1_range(self):
        x = np.array([0.0, 0.5, 1.0])
        np.testing.assert_allclose(normalize_to_pm1(x), [-1.0, 0.0, 1.0])


class TestScoreDataset:
    def test_build(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        labels = np.array([0, 1, 1])
        ds = build_score_dataset(scores, labels)
        np.testing.assert_array_equal(ds.correct, [1, 1, 0])
        np.testing.assert_array_equal(ds.predicted, [0, 1, 0])
        assert ds.classifier_accuracy == pytest.approx(2 / 3)
        assert len(ds) == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            build_score_dataset(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            build_score_dataset(np.zeros((5, 10)), np.zeros(4, dtype=int))

    def test_empty_accuracy(self):
        ds = build_score_dataset(np.zeros((0, 10)), np.zeros(0, dtype=int))
        assert ds.classifier_accuracy == 0.0
