"""Geometric primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.shapes import box_mask, ellipse_mask, grid, line_mask, soft_edge, triangle_mask


class TestGrid:
    def test_range_and_shape(self):
        yy, xx = grid(16)
        assert yy.shape == xx.shape == (16, 16)
        assert yy.min() > 0 and yy.max() < 1

    def test_pixel_centers(self):
        yy, xx = grid(4)
        np.testing.assert_allclose(xx[0], [0.125, 0.375, 0.625, 0.875])


class TestMasks:
    def test_masks_bounded(self):
        for mask in (
            ellipse_mask(32, 0.5, 0.5, 0.2, 0.3, 0.4),
            box_mask(32, 0.5, 0.5, 0.2, 0.1, 0.2),
            triangle_mask(32, (0.2, 0.2), (0.8, 0.3), (0.5, 0.9)),
            line_mask(32, 0.1, 0.1, 0.9, 0.9, 0.05),
        ):
            assert mask.shape == (32, 32)
            assert mask.min() >= 0.0 and mask.max() <= 1.0

    def test_ellipse_center_inside_edges_outside(self):
        mask = ellipse_mask(32, 0.5, 0.5, 0.2, 0.2)
        assert mask[16, 16] > 0.9
        assert mask[0, 0] < 0.1

    def test_ellipse_rotation_swaps_axes(self):
        wide = ellipse_mask(64, 0.5, 0.5, 0.4, 0.1)
        rotated = ellipse_mask(64, 0.5, 0.5, 0.4, 0.1, angle=np.pi / 2)
        # 90-degree rotation about the center transposes the mask.
        np.testing.assert_allclose(rotated, wide.T, atol=0.05)

    def test_box_dimensions(self):
        mask = box_mask(64, 0.5, 0.5, 0.25, 0.1)
        area = mask.sum() / (64 * 64)
        assert area == pytest.approx(0.5 * 0.2, rel=0.15)

    def test_triangle_winding_invariant(self):
        a = triangle_mask(32, (0.2, 0.2), (0.8, 0.3), (0.5, 0.9))
        b = triangle_mask(32, (0.5, 0.9), (0.8, 0.3), (0.2, 0.2))
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_line_endpoints_covered(self):
        mask = line_mask(32, 0.2, 0.5, 0.8, 0.5, 0.05)
        assert mask[16, 8] > 0.5
        assert mask[16, 25] > 0.5
        assert mask[2, 2] < 0.05

    def test_soft_edge_monotone(self):
        d = np.linspace(-1, 1, 11)
        e = soft_edge(d)
        assert (np.diff(e) > 0).all()
        assert e[5] == pytest.approx(0.5)

    @given(
        cx=st.floats(0.2, 0.8),
        cy=st.floats(0.2, 0.8),
        r=st.floats(0.05, 0.3),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_circle_center_is_peak(self, cx, cy, r):
        mask = ellipse_mask(32, cx, cy, r, r)
        py, px = np.unravel_index(mask.argmax(), mask.shape)
        assert abs((px + 0.5) / 32 - cx) <= r
        assert abs((py + 0.5) / 32 - cy) <= r
