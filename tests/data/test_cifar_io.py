"""Real CIFAR-10 binary-format loader (tested against fixture files)."""

import numpy as np
import pytest

from repro.data.cifar_io import RECORD_BYTES, load_cifar10_binary, read_cifar_batch


def write_batch(path, labels, rng):
    """Write a synthetic file in the exact CIFAR-10 binary layout."""
    n = len(labels)
    records = np.empty((n, RECORD_BYTES), dtype=np.uint8)
    records[:, 0] = labels
    records[:, 1:] = rng.integers(0, 256, size=(n, RECORD_BYTES - 1), dtype=np.uint8)
    records.tofile(str(path))
    return records


@pytest.fixture()
def cifar_dir(tmp_path):
    rng = np.random.default_rng(0)
    for i in range(1, 6):
        write_batch(tmp_path / f"data_batch_{i}.bin", rng.integers(0, 10, size=20), rng)
    write_batch(tmp_path / "test_batch.bin", rng.integers(0, 10, size=10), rng)
    return tmp_path


class TestReadBatch:
    def test_shapes_and_range(self, tmp_path):
        rng = np.random.default_rng(1)
        labels = np.array([0, 5, 9])
        write_batch(tmp_path / "b.bin", labels, rng)
        images, got_labels = read_cifar_batch(tmp_path / "b.bin")
        assert images.shape == (3, 3, 32, 32)
        assert images.min() >= 0.0 and images.max() <= 1.0
        np.testing.assert_array_equal(got_labels, labels)

    def test_pixel_layout_row_major_planes(self, tmp_path):
        # First data byte is the R plane's top-left pixel.
        record = np.zeros(RECORD_BYTES, dtype=np.uint8)
        record[0] = 2          # label
        record[1] = 255        # R[0, 0]
        record[1 + 1024] = 128  # G[0, 0]
        record.tofile(str(tmp_path / "one.bin"))
        images, labels = read_cifar_batch(tmp_path / "one.bin")
        assert labels[0] == 2
        assert images[0, 0, 0, 0] == pytest.approx(1.0)
        assert images[0, 1, 0, 0] == pytest.approx(128 / 255)
        assert images[0, 2, 0, 0] == 0.0

    def test_truncated_file_rejected(self, tmp_path):
        np.zeros(RECORD_BYTES - 1, dtype=np.uint8).tofile(str(tmp_path / "bad.bin"))
        with pytest.raises(ValueError):
            read_cifar_batch(tmp_path / "bad.bin")

    def test_non_cifar_labels_rejected(self, tmp_path):
        record = np.full(RECORD_BYTES, 200, dtype=np.uint8)
        record.tofile(str(tmp_path / "bad.bin"))
        with pytest.raises(ValueError):
            read_cifar_batch(tmp_path / "bad.bin")


class TestLoadDirectory:
    def test_loads_all_batches(self, cifar_dir):
        splits = load_cifar10_binary(cifar_dir)
        assert len(splits.train) == 100  # 5 x 20
        assert len(splits.test) == 10
        assert splits.train.class_names[0] == "airplane"

    def test_truncation(self, cifar_dir):
        splits = load_cifar10_binary(cifar_dir, num_train=30, num_test=5)
        assert len(splits.train) == 30
        assert len(splits.test) == 5

    def test_missing_file_reported(self, cifar_dir):
        (cifar_dir / "data_batch_3.bin").unlink()
        with pytest.raises(FileNotFoundError, match="data_batch_3"):
            load_cifar10_binary(cifar_dir)
