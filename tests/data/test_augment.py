"""Data augmentation transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.augment import (
    Augmenter,
    random_brightness,
    random_contrast,
    random_horizontal_flip,
    random_shift,
)


def batch(seed=0, n=8):
    return np.random.default_rng(seed).random((n, 3, 8, 8))


class TestFlip:
    def test_probability_one_flips_all(self):
        x = batch()
        out = random_horizontal_flip(x, np.random.default_rng(0), probability=1.0)
        np.testing.assert_allclose(out, x[:, :, :, ::-1])

    def test_probability_zero_identity(self):
        x = batch()
        out = random_horizontal_flip(x, np.random.default_rng(0), probability=0.0)
        np.testing.assert_allclose(out, x)

    def test_input_untouched(self):
        x = batch()
        copy = x.copy()
        random_horizontal_flip(x, np.random.default_rng(0))
        np.testing.assert_allclose(x, copy)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            random_horizontal_flip(batch(), np.random.default_rng(0), probability=1.5)


class TestShift:
    def test_zero_shift_identity(self):
        x = batch()
        np.testing.assert_allclose(random_shift(x, np.random.default_rng(0), 0), x)

    def test_shape_preserved(self):
        x = batch()
        assert random_shift(x, np.random.default_rng(0), 3).shape == x.shape

    def test_content_moves(self):
        x = np.zeros((1, 1, 8, 8))
        x[0, 0, 4, 4] = 1.0
        shifted = random_shift(x, np.random.default_rng(3), 2)
        assert shifted.sum() >= 1.0  # peak survives (edge padding)

    def test_invalid(self):
        with pytest.raises(ValueError):
            random_shift(batch(), np.random.default_rng(0), -1)


class TestPhotometric:
    def test_brightness_range(self):
        out = random_brightness(batch(), np.random.default_rng(0), 0.5)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_brightness_zero_delta(self):
        x = batch()
        np.testing.assert_allclose(random_brightness(x, np.random.default_rng(0), 0.0), x)

    def test_contrast_preserves_mean_approximately(self):
        x = batch()
        out = random_contrast(x, np.random.default_rng(0), 0.25)
        np.testing.assert_allclose(
            out.mean(axis=(2, 3)), x.mean(axis=(2, 3)), atol=0.05
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            random_brightness(batch(), np.random.default_rng(0), -0.1)
        with pytest.raises(ValueError):
            random_contrast(batch(), np.random.default_rng(0), -0.1)


class TestAugmenter:
    def test_pipeline_runs(self):
        aug = Augmenter(seed=0)
        x = batch()
        out = aug(x)
        assert out.shape == x.shape
        assert not np.allclose(out, x)

    def test_deterministic_given_seed(self):
        x = batch()
        np.testing.assert_allclose(Augmenter(seed=5)(x), Augmenter(seed=5)(x))

    def test_custom_transforms(self):
        aug = Augmenter(transforms=[lambda imgs, rng: imgs * 0.5], seed=0)
        np.testing.assert_allclose(aug(batch()), batch() * 0.5)

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError):
            Augmenter()(np.zeros((3, 8, 8)))

    @given(st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_property_output_in_unit_range(self, seed):
        x = batch(seed)
        out = Augmenter(seed=seed)(x)
        assert out.min() >= 0.0 and out.max() <= 1.0
