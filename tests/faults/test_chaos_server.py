"""Seeded chaos scenarios against the hardened CascadeServer.

Each scenario builds a :class:`repro.faults.FaultPlan`, injects it into
the conftest stack (scores + oracle host), and asserts the server's
robustness contract: no stranded futures, correct per-request error
results, books that balance (``accepted + rerun + degraded + failed ==
submitted``), and accuracy never below BNN-only while degraded.
"""

import time

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, wrap_stack
from repro.serve import (
    CascadeServer,
    CircuitBreaker,
    DeadlineExceeded,
    RetryPolicy,
    StageFailure,
)


def make_server(bnn_fn, dmu, host_fn, **kwargs):
    defaults = dict(batch_delay_s=0.001, host_queue_capacity=256)
    defaults.update(kwargs)
    return CascadeServer(bnn_fn, dmu, host_fn, **defaults)


def assert_books_balance(snapshot, submitted):
    assert snapshot.submitted == submitted
    assert snapshot.accepted + snapshot.rerun + snapshot.degraded == snapshot.completed
    assert snapshot.completed + snapshot.failed == submitted
    assert snapshot.in_flight == 0


def _run_rounds(server, images, round_size, settle):
    """Submit in awaited rounds of *round_size* (one BNN batch per round)."""
    results, errors = [], []
    for start in range(0, len(images), round_size):
        futures = [server.submit(img) for img in images[start:start + round_size]]
        r, e = settle(futures)
        results.extend(r)
        errors.extend(e)
    return results, errors


class TestHostCrashLoop:
    """Acceptance scenario: host raising on ~30% of calls."""

    PLAN = FaultPlan(
        seed=2018,
        specs=(FaultSpec(stage="host", kind="exception", probability=0.3),),
    )

    def _run(self, chaos, images):
        bnn_fn, dmu, host_fn, injector = wrap_stack(
            self.PLAN, chaos.bnn_scores_fn, chaos.make_dmu(), chaos.host_predict_fn
        )
        with make_server(
            bnn_fn, dmu, host_fn,
            max_batch_size=8, host_batch_size=1,
            retry=RetryPolicy(max_retries=1, base_delay_s=0.001, max_delay_s=0.004),
            breaker=None,  # keep every flagged request on the host path
        ) as server:
            results, errors = _run_rounds(server, images, 8, chaos.settle)
            snapshot = server.snapshot()
        return results, errors, snapshot, injector

    def test_no_stranded_futures_and_99pct_answered(self, chaos):
        images = chaos.make_images(200, seed=1)
        results, errors, snapshot, injector = self._run(chaos, images)
        assert len(results) + len(errors) == len(images)  # all terminal
        assert not errors  # host faults degrade, never error
        assert len(results) >= 0.99 * len(images)
        assert_books_balance(snapshot, len(images))
        assert snapshot.faults.get("host", 0) == sum(
            1 for e in injector.log.for_stage("host") if e.kind == "exception"
        )
        assert snapshot.faults.get("host", 0) > 0, "plan must actually fire"

    def test_same_seed_reproduces_identical_fault_sequences(self, chaos):
        images = chaos.make_images(200, seed=1)
        _, _, snap_a, injector_a = self._run(chaos, images)
        _, _, snap_b, injector_b = self._run(chaos, images)
        for stage in ("bnn", "dmu", "host"):
            assert injector_a.log.for_stage(stage) == injector_b.log.for_stage(stage)
        assert snap_a.faults == snap_b.faults
        assert (snap_a.accepted, snap_a.rerun, snap_a.degraded, snap_a.failed) == (
            snap_b.accepted, snap_b.rerun, snap_b.degraded, snap_b.failed
        )

    def test_degraded_answers_are_the_bnn_answers(self, chaos):
        images = chaos.make_images(200, seed=1)
        results, _, snapshot, _ = self._run(chaos, images)
        degraded = [r for r in results if r.source == "degraded"]
        for r in degraded:
            assert r.prediction == r.bnn_prediction
        assert snapshot.degraded == len(degraded)


class TestBreakerDegradedMode:
    def test_host_down_trips_breaker_and_serves_bnn_only(self, chaos):
        plan = FaultPlan(
            seed=5, specs=(FaultSpec(stage="host", kind="exception", probability=1.0),)
        )
        bnn_fn, dmu, host_fn, _ = wrap_stack(
            plan, chaos.bnn_scores_fn, chaos.make_dmu(), chaos.host_predict_fn
        )
        images = chaos.make_images(160, seed=2)
        with make_server(
            bnn_fn, dmu, host_fn,
            max_batch_size=8, host_batch_size=1,
            retry=RetryPolicy(max_retries=0),
            breaker=CircuitBreaker(failure_threshold=3, cooldown_s=60.0),
        ) as server:
            results, errors = _run_rounds(server, images, 8, chaos.settle)
            snapshot = server.snapshot()
            degraded_mode = server.degraded_mode
        assert not errors
        assert degraded_mode
        assert snapshot.breaker_trips >= 1
        assert snapshot.breaker_open_seconds > 0
        assert snapshot.rerun == 0  # host never succeeded
        assert snapshot.degraded > 0
        assert_books_balance(snapshot, len(images))
        # Eq. (2) floor: with the oracle host unavailable, every answer is
        # the BNN answer, so accuracy equals (never drops below) BNN-only.
        truth = chaos.true_labels(images)
        bnn_only = chaos.bnn_predictions(images)
        assert len(results) == len(images)
        predictions = np.array([r.prediction for r in results])
        # classify order == submit order per round, so compare sets per image
        accuracy = float(np.mean(predictions == truth))
        bnn_accuracy = float(np.mean(bnn_only == truth))
        assert accuracy == pytest.approx(bnn_accuracy)

    def test_breaker_recovers_after_cooldown(self, chaos):
        # The first 2 host calls fail; afterwards the host is healthy, so a
        # single half-open probe after the cooldown closes the breaker again.
        plan = FaultPlan(
            seed=6,
            specs=(
                FaultSpec(stage="host", kind="exception", probability=1.0, max_faults=2),
            ),
        )
        bnn_fn, dmu, host_fn, _ = wrap_stack(
            plan, chaos.bnn_scores_fn, chaos.make_dmu(), chaos.host_predict_fn
        )
        images = chaos.make_images(320, seed=3)
        with make_server(
            bnn_fn, dmu, host_fn,
            max_batch_size=8, host_batch_size=1,
            retry=RetryPolicy(max_retries=0),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=0.05),
        ) as server:
            results, errors = _run_rounds(server, images[:160], 8, chaos.settle)
            time.sleep(0.06)  # guarantee the cooldown elapses before the rest
            r2, e2 = _run_rounds(server, images[160:], 8, chaos.settle)
            results.extend(r2)
            errors.extend(e2)
            snapshot = server.snapshot()
            final_state = server._breaker.state
        assert not errors
        assert snapshot.breaker_trips >= 1
        assert final_state == CircuitBreaker.CLOSED
        assert snapshot.rerun > 0, "host answers must resume after recovery"
        assert_books_balance(snapshot, len(images))


class TestDmuFault:
    def test_dmu_exception_degrades_to_bnn_argmax(self, chaos):
        plan = FaultPlan(
            seed=1, specs=(FaultSpec(stage="dmu", kind="exception", probability=1.0),)
        )
        bnn_fn, dmu, host_fn, injector = wrap_stack(
            plan, chaos.bnn_scores_fn, chaos.make_dmu(), chaos.host_predict_fn
        )
        images = chaos.make_images(64, seed=4)
        with make_server(bnn_fn, dmu, host_fn, max_batch_size=8) as server:
            results, errors = _run_rounds(server, images, 8, chaos.settle)
            snapshot = server.snapshot()
        assert not errors
        assert {r.source for r in results} == {"degraded"}
        expected = chaos.bnn_predictions(images)
        assert [r.prediction for r in results] == list(expected)
        assert snapshot.faults.get("dmu", 0) == len(injector.log.for_stage("dmu"))
        assert snapshot.accepted == snapshot.rerun == 0
        assert_books_balance(snapshot, len(images))


class TestBnnFaults:
    def test_bnn_exception_fails_only_the_affected_batch(self, chaos):
        # Exactly one BNN batch raises (the second).
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(stage="bnn", kind="exception", probability=1.0,
                          start_call=1, max_faults=1),
            ),
        )
        bnn_fn, dmu, host_fn, _ = wrap_stack(
            plan, chaos.bnn_scores_fn, chaos.make_dmu(), chaos.host_predict_fn
        )
        images = chaos.make_images(32, seed=5)
        with make_server(bnn_fn, dmu, host_fn, max_batch_size=8) as server:
            all_results, all_errors = [], []
            for start in range(0, 32, 8):
                futures = [server.submit(img) for img in images[start:start + 8]]
                r, e = chaos.settle(futures)
                all_results.extend(r)
                all_errors.extend(e)
            snapshot = server.snapshot()
        assert len(all_errors) == 8, "exactly one batch of 8 fails"
        assert all(isinstance(e, StageFailure) and e.stage == "bnn" for e in all_errors)
        assert len(all_results) == 24
        assert snapshot.failed == 8
        assert snapshot.faults.get("bnn", 0) == 1
        assert_books_balance(snapshot, 32)

    def test_bnn_latency_spike_slows_but_answers_everything(self, chaos):
        plan = FaultPlan(
            seed=8,
            specs=(
                FaultSpec(stage="bnn", kind="latency", probability=0.5, delay_s=0.01),
            ),
        )
        bnn_fn, dmu, host_fn, injector = wrap_stack(
            plan, chaos.bnn_scores_fn, chaos.make_dmu(), chaos.host_predict_fn
        )
        images = chaos.make_images(80, seed=6)
        with make_server(bnn_fn, dmu, host_fn, max_batch_size=8) as server:
            results, errors = _run_rounds(server, images, 8, chaos.settle)
            snapshot = server.snapshot()
        assert not errors
        assert len(results) == len(images)
        assert injector.log.counts()["bnn"] > 0, "spikes must actually fire"
        assert snapshot.faults == {}  # latency is not an exception
        assert_books_balance(snapshot, len(images))


class TestHangPlusDeadline:
    def test_host_hang_degrades_queued_requests_past_deadline(self, chaos):
        plan = FaultPlan(
            seed=2,
            specs=(
                FaultSpec(stage="host", kind="hang", probability=1.0,
                          delay_s=0.4, max_faults=1),
            ),
        )
        bnn_fn, dmu, host_fn, _ = wrap_stack(
            plan, chaos.bnn_scores_fn, chaos.make_dmu(), chaos.host_predict_fn
        )
        # Flag everything to the host (threshold 1.0) so the hang matters.
        images = chaos.make_images(24, seed=7)
        with make_server(
            bnn_fn, dmu, host_fn,
            controller=1.0, max_batch_size=24, host_batch_size=1,
            deadline_s=0.15,
        ) as server:
            futures = [server.submit(img) for img in images]
            results, errors = chaos.settle(futures)
            snapshot = server.snapshot()
        assert not errors, "BNN answers exist, so lateness degrades, never errors"
        assert len(results) == len(images)
        assert snapshot.deadline_missed > 0
        degraded = [r for r in results if r.source == "degraded"]
        assert degraded
        for r in degraded:
            assert r.prediction == r.bnn_prediction
        assert_books_balance(snapshot, len(images))

    def test_bnn_hang_fails_waiting_batches_with_deadline_exceeded(self, chaos):
        plan = FaultPlan(
            seed=3,
            specs=(
                FaultSpec(stage="bnn", kind="hang", probability=1.0,
                          delay_s=0.4, max_faults=1),
            ),
        )
        bnn_fn, dmu, host_fn, _ = wrap_stack(
            plan, chaos.bnn_scores_fn, chaos.make_dmu(), chaos.host_predict_fn
        )
        images = chaos.make_images(32, seed=8)
        with make_server(
            bnn_fn, dmu, host_fn,
            max_batch_size=8, bnn_queue_capacity=8, deadline_s=0.1,
        ) as server:
            futures = [server.submit(img) for img in images]
            results, errors = chaos.settle(futures)
            snapshot = server.snapshot()
        assert len(results) + len(errors) == len(images)
        assert errors, "batches queued behind the hang must miss the deadline"
        assert all(isinstance(e, DeadlineExceeded) for e in errors)
        assert snapshot.deadline_missed >= len(errors)
        assert_books_balance(snapshot, len(images))


class TestCorruptFaults:
    def test_corrupt_host_output_still_terminates_cleanly(self, chaos):
        plan = FaultPlan(
            seed=4,
            specs=(FaultSpec(stage="host", kind="corrupt", probability=0.5),),
        )
        bnn_fn, dmu, host_fn, injector = wrap_stack(
            plan, chaos.bnn_scores_fn, chaos.make_dmu(), chaos.host_predict_fn
        )
        images = chaos.make_images(80, seed=9)
        with make_server(
            bnn_fn, dmu, host_fn, controller=1.0, max_batch_size=8, host_batch_size=4,
        ) as server:
            results, errors = _run_rounds(server, images, 8, chaos.settle)
            snapshot = server.snapshot()
        assert not errors
        assert len(results) == len(images)
        assert injector.log.counts()["host"] > 0
        assert_books_balance(snapshot, len(images))
