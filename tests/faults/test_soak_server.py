"""Slow soak test: sustained mixed-fault load against a live server.

Marked ``slow`` — excluded from the default run (see ``pyproject.toml``),
executed by the dedicated CI chaos job.  Duration is tunable via
``REPRO_SOAK_SECONDS`` (default 30 s).
"""

import os
import threading
import time

import pytest

from repro.faults import FaultPlan, FaultSpec, wrap_stack
from repro.serve import CascadeServer, CircuitBreaker, RetryPolicy

SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "30"))

MIXED_PLAN = FaultPlan(
    seed=424242,
    specs=(
        FaultSpec(stage="host", kind="exception", probability=0.15),
        FaultSpec(stage="host", kind="latency", probability=0.10, delay_s=0.005),
        FaultSpec(stage="host", kind="corrupt", probability=0.05),
        FaultSpec(stage="dmu", kind="exception", probability=0.02),
        FaultSpec(stage="bnn", kind="latency", probability=0.05, delay_s=0.002),
        FaultSpec(stage="bnn", kind="exception", probability=0.01),
    ),
)


@pytest.mark.slow
def test_soak_mixed_faults(chaos):
    threads_before = set(threading.enumerate())
    images = chaos.make_images(256, seed=11)
    bnn_fn, dmu, host_fn, injector = wrap_stack(
        MIXED_PLAN, chaos.bnn_scores_fn, chaos.make_dmu(), chaos.host_predict_fn
    )
    queue_capacity = 512
    server = CascadeServer(
        bnn_fn, dmu, host_fn,
        batch_delay_s=0.001,
        max_batch_size=16,
        host_batch_size=4,
        bnn_queue_capacity=queue_capacity,
        host_queue_capacity=queue_capacity,
        num_host_workers=2,
        deadline_s=5.0,
        retry=RetryPolicy(max_retries=2, base_delay_s=0.001, max_delay_s=0.01),
        breaker=CircuitBreaker(failure_threshold=8, cooldown_s=0.1),
    )

    futures = []
    deadline = time.monotonic() + SOAK_SECONDS
    i = 0
    try:
        while time.monotonic() < deadline:
            futures.append(server.submit(images[i % len(images)]))
            i += 1
            if i % 64 == 0:
                time.sleep(0.002)  # open-loop pacing; keeps queues bounded
        # Server must still be alive at the end of the soak window.
        assert not server._closed
        results, errors = chaos.settle(futures, timeout=60.0)
    finally:
        server.close(timeout=30.0)

    snapshot = server.snapshot()
    submitted = len(futures)
    assert submitted > 0

    # Every request reached exactly one terminal state; books balance.
    assert len(results) + len(errors) == submitted
    assert snapshot.submitted == submitted
    assert snapshot.accepted + snapshot.rerun + snapshot.degraded == snapshot.completed
    assert snapshot.completed + snapshot.failed == submitted
    assert snapshot.in_flight == 0

    # Queues stayed bounded (max observed depth never exceeded capacity).
    assert snapshot.queues
    for q in snapshot.queues.values():
        assert q.max_depth <= q.capacity

    # The mixed plan really exercised every stage.
    counts = injector.log.counts()
    assert counts.get("host", 0) > 0
    assert counts.get("bnn", 0) > 0

    # close() joined every worker: no thread leak.
    time.sleep(0.05)
    leaked = set(threading.enumerate()) - threads_before
    assert not leaked, f"leaked threads: {leaked}"
