"""Property tests: server invariants hold for ANY generated FaultPlan.

Hypothesis builds arbitrary fault plans (all stages, all kinds, arbitrary
probabilities/windows, small delays so examples stay fast) and drives a
real threaded CascadeServer.  Regardless of the plan:

* every submitted request reaches exactly one terminal state,
* the metrics books balance,
* retry and fault counters stay within their bounds and agree with the
  injector's own event log.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FAULT_KINDS, STAGES, FaultPlan, FaultSpec, wrap_stack
from repro.serve import CascadeServer, RetryPolicy

NUM_IMAGES = 48
MAX_RETRIES = 2


def spec_strategy():
    return st.builds(
        FaultSpec,
        stage=st.sampled_from(STAGES),
        kind=st.sampled_from(FAULT_KINDS),
        probability=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        # Keep sleeps tiny so hang/latency faults don't slow the suite;
        # the hang *semantics* (deadline interplay) are covered elsewhere.
        delay_s=st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
        start_call=st.integers(min_value=0, max_value=4),
        max_faults=st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    )


plan_strategy = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    specs=st.lists(spec_strategy(), min_size=1, max_size=4).map(tuple),
)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(plan=plan_strategy, data_seed=st.integers(min_value=0, max_value=999))
def test_any_fault_plan_yields_exactly_one_terminal_result_per_image(
    chaos, plan, data_seed
):
    # ``chaos`` is a stateless namespace, so reusing it across hypothesis
    # examples (the suppressed health check) is safe.
    images = chaos.make_images(NUM_IMAGES, seed=data_seed)
    bnn_fn, dmu, host_fn, injector = wrap_stack(
        plan, chaos.bnn_scores_fn, chaos.make_dmu(), chaos.host_predict_fn
    )
    server = CascadeServer(
        bnn_fn, dmu, host_fn,
        batch_delay_s=0.001,
        max_batch_size=8,
        host_batch_size=4,
        retry=RetryPolicy(max_retries=MAX_RETRIES, base_delay_s=0.001,
                          max_delay_s=0.004),
    )
    try:
        futures = [server.submit(img) for img in images]
        results, errors = chaos.settle(futures, timeout=60.0)
    finally:
        server.close()

    # Exactly one terminal state per image, and every terminal state is
    # either a CascadeResult or a real exception.
    assert len(results) + len(errors) == NUM_IMAGES
    snapshot = server.snapshot()

    # The books balance.
    assert snapshot.submitted == NUM_IMAGES
    assert snapshot.accepted + snapshot.rerun + snapshot.degraded == snapshot.completed
    assert snapshot.completed + snapshot.failed == snapshot.submitted
    assert snapshot.completed == len(results)
    assert snapshot.failed == len(errors)
    assert snapshot.in_flight == 0

    # Counter bounds.
    assert 0 <= snapshot.retries <= MAX_RETRIES * snapshot.submitted
    assert snapshot.deadline_missed == 0  # no deadline configured here

    # Metrics fault counters agree with the injector's own exception log.
    for stage in STAGES:
        injected_exceptions = sum(
            1 for e in injector.log.for_stage(stage) if e.kind == "exception"
        )
        assert snapshot.faults.get(stage, 0) == injected_exceptions

    # Successful results carry sane payloads.
    for r in results:
        assert 0 <= r.prediction < 10
        assert r.source in ("bnn", "host", "degraded")
