"""Shared chaos-test stack: a cascade whose ground truth is known.

Each "image" is an 11-vector: the first 10 entries are the BNN's class
scores and the last entry is the true label.  The BNN stage reads the
scores, the host stage reads the label (a perfect oracle), and the DMU
reads the sorted-score margin — so every request's BNN answer, host
answer and correctness are computable without running a real network,
and fault scenarios can assert accuracy relationships exactly.
"""

import numpy as np
import pytest

from repro.core import DecisionMakingUnit

NUM_CLASSES = 10


def make_dmu(threshold: float = 0.7) -> DecisionMakingUnit:
    weights = np.zeros(NUM_CLASSES)
    weights[0], weights[1] = 4.0, -4.0  # read the sorted top-2 margin
    return DecisionMakingUnit(weights, bias=0.0, threshold=threshold)


def make_images(n: int, seed: int = 0, signal: float = 2.0) -> np.ndarray:
    """(n, 11) arrays: 10 noisy scores biased toward the true label + label."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, NUM_CLASSES, size=n)
    scores = rng.normal(0.0, 1.0, size=(n, NUM_CLASSES))
    scores[np.arange(n), labels] += signal
    return np.concatenate([scores, labels[:, None].astype(float)], axis=1)


def bnn_scores_fn(images: np.ndarray) -> np.ndarray:
    return np.asarray(images)[:, :NUM_CLASSES]


def host_predict_fn(images: np.ndarray) -> np.ndarray:
    return np.asarray(images)[:, NUM_CLASSES].astype(int)


def true_labels(images: np.ndarray) -> np.ndarray:
    return host_predict_fn(images)


def bnn_predictions(images: np.ndarray) -> np.ndarray:
    return bnn_scores_fn(images).argmax(axis=1)


def settle(futures, timeout=30.0):
    """Wait until every future is terminal; return (results, errors)."""
    from concurrent.futures import wait

    done, not_done = wait(futures, timeout=timeout)
    assert not not_done, f"{len(not_done)} stranded futures"
    results, errors = [], []
    for f in futures:
        exc = f.exception()
        if exc is None:
            results.append(f.result())
        else:
            errors.append(exc)
    return results, errors


class ChaosStack:
    """Namespace handed to tests via the ``chaos`` fixture (conftest helpers
    are not importable from test modules without packageizing ``tests/``)."""

    NUM_CLASSES = NUM_CLASSES
    make_dmu = staticmethod(make_dmu)
    make_images = staticmethod(make_images)
    bnn_scores_fn = staticmethod(bnn_scores_fn)
    host_predict_fn = staticmethod(host_predict_fn)
    true_labels = staticmethod(true_labels)
    bnn_predictions = staticmethod(bnn_predictions)
    settle = staticmethod(settle)


@pytest.fixture
def chaos():
    return ChaosStack
