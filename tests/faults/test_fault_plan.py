"""FaultPlan/FaultSpec validation, JSON round-trip, injector determinism."""

import numpy as np
import pytest

from repro.faults import (
    FAULT_KINDS,
    STAGES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    load_fault_plan,
)


class TestSpecValidation:
    def test_rejects_unknown_stage_and_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(stage="fpga", kind="exception")
        with pytest.raises(ValueError):
            FaultSpec(stage="host", kind="meteor")

    def test_rejects_bad_numbers(self):
        with pytest.raises(ValueError):
            FaultSpec(stage="host", kind="exception", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(stage="host", kind="latency", delay_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(stage="host", kind="exception", start_call=-1)
        with pytest.raises(ValueError):
            FaultSpec(stage="host", kind="exception", max_faults=-1)

    def test_default_delays_per_kind(self):
        assert FaultSpec(stage="bnn", kind="latency").effective_delay_s == 0.05
        assert FaultSpec(stage="bnn", kind="hang").effective_delay_s == 2.0
        assert FaultSpec(stage="bnn", kind="exception").effective_delay_s == 0.0
        assert FaultSpec(stage="bnn", kind="hang", delay_s=0.3).effective_delay_s == 0.3


class TestPlanJson:
    def _plan(self) -> FaultPlan:
        return FaultPlan(
            seed=42,
            specs=(
                FaultSpec(stage="host", kind="exception", probability=0.3),
                FaultSpec(stage="bnn", kind="latency", probability=0.1, delay_s=0.02),
                FaultSpec(stage="dmu", kind="corrupt", start_call=5, max_faults=2),
            ),
        )

    def test_round_trip(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown FaultPlan keys"):
            FaultPlan.from_dict({"seed": 1, "stages": []})

    def test_specs_accept_dicts(self):
        plan = FaultPlan(seed=1, specs=({"stage": "host", "kind": "exception"},))
        assert plan.specs[0] == FaultSpec(stage="host", kind="exception")

    def test_for_stage_filters_in_order(self):
        plan = self._plan()
        assert [s.kind for s in plan.for_stage("host")] == ["exception"]
        assert plan.for_stage("bnn")[0].delay_s == 0.02

    def test_load_fault_plan_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(self._plan().to_json())
        assert load_fault_plan(path) == self._plan()

    def test_committed_example_plan_parses(self):
        from pathlib import Path

        example = Path(__file__).resolve().parents[2] / "examples" / "faultplan_host_flaky.json"
        plan = load_fault_plan(example)
        assert plan.for_stage("host")
        assert all(s.kind in FAULT_KINDS for s in plan.specs)


class TestInjectorDeterminism:
    def _decisions(self, plan: FaultPlan, stage: str, calls: int):
        injector = FaultInjector(plan)
        for _ in range(calls):
            injector.decide(stage)
        return injector.log.for_stage(stage)

    def test_decision_stream_is_pure_function_of_seed_stage_call(self):
        plan = FaultPlan(
            seed=7,
            specs=(
                FaultSpec(stage="host", kind="exception", probability=0.3),
                FaultSpec(stage="host", kind="latency", probability=0.2, delay_s=0.0),
                FaultSpec(stage="bnn", kind="corrupt", probability=0.5),
            ),
        )
        for stage in STAGES:
            assert self._decisions(plan, stage, 200) == self._decisions(plan, stage, 200)

    def test_different_seeds_differ(self):
        mk = lambda seed: FaultPlan(
            seed=seed, specs=(FaultSpec(stage="host", kind="exception", probability=0.5),)
        )
        a = self._decisions(mk(1), "host", 100)
        b = self._decisions(mk(2), "host", 100)
        assert a != b

    def test_stages_have_independent_streams(self):
        plan = FaultPlan(
            seed=3,
            specs=tuple(
                FaultSpec(stage=s, kind="exception", probability=0.5) for s in STAGES
            ),
        )
        injector = FaultInjector(plan)
        for _ in range(100):
            for stage in STAGES:
                injector.decide(stage)
        streams = {
            stage: tuple(e.call_index for e in injector.log.for_stage(stage))
            for stage in STAGES
        }
        assert streams["bnn"] != streams["host"]

    def test_start_call_and_max_faults_windows(self):
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(stage="host", kind="exception", probability=1.0,
                          start_call=3, max_faults=2),
            ),
        )
        events = self._decisions(plan, "host", 10)
        assert [e.call_index for e in events] == [3, 4]

    def test_budget_does_not_shift_the_stream(self):
        """Consuming the budget must not advance other specs' draws."""
        limited = FaultPlan(
            seed=9,
            specs=(
                FaultSpec(stage="host", kind="latency", probability=1.0,
                          delay_s=0.0, max_faults=1),
                FaultSpec(stage="host", kind="exception", probability=0.4),
            ),
        )
        unlimited = FaultPlan(
            seed=9,
            specs=(
                FaultSpec(stage="host", kind="latency", probability=1.0, delay_s=0.0),
                FaultSpec(stage="host", kind="exception", probability=0.4),
            ),
        )
        exc = lambda plan: [
            e.call_index
            for e in self._decisions(plan, "host", 50)
            if e.kind == "exception"
        ]
        assert exc(limited) == exc(unlimited)


class TestWrappers:
    def test_exception_fault_raises_injected_fault(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec(stage="bnn", kind="exception"),))
        injector = FaultInjector(plan)
        fn = injector.wrap("bnn", lambda x: x)
        with pytest.raises(InjectedFault) as excinfo:
            fn(np.ones(3))
        assert excinfo.value.stage == "bnn"
        assert excinfo.value.call_index == 0

    def test_latency_fault_sleeps_then_runs(self):
        slept = []
        plan = FaultPlan(
            seed=0, specs=(FaultSpec(stage="host", kind="latency", delay_s=0.123),)
        )
        injector = FaultInjector(plan, sleep=slept.append)
        fn = injector.wrap("host", lambda x: x + 1)
        assert fn(1) == 2
        assert slept == [pytest.approx(0.123)]

    def test_corrupt_fault_rolls_last_axis(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec(stage="bnn", kind="corrupt"),))
        injector = FaultInjector(plan)
        fn = injector.wrap("bnn", lambda x: x)
        scores = np.arange(6.0).reshape(2, 3)
        np.testing.assert_array_equal(fn(scores), np.roll(scores, 1, axis=-1))

    def test_no_fault_passthrough_is_exact(self):
        plan = FaultPlan(seed=0, specs=(FaultSpec(stage="bnn", kind="exception",
                                                  probability=0.0),))
        injector = FaultInjector(plan)
        fn = injector.wrap("host", lambda x, k=1: x * k)
        assert fn(3, k=4) == 12
        assert injector.log.events == ()

    def test_wrap_dmu_delegates_attributes(self):
        from repro.core import DecisionMakingUnit

        plan = FaultPlan(seed=0, specs=(FaultSpec(stage="dmu", kind="exception"),))
        injector = FaultInjector(plan)
        weights = np.zeros(10)
        weights[0], weights[1] = 4.0, -4.0
        dmu = DecisionMakingUnit(weights, bias=0.0, threshold=0.66)
        proxy = injector.wrap_dmu(dmu)
        assert proxy.threshold == dmu.threshold
        with pytest.raises(InjectedFault):
            proxy.confidence(np.zeros((2, 10)))

    def test_unknown_stage_rejected(self):
        injector = FaultInjector(FaultPlan())
        with pytest.raises(ValueError):
            injector.wrap("gpu", lambda x: x)
        with pytest.raises(ValueError):
            injector.decide("gpu")
