"""InferenceEngine fast path: equivalence, determinism, eval-mode hygiene."""

import numpy as np
import pytest

from repro.models.host_models import build_model_a, build_model_b, build_model_c
from repro.nn import Conv2D, Dense, Dropout, Flatten, InferenceEngine, ReLU, Sequential

BUILDERS = {"a": build_model_a, "b": build_model_b, "c": build_model_c}


def make_net(model: str, scale: float = 0.25, seed: int = 0):
    net = BUILDERS[model](scale=scale, rng=np.random.default_rng(seed))
    net.eval_mode()
    return net


def make_images(n: int, seed: int = 1) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, 3, 32, 32))


class TestEquivalence:
    @pytest.mark.parametrize("model", ["a", "b", "c"])
    def test_f64_engine_matches_legacy_forward(self, model):
        net = make_net(model)
        x = make_images(9)
        expected = net.predict(x)
        got = net.compile_inference(dtype=np.float64).predict_scores(x)
        assert got.dtype == np.float64
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("model", ["a", "b", "c"])
    def test_f32_engine_preserves_argmax(self, model):
        net = make_net(model)
        x = make_images(17)
        legacy = net.predict(x)
        scores = net.compile_inference().predict_scores(x)
        assert scores.dtype == np.float32
        np.testing.assert_array_equal(scores.argmax(axis=1), legacy.argmax(axis=1))
        np.testing.assert_array_equal(
            net.compile_inference().predict_classes(x), legacy.argmax(axis=1)
        )

    def test_repeated_calls_are_deterministic(self):
        """Buffer reuse must not leak state between calls."""
        net = make_net("a")
        engine = net.compile_inference()
        x = make_images(8)
        first = engine.predict_scores(x).copy()
        engine.predict_scores(make_images(8, seed=99))  # perturb the buffers
        np.testing.assert_array_equal(engine.predict_scores(x), first)

    def test_micro_batch_boundary_shards_are_bit_identical(self):
        """The determinism contract behind parallel sharding (Eq. 1 lever)."""
        net = make_net("a")
        engine = net.compile_inference(micro_batch=16)
        x = make_images(48)
        whole = engine.predict_scores(x)
        parts = np.concatenate(
            [engine.predict_scores(x[0:16]), engine.predict_scores(x[16:48])]
        )
        np.testing.assert_array_equal(whole, parts)

    def test_empty_batch(self):
        net = make_net("a")
        engine = net.compile_inference()
        scores = engine.predict_scores(make_images(0))
        assert scores.shape == (0, engine.num_classes_hint())

    def test_unsupported_layer_raises(self):
        class Exotic(Sequential):
            pass

        net = Sequential([Dense(4, 2)])
        net.layers.append(object())  # not a Layer the engine knows
        with pytest.raises(ValueError):
            InferenceEngine(net)


class TestEvalModeHygiene:
    """PR satellites: eval mode must not pay training-only costs."""

    def test_dropout_eval_draws_no_rng(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))

        class Tripwire:
            def random(self, *a, **k):  # pragma: no cover - should not run
                raise AssertionError("Dropout drew RNG numbers in eval mode")

            def uniform(self, *a, **k):  # pragma: no cover
                raise AssertionError("Dropout drew RNG numbers in eval mode")

        layer.rng = Tripwire()
        layer.eval_mode()
        x = np.ones((4, 3))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_conv2d_eval_retains_no_backward_buffers(self):
        conv = Conv2D(3, 4, kernel_size=3, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 3, 8, 8))
        conv.train_mode()
        conv.forward(x)
        assert conv._cache is not None  # training keeps im2col for backward
        conv.eval_mode()
        conv.forward(x)
        assert conv._cache is None  # eval must not retain the im2col slab

    def test_conv2d_relu_fusion_matches_unfused(self):
        rng = np.random.default_rng(2)
        net = Sequential([Conv2D(3, 4, kernel_size=3, rng=rng), ReLU(), Flatten()])
        net.eval_mode()
        x = np.random.default_rng(3).normal(size=(3, 3, 8, 8))
        fused = net.compile_inference(dtype=np.float64)
        expected = net.forward(x)
        got = fused.predict_scores(x)
        np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-12)
