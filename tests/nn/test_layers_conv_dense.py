"""Conv2D and Dense: forward correctness and gradient checks."""

import numpy as np
import pytest

from repro.nn import Conv2D, Dense
from repro.nn.gradcheck import check_layer_gradients


def naive_conv2d(x, w, b, stride, pad):
    n, c, h, w_in = x.shape
    od, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w_in + 2 * pad - kw) // stride + 1
    out = np.zeros((n, od, oh, ow))
    for bi in range(n):
        for o in range(od):
            for oy in range(oh):
                for ox in range(ow):
                    patch = xp[bi, :, oy * stride : oy * stride + kh, ox * stride : ox * stride + kw]
                    out[bi, o, oy, ox] = (patch * w[o]).sum() + (b[o] if b is not None else 0.0)
    return out


class TestConv2DForward:
    @pytest.mark.parametrize(
        "cin,cout,k,stride,pad,size",
        [(3, 4, 3, 1, 0, 8), (2, 3, 3, 2, 1, 7), (1, 2, 5, 1, 2, 6), (4, 4, 1, 1, 0, 5)],
    )
    def test_matches_naive(self, cin, cout, k, stride, pad, size):
        rng = np.random.default_rng(7)
        layer = Conv2D(cin, cout, k, stride=stride, pad=pad, rng=rng)
        x = rng.normal(size=(2, cin, size, size))
        got = layer.forward(x)
        want = naive_conv2d(x, layer.weight.value, layer.bias.value, stride, pad)
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-10)

    def test_no_bias(self):
        rng = np.random.default_rng(7)
        layer = Conv2D(2, 3, 3, use_bias=False, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        want = naive_conv2d(x, layer.weight.value, None, 1, 0)
        np.testing.assert_allclose(layer.forward(x), want, rtol=1e-10, atol=1e-10)
        assert len(layer.params()) == 1

    def test_output_shape(self):
        layer = Conv2D(3, 64, 3)
        assert layer.output_shape((3, 32, 32)) == (64, 30, 30)

    def test_wrong_channels_raises(self):
        with pytest.raises(ValueError):
            Conv2D(3, 8, 3).output_shape((4, 32, 32))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Conv2D(0, 4, 3)
        with pytest.raises(ValueError):
            Conv2D(3, 4, 3, stride=0)
        with pytest.raises(ValueError):
            Conv2D(3, 4, 3, pad=-1)

    def test_identity_kernel(self):
        # 1x1 conv with identity weights passes channels through.
        layer = Conv2D(3, 3, 1, use_bias=False)
        layer.weight.value = np.eye(3).reshape(3, 3, 1, 1)
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(layer.forward(x), x)


class TestConv2DBackward:
    @pytest.mark.parametrize(
        "cin,cout,k,stride,pad",
        [(2, 3, 3, 1, 0), (3, 2, 3, 2, 1), (1, 2, 1, 1, 0)],
    )
    def test_gradcheck(self, cin, cout, k, stride, pad):
        rng = np.random.default_rng(11)
        layer = Conv2D(cin, cout, k, stride=stride, pad=pad, rng=rng)
        x = rng.normal(size=(2, cin, 5, 5))
        check_layer_gradients(layer, x)

    def test_backward_before_forward_raises(self):
        layer = Conv2D(2, 2, 3)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2, 3, 3)))

    def test_grad_accumulates(self):
        rng = np.random.default_rng(2)
        layer = Conv2D(2, 2, 3, rng=rng)
        layer.train_mode()
        x = rng.normal(size=(1, 2, 5, 5))
        layer.forward(x)
        layer.backward(np.ones((1, 2, 3, 3)))
        g1 = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2, 3, 3)))
        np.testing.assert_allclose(layer.weight.grad, 2 * g1)


class TestDense:
    def test_forward(self):
        rng = np.random.default_rng(3)
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.weight.value + layer.bias.value
        )

    def test_gradcheck(self):
        rng = np.random.default_rng(5)
        layer = Dense(6, 4, rng=rng)
        x = rng.normal(size=(3, 6))
        check_layer_gradients(layer, x)

    def test_gradcheck_no_bias(self):
        rng = np.random.default_rng(5)
        layer = Dense(5, 2, use_bias=False, rng=rng)
        x = rng.normal(size=(2, 5))
        check_layer_gradients(layer, x)

    def test_shape_validation(self):
        layer = Dense(4, 3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 5)))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 4, 1)))
        with pytest.raises(ValueError):
            layer.output_shape((5,))
        assert layer.output_shape((4,)) == (3,)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(3, 2).backward(np.zeros((1, 2)))

    def test_num_params(self):
        assert Dense(4, 3).num_params() == 4 * 3 + 3
        assert Dense(4, 3, use_bias=False).num_params() == 12
