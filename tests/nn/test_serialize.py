"""Model serialization."""

import numpy as np
import pytest

from repro.nn import BatchNorm, Conv2D, Dense, Flatten, ReLU, Sequential
from repro.nn.serialize import load_model, save_model


def make_net(rng=None):
    rng = rng or np.random.default_rng(0)
    return Sequential(
        [Conv2D(2, 4, 3, rng=rng), BatchNorm(4), ReLU(), Flatten(), Dense(4 * 6 * 6, 3, rng=rng)]
    )


class TestSerialize:
    def test_roundtrip_outputs_identical(self, tmp_path):
        rng = np.random.default_rng(1)
        net = make_net(rng)
        path = tmp_path / "model.npz"
        save_model(net, path)
        other = make_net(np.random.default_rng(99))  # different init
        load_model(other, path)
        x = rng.normal(size=(2, 2, 8, 8))
        net.eval_mode()
        other.eval_mode()
        np.testing.assert_allclose(other.forward(x), net.forward(x))

    def test_running_stats_preserved(self, tmp_path):
        rng = np.random.default_rng(2)
        net = make_net(rng)
        net.train_mode()
        net.forward(rng.normal(size=(8, 2, 8, 8)))  # moves running stats
        path = tmp_path / "model.npz"
        save_model(net, path)
        other = make_net()
        load_model(other, path)
        bn_a = [l for l in net if isinstance(l, BatchNorm)][0]
        bn_b = [l for l in other if isinstance(l, BatchNorm)][0]
        np.testing.assert_allclose(bn_b.running_mean.value, bn_a.running_mean.value)

    def test_metadata_roundtrip(self, tmp_path):
        net = make_net()
        path = tmp_path / "model.npz"
        save_model(net, path, metadata={"accuracy": 0.85, "epochs": 10})
        meta = load_model(make_net(), path)
        assert meta == {"accuracy": 0.85, "epochs": 10.0}

    def test_structure_mismatch_raises(self, tmp_path):
        net = make_net()
        path = tmp_path / "model.npz"
        save_model(net, path)
        wrong = Sequential([Dense(4, 2)])
        with pytest.raises(KeyError):
            load_model(wrong, path)
