"""Losses and optimizers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BinaryCrossEntropy,
    Parameter,
    SGD,
    SoftmaxCrossEntropy,
    SquaredHinge,
)
from repro.nn.gradcheck import numerical_gradient


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss = SoftmaxCrossEntropy().forward(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_logits_log_k(self):
        k = 10
        logits = np.zeros((4, k))
        loss = SoftmaxCrossEntropy().forward(logits, np.array([0, 1, 2, 3]))
        assert loss == pytest.approx(np.log(k))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 4))
        targets = np.array([0, 1, 2, 3, 1])
        ce = SoftmaxCrossEntropy()
        ce.forward(logits, targets)
        analytic = ce.backward()
        num = numerical_gradient(lambda z: SoftmaxCrossEntropy().forward(z, targets), logits.copy())
        np.testing.assert_allclose(analytic, num, rtol=1e-5, atol=1e-8)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3, 4)), np.array([0, 1]))


class TestBinaryCrossEntropy:
    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(8, 1))
        targets = rng.integers(0, 2, size=8)
        bce = BinaryCrossEntropy()
        bce.forward(logits, targets)
        analytic = bce.backward()
        num = numerical_gradient(lambda z: BinaryCrossEntropy().forward(z, targets), logits.copy())
        np.testing.assert_allclose(analytic, num, rtol=1e-5, atol=1e-8)

    def test_confident_correct_is_cheap(self):
        loss_good = BinaryCrossEntropy().forward(np.array([10.0]), np.array([1]))
        loss_bad = BinaryCrossEntropy().forward(np.array([10.0]), np.array([0]))
        assert loss_good < 1e-3 < loss_bad

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            BinaryCrossEntropy().forward(np.zeros(3), np.zeros(4))


class TestSquaredHinge:
    def test_zero_when_margins_met(self):
        logits = np.array([[2.0, -2.0, -2.0]])
        assert SquaredHinge().forward(logits, np.array([0])) == pytest.approx(0.0)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 2, 1, 1])
        sh = SquaredHinge()
        sh.forward(logits, targets)
        analytic = sh.backward()
        num = numerical_gradient(lambda z: SquaredHinge().forward(z, targets), logits.copy())
        np.testing.assert_allclose(analytic, num, rtol=1e-5, atol=1e-8)


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0, 2.0]))
        p.grad = np.array([0.5, -0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.value, [0.95, 2.05])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v = -1
        np.testing.assert_allclose(p.value, [-1.0])
        p.grad = np.array([1.0])
        opt.step()  # v = -1.9
        np.testing.assert_allclose(p.value, [-2.9])

    def test_weight_decay(self):
        p = Parameter(np.array([10.0]))
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.value, [10.0 - 0.1 * 0.5 * 10.0])

    def test_skips_frozen(self):
        frozen = Parameter(np.array([1.0]), trainable=False)
        frozen.grad = np.array([1.0])
        opt = SGD([frozen], lr=0.1)
        opt.step()
        np.testing.assert_allclose(frozen.value, [1.0])

    def test_post_update_hook(self):
        p = Parameter(np.array([0.99]))
        p.grad = np.array([-10.0])
        opt = SGD([p], lr=1.0, post_update=lambda q: np.clip(q.value, -1, 1, out=q.value))
        opt.step()
        np.testing.assert_allclose(p.value, [1.0])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([5.0])
        SGD([p], lr=0.1).zero_grad()
        np.testing.assert_allclose(p.grad, [0.0])


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step ~= lr * sign(grad).
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([3.0])
        opt.step()
        np.testing.assert_allclose(p.value, [-0.1], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            p.grad = 2.0 * (p.value - 1.0)
            opt.step()
        np.testing.assert_allclose(p.value, [1.0], atol=1e-2)

    def test_sgd_and_adam_minimize_rosenbrock_ish(self):
        # A stiffer 2-D bowl: f = (x-2)^2 + 10*(y+1)^2.
        for opt_cls, kwargs in [(SGD, {"lr": 0.02, "momentum": 0.9}), (Adam, {"lr": 0.1})]:
            p = Parameter(np.array([0.0, 0.0]))
            opt = opt_cls([p], **kwargs)
            for _ in range(300):
                opt.zero_grad()
                p.grad = np.array([2 * (p.value[0] - 2.0), 20 * (p.value[1] + 1.0)])
                opt.step()
            np.testing.assert_allclose(p.value, [2.0, -1.0], atol=0.05)


class TestNesterovSGD:
    def test_converges_on_quadratic(self):
        from repro.nn import NesterovSGD

        p = Parameter(np.array([5.0]))
        opt = NesterovSGD([p], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            p.grad = 2.0 * (p.value - 1.0)
            opt.step()
        np.testing.assert_allclose(p.value, [1.0], atol=1e-2)

    def test_differs_from_classical_momentum(self):
        from repro.nn import NesterovSGD

        a = Parameter(np.array([0.0]))
        b = Parameter(np.array([0.0]))
        nest = NesterovSGD([a], lr=0.1, momentum=0.9)
        classical = SGD([b], lr=0.1, momentum=0.9)
        for _ in range(3):
            a.grad = np.array([1.0])
            b.grad = np.array([1.0])
            nest.step()
            classical.step()
        assert not np.allclose(a.value, b.value)

    def test_requires_momentum(self):
        from repro.nn import NesterovSGD

        with pytest.raises(ValueError):
            NesterovSGD([Parameter(np.zeros(1))], lr=0.1, momentum=0.0)


class TestRMSProp:
    def test_converges_on_quadratic(self):
        from repro.nn import RMSProp

        p = Parameter(np.array([5.0]))
        opt = RMSProp([p], lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            p.grad = 2.0 * (p.value - 1.0)
            opt.step()
        np.testing.assert_allclose(p.value, [1.0], atol=0.05)

    def test_adapts_per_parameter_scale(self):
        from repro.nn import RMSProp

        # Two coordinates with gradients of very different magnitude get
        # comparable effective steps after normalization.
        p = Parameter(np.array([1.0, 1.0]))
        opt = RMSProp([p], lr=0.01)
        p.grad = np.array([100.0, 0.01])
        opt.step()
        steps = np.abs(1.0 - p.value)
        assert steps[0] / steps[1] < 5.0  # raw ratio would be 10000x

    def test_invalid_decay(self):
        from repro.nn import RMSProp

        with pytest.raises(ValueError):
            RMSProp([Parameter(np.zeros(1))], lr=0.1, decay=1.0)
