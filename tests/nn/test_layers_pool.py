"""Pooling layers: forward vs naive, gradient checks."""

import numpy as np
import pytest

from repro.nn import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.gradcheck import check_layer_gradients


def naive_pool(x, window, stride, pad, op):
    n, c, h, w = x.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - window) // stride + 1
    ow = (w + 2 * pad - window) // stride + 1
    out = np.zeros((n, c, oh, ow))
    for b in range(n):
        for ch in range(c):
            for oy in range(oh):
                for ox in range(ow):
                    patch = xp[b, ch, oy * stride : oy * stride + window, ox * stride : ox * stride + window]
                    out[b, ch, oy, ox] = op(patch)
    return out


class TestMaxPool:
    @pytest.mark.parametrize("window,stride,pad", [(2, 2, 0), (3, 2, 0), (2, 1, 0), (3, 2, 1)])
    def test_matches_naive(self, window, stride, pad):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8))
        layer = MaxPool2D(window, stride, pad)
        np.testing.assert_allclose(layer.forward(x), naive_pool(x, window, stride, pad, np.max))

    def test_finn_2x2_halves(self):
        layer = MaxPool2D(2)
        assert layer.output_shape((64, 30, 30)) == (64, 15, 15)

    def test_gradcheck(self):
        # Distinct values so argmax is stable under the FD epsilon.
        rng = np.random.default_rng(1)
        x = rng.permutation(np.arange(2 * 2 * 6 * 6, dtype=float)).reshape(2, 2, 6, 6)
        check_layer_gradients(MaxPool2D(2), x, check_params=False)

    def test_gradcheck_overlapping(self):
        rng = np.random.default_rng(2)
        x = rng.permutation(np.arange(1 * 2 * 7 * 7, dtype=float)).reshape(1, 2, 7, 7)
        check_layer_gradients(MaxPool2D(3, 2), x, check_params=False)

    def test_gradient_routes_to_max(self):
        x = np.zeros((1, 1, 2, 2))
        x[0, 0, 1, 1] = 5.0
        layer = MaxPool2D(2)
        layer.forward(x)
        dx = layer.backward(np.ones((1, 1, 1, 1)))
        expected = np.zeros_like(x)
        expected[0, 0, 1, 1] = 1.0
        np.testing.assert_allclose(dx, expected)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)


class TestAvgPool:
    @pytest.mark.parametrize("window,stride", [(2, 2), (3, 2), (3, 3)])
    def test_matches_naive(self, window, stride):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 9, 9))
        layer = AvgPool2D(window, stride)
        np.testing.assert_allclose(layer.forward(x), naive_pool(x, window, stride, 0, np.mean))

    def test_gradcheck(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 2, 6, 6))
        check_layer_gradients(AvgPool2D(2), x, check_params=False)

    def test_gradcheck_overlapping(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 2, 7, 7))
        check_layer_gradients(AvgPool2D(3, 2), x, check_params=False)

    def test_constant_input_preserved(self):
        x = np.full((1, 2, 4, 4), 3.5)
        np.testing.assert_allclose(AvgPool2D(2).forward(x), np.full((1, 2, 2, 2), 3.5))


class TestGlobalAvgPool:
    def test_forward(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 10, 6, 6))
        np.testing.assert_allclose(GlobalAvgPool2D().forward(x), x.mean(axis=(2, 3)))

    def test_output_shape(self):
        assert GlobalAvgPool2D().output_shape((10, 8, 8)) == (10,)

    def test_gradcheck(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(2, 3, 4, 4))
        check_layer_gradients(GlobalAvgPool2D(), x, check_params=False)
