"""QuantizedEngine: reference equivalence, determinism, calibration hygiene.

Tolerances mirror the documented expectations in
``repro/nn/quantized.py``: thresholds were calibrated from measured
agreement on random-weight Models A/B/C at scale 0.25 (8-bit max rel
err ~2e-2, 4-bit ~0.3 with >= 92% argmax agreement), with headroom so
seed drift does not flake the suite.
"""

import numpy as np
import pytest

from repro.models.host_models import build_model_a, build_model_b, build_model_c
from repro.nn import SUPPORTED_BITS, Dense, Flatten, QuantizedEngine, Sequential

BUILDERS = {"a": build_model_a, "b": build_model_b, "c": build_model_c}


def make_net(model: str, scale: float = 0.25, seed: int = 0):
    net = BUILDERS[model](scale=scale, rng=np.random.default_rng(seed))
    net.eval_mode()
    return net


def make_images(n: int, seed: int = 1) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, 3, 32, 32))


def make_quantized(net, bits: int, micro_batch: int = 16):
    return net.compile_quantized(
        bits=bits, calibration_images=make_images(32, seed=7),
        micro_batch=micro_batch,
    )


class TestReferenceEquivalence:
    """Scores against the float64 engine, per documented bit-width tier."""

    @pytest.mark.parametrize("model", ["a", "b", "c"])
    def test_8bit_close_to_f64_reference(self, model):
        net = make_net(model)
        x = make_images(64)
        ref = net.compile_inference(dtype=np.float64).predict_scores(x)
        got = make_quantized(net, bits=8).predict_scores(x)
        rel = np.abs(got - ref).max() / np.abs(ref).max()
        assert rel < 5e-2
        agree = (got.argmax(axis=1) == ref.argmax(axis=1)).mean()
        assert agree >= 0.99

    # Measured random-weight floors (3 image seeds): a/b >= 0.99, c >= 0.82
    # (the deeper net compounds more per-layer quantization noise).
    FOUR_BIT_ARGMAX_FLOOR = {"a": 0.95, "b": 0.95, "c": 0.75}

    @pytest.mark.parametrize("model", ["a", "b", "c"])
    def test_4bit_preserves_argmax_rate(self, model):
        net = make_net(model)
        x = make_images(128)
        ref = net.compile_inference(dtype=np.float64).predict_scores(x)
        got = make_quantized(net, bits=4).predict_scores(x)
        rel = np.abs(got - ref).max() / np.abs(ref).max()
        assert rel < 0.5
        agree = (got.argmax(axis=1) == ref.argmax(axis=1)).mean()
        assert agree >= self.FOUR_BIT_ARGMAX_FLOOR[model]

    def test_2bit_runs_and_is_finite(self):
        """2-bit exists for routing tests; only shape/finiteness hold."""
        net = make_net("a")
        got = make_quantized(net, bits=2).predict_scores(make_images(16))
        assert got.shape == (16, 10)
        assert np.isfinite(got).all()

    def test_monotone_fidelity_across_bit_widths(self):
        """More bits must not be (much) worse: err(8) <= err(4) <= err(2)."""
        net = make_net("b")
        x = make_images(64)
        ref = net.compile_inference(dtype=np.float64).predict_scores(x)
        errs = {}
        for bits in SUPPORTED_BITS:
            got = make_quantized(net, bits=bits).predict_scores(x)
            errs[bits] = np.abs(got - ref).max() / np.abs(ref).max()
        assert errs[8] <= errs[4] <= errs[2]


class TestDeterminism:
    """Integer accumulation is exact: chunking must not change a bit."""

    @pytest.mark.parametrize("bits", sorted(SUPPORTED_BITS))
    def test_bit_identical_across_arbitrary_chunkings(self, bits):
        net = make_net("a")
        engine = make_quantized(net, bits=bits, micro_batch=16)
        x = make_images(41)  # deliberately not a multiple of micro_batch
        whole = engine.predict_scores(x)
        for cuts in ([41], [7, 34], [1, 16, 24], [13, 13, 13, 2]):
            parts, start = [], 0
            for size in cuts:
                parts.append(engine.predict_scores(x[start:start + size]))
                start += size
            np.testing.assert_array_equal(np.concatenate(parts), whole)

    def test_repeated_calls_do_not_leak_buffer_state(self):
        net = make_net("a")
        engine = make_quantized(net, bits=8)
        x = make_images(8)
        first = engine.predict_scores(x).copy()
        engine.predict_scores(make_images(8, seed=99))  # perturb the buffers
        np.testing.assert_array_equal(engine.predict_scores(x), first)

    def test_empty_batch(self):
        engine = make_quantized(make_net("a"), bits=8)
        assert engine.predict_scores(make_images(0)).shape[0] == 0


class TestCalibration:
    def test_uncalibrated_engine_refuses_to_predict(self):
        net = make_net("a")
        engine = QuantizedEngine(net, bits=8)  # no calibration images
        with pytest.raises(RuntimeError, match="calibrat"):
            engine.predict_scores(make_images(4))

    def test_calibrate_returns_self_and_freezes_scales(self):
        net = make_net("a")
        engine = QuantizedEngine(net, bits=8)
        assert engine.calibrate(make_images(16, seed=7)) is engine
        scales = engine.activation_scales()
        assert scales and all(s > 0 for s in scales.values())

    def test_recalibration_replaces_scales(self):
        net = make_net("a")
        engine = QuantizedEngine(net, bits=8)
        engine.calibrate(make_images(16, seed=7))
        small = engine.activation_scales()
        engine.calibrate(10.0 * make_images(16, seed=7))
        large = engine.activation_scales()
        # First GEMM sees the raw input, so its scale must track the 10x.
        first = min(small)
        assert large[first] > 5.0 * small[first]

    def test_calibration_images_constructor_path_matches_calibrate(self):
        net = make_net("a")
        cal = make_images(16, seed=7)
        x = make_images(8)
        via_ctor = QuantizedEngine(net, bits=8, calibration_images=cal)
        via_call = QuantizedEngine(net, bits=8).calibrate(cal)
        np.testing.assert_array_equal(
            via_ctor.predict_scores(x), via_call.predict_scores(x)
        )

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError, match="bits"):
            QuantizedEngine(make_net("a"), bits=3)

    def test_flatten_dense_network_quantizes(self):
        """No-conv path: only _QDenseStep gemms, straight off the pixels."""
        rng = np.random.default_rng(0)
        net = Sequential([Flatten(), Dense(3 * 8 * 8, 5, rng=rng)])
        net.eval_mode()
        data = np.random.default_rng(2)
        cal = data.normal(size=(16, 3, 8, 8))
        x = data.normal(size=(6, 3, 8, 8))
        ref = net.compile_inference(dtype=np.float64).predict_scores(x)
        got = net.compile_quantized(bits=8, calibration_images=cal).predict_scores(x)
        rel = np.abs(got - ref).max() / np.abs(ref).max()
        assert rel < 5e-2
