"""Tests for repro.nn.functional: im2col/col2im, softmax family, one-hot."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


def naive_im2col(x, kh, kw, stride, pad):
    n, c, h, w = x.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    rows = []
    for b in range(n):
        for oy in range(oh):
            for ox in range(ow):
                patch = xp[b, :, oy * stride : oy * stride + kh, ox * stride : ox * stride + kw]
                rows.append(patch.reshape(-1))
    return np.array(rows)


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(32, 3) == 30

    def test_with_pad(self):
        assert F.conv_output_size(32, 3, pad=1) == 32

    def test_with_stride(self):
        assert F.conv_output_size(32, 3, stride=2, pad=1) == 16

    def test_exact_fit(self):
        assert F.conv_output_size(3, 3) == 1

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 3)

    def test_pool_output_default_stride_is_window(self):
        assert F.pool_output_size(32, 2) == 16
        assert F.pool_output_size(30, 3, 2) == 14


class TestIm2Col:
    @pytest.mark.parametrize(
        "shape,kh,kw,stride,pad",
        [
            ((2, 3, 8, 8), 3, 3, 1, 0),
            ((1, 1, 5, 5), 3, 3, 2, 0),
            ((2, 4, 6, 6), 3, 3, 1, 1),
            ((1, 2, 7, 7), 5, 5, 1, 2),
            ((3, 2, 4, 4), 1, 1, 1, 0),
            ((1, 3, 9, 9), 3, 3, 3, 0),
        ],
    )
    def test_matches_naive(self, shape, kh, kw, stride, pad):
        rng = np.random.default_rng(0)
        x = rng.normal(size=shape)
        got = F.im2col(x, kh, kw, stride, pad)
        want = naive_im2col(x, kh, kw, stride, pad)
        np.testing.assert_allclose(got, want)

    def test_shape(self):
        x = np.zeros((2, 3, 32, 32))
        cols = F.im2col(x, 3, 3)
        assert cols.shape == (2 * 30 * 30, 3 * 9)

    def test_row_ordering_is_channel_major(self):
        # One-pixel kernel: rows should be the (C,) vectors per output pixel.
        x = np.arange(2 * 3 * 2 * 2, dtype=float).reshape(2, 3, 2, 2)
        cols = F.im2col(x, 1, 1)
        np.testing.assert_allclose(cols[0], x[0, :, 0, 0])
        np.testing.assert_allclose(cols[1], x[0, :, 0, 1])

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> — the defining adjoint property.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 6, 6))
        kh = kw = 3
        stride, pad = 2, 1
        cols = F.im2col(x, kh, kw, stride, pad)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, x.shape, kh, kw, stride, pad)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    @given(
        n=st.integers(1, 2),
        c=st.integers(1, 3),
        size=st.integers(3, 8),
        k=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_naive(self, n, c, size, k, stride, pad):
        rng = np.random.default_rng(42)
        x = rng.normal(size=(n, c, size, size))
        got = F.im2col(x, k, k, stride, pad)
        want = naive_im2col(x, k, k, stride, pad)
        np.testing.assert_allclose(got, want)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(5, 10))
        s = F.softmax(x, axis=1)
        np.testing.assert_allclose(s.sum(axis=1), np.ones(5))

    def test_shift_invariance(self):
        x = np.random.default_rng(0).normal(size=(4, 7))
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0))

    def test_large_values_stable(self):
        x = np.array([[1000.0, 1000.0, -1000.0]])
        s = F.softmax(x)
        assert np.isfinite(s).all()
        np.testing.assert_allclose(s[0, :2], [0.5, 0.5])

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(3).normal(size=(6, 4))
        np.testing.assert_allclose(F.log_softmax(x), np.log(F.softmax(x)), atol=1e-12)

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_property_probabilities(self, values):
        s = F.softmax(np.array([values]))
        assert (s >= 0).all()
        assert s.sum() == pytest.approx(1.0)


class TestSigmoid:
    def test_symmetry(self):
        x = np.linspace(-20, 20, 41)
        np.testing.assert_allclose(F.sigmoid(x) + F.sigmoid(-x), np.ones_like(x), atol=1e-12)

    def test_extremes_finite(self):
        assert F.sigmoid(np.array([-1e6]))[0] == pytest.approx(0.0)
        assert F.sigmoid(np.array([1e6]))[0] == pytest.approx(1.0)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, np.eye(3)[[0, 2, 1]])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty(self):
        assert F.one_hot(np.array([], dtype=int), 4).shape == (0, 4)
