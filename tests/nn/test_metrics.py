"""Classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.metrics import (
    ClassificationReport,
    classification_report,
    confusion_matrix,
    per_class_accuracy,
    top_k_accuracy,
)


class TestConfusionMatrix:
    def test_basic(self):
        m = confusion_matrix(np.array([0, 0, 1, 2]), np.array([0, 1, 1, 2]), 3)
        expected = np.array([[1, 1, 0], [0, 1, 0], [0, 0, 1]])
        np.testing.assert_array_equal(m, expected)

    def test_diagonal_is_correct_count(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 5, size=100)
        p = rng.integers(0, 5, size=100)
        m = confusion_matrix(y, p, 5)
        assert np.diag(m).sum() == (y == p).sum()
        assert m.sum() == 100

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3, int), np.zeros(4, int), 2)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([5]), np.array([0]), 3)

    @given(st.integers(2, 6), st.integers(1, 80), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_row_sums_are_class_counts(self, k, n, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, k, size=n)
        p = rng.integers(0, k, size=n)
        m = confusion_matrix(y, p, k)
        np.testing.assert_array_equal(m.sum(axis=1), np.bincount(y, minlength=k))
        np.testing.assert_array_equal(m.sum(axis=0), np.bincount(p, minlength=k))


class TestPerClassAccuracy:
    def test_values(self):
        m = np.array([[3, 1], [2, 2]])
        np.testing.assert_allclose(per_class_accuracy(m), [0.75, 0.5])

    def test_empty_class_nan(self):
        m = np.array([[2, 0], [0, 0]])
        acc = per_class_accuracy(m)
        assert acc[0] == 1.0 and np.isnan(acc[1])


class TestTopK:
    def test_top1_equals_accuracy(self):
        scores = np.array([[0.9, 0.1], [0.4, 0.6], [0.7, 0.3]])
        labels = np.array([0, 1, 1])
        assert top_k_accuracy(scores, labels, k=1) == pytest.approx(2 / 3)

    def test_topk_full_is_one(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(10, 4))
        labels = rng.integers(0, 4, size=10)
        assert top_k_accuracy(scores, labels, k=4) == 1.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, int), k=4)

    def test_empty(self):
        assert top_k_accuracy(np.zeros((0, 3)), np.zeros(0, int), k=2) == 0.0

    def test_monotone_in_k(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=(50, 6))
        labels = rng.integers(0, 6, size=50)
        accs = [top_k_accuracy(scores, labels, k) for k in range(1, 7)]
        assert accs == sorted(accs)


class TestReport:
    def test_report_accuracy(self):
        rep = classification_report(
            np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), ("a", "b", "c")
        )
        assert rep.accuracy == pytest.approx(0.75)
        assert "accuracy: 75.0%" in rep.format()

    def test_most_confused_pairs(self):
        y = np.array([0] * 5 + [1] * 5)
        p = np.array([1] * 5 + [1] * 5)  # class 0 always predicted as 1
        rep = classification_report(y, p, ("cat", "dog"))
        pairs = rep.most_confused_pairs()
        assert pairs[0] == ("cat", "dog", 5)

    def test_no_confusion_empty_pairs(self):
        rep = classification_report(np.array([0, 1]), np.array([0, 1]), ("a", "b"))
        assert rep.most_confused_pairs() == []

    def test_empty_report(self):
        rep = ClassificationReport(np.zeros((2, 2), dtype=np.int64), ("a", "b"))
        assert rep.accuracy == 0.0
