"""Activations, dropout, flatten."""

import numpy as np
import pytest

from repro.nn import Dropout, Flatten, HardTanh, ReLU, Sigmoid, Tanh
from repro.nn.gradcheck import check_layer_gradients


class TestActivations:
    def test_relu_forward(self):
        x = np.array([[-2.0, 0.0, 3.0]])
        np.testing.assert_allclose(ReLU().forward(x), [[0.0, 0.0, 3.0]])

    def test_relu_gradcheck(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 7)) + 0.05  # keep away from the kink
        x[np.abs(x) < 1e-2] = 0.5
        check_layer_gradients(ReLU(), x)

    def test_sigmoid_gradcheck(self):
        rng = np.random.default_rng(1)
        check_layer_gradients(Sigmoid(), rng.normal(size=(4, 5)))

    def test_tanh_gradcheck(self):
        rng = np.random.default_rng(2)
        check_layer_gradients(Tanh(), rng.normal(size=(4, 5)))

    def test_hardtanh_clips(self):
        x = np.array([[-3.0, -0.5, 0.5, 3.0]])
        np.testing.assert_allclose(HardTanh().forward(x), [[-1.0, -0.5, 0.5, 1.0]])

    def test_hardtanh_gradient_zero_outside(self):
        layer = HardTanh()
        layer.forward(np.array([[-3.0, 0.5, 3.0]]))
        dx = layer.backward(np.ones((1, 3)))
        np.testing.assert_allclose(dx, [[0.0, 1.0, 0.0]])

    def test_hardtanh_gradcheck_interior(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-0.9, 0.9, size=(3, 6))
        check_layer_gradients(HardTanh(), x)


class TestDropout:
    def test_eval_mode_is_identity(self):
        d = Dropout(0.5)
        d.eval_mode()
        x = np.random.default_rng(0).normal(size=(10, 10))
        np.testing.assert_allclose(d.forward(x), x)

    def test_training_zeroes_expected_fraction(self):
        d = Dropout(0.3, rng=np.random.default_rng(0))
        d.train_mode()
        x = np.ones((200, 200))
        y = d.forward(x)
        zero_frac = float((y == 0).mean())
        assert zero_frac == pytest.approx(0.3, abs=0.02)

    def test_inverted_scaling_preserves_mean(self):
        d = Dropout(0.4, rng=np.random.default_rng(1))
        d.train_mode()
        x = np.ones((300, 300))
        assert d.forward(x).mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self):
        d = Dropout(0.5, rng=np.random.default_rng(2))
        d.train_mode()
        x = np.ones((20, 20))
        y = d.forward(x)
        dx = d.backward(np.ones_like(x))
        np.testing.assert_allclose(dx, y)

    def test_rate_zero_is_identity_even_training(self):
        d = Dropout(0.0)
        d.train_mode()
        x = np.random.default_rng(3).normal(size=(5, 5))
        np.testing.assert_allclose(d.forward(x), x)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestFlatten:
    def test_forward_shape(self):
        x = np.arange(24.0).reshape(2, 3, 2, 2)
        assert Flatten().forward(x).shape == (2, 12)

    def test_roundtrip(self):
        f = Flatten()
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 4))
        y = f.forward(x)
        np.testing.assert_allclose(f.backward(y), x)

    def test_output_shape(self):
        assert Flatten().output_shape((256, 1, 1)) == (256,)
