"""Trainer gradient clipping and early stopping."""

import numpy as np
import pytest

from repro.nn import Dense, SGD, Sequential, SoftmaxCrossEntropy, Trainer


def blobs(rng, n=40):
    y = rng.integers(0, 2, size=n)
    x = rng.normal(size=(n, 4)) + 3.0 * y[:, None]
    return x, y


class TestGradClip:
    def test_clip_bounds_global_norm(self):
        rng = np.random.default_rng(0)
        net = Sequential([Dense(4, 2, rng=rng)])
        trainer = Trainer(
            net, SoftmaxCrossEntropy(), SGD(net.params(), lr=0.1), rng=rng, grad_clip=1e-6
        )
        x, y = blobs(rng)
        trainer.model.train_mode()
        trainer.optimizer.zero_grad()
        logits = net.forward(x)
        trainer.loss.forward(logits, y)
        net.backward(trainer.loss.backward())
        trainer._clip_gradients()
        norm = sum(float((p.grad**2).sum()) for p in trainer.optimizer.params) ** 0.5
        assert norm <= 1e-6 * (1 + 1e-9)

    def test_no_clip_below_threshold(self):
        rng = np.random.default_rng(1)
        net = Sequential([Dense(4, 2, rng=rng)])
        trainer = Trainer(
            net, SoftmaxCrossEntropy(), SGD(net.params(), lr=0.1), rng=rng, grad_clip=1e9
        )
        x, y = blobs(rng)
        loss1, _ = trainer.train_step(x, y)
        plain = Trainer(
            Sequential([Dense(4, 2, rng=np.random.default_rng(1))]),
            SoftmaxCrossEntropy(),
            SGD(net.params(), lr=0.1),
            rng=np.random.default_rng(1),
        )
        # A huge threshold must not alter the loss trajectory's first step.
        assert loss1 == pytest.approx(loss1)

    def test_invalid_clip(self):
        net = Sequential([Dense(2, 2)])
        with pytest.raises(ValueError):
            Trainer(net, SoftmaxCrossEntropy(), SGD(net.params(), lr=0.1), grad_clip=0.0)


class TestEarlyStopping:
    def test_stops_when_no_improvement(self):
        rng = np.random.default_rng(2)
        x, y = blobs(rng, n=60)
        net = Sequential([Dense(4, 2, rng=rng)])
        # lr=tiny: validation accuracy barely moves, so patience triggers.
        trainer = Trainer(
            net,
            SoftmaxCrossEntropy(),
            SGD(net.params(), lr=1e-9),
            rng=rng,
            patience=2,
        )
        history = trainer.fit(x, y, epochs=50, batch_size=16, x_val=x, y_val=y)
        assert history.epochs < 50

    def test_runs_full_epochs_without_validation(self):
        rng = np.random.default_rng(3)
        x, y = blobs(rng)
        net = Sequential([Dense(4, 2, rng=rng)])
        trainer = Trainer(
            net, SoftmaxCrossEntropy(), SGD(net.params(), lr=1e-9), rng=rng, patience=1
        )
        history = trainer.fit(x, y, epochs=5, batch_size=16)
        assert history.epochs == 5  # no val data -> patience cannot trigger

    def test_invalid_patience(self):
        net = Sequential([Dense(2, 2)])
        with pytest.raises(ValueError):
            Trainer(net, SoftmaxCrossEntropy(), SGD(net.params(), lr=0.1), patience=0)
