"""Sequential container and Trainer end-to-end behaviour."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    SGD,
    Sequential,
    SoftmaxCrossEntropy,
    Trainer,
    accuracy,
)


def tiny_cnn(rng):
    return Sequential(
        [
            Conv2D(1, 4, 3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(4 * 3 * 3, 3, rng=rng),
        ],
        name="tiny",
    )


def make_blobs(rng, n_per_class=30, dim=8, classes=3, spread=0.4):
    xs, ys = [], []
    for c in range(classes):
        center = rng.normal(size=dim) * 2.0
        xs.append(center + spread * rng.normal(size=(n_per_class, dim)))
        ys.append(np.full(n_per_class, c))
    return np.concatenate(xs), np.concatenate(ys)


class TestSequential:
    def test_forward_backward_shapes(self):
        rng = np.random.default_rng(0)
        net = tiny_cnn(rng)
        net.train_mode()  # backward needs the training-mode im2col cache
        x = rng.normal(size=(5, 1, 8, 8))
        out = net.forward(x)
        assert out.shape == (5, 3)
        dx = net.backward(np.ones_like(out))
        assert dx.shape == x.shape

    def test_output_shape_static(self):
        net = tiny_cnn(np.random.default_rng(0))
        assert net.output_shape((1, 8, 8)) == (3,)

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(1)
        net = tiny_cnn(rng)
        state = net.state_dict()
        for p in net.params():
            p.value = p.value + 1.0
        net.load_state_dict(state)
        x = rng.normal(size=(2, 1, 8, 8))
        net2 = tiny_cnn(np.random.default_rng(1))
        np.testing.assert_allclose(net.forward(x), net2.forward(x))

    def test_load_state_dict_rejects_mismatch(self):
        net = tiny_cnn(np.random.default_rng(0))
        state = net.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_mode_propagates(self):
        net = Sequential([Dropout(0.5), BatchNorm(3)])
        net.train_mode()
        assert all(layer.training for layer in net)
        net.eval_mode()
        assert not any(layer.training for layer in net)

    def test_predict_batched_equals_full(self):
        rng = np.random.default_rng(2)
        net = tiny_cnn(rng)
        x = rng.normal(size=(10, 1, 8, 8))
        np.testing.assert_allclose(net.predict(x, batch_size=3), net.predict(x, batch_size=100))

    def test_summary_contains_layers(self):
        net = tiny_cnn(np.random.default_rng(0))
        text = net.summary((1, 8, 8))
        assert "Conv2D" in text and "total params" in text

    def test_add_chains(self):
        net = Sequential().add(Flatten()).add(Dense(4, 2))
        assert len(net) == 2
        assert isinstance(net[1], Dense)


class TestTrainer:
    def test_learns_linearly_separable_blobs(self):
        rng = np.random.default_rng(3)
        x, y = make_blobs(rng)
        net = Sequential([Dense(8, 16, rng=rng), ReLU(), Dense(16, 3, rng=rng)])
        trainer = Trainer(net, SoftmaxCrossEntropy(), Adam(net.params(), lr=0.01), rng=rng)
        history = trainer.fit(x, y, epochs=30, batch_size=16)
        assert trainer.evaluate(x, y) > 0.95
        assert history.epochs == 30
        assert history.train_loss[-1] < history.train_loss[0]

    def test_keep_best_restores_best_snapshot(self):
        rng = np.random.default_rng(4)
        x, y = make_blobs(rng, n_per_class=20)
        net = Sequential([Dense(8, 3, rng=rng)])
        trainer = Trainer(
            net, SoftmaxCrossEntropy(), SGD(net.params(), lr=0.05), rng=rng, keep_best=True
        )
        history = trainer.fit(x, y, epochs=10, batch_size=8, x_val=x, y_val=y)
        final = trainer.evaluate(x, y)
        assert final == pytest.approx(history.best_val_accuracy, abs=1e-9)

    def test_lr_schedule_applied(self):
        rng = np.random.default_rng(5)
        x, y = make_blobs(rng, n_per_class=5)
        net = Sequential([Dense(8, 3, rng=rng)])
        opt = SGD(net.params(), lr=1.0)
        trainer = Trainer(net, SoftmaxCrossEntropy(), opt, rng=rng, lr_schedule=lambda e: 0.1 / (e + 1))
        trainer.fit(x, y, epochs=3, batch_size=8)
        assert opt.lr == pytest.approx(0.1 / 3)

    def test_mismatched_data_raises(self):
        rng = np.random.default_rng(6)
        net = Sequential([Dense(4, 2, rng=rng)])
        trainer = Trainer(net, SoftmaxCrossEntropy(), SGD(net.params(), lr=0.1))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((10, 4)), np.zeros(9, dtype=int), epochs=1)

    def test_accuracy_helper(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 1.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
        assert accuracy(np.zeros((0, 2)), np.array([])) == 0.0

    def test_train_step_reduces_loss_on_same_batch(self):
        rng = np.random.default_rng(7)
        x, y = make_blobs(rng, n_per_class=10)
        net = Sequential([Dense(8, 3, rng=rng)])
        trainer = Trainer(net, SoftmaxCrossEntropy(), SGD(net.params(), lr=0.1), rng=rng)
        first, _ = trainer.train_step(x, y)
        for _ in range(20):
            last, _ = trainer.train_step(x, y)
        assert last < first
