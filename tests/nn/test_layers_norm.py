"""BatchNorm and LocalResponseNorm tests."""

import numpy as np
import pytest

from repro.nn import BatchNorm, LocalResponseNorm
from repro.nn.gradcheck import check_layer_gradients


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        rng = np.random.default_rng(0)
        bn = BatchNorm(4)
        bn.train_mode()
        x = rng.normal(loc=3.0, scale=2.0, size=(64, 4))
        y = bn.forward(x)
        np.testing.assert_allclose(y.mean(axis=0), np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(y.std(axis=0), np.ones(4), atol=1e-3)

    def test_4d_normalizes_per_channel(self):
        rng = np.random.default_rng(0)
        bn = BatchNorm(3)
        bn.train_mode()
        x = rng.normal(loc=-1.0, scale=4.0, size=(8, 3, 5, 5))
        y = bn.forward(x)
        np.testing.assert_allclose(y.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-10)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm(2, momentum=0.0)  # momentum 0: running stats = last batch
        bn.train_mode()
        rng = np.random.default_rng(1)
        x = rng.normal(loc=5.0, size=(128, 2))
        bn.forward(x)
        bn.eval_mode()
        y = bn.forward(x)
        np.testing.assert_allclose(y.mean(axis=0), np.zeros(2), atol=1e-2)

    def test_gamma_beta_applied(self):
        bn = BatchNorm(2)
        bn.gamma.value = np.array([2.0, 3.0])
        bn.beta.value = np.array([-1.0, 1.0])
        bn.train_mode()
        x = np.random.default_rng(2).normal(size=(256, 2))
        y = bn.forward(x)
        np.testing.assert_allclose(y.mean(axis=0), [-1.0, 1.0], atol=1e-10)
        np.testing.assert_allclose(y.std(axis=0), [2.0, 3.0], atol=1e-2)

    def test_gradcheck_2d(self):
        rng = np.random.default_rng(3)
        bn = BatchNorm(3)
        x = rng.normal(size=(6, 3))
        check_layer_gradients(bn, x, rtol=1e-3, atol=1e-6)

    def test_gradcheck_4d(self):
        rng = np.random.default_rng(4)
        bn = BatchNorm(2)
        x = rng.normal(size=(3, 2, 4, 4))
        check_layer_gradients(bn, x, rtol=1e-3, atol=1e-6)

    def test_running_stats_not_trainable(self):
        bn = BatchNorm(4)
        trainable = [p for p in bn.params() if p.trainable]
        assert len(trainable) == 2
        assert len(bn.params()) == 4

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            BatchNorm(3).forward(np.zeros((2, 4)))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BatchNorm(0)
        with pytest.raises(ValueError):
            BatchNorm(3, momentum=1.0)

    def test_3d_input_rejected(self):
        with pytest.raises(ValueError):
            BatchNorm(3).forward(np.zeros((2, 3, 4)))


class TestLRN:
    def test_identity_when_alpha_zero(self):
        lrn = LocalResponseNorm(size=5, alpha=0.0, beta=0.75, k=1.0)
        x = np.random.default_rng(0).normal(size=(2, 8, 4, 4))
        np.testing.assert_allclose(lrn.forward(x), x)

    def test_matches_naive(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 6, 3, 3))
        size, alpha, beta, k = 3, 0.5, 0.75, 2.0
        lrn = LocalResponseNorm(size, alpha, beta, k)
        got = lrn.forward(x)
        half = size // 2
        want = np.zeros_like(x)
        for c in range(6):
            lo, hi = max(0, c - half), min(6, c + half + 1)
            denom = (k + alpha / size * (x[:, lo:hi] ** 2).sum(axis=1)) ** beta
            want[:, c] = x[:, c] / denom
        np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_gradcheck(self):
        rng = np.random.default_rng(2)
        lrn = LocalResponseNorm(size=3, alpha=0.3, beta=0.75, k=1.5)
        x = rng.normal(size=(2, 5, 3, 3))
        check_layer_gradients(lrn, x, rtol=1e-4, atol=1e-7)

    def test_even_size_rejected(self):
        with pytest.raises(ValueError):
            LocalResponseNorm(size=4)

    def test_non_nchw_rejected(self):
        with pytest.raises(ValueError):
            LocalResponseNorm().forward(np.zeros((2, 3)))
