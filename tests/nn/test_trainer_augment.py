"""Trainer augmentation hook."""

import numpy as np

from repro.nn import Dense, SGD, Sequential, SoftmaxCrossEntropy, Trainer


class TestTrainerAugment:
    def test_augment_applied_in_training(self):
        calls = []

        def spy(x):
            calls.append(x.shape[0])
            return x

        rng = np.random.default_rng(0)
        net = Sequential([Dense(4, 2, rng=rng)])
        trainer = Trainer(
            net, SoftmaxCrossEntropy(), SGD(net.params(), lr=0.1), rng=rng, augment=spy
        )
        x = rng.normal(size=(10, 4))
        y = rng.integers(0, 2, size=10)
        trainer.fit(x, y, epochs=2, batch_size=5)
        assert sum(calls) == 2 * 10  # every training sample passed through

    def test_augment_not_applied_in_eval(self):
        def poison(x):
            raise AssertionError("augment must not run during evaluation")

        rng = np.random.default_rng(1)
        net = Sequential([Dense(4, 2, rng=rng)])
        trainer = Trainer(
            net, SoftmaxCrossEntropy(), SGD(net.params(), lr=0.1), rng=rng, augment=poison
        )
        trainer.evaluate(rng.normal(size=(6, 4)), rng.integers(0, 2, size=6))

    def test_augmentation_changes_training_inputs(self):
        rng = np.random.default_rng(2)
        net = Sequential([Dense(4, 2, rng=rng)])
        trainer = Trainer(
            net,
            SoftmaxCrossEntropy(),
            SGD(net.params(), lr=0.0001),
            rng=rng,
            augment=lambda x: x + 100.0,
        )
        x = rng.normal(size=(4, 4))
        y = np.array([0, 1, 0, 1])
        loss_aug, _ = trainer.train_step(x, y)
        plain = Trainer(net, SoftmaxCrossEntropy(), SGD(net.params(), lr=0.0001), rng=rng)
        loss_plain, _ = plain.train_step(x, y)
        assert loss_aug != loss_plain
