"""Shared helpers for the network-layer test suite (imported, not a conftest)."""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serve.server import ServeResult


def make_result(prediction: int = 3, source: str = "bnn") -> ServeResult:
    return ServeResult(
        prediction=prediction,
        bnn_prediction=prediction,
        confidence=0.9,
        source=source,
        latency_seconds=0.001,
    )


class FakeBackend:
    """Controllable ``submit()`` backend for frontend/router tests.

    ``mode`` selects the behaviour:

    * ``"resolve"`` — every future resolves immediately; the prediction
      echoes ``int(image.flat[0])`` so tests can match request to answer.
    * ``"hold"`` — futures stay pending until the test resolves them
      (``backend.held``), modelling an arbitrarily slow cascade.
    * an exception instance — ``submit`` raises it.
    """

    def __init__(self, mode="resolve"):
        self.mode = mode
        self.lock = threading.Lock()
        self.submitted: list[np.ndarray] = []
        self.held: list[Future] = []
        self.closed = False

    def submit(self, image) -> Future:
        with self.lock:
            if isinstance(self.mode, BaseException):
                raise self.mode
            self.submitted.append(np.asarray(image))
            fut: Future = Future()
            if self.mode == "hold":
                self.held.append(fut)
            else:
                fut.set_result(make_result(prediction=int(np.asarray(image).flat[0])))
            return fut

    def resolve_held(self) -> None:
        with self.lock:
            held, self.held = self.held, []
        for i, fut in enumerate(held):
            if not fut.done():
                fut.set_result(make_result(prediction=i))

    def close(self, timeout: float | None = None) -> None:
        self.closed = True


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.005) -> None:
    """Poll *predicate* until true; pytest-fail on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    pytest.fail(f"condition not reached within {timeout}s")
