"""Loopback end-to-end: real trained cascade, wire answers bit-identical.

Trains a miniature real system (FINN CNV-style BNN, Model-A-style host,
trained DMU — the integration-suite workbench at reduced scale), serves
it behind a :class:`~repro.net.frontend.NetFrontend` over real loopback
sockets, and asserts the :class:`~repro.net.client.NetClient` results
are **bit-identical** to in-process
:meth:`repro.serve.CascadeServer.submit` on the same images — the wire
adds encoding, framing, admission and async plumbing, but not one ULP
of numerical difference.  Repeated with ``REPRO_HOST_WORKERS=2`` so the
shared-memory parallel host path is under the same contract.
"""

import numpy as np
import pytest

from repro.bnn import clip_weights, fold_network
from repro.core import DecisionMakingUnit, train_dmu
from repro.data import build_score_dataset, normalize_to_pm1, synthetic_cifar10
from repro.models import build_finn_cnv, build_model_a
from repro.net.client import NetClient
from repro.net.frontend import NetFrontend
from repro.net.router import InProcessReplica, ShardRouter
from repro.nn import Adam, SoftmaxCrossEntropy, SquaredHinge, Trainer
from repro.serve import CascadeServer

NUM_E2E_IMAGES = 24


@pytest.fixture(scope="module")
def tiny_cascade():
    """Train a miniature real system once for this module."""
    rng = np.random.default_rng(0)
    splits = synthetic_cifar10(num_train=240, num_test=NUM_E2E_IMAGES, seed=0)

    bnn = build_finn_cnv(scale=0.1, rng=rng)
    Trainer(
        bnn, SquaredHinge(), Adam(bnn.params(), lr=3e-3, post_update=clip_weights),
        rng=rng,
    ).fit(normalize_to_pm1(splits.train.images), splits.train.labels,
          epochs=2, batch_size=60)
    folded = fold_network(bnn, num_classes=10)

    host = build_model_a(scale=0.15, rng=rng)
    Trainer(host, SoftmaxCrossEntropy(), Adam(host.params(), lr=1e-3), rng=rng).fit(
        splits.train.images, splits.train.labels, epochs=2, batch_size=60
    )

    scores = build_score_dataset(
        folded.class_scores(normalize_to_pm1(splits.train.images)),
        splits.train.labels,
    )
    trained = train_dmu(scores, epochs=10, rng=rng)
    # Re-threshold at the median test-set confidence so this tiny system
    # exercises *both* cascade outcomes (BNN-accepted and host-rerun).
    test_confidence = trained.confidence(
        folded.class_scores(normalize_to_pm1(splits.test.images))
    )
    dmu = DecisionMakingUnit(
        trained.weights,
        trained.bias,
        threshold=float(np.clip(np.median(test_confidence), 0.01, 0.99)),
        sort_inputs=trained.sort_inputs,
    )
    return splits, folded, host, dmu


def server_kwargs(tiny_cascade, **extra):
    _, folded, host, dmu = tiny_cascade

    def bnn_scores_fn(images):
        return folded.class_scores(normalize_to_pm1(images))

    kwargs = dict(
        bnn_scores_fn=bnn_scores_fn,
        dmu=dmu,
        host_predict_fn=host.predict_classes,
        batch_delay_s=0.001,
        host_queue_capacity=64,
    )
    kwargs.update(extra)
    return kwargs


@pytest.fixture(scope="module")
def baseline(tiny_cascade):
    """In-process ``submit()`` answers on the test images (serial host)."""
    splits = tiny_cascade[0]
    images = list(splits.test.images)
    with CascadeServer(**server_kwargs(tiny_cascade)) as server:
        results = [server.submit(image).result(timeout=60.0) for image in images]
    assert {r.source for r in results} == {"bnn", "host"}  # both paths hit
    return images, results


def assert_bit_identical(wire_results, baseline_results):
    for wire, base in zip(wire_results, baseline_results):
        assert wire.prediction == base.prediction
        assert wire.bnn_prediction == base.bnn_prediction
        assert wire.source == base.source
        # Bit-identical, not approximately equal: the float64 confidence
        # must survive DMU → DECISION frame → client without drift.
        assert wire.confidence == base.confidence
        assert wire.logits.shape == (1,)
        assert float(wire.logits[0]) == base.confidence


class TestLoopbackE2E:
    def test_wire_results_bit_identical_to_in_process(self, tiny_cascade, baseline):
        images, base_results = baseline
        with CascadeServer(**server_kwargs(tiny_cascade)) as server:
            with NetFrontend(server) as frontend:
                with NetClient(*frontend.address) as client:
                    wire_results = [
                        client.classify(image, timeout=60.0) for image in images
                    ]
        assert_bit_identical(wire_results, base_results)
        snap = frontend.metrics.snapshot()
        assert snap.requests == snap.answered == len(images)
        assert snap.balanced

    def test_wire_results_bit_identical_with_parallel_host(
        self, tiny_cascade, baseline, monkeypatch
    ):
        # The frontend wraps a cascade whose host pool runs in two
        # worker processes (resolved from the environment, as deployed).
        monkeypatch.setenv("REPRO_HOST_WORKERS", "2")
        images, base_results = baseline
        with CascadeServer(**server_kwargs(tiny_cascade)) as server:
            assert server._host_runner is not None  # env var took effect
            with NetFrontend(server) as frontend:
                with NetClient(*frontend.address) as client:
                    wire_results = [
                        client.classify(image, timeout=60.0) for image in images
                    ]
        assert_bit_identical(wire_results, base_results)

    def test_wire_results_bit_identical_through_router(
        self, tiny_cascade, baseline
    ):
        # Full path: client → frontend → router → replica.  Rendezvous
        # placement, two replicas of the same trained cascade.
        images, base_results = baseline
        replicas = [
            InProcessReplica(i, CascadeServer(**server_kwargs(tiny_cascade)))
            for i in range(2)
        ]
        router = ShardRouter(replicas, placement="rendezvous")
        try:
            with NetFrontend(router) as frontend:
                with NetClient(*frontend.address) as client:
                    wire_results = [
                        client.classify(image, timeout=60.0) for image in images
                    ]
        finally:
            router.close()
        assert_bit_identical(wire_results, base_results)
        snap = router.snapshot()
        assert snap.routed == len(images)
        assert snap.balanced
        # Rendezvous spread the images across both replicas.
        assert len(snap.replica_routed) == 2
