"""Chaos tests for the network stack: seeded faults + replica murder.

Two layers of chaos, both replayable:

* **Seeded fault plans** (:class:`repro.faults.FaultPlan`) injected into
  every replica's cascade: the per-stage fault stream is a pure function
  of ``(seed, stage, call_index)``, so a sequential drive through the
  full wire stack must produce the *identical* outcome sequence on every
  run — the wire adds no nondeterminism.
* **Replica murder**: SIGKILL one of three process replicas mid-stream.
  In-flight requests on the victim fail with a typed
  ``ERROR(replica_failure)`` frame (never a silent replay), new traffic
  drains to survivors, and the books balance at the router *and* the
  frontend for any seeded plan — the ISSUE's acceptance scenario.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.net.bench import (
    NetBenchConfig,
    make_oracle_images,
    oracle_replica_kwargs,
    run_net_bench,
)
from repro.net.client import NetClient, WireError, WireRejected, WireShutdown
from repro.net.frontend import NetFrontend
from repro.net.router import InProcessReplica, ReplicaFailure, ShardRouter
from repro.serve.server import CascadeServer

from netharness import wait_until

TYPED_CLIENT_ERRORS = {"WireError", "WireRejected", "WireShutdown"}


class TestSeededFaultDeterminism:
    """Same plan + same seed ⇒ same wire outcomes, run after run."""

    PLAN = FaultPlan(
        seed=2018,
        specs=(
            FaultSpec(stage="host", kind="exception", probability=0.75),
            FaultSpec(stage="bnn", kind="corrupt", probability=0.1),
        ),
    )
    NUM_IMAGES = 60

    def _drive_once(self):
        """Fresh stack, sequential drive, outcome fingerprint."""
        images = make_oracle_images(self.NUM_IMAGES, seed=7, signal=1.0)
        replicas = [
            InProcessReplica(i, CascadeServer(
                **oracle_replica_kwargs(threshold=0.9, fault_plan=self.PLAN)
            ))
            for i in range(2)
        ]
        router = ShardRouter(replicas, placement="round_robin")
        frontend = NetFrontend(router)
        outcomes = []
        try:
            frontend.start()
            with NetClient(*frontend.address) as client:
                for image in images:
                    try:
                        r = client.classify(image, timeout=30.0)
                        outcomes.append(
                            ("ok", r.prediction, r.bnn_prediction,
                             round(r.confidence, 12), r.source)
                        )
                    except (WireError, WireRejected) as exc:
                        outcomes.append(("err", type(exc).__name__, exc.reason))
            front_snap = frontend.metrics.snapshot()
            route_snap = router.snapshot()
        finally:
            frontend.close()
            router.close()
        assert front_snap.balanced
        assert route_snap.balanced
        assert route_snap.submitted == self.NUM_IMAGES
        counts = (route_snap.routed, route_snap.rejected, route_snap.failed)
        return outcomes, counts

    def test_two_runs_identical(self):
        first_outcomes, first_counts = self._drive_once()
        second_outcomes, second_counts = self._drive_once()
        assert first_outcomes == second_outcomes
        assert first_counts == second_counts
        # The plan actually bit: some requests failed or degraded.
        kinds = {outcome[0] for outcome in first_outcomes}
        sources = {o[4] for o in first_outcomes if o[0] == "ok"}
        assert "err" in kinds or "degraded" in sources

    def test_failed_requests_carry_typed_reasons(self):
        outcomes, _ = self._drive_once()
        for outcome in outcomes:
            if outcome[0] == "err":
                assert outcome[1] in TYPED_CLIENT_ERRORS
                assert outcome[2] != "internal"  # typed, not a grab-bag


class TestReplicaMurder:
    """Kill 1 of 3 replicas mid-stream; the acceptance invariants hold."""

    def _config(self, **overrides):
        base = dict(
            num_requests=150,
            num_clients=4,
            num_replicas=3,
            placement="round_robin",
            threshold=0.7,
            seed=11,
            kill_replica_after=30,
        )
        base.update(overrides)
        return NetBenchConfig(**base)

    def test_books_balance_and_99pct_terminal(self):
        report = run_net_bench(self._config())
        assert report["ok"], report
        assert report["client"]["terminal"] == 150
        assert report["client"]["terminal_ratio"] >= 0.99
        assert report["frontend"]["balanced"]
        assert report["router"]["balanced"]
        # The victim stopped taking traffic; survivors absorbed it.
        assert report["router"]["pings"] == [False, True, True]
        routed = report["router"]["replica_routed"]
        assert routed.get(1, 0) + routed.get(2, 0) > routed.get(0, 0)
        # Every client-visible failure was a typed wire error.
        assert set(report["client"]["error_types"]) <= TYPED_CLIENT_ERRORS

    def test_reproducible_across_two_runs(self):
        # Kill timing races the clients, so per-request outcomes may
        # differ — but the acceptance invariants must hold on *every*
        # run with the same seed, and the classified stream is the same.
        reports = [run_net_bench(self._config()) for _ in range(2)]
        for report in reports:
            assert report["ok"], report
            assert report["client"]["terminal"] == 150
            assert report["frontend"]["balanced"]
            assert report["router"]["balanced"]
            assert set(report["client"]["error_types"]) <= TYPED_CLIENT_ERRORS

    def test_murder_plus_fault_plan(self, tmp_path):
        # Compose both chaos modes: seeded host faults in every replica
        # AND a SIGKILL mid-stream.  The books must still balance.
        plan = FaultPlan(
            seed=5,
            specs=(FaultSpec(stage="host", kind="exception", probability=0.2),),
        )
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json())
        report = run_net_bench(self._config(
            fault_plan_path=str(plan_path), threshold=0.9, signal=1.0
        ))
        assert report["frontend"]["balanced"], report
        assert report["router"]["balanced"], report
        assert report["client"]["terminal"] == 150
        assert set(report["client"]["error_types"]) <= TYPED_CLIENT_ERRORS


class TestInFlightSemantics:
    """The no-silent-replay contract, observed at the wire."""

    def test_inflight_on_victim_fails_typed_others_unaffected(self):
        # Replica 0 wedges (hang faults) so requests provably sit in
        # flight on it when it dies; replica 1 is healthy.  The hang is
        # injected into the *bnn* stage: that always runs in the
        # replica's own batcher thread, whereas a host-stage hang would
        # sleep inside a pool worker under REPRO_HOST_WORKERS — where
        # close() kills the worker and the cascade can still rescue the
        # request instead of failing it.
        hang_plan = FaultPlan(
            seed=1,
            specs=(FaultSpec(stage="bnn", kind="hang", probability=1.0,
                             delay_s=30.0),),
        )
        victim = InProcessReplica(0, CascadeServer(
            **oracle_replica_kwargs(threshold=0.7, fault_plan=hang_plan)
        ))
        survivor_server = CascadeServer(**oracle_replica_kwargs(threshold=0.7))
        survivor = InProcessReplica(1, survivor_server)
        router = ShardRouter([victim, survivor], placement="round_robin")
        frontend = NetFrontend(router)
        images = make_oracle_images(8, seed=3, signal=4.0)
        try:
            frontend.start()
            with NetClient(*frontend.address) as client:
                # Round-robin: the first submission prefers replica 0,
                # where the hang fault wedges it in the bnn stage.
                doomed = client.submit(images[0])
                wait_until(lambda: router.snapshot().submitted == 1)
                victim.kill()
                with pytest.raises((WireError, WireShutdown)) as info:
                    doomed.result(timeout=30.0)
                if isinstance(info.value, WireError):
                    assert info.value.reason in ("replica_failure", "server_closed")
                # New traffic fails over to the survivor, unaffected.
                for image in images[1:]:
                    result = client.classify(image, timeout=30.0)
                    assert result.source in ("bnn", "host")
                    assert result.prediction == int(image[-1])
            front_snap = frontend.metrics.snapshot()
            route_snap = router.snapshot()
            assert front_snap.balanced
            assert route_snap.balanced
            assert route_snap.failed >= 1
            assert route_snap.replica_failed.get(0, 0) >= 1
        finally:
            frontend.close()
            router.close()


@pytest.mark.slow
class TestChaosSoak:
    """Long mixed-chaos soak (excluded from the default run via -m 'not slow')."""

    def test_soak_murder_and_faults(self, tmp_path):
        plan = FaultPlan(
            seed=99,
            specs=(
                FaultSpec(stage="host", kind="exception", probability=0.1),
                FaultSpec(stage="bnn", kind="latency", probability=0.05,
                          delay_s=0.01),
            ),
        )
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json())
        report = run_net_bench(NetBenchConfig(
            num_requests=1000,
            num_clients=8,
            num_replicas=3,
            placement="rendezvous",
            threshold=0.9,
            signal=1.5,
            seed=42,
            fault_plan_path=str(plan_path),
            kill_replica_after=250,
        ))
        assert report["frontend"]["balanced"], report
        assert report["router"]["balanced"], report
        assert report["client"]["terminal"] == 1000
        assert report["client"]["terminal_ratio"] >= 0.99
        assert set(report["client"]["error_types"]) <= TYPED_CLIENT_ERRORS
