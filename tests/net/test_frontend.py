"""Socket frontend tests: frame flow, admission control, typed shutdown.

The backend here is the controllable :class:`netharness.FakeBackend`
so each test isolates one frontend behaviour: the ``ACCEPTED → DECISION →
LOGITS`` happy path, queue-full shedding, typed error mapping, malformed
peers, and the close-ordering contract (the socket-layer mirror of PR 4's
``ServerClosed`` stranded-futures fix): ``close()`` must resolve every
pending request with ``ERROR(shutdown)`` and hand every connection —
including half-read ones — a ``SHUTDOWN`` frame, never a silent reset.
"""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.net import protocol as p
from repro.net.client import NetClient, WireError, WireRejected, WireShutdown
from repro.net.frontend import NetFrontend
from repro.net.router import NoHealthyReplica
from repro.serve.resilience import StageFailure

from netharness import FakeBackend, wait_until


@pytest.fixture
def backend():
    return FakeBackend()


def _image(value: float = 5.0) -> np.ndarray:
    return np.full(4, value, dtype=np.float64)


class TestHappyPath:
    def test_request_resolves_to_wire_result(self, backend):
        with NetFrontend(backend) as frontend:
            with NetClient(*frontend.address) as client:
                result = client.classify(_image(7))
        assert result.prediction == 7
        assert result.source == "bnn"
        assert result.logits.shape == (1,)
        assert result.logits.dtype == np.float64
        snap = frontend.metrics.snapshot()
        assert snap.requests == snap.answered == 1
        assert snap.balanced

    def test_many_requests_multiplex_on_one_connection(self, backend):
        with NetFrontend(backend) as frontend:
            with NetClient(*frontend.address) as client:
                futures = [client.submit(_image(i)) for i in range(20)]
                results = [f.result(timeout=30) for f in futures]
        assert [r.prediction for r in results] == list(range(20))
        snap = frontend.metrics.snapshot()
        assert snap.requests == snap.answered == 20
        assert snap.balanced

    def test_many_connections(self, backend):
        with NetFrontend(backend) as frontend:
            clients = [NetClient(*frontend.address) for _ in range(5)]
            try:
                for i, client in enumerate(clients):
                    assert client.classify(_image(i)).prediction == i
            finally:
                for client in clients:
                    client.close()
        snap = frontend.metrics.snapshot()
        assert snap.connections == 5
        assert snap.connections_closed == 5
        assert snap.answered == 5

    def test_ping_pong(self, backend):
        with NetFrontend(backend) as frontend:
            with NetClient(*frontend.address) as client:
                assert client.ping(timeout=10.0)
        assert frontend.metrics.snapshot().pings == 1


class TestAdmissionControl:
    def test_queue_full_rejects_typed(self):
        backend = FakeBackend(mode="hold")
        with NetFrontend(backend, max_inflight=2) as frontend:
            with NetClient(*frontend.address) as client:
                first = [client.submit(_image()) for _ in range(2)]
                wait_until(lambda: len(backend.submitted) == 2)
                with pytest.raises(WireRejected) as info:
                    client.classify(_image(), timeout=10.0)
                assert info.value.code == p.REJECT_QUEUE_FULL
                assert info.value.reason == "queue_full"
                # Shedding did not disturb the admitted requests.
                backend.resolve_held()
                for fut in first:
                    fut.result(timeout=10.0)
        snap = frontend.metrics.snapshot()
        assert (snap.requests, snap.answered, snap.rejected) == (3, 2, 1)
        assert snap.balanced

    def test_no_healthy_replica_maps_to_rejected(self):
        backend = FakeBackend(mode=NoHealthyReplica("all dead"))
        with NetFrontend(backend) as frontend:
            with NetClient(*frontend.address) as client:
                with pytest.raises(WireRejected) as info:
                    client.classify(_image(), timeout=10.0)
        assert info.value.code == p.REJECT_NO_REPLICA
        assert info.value.reason == "no_healthy_replica"
        snap = frontend.metrics.snapshot()
        assert (snap.requests, snap.rejected) == (1, 1)
        assert snap.balanced

    def test_backend_exception_maps_to_typed_error(self):
        backend = FakeBackend(mode=StageFailure("host", RuntimeError("boom")))
        with NetFrontend(backend) as frontend:
            with NetClient(*frontend.address) as client:
                with pytest.raises(WireError) as info:
                    client.classify(_image(), timeout=10.0)
        assert info.value.code == p.ERR_STAGE_FAILURE
        assert info.value.reason == "stage_failure"
        snap = frontend.metrics.snapshot()
        assert (snap.requests, snap.failed) == (1, 1)
        assert snap.balanced


class TestMalformedPeers:
    def test_garbage_bytes_fail_only_that_connection(self, backend):
        with NetFrontend(backend) as frontend:
            host, port = frontend.address
            raw = socket.create_connection((host, port), timeout=10)
            raw.sendall(b"GET / HTTP/1.1\r\n\r\n")  # wrong protocol entirely
            chunks = b""
            while True:
                data = raw.recv(1 << 16)
                if not data:
                    break
                chunks += data
            raw.close()
            frame, _ = p.decode_frame(chunks)
            assert isinstance(frame, p.Error)
            assert frame.request_id == 0  # connection-scoped
            assert frame.code == p.ERR_PROTOCOL
            assert "BadMagic" in frame.detail
            # The frontend survives: a well-behaved client still works.
            with NetClient(host, port) as client:
                assert client.classify(_image(1)).prediction == 1
        assert frontend.metrics.snapshot().protocol_errors == 1

    def test_oversize_frame_rejected_without_buffering(self, backend):
        with NetFrontend(backend, max_frame_bytes=1024) as frontend:
            raw = socket.create_connection(frontend.address, timeout=10)
            # Header advertising a 1 GiB body; never send the body.
            raw.sendall(struct.pack(
                ">2sBBI", p.MAGIC, p.VERSION, p.FRAME_TYPES["request"], 1 << 30
            ))
            chunks = b""
            while True:
                data = raw.recv(1 << 16)
                if not data:
                    break
                chunks += data
            raw.close()
            frame, _ = p.decode_frame(chunks)
            assert isinstance(frame, p.Error)
            assert frame.code == p.ERR_PROTOCOL
            assert "FrameTooLarge" in frame.detail

    def test_server_frame_from_client_is_rejected(self, backend):
        with NetFrontend(backend) as frontend:
            raw = socket.create_connection(frontend.address, timeout=10)
            raw.sendall(p.encode_frame(p.Accepted(1)))  # nonsense direction
            chunks = b""
            while True:
                data = raw.recv(1 << 16)
                if not data:
                    break
                chunks += data
            raw.close()
            frame, _ = p.decode_frame(chunks)
            assert isinstance(frame, p.Error)
            assert frame.code == p.ERR_PROTOCOL
            assert "unexpected client frame" in frame.detail


class TestCloseOrdering:
    """`close()` leaves no connection without a typed farewell."""

    def test_pending_requests_fail_typed_on_close(self):
        backend = FakeBackend(mode="hold")
        frontend = NetFrontend(backend)
        frontend.start()
        client = NetClient(*frontend.address)
        try:
            fut = client.submit(_image())
            wait_until(lambda: len(backend.submitted) == 1)
            frontend.close(drain_timeout=0.2)  # backend never answers
            with pytest.raises(WireError) as info:
                fut.result(timeout=10.0)
            assert info.value.code == p.ERR_SHUTDOWN
            assert info.value.reason == "shutdown"
            # After the SHUTDOWN frame, new submissions fail client-side.
            wait_until(lambda: not client.ping(timeout=0.1))
            with pytest.raises(WireShutdown):
                client.classify(_image(), timeout=10.0)
        finally:
            client.close()
            frontend.close()
        snap = frontend.metrics.snapshot()
        assert (snap.requests, snap.failed) == (1, 1)
        assert snap.balanced

    def test_half_read_connection_gets_shutdown_frame(self):
        # A peer that sent only part of a frame still gets the typed
        # farewell — the regression this PR mirrors from PR 4.
        backend = FakeBackend(mode="hold")
        frontend = NetFrontend(backend)
        frontend.start()
        full = p.encode_frame(p.Request(1, _image()))
        raw = socket.create_connection(frontend.address, timeout=10)
        try:
            raw.sendall(full[: len(full) // 2])  # half a frame, then silence
            wait_until(lambda: frontend.metrics.snapshot().connections == 1)
            frontend.close(drain_timeout=0.2)
            chunks = b""
            raw.settimeout(10.0)
            while True:
                try:
                    data = raw.recv(1 << 16)
                except OSError:
                    break
                if not data:
                    break
                chunks += data
            frame, _ = p.decode_frame(chunks)
            assert frame == p.Shutdown("frontend closing")
        finally:
            raw.close()

    def test_close_drains_in_flight_before_shutdown(self):
        backend = FakeBackend(mode="hold")
        frontend = NetFrontend(backend)
        frontend.start()
        client = NetClient(*frontend.address)
        try:
            fut = client.submit(_image())
            wait_until(lambda: len(backend.submitted) == 1)
            # The backend answers inside the drain window: the request
            # must complete normally, not be converted to an error.
            timer = threading.Timer(0.1, backend.resolve_held)
            timer.start()
            frontend.close(drain_timeout=10.0)
            timer.join()
            result = fut.result(timeout=10.0)
            assert result.prediction == 0
        finally:
            client.close()
        snap = frontend.metrics.snapshot()
        assert (snap.answered, snap.failed) == (1, 0)
        assert snap.balanced

    def test_new_requests_rejected_while_closing(self):
        backend = FakeBackend(mode="hold")
        frontend = NetFrontend(backend)
        frontend.start()
        client = NetClient(*frontend.address)
        try:
            fut = client.submit(_image())
            wait_until(lambda: len(backend.submitted) == 1)
            closer = threading.Thread(
                target=frontend.close, kwargs={"drain_timeout": 1.0}, daemon=True
            )
            closer.start()
            # Give close() time to flip the closing flag, then race a
            # request in before the drain window expires.
            wait_until(lambda: frontend._closing)
            try:
                client.classify(_image(), timeout=10.0)
            except (WireRejected, WireError, WireShutdown):
                pass  # any *typed* outcome is acceptable; silence is not
            backend.resolve_held()
            closer.join(timeout=30.0)
            assert not closer.is_alive()
            fut.result(timeout=10.0)
        finally:
            client.close()
            frontend.close()
        assert frontend.metrics.snapshot().balanced

    def test_close_is_idempotent(self, backend):
        frontend = NetFrontend(backend)
        frontend.start()
        frontend.close()
        frontend.close()

    def test_close_before_start(self, backend):
        NetFrontend(backend).close()  # no-op, no crash


class TestClientLifecycle:
    def test_client_close_fails_pending(self):
        backend = FakeBackend(mode="hold")
        with NetFrontend(backend) as frontend:
            client = NetClient(*frontend.address)
            fut = client.submit(_image())
            wait_until(lambda: len(backend.submitted) == 1)
            client.close()
            with pytest.raises(WireShutdown):
                fut.result(timeout=10.0)
            with pytest.raises(WireShutdown):
                client.submit(_image())
            backend.resolve_held()

    def test_ping_false_after_server_gone(self, backend):
        frontend = NetFrontend(backend)
        frontend.start()
        client = NetClient(*frontend.address)
        try:
            assert client.ping(timeout=10.0)
            frontend.close()
            wait_until(lambda: not client.ping(timeout=0.2))
        finally:
            client.close()
