"""Protocol minor 2 on the wire: tenant suffix, cache source, routing.

The compatibility contract under test: a request with no tenant is
byte-identical to the pre-tenancy encoding (old captures keep
decoding), a tenant-addressed frame decodes on a minor-2 peer and fails
*loudly* on anything that mangles its suffix, and the frontend maps
:class:`~repro.serve.tenancy.UnknownTenant` /
:class:`~repro.serve.tenancy.TenantQuotaExceeded` onto typed
``REJECTED`` frames rather than connection failures.
"""

import struct
import threading
from concurrent.futures import Future

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import protocol as p
from repro.net.client import NetClient, WireRejected
from repro.net.frontend import NetFrontend
from repro.serve.tenancy import TenantQuotaExceeded, UnknownTenant

from netharness import FakeBackend, make_result

TENANT_NAMES = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1,
    max_size=40,
)


def _image(value: float = 5.0) -> np.ndarray:
    return np.full(4, value, dtype=np.float64)


class TestTenantSuffixEncoding:
    def test_round_trip(self):
        frame = p.Request(9, _image(), tenant="model-a")
        decoded, consumed = p.decode_frame(p.encode_frame(frame))
        assert decoded == frame
        assert decoded.tenant == "model-a"

    def test_empty_tenant_is_byte_identical_to_pre_tenancy_encoding(self):
        # The suffix is *omitted* (not zero-length-prefixed) when no
        # tenant is named: old decoders never see minor-2 bytes.
        img = np.arange(6, dtype=np.float32).reshape(2, 3)
        assert p.encode_frame(p.Request(7, img)) == p.encode_frame(
            p.Request(7, img, tenant="")
        )

    def test_old_frame_decodes_with_empty_tenant(self):
        # Hand-build a pre-tenancy frame: header | id | flags | array.
        img = np.array([1, 2, 255], dtype=np.uint8)
        body = struct.pack(">IB", 5, 0) + struct.pack(">BB", 5, 1) + struct.pack(
            ">I", 3
        ) + img.tobytes()
        raw = struct.pack(">2sBBI", p.MAGIC, p.VERSION, p.FRAME_TYPES["request"],
                          len(body)) + body
        frame, consumed = p.decode_frame(raw)
        assert consumed == len(raw)
        assert frame.tenant == ""
        np.testing.assert_array_equal(frame.image, img)

    @settings(max_examples=50, deadline=None)
    @given(tenant=TENANT_NAMES)
    def test_any_utf8_tenant_round_trips(self, tenant):
        frame = p.Request(1, _image(), tenant=tenant)
        decoded, _ = p.decode_frame(p.encode_frame(frame))
        assert decoded.tenant == tenant

    def test_tenant_over_255_utf8_bytes_is_rejected_at_encode(self):
        with pytest.raises(p.ProtocolError, match="max 255"):
            p.encode_frame(p.Request(1, _image(), tenant="x" * 256))
        # The boundary itself is fine.
        decoded, _ = p.decode_frame(
            p.encode_frame(p.Request(1, _image(), tenant="x" * 255))
        )
        assert decoded.tenant == "x" * 255

    def test_mangled_suffix_fails_loudly(self):
        raw = bytearray(p.encode_frame(p.Request(1, _image(), tenant="model-a")))
        raw = raw[:-2]  # drop two suffix bytes: declared length now lies
        raw[7] = len(raw) - p.HEADER_SIZE  # re-point the body length
        with pytest.raises(p.CorruptFrame, match="trailing"):
            p.decode_frame(bytes(raw))

    def test_non_utf8_tenant_suffix_fails_loudly(self):
        base = p.encode_frame(p.Request(1, _image()))
        body = base[p.HEADER_SIZE:] + struct.pack(">B", 2) + b"\xff\xfe"
        raw = struct.pack(">2sBBI", p.MAGIC, p.VERSION, p.FRAME_TYPES["request"],
                          len(body)) + body
        with pytest.raises(p.CorruptFrame, match="utf-8"):
            p.decode_frame(raw)


class TestCacheSourceEncoding:
    def test_cache_decision_round_trips_as_code_3(self):
        frame = p.Decision(4, 1, 1, "cache", 0.5, 0.001)
        raw = p.encode_frame(frame)
        fixed = struct.calcsize(">IiiBdd")
        assert raw[p.HEADER_SIZE + struct.calcsize(">Iii")] == 3
        assert len(raw) == p.HEADER_SIZE + fixed  # no name suffix
        decoded, _ = p.decode_frame(raw)
        assert decoded == frame

    def test_reject_tenant_reason_name(self):
        assert p.Rejected(1, p.REJECT_TENANT).reason == "unknown_tenant"
        assert p.REJECT_TENANT in p.REJECT_NAMES

    def test_protocol_minor_is_two(self):
        assert p.PROTOCOL_MINOR == 2
        assert p.SOURCE_TO_CODE["cache"] == 3


class FakeTenantBackend(FakeBackend):
    """FakeBackend that understands ``submit(image, tenant=...)``."""

    def __init__(self, names=("model-a", "model-c"), quota=None):
        super().__init__()
        self.tenant_names = tuple(names)
        self.quota = quota
        self.by_tenant: dict[str, int] = {}

    def submit(self, image, tenant=None) -> Future:
        name = tenant or self.tenant_names[0]
        if name not in self.tenant_names:
            raise UnknownTenant(name)
        count = self.by_tenant.get(name, 0)
        if self.quota is not None and count >= self.quota:
            raise TenantQuotaExceeded(f"tenant {name!r} is at its quota")
        self.by_tenant[name] = count + 1
        with self.lock:
            self.submitted.append(np.asarray(image))
            fut: Future = Future()
            fut.set_result(
                make_result(prediction=self.tenant_names.index(name), source="cache")
            )
            return fut


class TestFrontendTenantRouting:
    def test_tenant_routes_to_named_model(self):
        backend = FakeTenantBackend()
        with NetFrontend(backend) as frontend:
            with NetClient(*frontend.address) as client:
                a = client.classify(_image(), tenant="model-a")
                c = client.classify(_image(), tenant="model-c")
                default = client.classify(_image())
        assert (a.prediction, c.prediction, default.prediction) == (0, 1, 0)
        assert a.source == "cache"  # the new source survives the wire
        assert backend.by_tenant == {"model-a": 2, "model-c": 1}

    def test_unknown_tenant_is_a_typed_rejection(self):
        backend = FakeTenantBackend()
        with NetFrontend(backend) as frontend:
            with NetClient(*frontend.address) as client:
                with pytest.raises(WireRejected) as excinfo:
                    client.classify(_image(), tenant="model-x")
                # The connection survives the rejection.
                assert client.classify(_image(), tenant="model-a").prediction == 0
        assert excinfo.value.code == p.REJECT_TENANT
        assert excinfo.value.reason == "unknown_tenant"
        assert frontend.metrics.snapshot().rejected == 1

    def test_quota_exceeded_maps_to_queue_full(self):
        backend = FakeTenantBackend(quota=1)
        with NetFrontend(backend) as frontend:
            with NetClient(*frontend.address) as client:
                client.classify(_image(), tenant="model-a")
                with pytest.raises(WireRejected) as excinfo:
                    client.classify(_image(), tenant="model-a")
        assert excinfo.value.code == p.REJECT_QUEUE_FULL

    def test_single_tenant_backend_refuses_tenant_addressed_frames(self):
        backend = FakeBackend()  # no tenant_names attribute
        with NetFrontend(backend) as frontend:
            with NetClient(*frontend.address) as client:
                with pytest.raises(WireRejected) as excinfo:
                    client.classify(_image(), tenant="model-a")
                # Plain requests still work: old clients are unaffected.
                assert client.classify(_image(7)).prediction == 7
        assert excinfo.value.code == p.REJECT_TENANT
        assert backend.submitted and len(backend.submitted) == 1
