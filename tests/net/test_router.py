"""Shard router tests: placement, breakers, failover, books.

Most tests use :class:`~repro.net.router.InProcessReplica` around the
controllable fake backend so placement and failure handling are
deterministic and fast; one lifecycle test exercises a real
:class:`~repro.net.router.ProcessReplica` (spawn → submit → ping →
kill → typed in-flight failure).  The invariant every test ends on::

    routed + rejected + failed == submitted
"""

from functools import partial

import numpy as np
import pytest

from repro.net.bench import make_oracle_images, oracle_replica_kwargs
from repro.net.router import (
    InProcessReplica,
    NoHealthyReplica,
    ProcessReplica,
    ReplicaFailure,
    ShardRouter,
)
from repro.serve.resilience import CircuitBreaker

from netharness import FakeBackend, wait_until


def make_router(n=3, placement="round_robin", modes=None, **kwargs):
    backends = [
        FakeBackend(mode=(modes[i] if modes else "resolve")) for i in range(n)
    ]
    replicas = [InProcessReplica(i, backend) for i, backend in enumerate(backends)]
    router = ShardRouter(replicas, placement=placement, **kwargs)
    return router, backends


def _images(n, start=0):
    return [np.full(4, float(start + i)) for i in range(n)]


class TestPlacement:
    def test_round_robin_spreads_evenly(self):
        router, backends = make_router(3)
        results = router.classify_many(_images(9), timeout=10.0)
        assert len(results) == 9
        assert [len(b.submitted) for b in backends] == [3, 3, 3]
        snap = router.snapshot()
        assert snap.routed == 9
        assert snap.replica_routed == {0: 3, 1: 3, 2: 3}
        assert snap.failovers == 0
        assert snap.balanced

    def test_rendezvous_is_sticky_per_image(self):
        router, backends = make_router(3, placement="rendezvous")
        image = np.full(4, 7.0)
        for _ in range(5):
            router.submit(image).result(timeout=10.0)
        counts = [len(b.submitted) for b in backends]
        # All five placements landed on the same replica.
        assert sorted(counts) == [0, 0, 5]

    def test_rendezvous_spreads_distinct_images(self):
        router, backends = make_router(3, placement="rendezvous")
        router.classify_many(_images(60), timeout=10.0)
        counts = [len(b.submitted) for b in backends]
        assert sum(counts) == 60
        # HRW over 60 distinct payloads should touch every replica.
        assert all(count > 0 for count in counts)

    def test_rendezvous_remaps_only_dead_replicas_share(self):
        router, backends = make_router(3, placement="rendezvous")
        images = _images(30)
        router.classify_many(images, timeout=10.0)
        before = [len(b.submitted) for b in backends]
        owner = max(range(3), key=lambda i: before[i])
        survivor_share = {
            i: before[i] for i in range(3) if i != owner
        }
        router.replicas[owner].kill()
        router.classify_many(images, timeout=10.0)
        after = [len(b.submitted) for b in backends]
        # Survivors kept their original images (plus the remapped ones);
        # an image owned by a survivor never moved.
        for i, share in survivor_share.items():
            assert after[i] >= 2 * share
        assert after[owner] == before[owner]  # dead replica got nothing new
        assert router.snapshot().balanced

    def test_invalid_placement(self):
        with pytest.raises(ValueError, match="placement"):
            make_router(2, placement="random")

    def test_needs_replicas(self):
        with pytest.raises(ValueError, match="at least one replica"):
            ShardRouter([])


class TestFailover:
    def test_dead_replica_drains_to_survivors(self):
        router, backends = make_router(3)
        router.replicas[0].kill()
        results = router.classify_many(_images(6), timeout=10.0)
        assert len(results) == 6
        assert len(backends[0].submitted) == 0
        assert len(backends[1].submitted) + len(backends[2].submitted) == 6
        snap = router.snapshot()
        assert snap.routed == 6
        assert snap.failovers >= 1  # rotations that preferred replica 0
        assert snap.balanced

    def test_all_dead_raises_no_healthy_replica(self):
        router, _ = make_router(2)
        for replica in router.replicas:
            replica.kill()
        with pytest.raises(NoHealthyReplica):
            router.submit(np.zeros(4))
        snap = router.snapshot()
        assert (snap.submitted, snap.rejected) == (1, 1)
        assert snap.balanced

    def test_in_flight_failure_is_typed_not_replayed(self):
        router, backends = make_router(2, modes=["hold", "resolve"])
        fut = router.submit(np.zeros(4))  # round-robin: replica 0 first
        wait_until(lambda: len(backends[0].submitted) == 1)
        held = backends[0].held.pop()
        held.set_exception(ReplicaFailure(0, "replica killed"))
        with pytest.raises(ReplicaFailure):
            fut.result(timeout=10.0)
        snap = router.snapshot()
        assert (snap.submitted, snap.failed) == (1, 1)
        assert snap.replica_failed == {0: 1}
        # The request was NOT resubmitted to the healthy replica.
        assert len(backends[1].submitted) == 0
        assert snap.balanced

    def test_breaker_opens_after_repeated_failures(self):
        router, backends = make_router(
            2,
            modes=[ReplicaFailure(0, "boom"), "resolve"],
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=3, cooldown_s=60.0
            ),
        )
        for i in range(8):
            router.submit(np.full(4, float(i))).result(timeout=10.0)
        assert router.breaker_states()[0] == "open"
        assert router.breaker_states()[1] == "closed"
        # Once open, replica 0 is skipped without attempting dispatch.
        failovers_when_open = router.snapshot().failovers
        router.submit(np.zeros(4)).result(timeout=10.0)
        snap = router.snapshot()
        assert snap.routed == 9
        assert len(backends[1].submitted) == 9
        assert snap.balanced
        assert snap.failovers >= failovers_when_open

    def test_closed_router_rejects(self):
        router, _ = make_router(1)
        router.close()
        with pytest.raises(NoHealthyReplica):
            router.submit(np.zeros(4))

    def test_health_views(self):
        router, _ = make_router(2)
        assert router.alive() == [True, True]
        assert router.ping() == [True, True]
        router.replicas[1].kill()
        assert router.alive() == [True, False]
        assert router.ping() == [True, False]
        router.close()


class TestProcessReplica:
    """One real child process end to end (the chaos suite does the rest)."""

    def test_lifecycle_submit_ping_kill(self):
        replica = ProcessReplica(0, partial(oracle_replica_kwargs, threshold=0.7))
        try:
            assert replica.alive()
            assert replica.ping(timeout=10.0)
            image = make_oracle_images(1, seed=3, signal=4.0)[0]
            result = replica.submit(image).result(timeout=30.0)
            assert result.prediction == int(image[-1])
            assert result.source in ("bnn", "host")
            # Kill with a request in flight: typed failure, no hang.
            fut = replica.submit(image)
            replica.kill()
            with pytest.raises(ReplicaFailure):
                fut.result(timeout=30.0)
            assert not replica.alive()
            assert not replica.ping(timeout=1.0)
            with pytest.raises(ReplicaFailure):
                replica.submit(image)
        finally:
            replica.close(timeout=5.0)

    def test_factory_error_is_reported(self):
        with pytest.raises(RuntimeError, match="failed to start"):
            ProcessReplica(0, _broken_factory)


def _broken_factory():
    raise RuntimeError("no cascade for you")
