"""Wire-protocol unit tests: golden bytes, round-trip property, malformed frames.

Three layers of defence for :mod:`repro.net.protocol`:

* **Golden fixtures** (``golden_frames.json``) pin the byte layout — any
  encoder change that alters bytes on the wire breaks these, which is
  the point: old clients must keep decoding new servers.
* **Hypothesis round-trip**: ``decode(encode(x)) == x`` for every frame
  type over generated payloads (all supported dtypes, shapes, NaNs).
* **Malformed-frame tests**: truncated header, bad magic, bad version,
  unknown type, oversize length, short body, trailing garbage — each
  must raise its typed :class:`~repro.net.protocol.ProtocolError`
  without hanging, and the incremental decoder must poison itself.
"""

import json
import struct
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.net import protocol as p

GOLDEN_PATH = Path(__file__).parent / "golden_frames.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

UINT32 = st.integers(min_value=0, max_value=2**32 - 1)
UINT64 = st.integers(min_value=0, max_value=2**64 - 1)
INT32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
DETAIL = st.text(max_size=200)

WIRE_DTYPES = st.sampled_from(
    [np.float32, np.float64, np.int32, np.int64, np.uint8, np.bool_]
)


def wire_arrays(max_side: int = 8):
    return WIRE_DTYPES.flatmap(
        lambda dtype: npst.arrays(
            dtype=dtype,
            shape=npst.array_shapes(min_dims=0, max_dims=4, max_side=max_side),
        )
    )


def _reconstruct(entry: dict):
    """Build the frame object a golden entry describes, from scratch."""
    builders = {
        "request_f32_2d": lambda: p.Request(
            7, np.arange(6, dtype=np.float32).reshape(2, 3)
        ),
        "request_u8_flags": lambda: p.Request(
            0xDEADBEEF, np.array([1, 2, 255], dtype=np.uint8), flags=3
        ),
        "request_scalar_f64": lambda: p.Request(1, np.array(2.5, dtype=np.float64)),
        "ping": lambda: p.Ping(0x1122334455667788),
        "pong": lambda: p.Pong(42),
        "accepted": lambda: p.Accepted(12345),
        "rejected_queue_full": lambda: p.Rejected(
            9, p.REJECT_QUEUE_FULL, "256 requests in flight (max 256)"
        ),
        "rejected_closing_empty_detail": lambda: p.Rejected(10, p.REJECT_CLOSING),
        "decision_bnn": lambda: p.Decision(11, 3, 3, "bnn", 0.9375, 0.001953125),
        "decision_host_negative_pred": lambda: p.Decision(
            12, -1, 7, "host", 0.25, 1.5
        ),
        "decision_degraded": lambda: p.Decision(13, 2, 2, "degraded", 0.0, 0.0),
        "decision_ladder_named": lambda: p.Decision(14, 5, 2, "mid1", 0.75, 0.25),
        "logits_one_confidence": lambda: p.Logits(
            11, np.array([0.9375], dtype=np.float64)
        ),
        "logits_ladder": lambda: p.Logits(
            14, np.array([0.5, 0.75, 1.0], dtype=np.float32)
        ),
        "error_stage_failure": lambda: p.Error(
            15, p.ERR_STAGE_FAILURE, "StageFailure('host', ...)"
        ),
        "error_connection_scoped": lambda: p.Error(
            0, p.ERR_PROTOCOL, "BadMagic: bad magic b'XX'"
        ),
        "shutdown": lambda: p.Shutdown("frontend closing"),
        "shutdown_unicode": lambda: p.Shutdown("adiós ☂"),
        # Protocol minor 2: tenant suffix, cache source, tenant rejection.
        "request_tenant": lambda: p.Request(
            21, np.array([1.0, -1.0], dtype=np.float32), tenant="model-a"
        ),
        "decision_cache": lambda: p.Decision(
            22, 4, 4, "cache", 0.875, 0.0001220703125
        ),
        "rejected_unknown_tenant": lambda: p.Rejected(
            23, p.REJECT_TENANT, "backend is single-tenant, cannot serve 'model-x'"
        ),
    }
    return builders[entry["name"]]()


class TestGoldenFrames:
    """The committed hex fixtures pin the wire format."""

    def test_every_frame_type_has_a_golden_fixture(self):
        covered = {entry["type"] for entry in GOLDEN}
        assert covered == set(p.FRAME_TYPES)

    @pytest.mark.parametrize("entry", GOLDEN, ids=lambda e: e["name"])
    def test_encode_matches_golden_bytes(self, entry):
        assert p.encode_frame(_reconstruct(entry)).hex() == entry["hex"]

    @pytest.mark.parametrize("entry", GOLDEN, ids=lambda e: e["name"])
    def test_decode_golden_bytes(self, entry):
        raw = bytes.fromhex(entry["hex"])
        frame, consumed = p.decode_frame(raw)
        assert consumed == len(raw)
        assert frame == _reconstruct(entry)
        assert frame.type_name == entry["type"]

    def test_header_layout_is_pinned(self):
        # 2-byte magic "RN", 1-byte version, 1-byte type, uint32 length.
        raw = bytes.fromhex(GOLDEN[0]["hex"])
        magic, version, frame_type, length = struct.unpack(">2sBBI", raw[:8])
        assert magic == b"RN"
        assert version == 1
        assert frame_type == p.FRAME_TYPES["request"]
        assert length == len(raw) - p.HEADER_SIZE


class TestRoundTrip:
    """decode(encode(x)) == x for every frame type."""

    @given(request_id=UINT32, flags=st.integers(0, 255), image=wire_arrays())
    @settings(max_examples=60, deadline=None)
    def test_request(self, request_id, flags, image):
        frame = p.Request(request_id, image, flags)
        decoded, consumed = p.decode_frame(p.encode_frame(frame))
        assert decoded == frame
        assert decoded.image.dtype == np.asarray(image).dtype
        assert decoded.image.shape == np.asarray(image).shape
        assert consumed == len(p.encode_frame(frame))

    @given(request_id=UINT32, values=wire_arrays())
    @settings(max_examples=60, deadline=None)
    def test_logits(self, request_id, values):
        frame = p.Logits(request_id, values)
        decoded, _ = p.decode_frame(p.encode_frame(frame))
        assert decoded == frame

    @given(nonce=UINT64)
    @settings(max_examples=30, deadline=None)
    def test_ping_pong(self, nonce):
        for cls in (p.Ping, p.Pong):
            frame = cls(nonce)
            decoded, _ = p.decode_frame(p.encode_frame(frame))
            assert decoded == frame

    @given(request_id=UINT32)
    @settings(max_examples=30, deadline=None)
    def test_accepted(self, request_id):
        decoded, _ = p.decode_frame(p.encode_frame(p.Accepted(request_id)))
        assert decoded == p.Accepted(request_id)

    @given(request_id=UINT32, code=st.integers(0, 255), detail=DETAIL)
    @settings(max_examples=60, deadline=None)
    def test_rejected_and_error(self, request_id, code, detail):
        for cls in (p.Rejected, p.Error):
            frame = cls(request_id, code, detail)
            decoded, _ = p.decode_frame(p.encode_frame(frame))
            assert decoded == frame

    @given(
        request_id=UINT32,
        prediction=INT32,
        bnn_prediction=INT32,
        source=st.one_of(
            st.sampled_from(sorted(p.SOURCE_TO_CODE)),
            # Ladder rungs ride as named sources (code SOURCE_NAMED).
            st.text(min_size=1, max_size=32).filter(
                lambda s: s not in p.SOURCE_TO_CODE
            ),
        ),
        confidence=st.floats(allow_nan=True),
        latency=st.floats(allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_decision(
        self, request_id, prediction, bnn_prediction, source, confidence, latency
    ):
        frame = p.Decision(
            request_id, prediction, bnn_prediction, source, confidence, latency
        )
        decoded, _ = p.decode_frame(p.encode_frame(frame))
        if confidence != confidence:  # NaN round-trips to NaN, != itself
            assert decoded.confidence != decoded.confidence
            decoded = p.Decision(
                decoded.request_id, decoded.prediction, decoded.bnn_prediction,
                decoded.source, confidence, decoded.latency_seconds,
            )
        assert decoded == frame

    @given(detail=DETAIL)
    @settings(max_examples=30, deadline=None)
    def test_shutdown(self, detail):
        decoded, _ = p.decode_frame(p.encode_frame(p.Shutdown(detail)))
        assert decoded == p.Shutdown(detail)

    @given(image=wire_arrays())
    @settings(max_examples=40, deadline=None)
    def test_request_nan_payload_bitwise_stable(self, image):
        # Byte-for-byte payload stability, not just value equality.
        frame = p.Request(1, image)
        decoded, _ = p.decode_frame(p.encode_frame(frame))
        assert decoded.image.tobytes() == np.ascontiguousarray(image).tobytes()

    def test_noncontiguous_array_payload(self):
        base = np.arange(24, dtype=np.float32).reshape(4, 6)
        view = base[::2, ::3]  # non-contiguous strided view
        decoded, _ = p.decode_frame(p.encode_frame(p.Request(1, view)))
        np.testing.assert_array_equal(decoded.image, np.ascontiguousarray(view))


class TestEncodeRejections:
    def test_unsupported_dtype(self):
        with pytest.raises(p.ProtocolError, match="unsupported wire dtype"):
            p.encode_frame(p.Request(1, np.array([1 + 2j])))

    def test_too_many_dims(self):
        with pytest.raises(p.ProtocolError, match="ndim"):
            p.encode_frame(p.Request(1, np.zeros((1,) * 9, dtype=np.uint8)))

    def test_oversize_body(self):
        with pytest.raises(p.FrameTooLarge):
            p.encode_frame(
                p.Request(1, np.zeros(p.MAX_FRAME_BODY + 1, dtype=np.uint8))
            )

    def test_empty_decision_source(self):
        with pytest.raises(p.ProtocolError, match="source must be non-empty"):
            p.encode_frame(p.Decision(1, 0, 0, "", 0.5, 0.0))

    def test_unencodable_object(self):
        with pytest.raises(p.ProtocolError, match="cannot encode"):
            p.encode_frame(object())


class TestMalformedFrames:
    """Hostile bytes fail typed and fast — never a hang, never a crash."""

    GOOD = p.encode_frame(p.Ping(7))

    def test_truncated_header(self):
        for cut in range(p.HEADER_SIZE):
            with pytest.raises(p.TruncatedFrame):
                p.decode_frame(self.GOOD[:cut])

    def test_truncated_body(self):
        raw = p.encode_frame(p.Shutdown("goodbye"))
        for cut in range(p.HEADER_SIZE, len(raw)):
            with pytest.raises(p.TruncatedFrame):
                p.decode_frame(raw[:cut])

    def test_bad_magic(self):
        with pytest.raises(p.BadMagic):
            p.decode_frame(b"XX" + self.GOOD[2:])

    def test_bad_version(self):
        with pytest.raises(p.BadVersion):
            p.decode_frame(self.GOOD[:2] + bytes([99]) + self.GOOD[3:])

    def test_unknown_frame_type(self):
        with pytest.raises(p.UnknownFrameType):
            p.decode_frame(self.GOOD[:3] + bytes([0x7F]) + self.GOOD[4:])

    def test_oversize_length_rejected_from_header_alone(self):
        # 8 header bytes advertising a 1 GiB body: rejected immediately,
        # without waiting for (or buffering) the body.
        header = struct.pack(">2sBBI", p.MAGIC, p.VERSION, p.FRAME_TYPES["ping"], 1 << 30)
        with pytest.raises(p.FrameTooLarge):
            p.decode_frame(header)

    def test_short_fixed_body(self):
        # PING advertises 4 bytes of body but the format needs 8.
        body = b"\x00" * 4
        raw = struct.pack(
            ">2sBBI", p.MAGIC, p.VERSION, p.FRAME_TYPES["ping"], len(body)
        ) + body
        with pytest.raises(p.CorruptFrame):
            p.decode_frame(raw)

    def test_trailing_garbage_in_request(self):
        raw = p.encode_frame(p.Request(1, np.zeros(3, dtype=np.float32)))
        body = raw[p.HEADER_SIZE:] + b"JUNK"
        raw = struct.pack(
            ">2sBBI", p.MAGIC, p.VERSION, p.FRAME_TYPES["request"], len(body)
        ) + body
        with pytest.raises(p.CorruptFrame, match="trailing"):
            p.decode_frame(raw)

    def test_request_array_shape_lies_about_size(self):
        # Array header claims a (1000,) float64 body but supplies 8 bytes.
        body = struct.pack(">IB", 1, 0) + struct.pack(">BBI", 2, 1, 1000) + b"\x00" * 8
        raw = struct.pack(
            ">2sBBI", p.MAGIC, p.VERSION, p.FRAME_TYPES["request"], len(body)
        ) + body
        with pytest.raises(p.CorruptFrame, match="short"):
            p.decode_frame(raw)

    def test_request_unknown_dtype_code(self):
        body = struct.pack(">IB", 1, 0) + struct.pack(">BB", 200, 0)
        raw = struct.pack(
            ">2sBBI", p.MAGIC, p.VERSION, p.FRAME_TYPES["request"], len(body)
        ) + body
        with pytest.raises(p.CorruptFrame, match="dtype code"):
            p.decode_frame(raw)

    def test_non_utf8_detail(self):
        body = struct.pack(">IB", 1, 1) + b"\xff\xfe"
        raw = struct.pack(
            ">2sBBI", p.MAGIC, p.VERSION, p.FRAME_TYPES["error"], len(body)
        ) + body
        with pytest.raises(p.CorruptFrame, match="utf-8"):
            p.decode_frame(raw)

    @given(data=st.binary(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_bytes_never_crash(self, data):
        # Any byte soup either decodes, waits for more, or fails typed.
        try:
            p.decode_frame(data)
        except p.ProtocolError:
            pass


class TestFrameDecoder:
    def test_reassembles_byte_at_a_time(self):
        frames = [
            p.Ping(1),
            p.Request(2, np.arange(4, dtype=np.float32)),
            p.Shutdown("bye"),
        ]
        stream = b"".join(p.encode_frame(f) for f in frames)
        decoder = p.FrameDecoder()
        got = []
        for i in range(len(stream)):
            got.extend(decoder.feed(stream[i:i + 1]))
        assert got == frames
        assert decoder.pending_bytes == 0

    def test_multiple_frames_in_one_chunk(self):
        frames = [p.Accepted(1), p.Accepted(2), p.Pong(3)]
        decoder = p.FrameDecoder()
        assert decoder.feed(b"".join(p.encode_frame(f) for f in frames)) == frames

    def test_poisons_after_error(self):
        decoder = p.FrameDecoder()
        with pytest.raises(p.BadMagic):
            decoder.feed(b"XXXXXXXXXX")
        # Every later feed re-raises: the connection is already doomed.
        with pytest.raises(p.BadMagic):
            decoder.feed(p.encode_frame(p.Ping(1)))

    def test_respects_custom_max_body(self):
        decoder = p.FrameDecoder(max_body=8)
        decoder.feed(p.encode_frame(p.Ping(1)))  # 8-byte body: at the limit
        with pytest.raises(p.FrameTooLarge):
            decoder.feed(p.encode_frame(p.Shutdown("123456789")))

    @given(
        frames=st.lists(
            st.one_of(
                UINT64.map(p.Ping),
                UINT32.map(p.Accepted),
                st.tuples(UINT32, wire_arrays(max_side=4)).map(
                    lambda t: p.Request(*t)
                ),
                DETAIL.map(p.Shutdown),
            ),
            max_size=6,
        ),
        chunk=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_chunking_is_invisible(self, frames, chunk):
        stream = b"".join(p.encode_frame(f) for f in frames)
        decoder = p.FrameDecoder()
        got = []
        for i in range(0, len(stream), chunk):
            got.extend(decoder.feed(stream[i:i + chunk]))
        assert got == frames
