"""PrecisionLadder core: validation, routing, partition invariant, Eq. (1N).

The hypothesis property at the bottom is the batch-level form of the
serving-books invariant: for ANY scores and ANY threshold setting, the
per-stage answer sets partition the input batch exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DecisionMakingUnit,
    LadderResult,
    LadderStage,
    PrecisionLadder,
    ladder_accuracy,
    ladder_bottleneck_stage,
    ladder_interval,
    ladder_reach_fractions,
    multi_precision_interval,
)

NUM_CLASSES = 10


def margin_dmu(hop: int, threshold: float = 0.5) -> DecisionMakingUnit:
    """Confidence from the margin at sorted positions (2*hop, 2*hop+1)."""
    weights = np.zeros(NUM_CLASSES)
    weights[2 * hop], weights[2 * hop + 1] = 4.0, -4.0
    return DecisionMakingUnit(weights, bias=0.0, threshold=threshold)


def score_images(n: int, seed: int = 0) -> np.ndarray:
    """(n, 10, 1, 1) images that ARE score vectors (oracle engines)."""
    return np.random.default_rng(seed).normal(size=(n, NUM_CLASSES, 1, 1))


def identity_engine(images: np.ndarray) -> np.ndarray:
    return np.asarray(images).reshape(len(images), NUM_CLASSES)


def make_ladder(thresholds, t_images=None) -> PrecisionLadder:
    """len(thresholds)+1 rungs: each hop reads its own sorted-margin pair."""
    times = t_images or [None] * (len(thresholds) + 1)
    stages = [
        LadderStage(
            name=f"s{i}",
            scores_fn=identity_engine,
            dmu=margin_dmu(i, thr),
            t_image=times[i],
        )
        for i, thr in enumerate(thresholds)
    ]
    stages.append(
        LadderStage(name="final", scores_fn=identity_engine, t_image=times[-1])
    )
    return PrecisionLadder(stages)


class TestValidation:
    def test_needs_two_stages(self):
        with pytest.raises(ValueError, match="at least 2"):
            PrecisionLadder([LadderStage("only", identity_engine)])

    def test_unique_names(self):
        stages = [
            LadderStage("x", identity_engine, dmu=margin_dmu(0)),
            LadderStage("x", identity_engine),
        ]
        with pytest.raises(ValueError, match="unique"):
            PrecisionLadder(stages)

    def test_middle_stage_needs_dmu(self):
        stages = [
            LadderStage("a", identity_engine),  # no DMU but forwards
            LadderStage("b", identity_engine),
        ]
        with pytest.raises(ValueError, match="needs a DMU"):
            PrecisionLadder(stages)

    def test_stage_field_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            LadderStage("", identity_engine)
        with pytest.raises(ValueError, match="threshold"):
            LadderStage("a", identity_engine, threshold=1.5)
        with pytest.raises(ValueError, match="t_image"):
            LadderStage("a", identity_engine, t_image=0.0)

    def test_effective_threshold_prefers_override(self):
        stage = LadderStage(
            "a", identity_engine, dmu=margin_dmu(0, 0.7), threshold=0.4
        )
        assert stage.effective_threshold == 0.4
        stage = LadderStage("a", identity_engine, dmu=margin_dmu(0, 0.7))
        assert stage.effective_threshold == 0.7


class TestClassify:
    def test_three_stage_partition_and_counts(self):
        ladder = make_ladder([0.6, 0.6])
        result = ladder.classify(score_images(400))
        result.check_partition()
        assert result.num_stages == 3
        assert result.stage_names == ("s0", "s1", "final")
        # Every rung answers someone at these thresholds on normal scores.
        assert (result.answered > 0).all()
        assert int(result.arrived[0]) == 400
        # Traffic conservation per hop: forwarded from i == arrived at i+1.
        np.testing.assert_array_equal(result.forwarded[:-1], result.arrived[1:])

    def test_measured_ratios_consistent(self):
        # 0.5 would accept everything (sorted margins are non-negative, so
        # sigmoid confidence >= 0.5 always); 0.6 forwards a real residue.
        ladder = make_ladder([0.6, 0.6])
        result = ladder.classify(score_images(300, seed=3))
        reach = result.reach_fractions
        assert reach[0] == 1.0
        for i, ratio in enumerate(result.forward_ratios):
            arrived = int(result.arrived[i])
            assert arrived > 0
            assert ratio == pytest.approx(int(result.forwarded[i]) / arrived)
        # Reach telescopes: R_{i+1} = R_i * r_i.
        for i in range(len(result.forward_ratios)):
            assert reach[i + 1] == pytest.approx(reach[i] * result.forward_ratios[i])

    def test_two_stage_matches_dmu_categorize(self):
        """N=2 ladder routes exactly like the paper's accept/flag split."""
        dmu = margin_dmu(0, 0.6)
        ladder = PrecisionLadder(
            [
                LadderStage("bnn", identity_engine, dmu=dmu),
                LadderStage("host", identity_engine),
            ]
        )
        images = score_images(200, seed=5)
        result = ladder.classify(images)
        scores = identity_engine(images)
        accept = dmu.accept(scores)
        np.testing.assert_array_equal(result.stage_of == 0, accept)
        assert result.rerun_ratio == pytest.approx(float((~accept).mean()))

    def test_stage_images_variants(self):
        """Per-rung input variants route by each rung's own view."""
        ladder = make_ladder([0.5])
        images = score_images(50, seed=8)
        doubled = 2.0 * images
        via_variants = ladder.classify(images, stage_images=[doubled, doubled])
        via_plain = ladder.classify(doubled)
        np.testing.assert_array_equal(via_variants.predictions, via_plain.predictions)
        np.testing.assert_array_equal(via_variants.stage_of, via_plain.stage_of)

    def test_extreme_thresholds(self):
        n = 64
        everything_up = make_ladder([1.0, 1.0]).classify(score_images(n, seed=2))
        assert int(everything_up.answered[-1]) == n
        nothing_up = make_ladder([0.0, 0.0]).classify(score_images(n, seed=2))
        assert int(nothing_up.answered[0]) == n

    def test_empty_batch(self):
        result = make_ladder([0.5]).classify(score_images(0))
        result.check_partition()
        assert result.predictions.shape == (0,)

    def test_accuracy_helpers(self):
        ladder = make_ladder([0.6])
        images = score_images(100, seed=9)
        labels = identity_engine(images).argmax(axis=1)
        result = ladder.classify(images)
        assert result.accuracy(labels) == 1.0  # oracle engines
        assert result.stage_accuracy(labels, 0) == 1.0

    def test_check_partition_rejects_corruption(self):
        result = make_ladder([0.5]).classify(score_images(20, seed=1))
        broken = LadderResult(
            predictions=result.predictions,
            stage_of=result.stage_of,
            stage_names=result.stage_names,
            arrived=result.arrived,
            forwarded=result.forwarded + np.array([1, 0]),
            confidences=result.confidences,
        )
        with pytest.raises(ValueError, match="partition|forward"):
            broken.check_partition()


class TestEq1NPrediction:
    def test_predicted_interval_uses_stage_times(self):
        ladder = make_ladder([0.5, 0.5], t_images=[0.001, 0.004, 0.02])
        ratios = [0.3, 0.5]
        assert ladder.predicted_interval(ratios) == pytest.approx(
            ladder_interval([0.001, 0.004, 0.02], ratios)
        )
        assert ladder.bottleneck_stage(ratios) == (
            "s0",
            "s1",
            "final",
        )[ladder_bottleneck_stage([0.001, 0.004, 0.02], ratios)]
        assert ladder.predicted_reach(ratios) == ladder_reach_fractions(ratios)

    def test_missing_t_image_raises(self):
        ladder = make_ladder([0.5])
        with pytest.raises(ValueError, match="t_image"):
            ladder.predicted_interval([0.3])

    def test_two_stage_reduction_to_eq1(self):
        """Eq. (1N) at N=2 is exactly the paper's Eq. (1)."""
        t_bnn, t_fp, r = 0.00025, 0.008, 0.3
        assert ladder_interval([t_bnn, t_fp], [r]) == pytest.approx(
            multi_precision_interval(t_fp, t_bnn, r)
        )

    def test_ladder_accuracy_telescopes(self):
        # 2-stage sanity: Acc = a0 + a1*r - err.
        assert ladder_accuracy(
            [0.8, 0.9], [0.25], err_fractions=[0.02]
        ) == pytest.approx(0.8 + 0.9 * 0.25 - 0.02)


class TestRoutingPartitionProperty:
    """For ANY scores and ANY thresholds, the routing partitions the batch."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(0, 80),
        thresholds=st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=4
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_partition_reconstructs_the_batch(self, seed, n, thresholds):
        ladder = make_ladder(thresholds)
        result = ladder.classify(score_images(n, seed=seed))
        result.check_partition()  # no drop, no duplicate, final rung absorbs
        # Reconstruction: stage_of assigns every image to exactly one rung
        # whose per-stage counts re-sum to the batch.
        assert result.stage_of.min(initial=0) >= 0
        counts = np.bincount(result.stage_of, minlength=result.num_stages)
        assert int(counts.sum()) == n
        np.testing.assert_array_equal(counts, result.answered)
        # Every answer came from that rung's argmax over its own scores.
        assert (result.predictions >= 0).all() if n else True
