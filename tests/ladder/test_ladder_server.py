"""CascadeServer with middle rungs: books, routing policy, degrade paths."""

import time

import numpy as np
import pytest

from repro.core import DecisionMakingUnit, LadderStage
from repro.serve import (
    CascadeServer,
    LadderThresholdController,
    ServeBenchConfig,
    format_serve_bench,
    run_serve_bench,
    synthetic_ladder_stages,
)

NUM_CLASSES = 10


def margin_dmu(hop: int, threshold: float) -> DecisionMakingUnit:
    weights = np.zeros(NUM_CLASSES)
    weights[2 * hop], weights[2 * hop + 1] = 4.0, -4.0
    return DecisionMakingUnit(weights, bias=0.0, threshold=threshold)


def make_scores(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, NUM_CLASSES))


def identity_scores(images: np.ndarray) -> np.ndarray:
    return np.asarray(images)


def host_predict(images: np.ndarray) -> np.ndarray:
    return np.asarray(images).argmax(axis=1)


def mid_stage(threshold: float = 0.97, sleep_s: float = 0.0) -> LadderStage:
    def scores_fn(images):
        if sleep_s:
            time.sleep(sleep_s * len(images))
        return np.asarray(images)

    return LadderStage(name="mid1", scores_fn=scores_fn, dmu=margin_dmu(1, threshold))


def drain(server: CascadeServer, scores: np.ndarray):
    futures = [server.submit(s) for s in scores]
    return [f.result(timeout=30.0) for f in futures]


class TestBooks:
    def test_three_stage_books_balance(self):
        server = CascadeServer(
            identity_scores,
            margin_dmu(0, 0.97),
            host_predict,
            controller=0.97,
            batch_delay_s=0.001,
            host_queue_capacity=512,  # burst submits must not shed load here
            ladder=[mid_stage()],
        )
        assert server.num_stages == 3
        assert server.stage_names == ("bnn", "mid1", "host")
        scores = make_scores(300)
        with server:
            results = drain(server, scores)
        snap = server.snapshot()
        assert snap.submitted == 300
        assert snap.accepted + snap.rerun + snap.degraded + snap.failed == 300
        assert snap.rerun_stage_total == snap.rerun
        assert set(snap.rerun_stages) <= {"mid1", "host"}
        # Both upper rungs answered someone at this threshold.
        assert snap.rerun_stages.get("mid1", 0) > 0
        assert snap.rerun_stages.get("host", 0) > 0
        # Traffic counters expose measured per-hop forward ratios.
        ratios = snap.ladder_forward_ratios
        assert 0.0 < ratios["bnn"] < 1.0
        assert 0.0 < ratios["mid1"] < 1.0
        sources = {r.source for r in results}
        assert sources == {"bnn", "mid1", "host"}

    def test_results_match_offline_routing(self):
        """Served answers equal each image's own rung argmax (oracle stack)."""
        server = CascadeServer(
            identity_scores,
            margin_dmu(0, 0.97),
            host_predict,
            controller=0.97,
            batch_delay_s=0.001,
            host_queue_capacity=512,
            ladder=[mid_stage()],
        )
        scores = make_scores(120, seed=4)
        with server:
            results = drain(server, scores)
        # Identity engines: whatever rung answers, prediction == argmax.
        for s, r in zip(scores, results):
            assert r.prediction == int(np.argmax(s))


class TestRoutingPolicy:
    def test_static_stage_thresholds(self):
        server = CascadeServer(
            identity_scores,
            margin_dmu(0, 0.9),
            host_predict,
            controller=0.9,
            ladder=[mid_stage(threshold=0.85)],
        )
        assert server.stage_threshold(0) == 0.9
        assert server.stage_threshold(1) == 0.85
        server.close()

    def test_ladder_controller_moves_every_knob(self):
        controller = LadderThresholdController.from_targets(
            initial_thresholds=[0.97, 0.97],
            target_forward_ratios=[0.3, 0.3],
            gain=0.1,
        )
        server = CascadeServer(
            identity_scores,
            margin_dmu(0, 0.97),
            host_predict,
            controller=controller,
            batch_delay_s=0.001,
            host_queue_capacity=512,
            ladder=[mid_stage()],
        )
        with server:
            drain(server, make_scores(400, seed=2))
        assert controller.knobs[0].observations > 0
        assert controller.knobs[1].observations > 0
        assert controller.threshold_for(0) != 0.97
        assert controller.threshold_for(1) != 0.97
        assert server.stage_threshold(1) == controller.threshold_for(1)

    def test_controller_hop_count_must_match(self):
        controller = LadderThresholdController.from_targets(
            initial_thresholds=[0.9], target_forward_ratios=[0.3]
        )
        with pytest.raises(ValueError, match="hops"):
            CascadeServer(
                identity_scores,
                margin_dmu(0, 0.9),
                host_predict,
                controller=controller,
                ladder=[mid_stage()],
            )

    def test_reserved_and_duplicate_stage_names_rejected(self):
        for name in ("bnn", "host", "degraded"):
            with pytest.raises(ValueError, match="unique|reserved|names"):
                CascadeServer(
                    identity_scores,
                    margin_dmu(0, 0.9),
                    host_predict,
                    ladder=[
                        LadderStage(name, identity_scores, dmu=margin_dmu(1, 0.9))
                    ],
                )
        with pytest.raises(ValueError, match="unique|names"):
            CascadeServer(
                identity_scores,
                margin_dmu(0, 0.9),
                host_predict,
                ladder=[
                    LadderStage("m", identity_scores, dmu=margin_dmu(1, 0.9)),
                    LadderStage("m", identity_scores, dmu=margin_dmu(2, 0.9)),
                ],
            )

    def test_middle_stage_without_dmu_rejected(self):
        with pytest.raises(ValueError, match="DMU"):
            CascadeServer(
                identity_scores,
                margin_dmu(0, 0.9),
                host_predict,
                ladder=[LadderStage("m", identity_scores)],
            )


class TestDegradePaths:
    def test_full_mid_queue_degrades_not_drops(self):
        """A saturated middle rung sheds load; every future still resolves."""
        server = CascadeServer(
            identity_scores,
            margin_dmu(0, 0.9999),  # forward nearly everything
            host_predict,
            controller=0.9999,
            batch_delay_s=0.001,
            ladder=[mid_stage(sleep_s=0.02)],
            ladder_queue_capacity=2,
            host_queue_capacity=4,
        )
        scores = make_scores(150, seed=6)
        with server:
            results = drain(server, scores)
        snap = server.snapshot()
        assert len(results) == 150
        assert snap.degraded > 0
        assert snap.accepted + snap.rerun + snap.degraded + snap.failed == 150
        # Degraded answers fall back to the best prediction seen so far,
        # which on this oracle stack is still the argmax.
        for s, r in zip(scores, results):
            if r.source == "degraded":
                assert r.prediction == int(np.argmax(s))


class TestServeBenchLadder:
    def test_run_serve_bench_ladder_smoke(self):
        config = ServeBenchConfig(
            num_requests=120,
            num_clients=2,
            t_bnn=0.0001,
            t_fp=0.002,
            ladder_stage_times=(0.0005,),
            batch_delay_s=0.002,
            host_queue_capacity=16,
        )
        report = run_serve_bench(config)
        assert report.books_balanced
        for run in (report.naive, report.adaptive):
            assert run.books is not None and run.books["balanced"]
            assert run.eq1 is not None
            names = [s["name"] for s in run.eq1["stages"]]
            assert names == ["bnn", "mid1", "host"]
            assert len(run.final_thresholds) == 2
        text = format_serve_bench(report)
        assert "per-stage books" in text
        assert "3-stage ladder" in text
        assert "mid1" in text

    def test_ladder_stage_times_validation(self):
        with pytest.raises(ValueError, match="positive"):
            synthetic_ladder_stages(
                ServeBenchConfig(ladder_stage_times=(0.0, 0.1))
            )
        with pytest.raises(ValueError, match="at most 4"):
            synthetic_ladder_stages(
                ServeBenchConfig(ladder_stage_times=(0.001,) * 5)
            )

    def test_analytic_bound_generalizes(self):
        flat = ServeBenchConfig()
        laddered = ServeBenchConfig(ladder_stage_times=(0.002,))
        assert laddered.stage_names == ("bnn", "mid1", "host")
        assert laddered.stage_times == (flat.t_bnn, 0.002, flat.t_fp)
        # One extra rung filtering traffic can only raise the bound.
        assert laddered.analytic_bound_fps >= flat.analytic_bound_fps
