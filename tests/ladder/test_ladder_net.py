"""Ladder replicas over the real socket stack (serve-net end-to-end)."""

from repro.net.bench import (
    NetBenchConfig,
    _oracle_mid_scores,
    format_net_bench,
    make_oracle_images,
    oracle_replica_kwargs,
    run_net_bench,
)


def test_mid_oracle_boosts_the_label():
    images = make_oracle_images(32, seed=0, signal=0.0)
    labels = images[:, -1].astype(int)
    scores = _oracle_mid_scores(images)
    base = images[:, :10]
    # Only the label column moved, and upward.
    assert (scores[range(32), labels] > base[range(32), labels]).all()
    off = scores.copy()
    off[range(32), labels] = base[range(32), labels]
    assert (off == base).all()


def test_replica_kwargs_gain_ladder_stage():
    kwargs = oracle_replica_kwargs(ladder=True)
    (stage,) = kwargs["ladder"]
    assert stage.name == "mid1"
    assert stage.dmu is not None
    assert "ladder" not in oracle_replica_kwargs()


def test_serve_net_ladder_end_to_end():
    """3-stage replicas behind real loopback sockets: books + named sources."""
    report = run_net_bench(
        NetBenchConfig(
            num_requests=80, num_clients=2, num_replicas=1, ladder=True, seed=3,
            signal=0.5,  # weak margins so traffic spreads over all 3 rungs
        )
    )
    assert report["ok"], format_net_bench(report)
    sources = report["client"]["sources"]
    assert sources.get("mid1", 0) > 0  # the named source crossed the wire
    assert set(sources) <= {"bnn", "mid1", "host", "degraded"}
