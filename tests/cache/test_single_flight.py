"""CachingFrontend: hit path, single-flight dedup, exactly-once, books.

The hypothesis properties drive a *real* :class:`CascadeServer` behind
the frontend and compare every answer against a cold (cache-less)
server over the same images — the bit-identity contract the cache
advertises — including under a seeded :class:`repro.faults.FaultPlan`.
"""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import CachingFrontend, ResultCache
from repro.core import DecisionMakingUnit
from repro.faults import FaultPlan, FaultSpec, wrap_stack
from repro.serve import CascadeServer, ServerMetrics
from repro.serve.server import ServeResult

NUM_CLASSES = 10


def make_dmu(threshold: float = 0.7) -> DecisionMakingUnit:
    weights = np.zeros(NUM_CLASSES)
    weights[0], weights[1] = 4.0, -4.0
    return DecisionMakingUnit(weights, bias=0.0, threshold=threshold)


def bnn_scores_fn(images: np.ndarray) -> np.ndarray:
    return images.reshape(len(images), NUM_CLASSES)


def host_predict_fn(images: np.ndarray) -> np.ndarray:
    return (images.reshape(len(images), NUM_CLASSES).argmax(axis=1) + 1) % NUM_CLASSES


#: Shared pool of distinct images; hypothesis picks interleavings of refs.
IMAGE_POOL = np.random.default_rng(1234).normal(size=(8, NUM_CLASSES, 1, 1))


def make_server(**kwargs) -> CascadeServer:
    kwargs.setdefault("batch_delay_s", 0.001)
    kwargs.setdefault("host_queue_capacity", 256)
    return CascadeServer(bnn_scores_fn, make_dmu(), host_predict_fn, **kwargs)


def answer_tuple(r: ServeResult) -> tuple:
    return (int(r.prediction), int(r.bnn_prediction), float(r.confidence))


def books_balanced(snap) -> bool:
    return (
        snap.accepted + snap.rerun + snap.degraded + snap.cache_hits + snap.failed
        == snap.submitted
    )


class ManualBackend:
    """A fake cascade whose futures resolve only when the test says so."""

    def __init__(self):
        self.metrics = ServerMetrics()
        self.pending: list[tuple[np.ndarray, Future]] = []
        self.submits = 0

    def submit(self, image: np.ndarray) -> Future:
        self.metrics.record_submitted(1)
        self.submits += 1
        future: Future = Future()
        self.pending.append((np.asarray(image), future))
        return future

    def resolve(self, index: int = 0, source: str = "host") -> None:
        image, future = self.pending.pop(index)
        prediction = int(image.flat[0])
        self.metrics.record_decisions(
            accepted=1 if source == "bnn" else 0,
            rerun=1 if source == "host" else 0,
        )
        self.metrics.record_latency(0.0)
        future.set_result(ServeResult(
            prediction=prediction, bnn_prediction=prediction, confidence=0.5,
            source=source, latency_seconds=0.0,
        ))

    def fail(self, index: int = 0) -> None:
        _, future = self.pending.pop(index)
        self.metrics.record_failure(1)
        future.set_exception(RuntimeError("backend exploded"))

    def close(self, *args, **kwargs) -> None:
        pass


def manual_frontend(**cache_kwargs):
    backend = ManualBackend()
    cache = ResultCache(max_bytes=1 << 20, **cache_kwargs)
    return backend, CachingFrontend(backend, cache)


class TestSingleFlight:
    def test_concurrent_duplicates_cost_one_cascade_pass(self):
        backend, front = manual_frontend()
        img = np.full((4,), 3.0)
        futures = [front.submit(img) for _ in range(5)]
        assert backend.submits == 1
        backend.resolve()
        answers = [f.result(timeout=5.0) for f in futures]
        assert len({answer_tuple(r) for r in answers}) == 1
        assert answers[0].source == "host"          # the leader's real pass
        assert {r.source for r in answers[1:]} == {"cache"}
        assert {r.cold_source for r in answers[1:]} == {"host"}
        sf = front.single_flight_snapshot()
        assert (sf.leaders, sf.followers, sf.in_flight) == (1, 4, 0)
        assert books_balanced(front.snapshot())

    def test_next_submit_after_resolution_is_a_cache_hit(self):
        backend, front = manual_frontend()
        img = np.full((4,), 2.0)
        leader = front.submit(img)
        backend.resolve()
        leader.result(timeout=5.0)
        hit = front.submit(img).result(timeout=5.0)
        assert backend.submits == 1
        assert hit.source == "cache" and hit.cold_source == "host"
        snap = front.cache_snapshot()
        assert snap.hits == 1 and snap.balanced

    def test_distinct_images_fly_separately(self):
        backend, front = manual_frontend()
        front.submit(np.full((4,), 1.0))
        front.submit(np.full((4,), 2.0))
        assert backend.submits == 2
        assert front.single_flight_snapshot().in_flight == 2
        backend.resolve()
        backend.resolve()

    def test_failed_leader_fails_followers_and_caches_nothing(self):
        backend, front = manual_frontend()
        img = np.full((4,), 5.0)
        futures = [front.submit(img) for _ in range(3)]
        backend.fail()
        for f in futures:
            with pytest.raises(RuntimeError, match="exploded"):
                f.result(timeout=5.0)
        assert front.cache.entries == 0
        assert front.single_flight_snapshot().in_flight == 0
        # The flight is gone: the next submit is a fresh leader.
        retry = front.submit(img)
        assert backend.submits == 2
        backend.resolve()
        assert retry.result(timeout=5.0).source == "host"
        assert books_balanced(front.snapshot())

    def test_futures_resolve_exactly_once(self):
        backend, front = manual_frontend()
        img = np.full((4,), 4.0)
        counts: dict[int, int] = {}
        lock = threading.Lock()

        def tick(fut):
            with lock:
                counts[id(fut)] = counts.get(id(fut), 0) + 1

        futures = [front.submit(img) for _ in range(4)]
        for f in futures:
            f.add_done_callback(tick)
        backend.resolve()
        # A later duplicate hits the cache with a brand-new future — the
        # old ones must not be touched again.
        front.submit(img).result(timeout=5.0)
        assert sorted(counts.values()) == [1, 1, 1, 1]

    def test_delegates_backend_attributes(self):
        backend, front = manual_frontend()
        assert front.submits == 0  # ManualBackend attribute through __getattr__
        with pytest.raises(AttributeError):
            front.no_such_attribute


@st.composite
def interleavings(draw):
    """A sequence of image refs with guaranteed duplicate pressure."""
    refs = draw(st.lists(st.integers(0, len(IMAGE_POOL) - 1),
                         min_size=2, max_size=30))
    return refs + [refs[0]]  # at least one duplicate


class TestBitIdentityProperties:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(refs=interleavings())
    def test_cached_answers_match_cold_server(self, refs):
        cold = {}
        with make_server() as server:
            for ref in sorted(set(refs)):
                cold[ref] = answer_tuple(
                    server.submit(IMAGE_POOL[ref]).result(timeout=10.0)
                )
        cache = ResultCache(max_bytes=1 << 20)
        with CachingFrontend(make_server(), cache) as front:
            futures = [(ref, front.submit(IMAGE_POOL[ref])) for ref in refs]
            results = [(ref, f.result(timeout=10.0)) for ref, f in futures]
            snap = front.snapshot()
            sf = front.single_flight_snapshot()
        for ref, result in results:
            assert answer_tuple(result) == cold[ref]
        assert books_balanced(snap)
        assert snap.submitted == len(refs)
        assert front.cache_snapshot().balanced
        assert sf.in_flight == 0
        # Everything beyond one cold pass per unique image was deduped.
        assert snap.cache_hits == len(refs) - len(set(refs))

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(refs=interleavings(), fault_seed=st.integers(0, 1000))
    def test_books_balance_under_seeded_faults(self, refs, fault_seed):
        plan = FaultPlan(seed=fault_seed, specs=(
            FaultSpec(stage="host", kind="exception", probability=0.4,
                      max_faults=4),
            FaultSpec(stage="bnn", kind="corrupt", probability=0.2),
        ))
        bnn, dmu, host, _ = wrap_stack(
            plan, bnn_scores_fn, make_dmu(), host_predict_fn
        )
        cache = ResultCache(max_bytes=1 << 20)
        server = CascadeServer(
            bnn, dmu, host, batch_delay_s=0.001, host_queue_capacity=256,
        )
        with CachingFrontend(server, cache) as front:
            futures = [front.submit(IMAGE_POOL[ref]) for ref in refs]
            outcomes = []
            for f in futures:
                try:
                    outcomes.append(f.result(timeout=10.0))
                except Exception as exc:
                    outcomes.append(exc)
            snap = front.snapshot()
            sf = front.single_flight_snapshot()
        assert len(outcomes) == len(refs)
        assert books_balanced(snap)
        assert snap.submitted == len(refs)
        assert front.cache_snapshot().balanced
        assert sf.in_flight == 0
        # Whatever the faults did, a served answer is never wrong *and*
        # cached: every cache-sourced result equals some cold terminal
        # answer that round actually produced for the same image.
        served = [r for r in outcomes if isinstance(r, ServeResult)]
        by_ref: dict[int, set] = {}
        for ref, outcome in zip(refs, outcomes):
            if isinstance(outcome, ServeResult) and outcome.source != "cache":
                by_ref.setdefault(ref, set()).add(answer_tuple(outcome))
        for ref, outcome in zip(refs, outcomes):
            if isinstance(outcome, ServeResult) and outcome.source == "cache":
                assert answer_tuple(outcome) in by_ref[ref]
        assert all(r.latency_seconds >= 0 for r in served)
