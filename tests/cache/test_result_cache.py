"""ResultCache: keys, LRU byte bound, near-duplicate tier, books."""

import threading

import numpy as np
import pytest

from repro.cache import CachedAnswer, ResultCache
from repro.cache.result_cache import ENTRY_OVERHEAD_BYTES


def answer(prediction=1, source="host"):
    return CachedAnswer(
        prediction=prediction, bnn_prediction=0, confidence=0.5, source=source
    )


def image(seed, shape=(3, 4, 4)):
    return np.random.default_rng(seed).normal(size=shape)


class TestExactTier:
    def test_miss_then_hit_round_trip(self):
        cache = ResultCache(max_bytes=1 << 20)
        img = image(0)
        key = cache.key_for(img)
        assert cache.get(key) is None
        cache.put(key, img, answer(prediction=7))
        got = cache.get(key)
        assert got == answer(prediction=7)
        snap = cache.snapshot()
        assert (snap.lookups, snap.hits, snap.misses) == (2, 1, 1)
        assert snap.balanced

    def test_namespace_separates_tenants(self):
        cache = ResultCache(max_bytes=1 << 20)
        img = image(1)
        key_a = cache.key_for(img, "model-a")
        key_c = cache.key_for(img, "model-c")
        assert key_a != key_c
        cache.put(key_a, img, answer(prediction=3, source="host"))
        assert cache.get(key_c) is None
        assert cache.get(key_a).prediction == 3

    def test_put_is_idempotent_per_key(self):
        cache = ResultCache(max_bytes=1 << 20)
        img = image(2)
        key = cache.key_for(img)
        cache.put(key, img, answer(prediction=1))
        cache.put(key, img, answer(prediction=2))
        assert cache.entries == 1
        assert cache.get(key).prediction == 2

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)
        with pytest.raises(ValueError):
            ResultCache(shards=0)
        with pytest.raises(ValueError):
            ResultCache(atol=-1.0)


class TestByteBound:
    def test_lru_eviction_keeps_bytes_within_budget(self):
        # One shard makes the LRU order observable; every near-dup entry
        # stores its canonical image, so entries are big enough to evict.
        cache = ResultCache(
            max_bytes=4 * (ENTRY_OVERHEAD_BYTES + 8 * 8), shards=1,
            near_duplicate=True,
        )
        imgs = [np.full((8,), float(i)) for i in range(10)]
        for img in imgs:
            cache.put(cache.key_for(img), img, answer())
            assert cache.bytes <= cache.max_bytes
        snap = cache.snapshot()
        assert snap.evictions == snap.insertions - snap.entries > 0
        # The most recent insert survived; the oldest was evicted.
        assert cache.get(cache.key_for(imgs[-1])) is not None
        assert cache.get(cache.key_for(imgs[0])) is None

    def test_get_refreshes_lru_position(self):
        cache = ResultCache(
            max_bytes=2 * (ENTRY_OVERHEAD_BYTES + 8 * 8), shards=1,
            near_duplicate=True,
        )
        a, b, c = (np.full((8,), float(i)) for i in range(3))
        cache.put(cache.key_for(a), a, answer(1))
        cache.put(cache.key_for(b), b, answer(2))
        assert cache.get(cache.key_for(a)) is not None  # a becomes MRU
        cache.put(cache.key_for(c), c, answer(3))       # evicts b, not a
        assert cache.get(cache.key_for(a)) is not None
        assert cache.get(cache.key_for(b)) is None

    def test_oversized_entry_is_skipped_silently(self):
        cache = ResultCache(max_bytes=256, shards=1, near_duplicate=True)
        huge = np.zeros(4096)
        cache.put(cache.key_for(huge), huge, answer())
        assert cache.entries == 0
        assert cache.get(cache.key_for(huge)) is None

    def test_clear_resets_storage(self):
        cache = ResultCache(max_bytes=1 << 20, near_duplicate=True)
        img = image(3)
        cache.put(cache.key_for(img), img, answer())
        cache.clear()
        assert (cache.entries, cache.bytes) == (0, 0)
        assert cache.get(cache.key_for(img), img) is None


class TestNearDuplicateTier:
    def _noisy(self, img, eps):
        noisy = img.copy()
        noisy.flat[0] += eps
        return noisy

    def test_exact_gate_rejects_near_duplicates_at_atol_zero(self):
        cache = ResultCache(max_bytes=1 << 20, near_duplicate=True, atol=0.0)
        img = image(4)
        cache.put(cache.key_for(img), img, answer())
        noisy = self._noisy(img, 1e-9)  # same fingerprint bucket, new bytes
        assert cache.fingerprint(noisy) == cache.fingerprint(img)
        assert cache.get(cache.key_for(noisy), noisy) is None
        snap = cache.snapshot()
        assert snap.near_rejects == 1
        assert snap.near_hits == 0
        assert snap.balanced

    def test_atol_opts_into_approximate_reuse(self):
        cache = ResultCache(max_bytes=1 << 20, near_duplicate=True, atol=1e-6)
        img = image(5)
        cache.put(cache.key_for(img), img, answer(prediction=9))
        noisy = self._noisy(img, 1e-9)
        got = cache.get(cache.key_for(noisy), noisy)
        assert got is not None and got.prediction == 9
        snap = cache.snapshot()
        assert snap.near_hits == 1 and snap.hits == 1

    def test_gate_needs_query_pixels(self):
        # Without the image there is nothing to compare: exact miss.
        cache = ResultCache(max_bytes=1 << 20, near_duplicate=True, atol=1.0)
        img = image(6)
        cache.put(cache.key_for(img), img, answer())
        noisy = self._noisy(img, 1e-9)
        assert cache.get(cache.key_for(noisy)) is None

    def test_shape_mismatch_never_gates(self):
        cache = ResultCache(
            max_bytes=1 << 20, near_duplicate=True, atol=100.0, thumb_size=2
        )
        img = np.zeros((4, 4))
        cache.put(cache.key_for(img), img, answer())
        other = np.zeros((2, 8))  # same bytes, different geometry
        assert cache.get(cache.key_for(other), other) is None

    def test_eviction_cleans_fingerprint_index(self):
        cache = ResultCache(
            max_bytes=ENTRY_OVERHEAD_BYTES + 8 * 8, shards=1,
            near_duplicate=True, atol=1e-3,
        )
        a = np.full((8,), 1.0)
        b = np.linspace(0.0, 7.0, 8)
        cache.put(cache.key_for(a), a, answer(1))
        cache.put(cache.key_for(b), b, answer(2))  # evicts a
        assert cache.entries == 1
        near_a = a.copy()
        near_a[0] += 1e-9
        assert cache.get(cache.key_for(near_a), near_a) is None


class TestConcurrency:
    def test_books_balance_under_concurrent_mixed_traffic(self):
        cache = ResultCache(max_bytes=1 << 16, shards=4, near_duplicate=True)
        imgs = [np.full((16,), float(i)) for i in range(32)]
        keys = [cache.key_for(img) for img in imgs]
        errors = []

        def worker(lane):
            try:
                for i in range(200):
                    j = (lane * 7 + i) % len(imgs)
                    if cache.get(keys[j], imgs[j]) is None:
                        cache.put(keys[j], imgs[j], answer(j))
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(l,)) for l in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        snap = cache.snapshot()
        assert snap.balanced
        assert snap.lookups == 8 * 200
        assert cache.bytes <= cache.max_bytes
