"""The shared digest helpers (``repro.util.hashing``).

The rendezvous construction was extracted verbatim from
``repro.net.router``; the golden values below pin it byte-for-byte so a
refactor can never silently re-shuffle replica placement (cached
answers live on the replica the old hash picked).
"""

import hashlib

import numpy as np
import pytest

from repro.util.hashing import (
    CONTENT_DIGEST_SIZE,
    RENDEZVOUS_DIGEST_SIZE,
    content_key,
    payload_bytes,
    rendezvous_order,
    rendezvous_score,
)


class TestRendezvousGolden:
    """Pinned placements: these literals must never change."""

    def test_pinned_order_float_image(self):
        img = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert rendezvous_order(img, 5) == [2, 3, 4, 0, 1]
        assert rendezvous_order(img, 3) == [2, 0, 1]

    def test_pinned_order_uint8_image(self):
        img = np.full((2, 2), 7, dtype=np.uint8)
        assert rendezvous_order(img, 5) == [1, 0, 4, 3, 2]

    def test_pinned_score(self):
        img = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert rendezvous_score(payload_bytes(img), 0) == 5485043774026656795

    def test_matches_hand_rolled_construction(self):
        # The exact pre-extraction recipe the router used inline.
        img = np.linspace(-1, 1, 30).reshape(5, 6)
        payload = np.ascontiguousarray(img).tobytes()
        for index in range(4):
            expected = int.from_bytes(
                hashlib.blake2b(
                    payload,
                    digest_size=RENDEZVOUS_DIGEST_SIZE,
                    key=index.to_bytes(8, "big"),
                ).digest(),
                "big",
            )
            assert rendezvous_score(payload, index) == expected

    def test_order_is_a_permutation_and_prefix_stable(self):
        # HRW's selling point: shrinking the replica set only removes
        # entries from the ranking, it never reorders the survivors.
        img = np.arange(48, dtype=np.float32)
        full = rendezvous_order(img, 6)
        assert sorted(full) == list(range(6))
        shrunk = rendezvous_order(img, 4)
        assert shrunk == [i for i in full if i < 4]


class TestContentKey:
    def test_pinned_digests(self):
        img = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert content_key(img).hex() == "28cf7592d2cced68f22ec78eab6bacb1"
        assert (
            content_key(img, "model-a").hex()
            == "612df3d719f6338fb80d4550ecb7dabe"
        )

    def test_digest_size(self):
        assert len(content_key(np.zeros(3))) == CONTENT_DIGEST_SIZE

    def test_equal_content_equal_key(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        b = a[::-1][::-1]  # non-contiguous view, same content
        assert content_key(a) == content_key(b)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda a: a.astype(np.float32),           # dtype differs
            lambda a: a.reshape(3, 2),                # shape differs
            lambda a: a + 1,                          # bytes differ
        ],
    )
    def test_geometry_and_bytes_feed_the_key(self, mutate):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert content_key(mutate(a.copy())) != content_key(a)

    def test_namespace_partitions_the_key_space(self):
        img = np.ones((4, 4))
        keys = {content_key(img, ns) for ns in ("", "model-a", "model-c")}
        assert len(keys) == 3
