"""Model zoo: topologies match Tables I and III, shapes and training flow."""

import numpy as np
import pytest

from repro.bnn import BinaryConv2D, BinaryDense, fold_network
from repro.models import (
    CNV_CHANNELS,
    build_finn_cnv,
    build_model,
    build_model_a,
    build_model_b,
    build_model_c,
    model_names,
    scaled_channels,
)
from repro.nn import Conv2D, Dense, GlobalAvgPool2D


class TestFinnCNV:
    def test_full_width_topology_matches_table1(self):
        net = build_finn_cnv(scale=1.0)
        convs = [l for l in net if isinstance(l, BinaryConv2D)]
        assert [c.out_channels for c in convs] == list(CNV_CHANNELS)
        assert all(c.kernel_size == 3 and c.pad == 0 for c in convs)
        denses = [l for l in net if isinstance(l, BinaryDense)]
        assert [d.out_features for d in denses] == [64, 64, 64]
        # No padding: conv input of last FC comes from a 1x1x256 map.
        assert denses[0].in_features == 256

    def test_spatial_flow_no_padding(self):
        net = build_finn_cnv(scale=1.0)
        assert net.output_shape((3, 32, 32)) == (64,)

    def test_scaled_variant_trains_shape(self):
        rng = np.random.default_rng(0)
        net = build_finn_cnv(scale=0.125, rng=rng)
        x = rng.uniform(-1, 1, size=(2, 3, 32, 32))
        out = net.forward(x)
        assert out.shape == (2, 64)

    def test_scaled_channels_floor(self):
        assert scaled_channels(0.01) == (8, 8, 8, 8, 8, 8)
        assert scaled_channels(1.0) == CNV_CHANNELS

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_channels(0.0)

    def test_foldable(self):
        net = build_finn_cnv(scale=0.125)
        folded = fold_network(net, num_classes=10)
        assert folded.num_classes == 10


class TestModelA:
    def test_structure(self):
        net = build_model_a(scale=1.0)
        convs = [l for l in net if isinstance(l, Conv2D)]
        assert [c.out_channels for c in convs] == [32, 32, 64]
        assert all(c.kernel_size == 5 for c in convs)
        dense = [l for l in net if isinstance(l, Dense)]
        assert len(dense) == 1 and dense[0].out_features == 10

    def test_output_shape(self):
        assert build_model_a(scale=1.0).output_shape((3, 32, 32)) == (10,)

    def test_forward_scaled(self):
        rng = np.random.default_rng(1)
        net = build_model_a(scale=0.25, rng=rng)
        out = net.forward(rng.normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 10)


class TestModelB:
    def test_structure(self):
        net = build_model_b(scale=1.0)
        convs = [l for l in net if isinstance(l, Conv2D)]
        assert [c.out_channels for c in convs] == [192, 160, 96, 192, 192, 192, 192, 192, 10]
        assert isinstance(net[-1], GlobalAvgPool2D)

    def test_output_shape(self):
        assert build_model_b(scale=1.0).output_shape((3, 32, 32)) == (10,)

    def test_dropout_disabled(self):
        from repro.nn import Dropout

        net = build_model_b(scale=0.25, dropout=False)
        assert all(d.rate == 0.0 for d in net if isinstance(d, Dropout))

    def test_forward_scaled(self):
        rng = np.random.default_rng(2)
        net = build_model_b(scale=0.125, rng=rng)
        net.eval_mode()
        assert net.forward(rng.normal(size=(2, 3, 32, 32))).shape == (2, 10)


class TestModelC:
    def test_structure(self):
        net = build_model_c(scale=1.0)
        convs = [l for l in net if isinstance(l, Conv2D)]
        assert [c.out_channels for c in convs] == [96, 96, 96, 192, 192, 192, 192, 192, 10]
        strides = [c.stride for c in convs]
        assert strides.count(2) == 2  # stride-2 convs replace pooling

    def test_output_shape(self):
        assert build_model_c(scale=1.0).output_shape((3, 32, 32)) == (10,)

    def test_forward_scaled(self):
        rng = np.random.default_rng(3)
        net = build_model_c(scale=0.125, rng=rng)
        net.eval_mode()
        assert net.forward(rng.normal(size=(2, 3, 32, 32))).shape == (2, 10)


class TestRegistry:
    def test_names(self):
        assert model_names() == ["finn_cnv", "model_a", "model_b", "model_c"]

    def test_build_by_name(self):
        net = build_model("model_a", scale=0.25)
        assert net.output_shape((3, 32, 32)) == (10,)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_model("resnet50")

    def test_param_count_ordering(self):
        # Full-width: A is much smaller than B and C (paper: A is the fast one).
        a = build_model_a(scale=1.0).num_params()
        b = build_model_b(scale=1.0).num_params()
        c = build_model_c(scale=1.0).num_params()
        assert a < b and a < c
