"""Tracer core: nesting, thread safety, disabled-mode overhead."""

import threading
import time

import pytest

from repro import obs
from repro.obs.tracer import _NULL_CONTEXT, Tracer


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def advance(self, dt):
        self.t += dt

    def __call__(self):
        return self.t


def test_span_records_name_duration_args():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("work", category="test", items=3):
        clock.advance(0.5)
    (span,) = tracer.spans
    assert span.name == "work"
    assert span.category == "test"
    assert span.args == {"items": 3}
    assert span.duration == pytest.approx(0.5)
    assert span.depth == 0 and span.parent is None


def test_nesting_depth_and_parent():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            with tracer.span("leaf"):
                pass
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["outer"].depth == 0
    assert by_name["inner"].depth == 1 and by_name["inner"].parent == "outer"
    assert by_name["leaf"].depth == 2 and by_name["leaf"].parent == "inner"
    # Spans close inside-out.
    assert [s.name for s in tracer.spans] == ["leaf", "inner", "outer"]


def test_nesting_is_per_thread():
    tracer = Tracer()
    barrier = threading.Barrier(2)

    def worker(name):
        with tracer.span(name):
            barrier.wait(timeout=5)

    threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Both ran concurrently (barrier), yet neither nests under the other.
    assert all(s.depth == 0 and s.parent is None for s in tracer.spans)
    assert len({s.thread_id for s in tracer.spans}) == 2


def test_concurrent_recording_loses_nothing():
    tracer = Tracer()
    n, workers = 200, 8

    def worker(k):
        for i in range(n):
            with tracer.span(f"w{k}"):
                pass
            tracer.count("events", 1)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(tracer.spans) == n * workers
    assert tracer.counters()["events"] == n * workers
    assert tracer.dropped == 0


def test_max_events_bounds_memory():
    tracer = Tracer(max_events=5)
    for _ in range(8):
        with tracer.span("s"):
            pass
    assert len(tracer.spans) == 5
    assert tracer.dropped == 3


def test_counters_gauges_instants():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    tracer.count("hits", 2)
    tracer.count("hits", 3)
    clock.advance(1.0)
    tracer.gauge("depth", 7)
    tracer.instant("marker", reason="x")
    assert tracer.counters() == {"hits": 5}
    assert tracer.gauge_samples()["depth"][-1][1] == 7
    (instant,) = tracer.instants
    assert instant[0] == "marker" and instant[3] == {"reason": "x"}


def test_global_install_and_tracing_context():
    assert not obs.enabled()
    with obs.tracing() as tracer:
        assert obs.enabled() and obs.active() is tracer
        with obs.trace_span("global.work"):
            pass
        obs.count("c", 1)
        obs.gauge("g", 2.0)
        obs.instant("i")
    assert not obs.enabled() and obs.active() is None
    assert [s.name for s in tracer.spans] == ["global.work"]
    assert tracer.counters() == {"c": 1}


def test_tracing_restores_previous_tracer():
    with obs.tracing() as outer:
        with obs.tracing() as inner:
            assert obs.active() is inner
        assert obs.active() is outer
    assert obs.active() is None


def test_disabled_mode_returns_shared_null_context():
    assert obs.active() is None
    ctx = obs.trace_span("anything", key="value")
    assert ctx is _NULL_CONTEXT
    with ctx:
        pass  # no-op, reusable
    with ctx:
        pass
    # Module-level metric helpers are no-ops too.
    obs.count("x", 1)
    obs.gauge("y", 2)
    obs.instant("z")


def test_disabled_mode_overhead_is_negligible():
    def bare():
        total = 0
        for i in range(20000):
            total += i
        return total

    def traced_loop():
        total = 0
        for i in range(20000):
            with obs.trace_span("hot"):
                total += i
        return total

    def best_of(fn, reps=5):
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    assert obs.active() is None
    bare_t, traced_t = best_of(bare), best_of(traced_loop)
    # One global read + a shared null context per iteration. The bound is
    # deliberately loose (CI noise); the real guard is the <5% end-to-end
    # folded-BNN criterion, where trace_span is a tiny fraction of work.
    assert traced_t < bare_t * 20


def test_traced_decorator():
    @obs.traced("compute", category="test")
    def compute(x):
        return x * 2

    with obs.tracing() as tracer:
        assert compute(21) == 42
    (span,) = tracer.spans
    assert span.name == "compute" and span.category == "test"
    assert compute(1) == 2  # still works untraced


def test_add_span_retrospective():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    start = tracer.now()
    clock.advance(2.0)
    tracer.add_span("late", start, tracer.now(), category="x", n=1)
    (span,) = tracer.spans
    assert span.duration == pytest.approx(2.0)
    assert span.args == {"n": 1}
