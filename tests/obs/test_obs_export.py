"""Exporters: Chrome trace golden file, structural validity, summaries."""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.obs.export import (
    chrome_trace_events,
    timeline_to_chrome,
    to_chrome_trace,
    trace_summary,
    write_chrome_trace,
)
from repro.obs.tracer import Tracer

GOLDEN = Path(__file__).parent / "golden_chrome_trace.json"

#: Event phases the Trace Event Format defines for what we emit.
VALID_PHASES = {"X", "i", "C", "M"}


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t


def _golden_tracer() -> Tracer:
    """The exact event sequence the golden file was generated from."""
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    tracer.add_span("serve.bnn", 0.0, 0.01, category="serve",
                    thread_id=1, thread_name="bnn-worker", batch=32)
    tracer.add_span("bnn.conv2", 0.001, 0.006, category="bnn",
                    thread_id=1, thread_name="bnn-worker",
                    depth=1, parent="serve.bnn")
    tracer.add_span("serve.host", 0.004, 0.012, category="serve",
                    thread_id=2, thread_name="host-worker-0", images=9)
    clock.t = 100.25
    tracer.count("serve.rerun", 9)
    clock.t = 100.5
    tracer.gauge("queue.host", 3)
    return tracer


def test_chrome_trace_matches_golden_file():
    produced = to_chrome_trace(_golden_tracer())
    expected = json.loads(GOLDEN.read_text())
    assert json.loads(json.dumps(produced)) == expected


def test_golden_file_is_valid_chrome_trace():
    trace = json.loads(GOLDEN.read_text())
    assert isinstance(trace["traceEvents"], list) and trace["traceEvents"]
    for event in trace["traceEvents"]:
        assert event["ph"] in VALID_PHASES
        assert isinstance(event["name"], str)
        assert isinstance(event["pid"], int)
        if event["ph"] == "X":
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
            assert isinstance(event["tid"], int)


def test_events_sorted_and_metadata_first():
    events = chrome_trace_events(_golden_tracer())
    phases = [e["ph"] for e in events]
    first_data = phases.index("X")
    assert all(p == "M" for p in phases[:first_data])
    timestamps = [e["ts"] for e in events if e["ph"] != "M"]
    assert timestamps == sorted(timestamps)


def test_write_chrome_trace_roundtrip(tmp_path):
    path = write_chrome_trace(_golden_tracer(), tmp_path / "sub" / "trace.json")
    assert path.exists()
    trace = json.loads(path.read_text())
    assert trace["otherData"]["producer"] == "repro.obs"
    assert trace["otherData"]["spans"] == 3


def test_live_trace_exports_thread_names():
    with obs.tracing() as tracer:
        with obs.trace_span("outer"):
            with obs.trace_span("inner"):
                pass
        obs.instant("mark", k=1)
    events = chrome_trace_events(tracer)
    names = {e["name"] for e in events}
    assert {"outer", "inner", "mark", "thread_name"} <= names
    inner = next(e for e in events if e["name"] == "inner")
    assert inner["args"]["parent"] == "outer" and inner["args"]["depth"] == 1
    json.dumps(events)  # serializable


def test_trace_summary_digest():
    summary = trace_summary(_golden_tracer())
    assert set(summary) == {"spans", "counters", "dropped"}
    assert summary["counters"] == {"serve.rerun": 9}
    assert summary["spans"]["serve.bnn"]["count"] == 1
    assert summary["spans"]["serve.bnn"]["total_seconds"] == pytest.approx(0.01)
    json.dumps(summary)  # JSON-serializable by contract


def test_timeline_to_chrome_converts_simulated_intervals():
    from repro.hetero import FPGAExecutor, HostExecutor, simulate_cascade

    result = simulate_cascade(
        FPGAExecutor(interval_seconds=0.001),
        HostExecutor(seconds_per_image=0.004),
        num_images=32,
        batch_size=16,
        rerun_ratio=0.25,
    )
    trace = timeline_to_chrome(result.timeline)
    assert trace["traceEvents"]
    tracks = {
        e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"
    }
    assert any(t.startswith("sim:") for t in tracks)
    assert all(
        e["dur"] >= 0 for e in trace["traceEvents"] if e["ph"] == "X"
    )
    json.dumps(trace)
