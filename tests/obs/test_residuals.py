"""Eq. (1) and Eqs. (3)-(5) predicted-vs-measured residuals."""

import pytest

from repro.obs import eq1_residual, eq345_layer_residuals


def test_eq1_residual_host_bound():
    # t_fp*R/workers = 8ms*0.5 = 4ms > t_bnn=1ms -> predicted 4ms/img.
    out = eq1_residual(
        measured_seconds_per_image=0.005,
        t_fp=0.008, t_bnn=0.001, rerun_ratio=0.5, num_host_workers=1,
    )
    assert out["predicted_seconds_per_image"] == pytest.approx(0.004)
    assert out["residual_seconds_per_image"] == pytest.approx(0.001)
    assert out["relative_residual"] == pytest.approx(0.25)


def test_eq1_residual_bnn_bound_with_worker_pool():
    # Host pool of 4 drops its per-image share below t_bnn.
    out = eq1_residual(
        measured_seconds_per_image=0.0012,
        t_fp=0.008, t_bnn=0.001, rerun_ratio=0.5, num_host_workers=4,
    )
    assert out["predicted_seconds_per_image"] == pytest.approx(0.001)


def test_eq345_shares_sum_to_one():
    layers = [
        {"label": "conv2", "rows_per_image": 784, "n_out": 16, "n_bits": 144,
         "measured_seconds": 0.010},
        {"label": "fc1", "rows_per_image": 1, "n_out": 64, "n_bits": 256,
         "measured_seconds": 0.001},
    ]
    rows = eq345_layer_residuals(layers)
    assert [r["label"] for r in rows] == ["conv2", "fc1"]
    assert sum(r["predicted_fraction"] for r in rows) == pytest.approx(1.0)
    assert sum(r["measured_fraction"] for r in rows) == pytest.approx(1.0)
    for r in rows:
        assert r["residual_fraction"] == pytest.approx(
            r["measured_fraction"] - r["predicted_fraction"]
        )
    # conv2 dominates the op count, so its predicted share must too.
    assert rows[0]["predicted_fraction"] > 0.9


def test_eq345_validates_input():
    with pytest.raises(ValueError):
        eq345_layer_residuals([{"label": "x"}])
