"""Histogram/percentile math, span summaries, and the overlap measure."""

import pytest

from repro.obs import (
    Histogram,
    percentile,
    span_overlap_seconds,
    summarize_spans,
)
from repro.obs.stats import _merge_intervals
from repro.obs.tracer import Span


def _span(name, start, end, tid=1):
    return Span(
        name=name, start=start, end=end, thread_id=tid,
        thread_name=f"t{tid}", depth=0, parent=None,
    )


def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)
    assert percentile([7.0], 90) == 7.0


def test_percentile_validates():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_histogram_summary():
    h = Histogram("lat")
    for v in (1.0, 2.0, 3.0):
        h.add(v)
    s = h.summary()
    assert s["count"] == 3
    assert s["total"] == pytest.approx(6.0)
    assert s["mean"] == pytest.approx(2.0)
    assert s["min"] == 1.0 and s["max"] == 3.0
    assert Histogram().summary()["count"] == 0


def test_summarize_spans_groups_and_sorts():
    spans = [
        _span("a", 0.0, 1.0),
        _span("a", 1.0, 3.0),
        _span("b", 0.0, 0.5),
    ]
    summaries = summarize_spans(spans)
    assert list(summaries) == ["a", "b"]  # descending total time
    a = summaries["a"]
    assert a.count == 2
    assert a.total_seconds == pytest.approx(3.0)
    assert a.mean_seconds == pytest.approx(1.5)
    assert a.max_seconds == pytest.approx(2.0)


def test_merge_intervals_unions_overlaps():
    merged = _merge_intervals([(0, 2), (1, 3), (5, 6)])
    assert merged == [(0, 3), (5, 6)]
    assert _merge_intervals([]) == []


def test_overlap_basic():
    spans = [_span("bnn", 0.0, 2.0), _span("host", 1.0, 3.0, tid=2)]
    assert span_overlap_seconds(spans, "bnn", "host") == pytest.approx(1.0)


def test_overlap_unions_same_name_threads():
    # Two host workers overlapping each other must not double-count.
    spans = [
        _span("bnn", 0.0, 4.0),
        _span("host", 1.0, 3.0, tid=2),
        _span("host", 2.0, 3.5, tid=3),
    ]
    assert span_overlap_seconds(spans, "bnn", "host") == pytest.approx(2.5)


def test_overlap_disjoint_and_missing():
    spans = [_span("bnn", 0.0, 1.0), _span("host", 2.0, 3.0)]
    assert span_overlap_seconds(spans, "bnn", "host") == 0.0
    assert span_overlap_seconds(spans, "bnn", "absent") == 0.0
