"""Tracing must observe, never perturb: traced == untraced predictions."""

import numpy as np

from repro import obs
from repro.core.dmu import DecisionMakingUnit
from repro.serve import CascadeServer


def _stack(num_requests=160, seed=7):
    """Deterministic synthetic serving stack (no sleeps, static threshold)."""
    rng = np.random.default_rng(seed)
    scores = rng.normal(0.0, 1.0, size=(num_requests, 10))
    weights = np.zeros(10)
    weights[0], weights[1] = 4.0, -4.0
    dmu = DecisionMakingUnit(weights, bias=0.0, threshold=0.9)

    def bnn_scores_fn(images):
        return images

    def host_predict_fn(images):
        # Distinguishable from the BNN answer: host picks the runner-up.
        return np.argsort(images, axis=1)[:, -2]

    return bnn_scores_fn, dmu, host_predict_fn, scores


def _serve(traced: bool):
    bnn_fn, dmu, host_fn, scores = _stack()
    server = CascadeServer(
        bnn_fn, dmu, host_fn,
        controller=0.9,
        max_batch_size=16,
        batch_delay_s=0.001,
        num_host_workers=2,
        host_batch_size=8,
    )
    if traced:
        with obs.tracing() as tracer:
            with server:
                results = server.classify_many(iter(scores))
        return results, tracer
    with server:
        results = server.classify_many(iter(scores))
    return results, None


def test_traced_run_identical_predictions():
    untraced, _ = _serve(traced=False)
    traced, tracer = _serve(traced=True)
    assert [r.prediction for r in traced] == [r.prediction for r in untraced]
    assert [r.bnn_prediction for r in traced] == [r.bnn_prediction for r in untraced]
    assert [r.source for r in traced] == [r.source for r in untraced]
    # And the trace actually observed the run.
    names = {s.name for s in tracer.spans}
    assert {"serve.bnn", "serve.dmu", "serve.batch"} <= names
    assert "serve.host" in names  # threshold 0.9 flags a nonempty subset
    counters = tracer.counters()
    total = sum(counters.get(k, 0) for k in ("serve.accepted", "serve.rerun", "serve.degraded"))
    assert total == 160


def test_tracer_left_uninstalled_after_server_run():
    _serve(traced=True)
    assert obs.active() is None
    _serve(traced=False)
    assert obs.active() is None


def test_offline_pipeline_traced_identical():
    """The batch MultiPrecisionPipeline path is also invariant under tracing."""
    from repro.bnn import fold_network
    from repro.core import MultiPrecisionPipeline
    from repro.core.dmu import DecisionMakingUnit
    from repro.data import normalize_to_pm1, synthetic_cifar10
    from repro.models import build_finn_cnv, build_model_a

    rng = np.random.default_rng(0)
    net = build_finn_cnv(scale=0.1, rng=rng)
    net.eval_mode()
    folded = fold_network(net)
    host = build_model_a(scale=0.15, rng=np.random.default_rng(1))
    host.eval_mode()
    weights = np.zeros(10)
    weights[0], weights[1] = 4.0, -4.0
    dmu = DecisionMakingUnit(weights, bias=0.0, threshold=0.7)
    pipe = MultiPrecisionPipeline(folded, dmu, host)
    images = normalize_to_pm1(
        synthetic_cifar10(num_train=1, num_test=24, seed=3).test.images
    )

    plain = pipe.classify(images)
    with obs.tracing() as tracer:
        traced = pipe.classify(images)
    np.testing.assert_array_equal(plain.predictions, traced.predictions)
    np.testing.assert_array_equal(plain.rerun_mask, traced.rerun_mask)
    names = {s.name for s in tracer.spans}
    assert {"cascade.bnn", "cascade.dmu"} <= names
