"""End-to-end integration: tiny real cascade from raw data to Table-V-style
metrics, exercising every subsystem together in one flow."""

import numpy as np
import pytest

from repro.bnn import clip_weights, fold_network, load_folded_bnn, save_folded_bnn
from repro.core import MultiPrecisionPipeline, train_dmu
from repro.data import build_score_dataset, normalize_to_pm1, synthetic_cifar10
from repro.hetero import FPGAExecutor, HostExecutor, simulate_cascade
from repro.models import build_finn_cnv, build_model_a
from repro.nn import Adam, SoftmaxCrossEntropy, SquaredHinge, Trainer
from repro.nn.metrics import classification_report


@pytest.fixture(scope="module")
def tiny_system():
    """Train a miniature full system once for this module."""
    rng = np.random.default_rng(0)
    splits = synthetic_cifar10(num_train=400, num_test=150, seed=0)

    bnn = build_finn_cnv(scale=0.1, rng=rng)
    Trainer(
        bnn, SquaredHinge(), Adam(bnn.params(), lr=3e-3, post_update=clip_weights), rng=rng
    ).fit(normalize_to_pm1(splits.train.images), splits.train.labels, epochs=3, batch_size=64)
    folded = fold_network(bnn, num_classes=10)

    host = build_model_a(scale=0.2, rng=rng)
    Trainer(host, SoftmaxCrossEntropy(), Adam(host.params(), lr=1e-3), rng=rng).fit(
        splits.train.images, splits.train.labels, epochs=3, batch_size=64
    )

    scores = build_score_dataset(
        folded.class_scores(normalize_to_pm1(splits.train.images)), splits.train.labels
    )
    dmu = train_dmu(scores, epochs=20, rng=rng)
    return splits, folded, host, dmu


class TestEndToEnd:
    def test_cascade_runs_and_improves_or_matches_bnn(self, tiny_system):
        splits, folded, host, dmu = tiny_system
        pipeline = MultiPrecisionPipeline(folded, dmu, host, threshold=0.7)
        result = pipeline.classify(
            splits.test.images, bnn_images=normalize_to_pm1(splits.test.images)
        )
        labels = splits.test.labels
        assert result.accuracy(labels) > 0.15  # well above 10-class chance
        assert 0.0 <= result.rerun_ratio <= 1.0
        # Metrics pipeline integrates cleanly.
        report = classification_report(labels, result.predictions, splits.test.class_names)
        assert report.matrix.sum() == len(splits.test)

    def test_cascade_to_simulator_to_rate(self, tiny_system):
        splits, folded, host, dmu = tiny_system
        pipeline = MultiPrecisionPipeline(folded, dmu, host, threshold=0.7)
        result = pipeline.classify(
            splits.test.images, bnn_images=normalize_to_pm1(splits.test.images)
        )
        sim = simulate_cascade(
            FPGAExecutor(interval_seconds=1 / 430.15, fill_seconds=0.01),
            HostExecutor(seconds_per_image=1 / 29.68),
            num_images=len(splits.test),
            batch_size=50,
            rerun_mask=result.rerun_mask,
        )
        assert sim.rerun_ratio == pytest.approx(result.rerun_ratio, abs=1e-9)
        assert 29.68 * 0.9 <= sim.images_per_second <= 430.15 * 1.1

    def test_deploy_roundtrip_in_cascade(self, tiny_system, tmp_path):
        splits, folded, host, dmu = tiny_system
        path = tmp_path / "deploy.npz"
        save_folded_bnn(folded, path)
        loaded = load_folded_bnn(path)
        a = MultiPrecisionPipeline(folded, dmu, host, threshold=0.7).classify(
            splits.test.images, bnn_images=normalize_to_pm1(splits.test.images)
        )
        b = MultiPrecisionPipeline(loaded, dmu, host, threshold=0.7).classify(
            splits.test.images, bnn_images=normalize_to_pm1(splits.test.images)
        )
        np.testing.assert_array_equal(a.predictions, b.predictions)
