"""Heterogeneous pipeline simulator: timeline, devices, scheduler, Eq. (1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hetero import (
    FPGAExecutor,
    HostExecutor,
    Interval,
    Timeline,
    compare_with_eq1,
    flagged_per_batch,
    simulate_cascade,
)


class TestTimeline:
    def test_record_and_query(self):
        tl = Timeline()
        tl.record("fpga", 0.0, 1.0, "b0")
        tl.record("host", 0.5, 2.0, "r0")
        assert tl.busy_seconds("fpga") == pytest.approx(1.0)
        assert tl.makespan() == pytest.approx(2.0)
        assert tl.utilization("fpga") == pytest.approx(0.5)

    def test_overlap(self):
        tl = Timeline()
        tl.record("a", 0.0, 2.0, "x")
        tl.record("b", 1.0, 3.0, "y")
        assert tl.overlap_seconds("a", "b") == pytest.approx(1.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Interval("a", 1.0, 0.5, "bad")

    def test_empty(self):
        tl = Timeline()
        assert tl.makespan() == 0.0
        assert tl.utilization("a") == 0.0


class TestExecutors:
    def test_fpga_batch_time(self):
        fpga = FPGAExecutor(interval_seconds=0.002, fill_seconds=0.01)
        assert fpga.batch_seconds(100) == pytest.approx(0.01 + 0.2)

    def test_fpga_from_pipeline(self):
        from repro.finn import ZC702_CLOCK_HZ, balance_network, evaluate_pipeline, finn_cnv_specs

        perf = evaluate_pipeline(balance_network(finn_cnv_specs(), 232_000))
        fpga = FPGAExecutor.from_pipeline(perf)
        assert fpga.interval_seconds == pytest.approx(perf.seconds_per_image)
        assert fpga.fill_seconds >= 0

    def test_host_rerun_time(self):
        host = HostExecutor(seconds_per_image=0.03, dmu_seconds_per_image=1e-6)
        t = host.rerun_seconds(batch_size=100, num_flagged=25)
        assert t == pytest.approx(100e-6 + 25 * 0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            FPGAExecutor(interval_seconds=0.0)
        with pytest.raises(ValueError):
            HostExecutor(seconds_per_image=-1.0)
        host = HostExecutor(seconds_per_image=0.03)
        with pytest.raises(ValueError):
            host.rerun_seconds(10, 11)
        fpga = FPGAExecutor(interval_seconds=0.01)
        with pytest.raises(ValueError):
            fpga.batch_seconds(0)


class TestFlaggedPerBatch:
    def test_split(self):
        mask = np.array([1, 0, 1, 1, 0, 0, 1], dtype=bool)
        assert flagged_per_batch(mask, 3) == [2, 1, 1]

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            flagged_per_batch(np.zeros(4, dtype=bool), 0)


class TestSimulateCascade:
    def _components(self, t_fp=1 / 29.68, t_bnn=1 / 430.15):
        return (
            FPGAExecutor(interval_seconds=t_bnn, fill_seconds=5 * t_bnn),
            HostExecutor(seconds_per_image=t_fp, dmu_seconds_per_image=2e-7),
        )

    def test_argument_validation(self):
        fpga, host = self._components()
        with pytest.raises(ValueError):
            simulate_cascade(fpga, host, 0, 10, rerun_ratio=0.2)
        with pytest.raises(ValueError):
            simulate_cascade(fpga, host, 100, 10)  # neither mask nor ratio
        with pytest.raises(ValueError):
            simulate_cascade(fpga, host, 100, 10, rerun_ratio=0.2, rerun_mask=np.zeros(100, bool))
        with pytest.raises(ValueError):
            simulate_cascade(fpga, host, 100, 10, rerun_ratio=1.2)
        with pytest.raises(ValueError):
            simulate_cascade(fpga, host, 100, 10, rerun_mask=np.zeros(99, dtype=bool))

    def test_all_images_accounted(self):
        fpga, host = self._components()
        result = simulate_cascade(fpga, host, 105, 20, rerun_ratio=0.25)
        assert sum(b.size for b in result.batches) == 105
        assert len(result.batches) == 6  # 5 full + 1 remainder of 5

    def test_host_and_fpga_overlap(self):
        # The core claim of Fig. 2: host rerun of batch i-1 runs while the
        # FPGA processes batch i.
        fpga, host = self._components()
        result = simulate_cascade(fpga, host, 1000, 100, rerun_ratio=0.25)
        assert result.timeline.overlap_seconds("fpga", "host") > 0

    def test_zero_rerun_is_fpga_bound(self):
        fpga, host = self._components()
        result = simulate_cascade(fpga, host, 2000, 100, rerun_ratio=0.0)
        # Rate approaches the BNN rate (DMU scan cost is negligible).
        assert result.images_per_second == pytest.approx(430.15, rel=0.05)

    def test_full_rerun_is_host_bound(self):
        fpga, host = self._components()
        result = simulate_cascade(fpga, host, 300, 100, rerun_ratio=1.0)
        assert result.images_per_second == pytest.approx(29.68, rel=0.05)

    def test_paper_operating_point(self):
        # R_rerun = 25.1%: simulated throughput should be far above the
        # standalone host rate and below the BNN rate.
        fpga, host = self._components()
        result = simulate_cascade(fpga, host, 2000, 100, rerun_ratio=0.251)
        assert 29.68 * 2 < result.images_per_second < 430.15
        assert result.rerun_ratio == pytest.approx(0.251, abs=0.01)

    def test_rerun_mask_equivalent_to_ratio(self):
        fpga, host = self._components()
        mask = np.zeros(400, dtype=bool)
        mask[::4] = True  # exactly 25% per batch of 100
        by_mask = simulate_cascade(fpga, host, 400, 100, rerun_mask=mask)
        by_ratio = simulate_cascade(fpga, host, 400, 100, rerun_ratio=0.25)
        assert by_mask.total_seconds == pytest.approx(by_ratio.total_seconds)

    def test_monotone_in_rerun_ratio(self):
        fpga, host = self._components()
        times = [
            simulate_cascade(fpga, host, 1000, 100, rerun_ratio=r).total_seconds
            for r in (0.0, 0.2, 0.5, 1.0)
        ]
        assert times == sorted(times)

    def test_batch_size_insensitive_throughput(self):
        # Paper: "Changing batch size does not have a significant effect on
        # multi-precision features" — throughput varies little with batch.
        fpga, host = self._components()
        rates = [
            simulate_cascade(fpga, host, 2000, bs, rerun_ratio=0.251).images_per_second
            for bs in (50, 100, 200, 400)
        ]
        assert max(rates) / min(rates) < 1.15

    def test_latency_grows_with_batch_size(self):
        # Paper: "with higher batch sizes, the latency of an image to pass
        # through the multi-precision system increases".
        fpga, host = self._components()
        lat = [
            simulate_cascade(fpga, host, 2000, bs, rerun_ratio=0.251).average_batch_latency()
            for bs in (50, 100, 200, 400)
        ]
        assert lat == sorted(lat)

    def test_utilizations_bounded(self):
        fpga, host = self._components()
        result = simulate_cascade(fpga, host, 1000, 100, rerun_ratio=0.251)
        assert 0 < result.fpga_utilization() <= 1
        assert 0 < result.host_utilization() <= 1


class TestCompareWithEq1:
    def test_eq1_is_optimistic_but_close(self):
        t_fp, t_bnn = 1 / 29.68, 1 / 430.15
        fpga = FPGAExecutor(interval_seconds=t_bnn, fill_seconds=5 * t_bnn)
        host = HostExecutor(seconds_per_image=t_fp, dmu_seconds_per_image=2e-7)
        result = simulate_cascade(fpga, host, 5000, 100, rerun_ratio=0.251)
        cmp = compare_with_eq1(result, t_fp, t_bnn)
        # Eq. (1) ignores ramp-up and the trailing host call, so the
        # simulation is slightly slower but within a few percent.
        assert 0.0 <= cmp.relative_error < 0.05
        assert cmp.simulated_fps < cmp.analytic_fps
