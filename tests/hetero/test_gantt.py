"""ASCII Gantt chart of simulation timelines."""

from repro.hetero import (
    FPGAExecutor,
    HostExecutor,
    Timeline,
    gantt_chart,
    simulate_cascade,
)


class TestGantt:
    def _sim(self):
        return simulate_cascade(
            FPGAExecutor(1 / 430.15, 0.01),
            HostExecutor(1 / 29.68),
            400,
            100,
            rerun_ratio=0.25,
        )

    def test_lanes_for_both_devices(self):
        chart = gantt_chart(self._sim().timeline)
        lines = chart.splitlines()
        assert lines[0].startswith("fpga") or lines[1].startswith("fpga")
        assert any(l.startswith("host") for l in lines)
        assert "#" in chart

    def test_utilization_annotated(self):
        chart = gantt_chart(self._sim().timeline)
        assert "% busy" in chart

    def test_empty_timeline(self):
        assert gantt_chart(Timeline()) == "(empty timeline)"

    def test_zero_span(self):
        tl = Timeline()
        tl.record("a", 1.0, 1.0, "x")
        assert gantt_chart(tl) == "(zero-length timeline)"

    def test_clipping(self):
        sim = self._sim()
        full = gantt_chart(sim.timeline)
        clipped = gantt_chart(sim.timeline, max_span_seconds=0.5)
        assert "0.500s" in clipped
        assert full != clipped

    def test_width_respected(self):
        chart = gantt_chart(self._sim().timeline, width=30)
        lane = next(l for l in chart.splitlines() if "|" in l)
        inner = lane.split("|")[1]
        assert len(inner) == 30
