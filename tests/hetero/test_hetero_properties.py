"""Property-based tests for the heterogeneous simulator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hetero import FPGAExecutor, HostExecutor, simulate_cascade


@st.composite
def cascade_params(draw):
    t_bnn = draw(st.floats(1e-4, 1e-2))
    t_fp = draw(st.floats(1e-3, 1e-1))
    num_images = draw(st.integers(10, 500))
    batch_size = draw(st.integers(1, 120))
    rerun_ratio = draw(st.floats(0.0, 1.0))
    return t_bnn, t_fp, num_images, batch_size, rerun_ratio


class TestSimulationInvariants:
    @given(cascade_params())
    @settings(max_examples=40, deadline=None)
    def test_time_accounts_for_all_work(self, params):
        t_bnn, t_fp, num_images, batch_size, rerun_ratio = params
        fpga = FPGAExecutor(interval_seconds=t_bnn)
        host = HostExecutor(seconds_per_image=t_fp, dmu_seconds_per_image=0.0)
        result = simulate_cascade(fpga, host, num_images, batch_size, rerun_ratio=rerun_ratio)

        # Lower bounds: nothing finishes before either device's total work.
        fpga_work = num_images * t_bnn
        host_work = sum(b.num_flagged for b in result.batches) * t_fp
        assert result.total_seconds >= fpga_work - 1e-12
        assert result.total_seconds >= host_work - 1e-12
        # Upper bound: fully serial execution.
        assert result.total_seconds <= fpga_work + host_work + num_images * t_bnn + 1e-9

    @given(cascade_params())
    @settings(max_examples=40, deadline=None)
    def test_batches_partition_the_stream(self, params):
        t_bnn, t_fp, num_images, batch_size, rerun_ratio = params
        fpga = FPGAExecutor(interval_seconds=t_bnn)
        host = HostExecutor(seconds_per_image=t_fp)
        result = simulate_cascade(fpga, host, num_images, batch_size, rerun_ratio=rerun_ratio)
        assert sum(b.size for b in result.batches) == num_images
        assert all(0 <= b.num_flagged <= b.size for b in result.batches)

    @given(cascade_params())
    @settings(max_examples=40, deadline=None)
    def test_intervals_never_overlap_per_device(self, params):
        t_bnn, t_fp, num_images, batch_size, rerun_ratio = params
        fpga = FPGAExecutor(interval_seconds=t_bnn)
        host = HostExecutor(seconds_per_image=t_fp)
        result = simulate_cascade(fpga, host, num_images, batch_size, rerun_ratio=rerun_ratio)
        for device in ("fpga", "host"):
            intervals = sorted(
                result.timeline.device_intervals(device), key=lambda i: i.start
            )
            for a, b in zip(intervals, intervals[1:]):
                assert b.start >= a.end - 1e-12

    @given(
        st.integers(50, 400),
        st.floats(0.0, 1.0),
        st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_mask_and_ratio_agree_on_flagged_totals(self, num_images, ratio, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random(num_images) < ratio
        fpga = FPGAExecutor(interval_seconds=1e-3)
        host = HostExecutor(seconds_per_image=1e-2)
        result = simulate_cascade(fpga, host, num_images, 50, rerun_mask=mask)
        assert sum(b.num_flagged for b in result.batches) == int(mask.sum())
