"""LayerSpec feature formulas and Engine cycle equations (paper Eqs. 3-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.finn import (
    Engine,
    LayerSpec,
    divisors,
    finn_cnv_specs,
    valid_pe_counts,
    valid_simd_counts,
)


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(64) == [1, 2, 4, 8, 16, 32, 64]

    def test_invalid(self):
        with pytest.raises(ValueError):
            divisors(0)

    @given(st.integers(1, 2000))
    @settings(max_examples=50, deadline=None)
    def test_property_all_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds[0] == 1 and ds[-1] == n
        assert ds == sorted(set(ds))


class TestLayerSpec:
    def test_conv_weight_size_formula(self):
        # Paper: total weight size of a conv layer = OD * (K*K*ID).
        spec = LayerSpec("c", "conv", out_channels=64, in_channels=3, kernel=3,
                         in_height=32, in_width=32, out_height=30, out_width=30)
        assert spec.total_weight_bits == 64 * 27
        assert spec.fan_in == 27

    def test_fc_weight_size_formula(self):
        spec = LayerSpec("f", "fc", out_channels=64, in_channels=256)
        assert spec.total_weight_bits == 64 * 256
        assert spec.fan_in == 256
        assert spec.output_pixels == 1

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            LayerSpec("x", "pool", out_channels=2, in_channels=2)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            LayerSpec("x", "conv", out_channels=0, in_channels=3)

    def test_describe(self):
        spec = finn_cnv_specs()[0]
        assert "3x3-conv-64" in spec.describe()


class TestFinnCnvSpecs:
    def test_table1_channels(self):
        specs = finn_cnv_specs()
        assert [s.name for s in specs] == [
            "conv1", "conv2", "conv3", "conv4", "conv5", "conv6", "fc1", "fc2", "fc3",
        ]
        assert [s.out_channels for s in specs[:6]] == [64, 64, 128, 128, 256, 256]
        assert [s.out_channels for s in specs[6:]] == [64, 64, 64]

    def test_spatial_flow(self):
        specs = finn_cnv_specs()
        # 32 -> 30 -> 28 -> (pool) 14 -> 12 -> 10 -> (pool) 5 -> 3 -> 1
        assert [(s.in_height, s.out_height) for s in specs[:6]] == [
            (32, 30), (30, 28), (14, 12), (12, 10), (5, 3), (3, 1),
        ]
        assert specs[6].in_channels == 256  # 1x1x256 flattened

    def test_threshold_widths(self):
        # Paper: 24-bit first stage, 16-bit rest, none for the last stage.
        specs = finn_cnv_specs()
        assert specs[0].threshold_bits == 24
        assert all(s.threshold_bits == 16 for s in specs[1:-1])
        assert specs[-1].threshold_bits is None

    def test_too_small_image_raises(self):
        with pytest.raises(ValueError):
            finn_cnv_specs(image_size=8)


class TestEngineCycles:
    def test_eq3_conv_cycles(self):
        # CC = OD/P * (K*K*ID)/S * OH*OW
        spec = finn_cnv_specs()[1]  # conv2: OD=64, fan-in 576, 28x28 out
        engine = Engine(spec, pe=4, simd=16)
        assert engine.cycles_per_image == (64 // 4) * (576 // 16) * 28 * 28

    def test_eq4_fc_cycles(self):
        spec = finn_cnv_specs()[6]  # fc1: 256 -> 64
        engine = Engine(spec, pe=8, simd=4)
        assert engine.cycles_per_image == (64 // 8) * (256 // 4)

    def test_eq5_fps(self):
        spec = finn_cnv_specs()[6]
        engine = Engine(spec, pe=64, simd=16)
        cc = engine.cycles_per_image
        assert engine.fps(100e6) == pytest.approx(100e6 / cc)

    def test_full_parallel_equals_output_pixels(self):
        # P=OD, S=fan_in: one output pixel per cycle.
        spec = finn_cnv_specs()[5]  # conv6
        engine = Engine(spec, pe=spec.out_channels, simd=spec.fan_in)
        assert engine.cycles_per_image == spec.output_pixels

    def test_non_divisor_p_rejected(self):
        spec = finn_cnv_specs()[0]
        with pytest.raises(ValueError):
            Engine(spec, pe=3, simd=1)  # 3 does not divide 64

    def test_non_divisor_s_rejected(self):
        spec = finn_cnv_specs()[0]  # fan-in 27
        with pytest.raises(ValueError):
            Engine(spec, pe=1, simd=4)

    def test_memory_geometry(self):
        # Weight memory: P files of total/(P*S) arrays of S-bit values.
        spec = finn_cnv_specs()[1]
        engine = Engine(spec, pe=8, simd=16)
        assert engine.weight_file_depth == spec.total_weight_bits // (8 * 16)
        assert engine.weight_file_width == 16
        assert engine.threshold_file_depth == spec.out_channels // 8

    @given(st.integers(0, 5), st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_property_cycles_scale_inverse_with_parallelism(self, spec_idx, seed):
        rng = np.random.default_rng(seed)
        spec = finn_cnv_specs()[spec_idx]
        ps = valid_pe_counts(spec)
        ss = valid_simd_counts(spec)
        p = int(rng.choice(ps))
        s = int(rng.choice(ss))
        engine = Engine(spec, p, s)
        base = Engine(spec, 1, 1)
        assert engine.cycles_per_image * p * s == base.cycles_per_image

    def test_valid_counts_respect_caps(self):
        spec = finn_cnv_specs()[1]
        assert max(valid_pe_counts(spec, max_pe=16)) <= 16
        assert max(valid_simd_counts(spec, max_simd=16)) <= 16
