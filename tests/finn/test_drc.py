"""Design-rule checks."""

import pytest

from repro.finn import balance_network, finn_cnv_specs
from repro.finn.device import XC7Z010, XC7Z045
from repro.finn.drc import Severity, check_design


@pytest.fixture(scope="module")
def paper_design():
    return balance_network(finn_cnv_specs(), target_cycles=232_000)


class TestCheckDesign:
    def test_paper_config_passes_on_zc702(self, paper_design):
        check = check_design(paper_design)
        assert check.ok, check.format()

    def test_fails_on_small_device(self, paper_design):
        check = check_design(paper_design, device=XC7Z010)
        assert not check.ok
        assert any(d.code.endswith("overflow") for d in check.errors)

    def test_large_device_clean_fit(self, paper_design):
        check = check_design(paper_design, device=XC7Z045)
        assert check.ok
        assert not check.warnings

    def test_throughput_requirement(self, paper_design):
        ok = check_design(paper_design, required_fps=60)
        assert ok.ok
        bad = check_design(paper_design, required_fps=100_000)
        assert any(d.code == "throughput-shortfall" for d in bad.errors)

    def test_overprovision_info(self):
        # Loose target: FC layers are orders of magnitude faster than convs.
        design = balance_network(finn_cnv_specs(), target_cycles=1_000_000)
        check = check_design(design, imbalance_tolerance=4.0)
        assert any(d.code == "over-provisioned" for d in check.diagnostics)
        # INFO items do not fail the check.
        assert check.ok or check.errors

    def test_pressure_warning_band(self):
        # Very fast target pushes LUTs into the warning band on XC7Z020.
        design = balance_network(finn_cnv_specs(), target_cycles=33_000)
        check = check_design(design)
        assert any(
            d.severity in (Severity.WARNING, Severity.ERROR) for d in check.diagnostics
        )

    def test_format(self, paper_design):
        text = check_design(paper_design, required_fps=1e9).format()
        assert "throughput-shortfall" in text
        clean = check_design(paper_design, imbalance_tolerance=1e9)
        if not clean.diagnostics:
            assert clean.format() == "design check: clean"
