"""Mixed-precision (future-work) extension of the FINN model."""

import pytest

from repro.finn import (
    Engine,
    LayerSpec,
    finn_cnv_specs,
    precision_ladder,
    with_precision,
)


class TestLayerSpecPrecision:
    def test_defaults_are_binary(self):
        spec = finn_cnv_specs()[0]
        assert spec.weight_bits == 1 and spec.activation_bits == 1
        assert spec.bit_serial_passes == 1
        assert spec.threshold_levels == 1

    def test_storage_scales_with_weight_bits(self):
        base = finn_cnv_specs()[1]
        wide = with_precision([base], weight_bits=4)[0]
        assert wide.total_weight_bits == 4 * base.total_weight_bits

    def test_threshold_levels(self):
        spec = with_precision([finn_cnv_specs()[1]], activation_bits=3)[0]
        assert spec.threshold_levels == 7

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            LayerSpec("x", "fc", out_channels=4, in_channels=4, weight_bits=0)
        with pytest.raises(ValueError):
            with_precision(finn_cnv_specs(), weight_bits=0)


class TestEnginePrecision:
    def test_cycles_scale_bit_serially(self):
        base_spec = finn_cnv_specs()[1]
        w2a2 = with_precision([base_spec], weight_bits=2, activation_bits=2)[0]
        base = Engine(base_spec, 4, 16)
        multi = Engine(w2a2, 4, 16)
        assert multi.cycles_per_image == 4 * base.cycles_per_image

    def test_weight_file_geometry(self):
        spec = with_precision([finn_cnv_specs()[1]], weight_bits=2)[0]
        engine = Engine(spec, 8, 16)
        # Words hold S weights of 2 bits; word count is unchanged.
        base_engine = Engine(finn_cnv_specs()[1], 8, 16)
        assert engine.weight_file_depth == base_engine.weight_file_depth
        assert engine.weight_file_width == 2 * base_engine.weight_file_width

    def test_threshold_depth_scales_with_levels(self):
        spec = with_precision([finn_cnv_specs()[1]], activation_bits=2)[0]
        engine = Engine(spec, 8, 16)
        base = Engine(finn_cnv_specs()[1], 8, 16)
        assert engine.threshold_file_depth == 3 * base.threshold_file_depth


class TestPrecisionHelpers:
    def test_first_layer_override(self):
        specs = with_precision(
            finn_cnv_specs(), weight_bits=1, activation_bits=2,
            first_layer_activation_bits=8,
        )
        assert specs[0].activation_bits == 8
        assert all(s.activation_bits == 2 for s in specs[1:])

    def test_ladder_labels(self):
        ladder = precision_ladder(finn_cnv_specs())
        assert set(ladder) == {"W1A1", "W1A2", "W2A2", "W4A4", "W8A8"}
        assert all(len(v) == 9 for v in ladder.values())

    def test_names_preserved(self):
        specs = with_precision(finn_cnv_specs(), 2, 2)
        assert [s.name for s in specs] == [s.name for s in finn_cnv_specs()]
