"""Per-engine hardware report."""

import pytest

from repro.finn import (
    XC7Z020,
    balance_network,
    finn_cnv_specs,
    hardware_report,
    network_resources,
)


@pytest.fixture(scope="module")
def report():
    return hardware_report(balance_network(finn_cnv_specs(), 232_000))


class TestHardwareReport:
    def test_one_row_per_engine(self, report):
        assert [r.engine for r in report.rows] == [s.name for s in finn_cnv_specs()]

    def test_exactly_one_bottleneck(self, report):
        assert sum(r.is_bottleneck for r in report.rows) == 1
        bottleneck = next(r for r in report.rows if r.is_bottleneck)
        assert bottleneck.cycles == max(r.cycles for r in report.rows)

    def test_bram_split_sums_to_totals(self, report):
        per_engine = sum(
            r.weight_brams + r.threshold_brams + r.buffer_brams for r in report.rows
        )
        # Network total additionally includes the SDSoC infrastructure base.
        assert report.resources.total_brams > per_engine
        assert report.resources.total_brams - per_engine > 0

    def test_standalone_fps_consistent(self, report):
        for r in report.rows:
            assert r.standalone_fps == pytest.approx(100e6 / r.cycles)

    def test_efficiencies_bounded(self, report):
        assert all(0 < r.storage_efficiency <= 1 for r in report.rows)

    def test_format_marks_bottleneck(self, report):
        text = report.format()
        assert "<- bottleneck" in text
        assert "weight-storage efficiency" in text

    def test_partitioned_flag_changes_allocation(self):
        balance = balance_network(finn_cnv_specs(), 232_000)
        naive = hardware_report(balance, partitioned=False)
        part = hardware_report(balance, partitioned=True)
        assert part.resources.total_brams <= naive.resources.total_brams
