"""FPGA device catalog."""

import pytest

from repro.finn import DEVICES, XC7Z020, FPGADevice
from repro.finn.device import XC7Z010, XC7Z045, XCZU9EG


class TestDeviceCatalog:
    def test_paper_device_resources(self):
        # XC7Z020 public numbers: 280 RAMB18, 53200 LUTs.
        assert XC7Z020.bram_18k == 280
        assert XC7Z020.luts == 53200

    def test_catalog_contains_known_devices(self):
        assert set(DEVICES) == {"XC7Z010", "XC7Z020", "XC7Z045", "XCZU9EG"}
        assert DEVICES["XC7Z020"] is XC7Z020

    def test_size_ordering(self):
        assert XC7Z010.bram_18k < XC7Z020.bram_18k < XC7Z045.bram_18k < XCZU9EG.bram_18k

    def test_utilization(self):
        assert XC7Z020.bram_utilization(140) == pytest.approx(0.5)
        assert XC7Z020.lut_utilization(53200) == pytest.approx(1.0)

    def test_fits(self):
        assert XC7Z020.fits(bram=280, luts=53200)
        assert not XC7Z020.fits(bram=281, luts=1000)
        assert not XC7Z020.fits(bram=1, luts=60000)

    def test_invalid_device(self):
        with pytest.raises(ValueError):
            FPGADevice("bad", bram_18k=0, luts=1, flip_flops=1, dsp48=1)


class TestCrossDevicePortability:
    def test_cnv_does_not_fit_small_device(self):
        from repro.finn import balance_network, finn_cnv_specs, network_resources

        result = balance_network(finn_cnv_specs(), target_cycles=232_000)
        res = network_resources(list(result.engines), XC7Z010, partitioned=True)
        assert not res.fits()

    def test_high_pe_config_fits_large_device(self):
        from repro.finn import balance_network, finn_cnv_specs, network_resources

        result = balance_network(finn_cnv_specs(), target_cycles=33_000)
        res = network_resources(list(result.engines), XC7Z045, partitioned=True)
        assert res.fits()
