"""Rate balancer and streaming-dataflow performance model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.finn import (
    IMAGE_DMA_CYCLES,
    ZC702_CLOCK_HZ,
    balance_layer,
    balance_network,
    batch_latency_cycles,
    evaluate_pipeline,
    finn_cnv_specs,
    sweep_targets,
)


class TestBalanceLayer:
    def test_meets_target_when_feasible(self):
        spec = finn_cnv_specs()[1]
        engine = balance_layer(spec, target_cycles=250_000)
        assert engine.cycles_per_image <= 250_000

    def test_minimizes_compute_cost(self):
        # A looser target must never cost more P*S than a tighter one.
        spec = finn_cnv_specs()[1]
        loose = balance_layer(spec, target_cycles=1_000_000)
        tight = balance_layer(spec, target_cycles=100_000)
        assert loose.pe * loose.simd <= tight.pe * tight.simd

    def test_infeasible_target_returns_fastest(self):
        spec = finn_cnv_specs()[1]  # conv2: 28.9M ops
        engine = balance_layer(spec, target_cycles=1, max_pe=4, max_simd=4)
        # fastest legal folding at caps: P=4, S=4
        assert engine.pe == 4 and engine.simd == 4

    def test_trivial_layer_uses_minimal_folding(self):
        spec = finn_cnv_specs()[-1]  # fc3: 4096 ops
        engine = balance_layer(spec, target_cycles=10_000)
        assert engine.pe == 1 and engine.simd == 1

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            balance_layer(finn_cnv_specs()[0], target_cycles=0)

    @given(st.sampled_from([50_000, 100_000, 250_000, 500_000, 1_000_000]))
    @settings(max_examples=10, deadline=None)
    def test_property_all_layers_meet_feasible_targets(self, target):
        for spec in finn_cnv_specs():
            engine = balance_layer(spec, target)
            # CNV layers are all balanceable to >= 50k cycles at S<=16.
            assert engine.cycles_per_image <= target


class TestBalanceNetwork:
    def test_bottleneck_definition(self):
        result = balance_network(finn_cnv_specs(), target_cycles=232_000)
        assert result.bottleneck_cycles == max(e.cycles_per_image for e in result.engines)
        assert result.bottleneck.cycles_per_image == result.bottleneck_cycles

    def test_total_pe_counts_only_pes(self):
        result = balance_network(finn_cnv_specs(), target_cycles=232_000)
        assert result.total_pe == sum(e.pe for e in result.engines)

    def test_fps_is_eq5_on_bottleneck(self):
        result = balance_network(finn_cnv_specs(), target_cycles=232_000)
        assert result.fps(ZC702_CLOCK_HZ) == pytest.approx(
            ZC702_CLOCK_HZ / result.bottleneck_cycles
        )

    def test_paper_anchor_430fps_config(self):
        # The paper's chosen configuration reaches ~430 img/s around 32
        # total PEs; the balancer should land in that neighbourhood.
        target_cycles = int(ZC702_CLOCK_HZ / 430)
        result = balance_network(finn_cnv_specs(), target_cycles)
        fps = result.fps(ZC702_CLOCK_HZ)
        assert 400 <= fps <= 700
        assert 20 <= result.total_pe <= 45

    def test_tighter_target_more_pes(self):
        specs = finn_cnv_specs()
        slow = balance_network(specs, target_cycles=1_000_000)
        fast = balance_network(specs, target_cycles=50_000)
        assert fast.total_pe > slow.total_pe
        assert fast.bottleneck_cycles < slow.bottleneck_cycles


class TestSweep:
    def test_deduplicates(self):
        results = sweep_targets(finn_cnv_specs(), [100, 100, 101], ZC702_CLOCK_HZ)
        assert len(results) == 1

    def test_monotone_throughput(self):
        results = sweep_targets(
            finn_cnv_specs(), [100, 430, 1200, 3000], ZC702_CLOCK_HZ
        )
        fps = [r.fps(ZC702_CLOCK_HZ) for r in results]
        assert fps == sorted(fps)

    def test_invalid_fps(self):
        with pytest.raises(ValueError):
            sweep_targets(finn_cnv_specs(), [0], ZC702_CLOCK_HZ)


class TestPipelinePerformance:
    def _result(self, fps=430):
        return balance_network(finn_cnv_specs(), int(ZC702_CLOCK_HZ / fps))

    def test_obtained_below_expected(self):
        perf = evaluate_pipeline(self._result())
        assert perf.obtained_fps < perf.expected_fps
        assert perf.obtained_fps > 0.9 * perf.expected_fps  # small gap at low PE

    def test_gap_grows_with_parallelism(self):
        slow = evaluate_pipeline(self._result(fps=100))
        fast = evaluate_pipeline(self._result(fps=3000))
        gap_slow = 1 - slow.obtained_fps / slow.expected_fps
        gap_fast = 1 - fast.obtained_fps / fast.expected_fps
        assert gap_fast >= gap_slow

    def test_partitioning_slows_low_pe_configs(self):
        result = self._result(fps=200)  # low-PE configuration
        plain = evaluate_pipeline(result, partitioned=False)
        part = evaluate_pipeline(result, partitioned=True)
        assert part.obtained_fps < plain.obtained_fps

    def test_partitioning_retains_high_pe_performance(self):
        result = self._result(fps=3000)
        plain = evaluate_pipeline(result, partitioned=False)
        part = evaluate_pipeline(result, partitioned=True)
        assert part.obtained_fps == pytest.approx(plain.obtained_fps)

    def test_latency_exceeds_interval(self):
        perf = evaluate_pipeline(self._result())
        assert perf.latency_cycles > perf.interval_cycles

    def test_seconds_per_image(self):
        perf = evaluate_pipeline(self._result())
        assert perf.seconds_per_image == pytest.approx(1.0 / perf.obtained_fps)


class TestBatchLatency:
    def test_single_image_is_fill_latency(self):
        result = balance_network(finn_cnv_specs(), 232_000)
        fill = batch_latency_cycles(result, 1)
        assert fill == sum(e.cycles_per_image for e in result.engines) + IMAGE_DMA_CYCLES

    def test_batch_adds_one_interval_per_image(self):
        result = balance_network(finn_cnv_specs(), 232_000)
        l1 = batch_latency_cycles(result, 1)
        l10 = batch_latency_cycles(result, 10)
        assert l10 == l1 + 9 * result.bottleneck_cycles

    def test_throughput_approaches_eq5_for_large_batches(self):
        # Paper: "Changing batch size does not have a significant effect".
        result = balance_network(finn_cnv_specs(), 232_000)
        cycles = batch_latency_cycles(result, 1000)
        fps = ZC702_CLOCK_HZ / (cycles / 1000)
        assert fps == pytest.approx(result.fps(ZC702_CLOCK_HZ), rel=0.02)

    def test_invalid_batch(self):
        result = balance_network(finn_cnv_specs(), 232_000)
        with pytest.raises(ValueError):
            batch_latency_cycles(result, 0)
