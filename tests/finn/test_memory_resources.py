"""BRAM allocation model, partitioning, and network resource aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.finn import (
    Engine,
    LUTRAM_THRESHOLD_BITS,
    XC7Z020,
    allocate_memory,
    best_partition_factor,
    engine_resources,
    finn_cnv_specs,
    network_resources,
    next_power_of_two,
)


class TestNextPowerOfTwo:
    def test_values(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1025) == 2048

    def test_invalid(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    @given(st.integers(1, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_property(self, n):
        p = next_power_of_two(n)
        assert p >= n and p < 2 * n and (p & (p - 1)) == 0


class TestAllocateMemory:
    def test_small_memory_goes_to_lutram(self):
        alloc = allocate_memory(depth=32, width=16)  # 512 bits <= 1Kb
        assert alloc.brams == 0
        assert alloc.lutram_luts > 0

    def test_lutram_boundary(self):
        at = allocate_memory(depth=LUTRAM_THRESHOLD_BITS, width=1)
        above = allocate_memory(depth=LUTRAM_THRESHOLD_BITS + 1, width=1)
        assert at.brams == 0
        assert above.brams >= 1

    def test_one_bram_simple(self):
        # 512 x 18 fits exactly one RAMB18 in 18x1024 or 36x512 mode.
        assert allocate_memory(512, 18).brams == 1

    def test_power_of_two_rounding_wastes(self):
        # Depth 1025 rounds to 2048: two BRAMs in 18-wide mode.
        assert allocate_memory(1025, 18).brams == 2
        assert allocate_memory(1024, 18).brams == 1

    def test_wide_memory_splits_columns(self):
        # 512 deep x 72 wide: two 36-wide columns.
        assert allocate_memory(512, 72).brams == 2

    def test_deep_memory_uses_narrow_mode(self):
        # 16384 x 1 fits one RAMB18 in 1x16384 mode.
        assert allocate_memory(16384, 1).brams == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            allocate_memory(0, 8)
        with pytest.raises(ValueError):
            allocate_memory(8, 0)

    def test_storage_efficiency(self):
        alloc = allocate_memory(1025, 18)
        assert 0 < alloc.storage_efficiency < 1
        assert alloc.allocated_bits == 2 * 18 * 1024

    @given(st.integers(1, 40000), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_property_partitioned_never_worse(self, depth, width):
        naive = allocate_memory(depth, width, partitioned=False)
        part = allocate_memory(depth, width, partitioned=True)
        assert part.brams <= naive.brams

    @given(st.integers(1, 40000), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_property_capacity_sufficient(self, depth, width):
        # Allocated physical bits always cover the logical bits.
        alloc = allocate_memory(depth, width, partitioned=False)
        assert alloc.allocated_bits >= alloc.bits


class TestPartitioning:
    def test_single_bram_cannot_improve(self):
        # Paper: "the smaller files using only a fraction of one BRAM
        # cannot be improved".
        factor, brams = best_partition_factor(600, 18)  # 1 BRAM naive
        assert factor == 1 and brams == 1

    def test_awkward_depth_improves(self):
        # 2100 x 18: naive rounds to 4096 -> 4 BRAMs; 3 blocks of 700
        # round to 1024 each -> 3 BRAMs.
        naive = allocate_memory(2100, 18, partitioned=False)
        part = allocate_memory(2100, 18, partitioned=True)
        assert naive.brams == 4
        assert part.brams == 3
        assert part.partitions > 1

    def test_power_of_two_depth_no_gain(self):
        naive = allocate_memory(4096, 9, partitioned=False)
        part = allocate_memory(4096, 9, partitioned=True)
        assert part.brams == naive.brams


class TestEngineResources:
    def test_per_pe_file_counts(self):
        spec = finn_cnv_specs()[1]
        engine = Engine(spec, pe=8, simd=16)
        res = engine_resources(engine)
        assert len(res.weight_allocs) == 8
        assert len(res.threshold_allocs) == 8

    def test_no_threshold_files_for_last_layer(self):
        spec = finn_cnv_specs()[-1]
        engine = Engine(spec, pe=1, simd=1)
        res = engine_resources(engine)
        assert res.threshold_allocs == ()

    def test_conv_has_line_buffer_fc_does_not(self):
        conv = engine_resources(Engine(finn_cnv_specs()[1], 2, 16))
        fc = engine_resources(Engine(finn_cnv_specs()[6], 2, 16))
        assert conv.buffer_alloc is not None
        assert fc.buffer_alloc is None

    def test_luts_grow_with_parallelism(self):
        spec = finn_cnv_specs()[1]
        small = engine_resources(Engine(spec, 2, 8))
        big = engine_resources(Engine(spec, 16, 16))
        assert big.datapath_luts > small.datapath_luts


class TestNetworkResources:
    def _engines(self):
        return [Engine(s, 1, 1) for s in finn_cnv_specs()]

    def test_aggregation(self):
        res = network_resources(self._engines(), XC7Z020)
        assert res.total_brams > 0
        assert res.total_luts > 0
        assert res.total_pe == 9

    def test_partitioned_uses_fewer_or_equal_brams(self):
        engines = self._engines()
        naive = network_resources(engines, XC7Z020, partitioned=False)
        part = network_resources(engines, XC7Z020, partitioned=True)
        assert part.total_brams <= naive.total_brams

    def test_utilization_fractions(self):
        res = network_resources(self._engines(), XC7Z020)
        assert res.bram_utilization == res.total_brams / 280
        assert 0 < res.lut_utilization

    def test_storage_efficiency_below_one(self):
        res = network_resources(self._engines(), XC7Z020)
        assert 0 < res.storage_efficiency < 1

    def test_fits(self):
        res = network_resources(self._engines(), XC7Z020)
        assert res.fits() == (res.total_brams <= 280 and res.total_luts <= 53200)
