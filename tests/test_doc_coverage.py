"""The documentation coverage gate, run as part of the test suite.

Mirrors the CI step (``python tools/check_doc_coverage.py``): every
public ``repro.*`` package/module must be reflected in ``docs/API.md``
AND referenced by dotted path from somewhere under ``docs/`` (modulo
the explicit ``INTERNAL_HELPERS`` allowlist), and the observability and
ladder guides must exist and be cross-linked.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_doc_coverage.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_doc_coverage", TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_doc_coverage", module)
    spec.loader.exec_module(module)
    return module


def test_doc_coverage_tool_exists():
    assert TOOL.exists()


def test_public_surface_is_documented():
    tool = _load_tool()
    problems = tool.check()
    assert problems == [], "documentation drift:\n" + "\n".join(problems)


def test_module_enumeration_sees_core_packages():
    tool = _load_tool()
    names = {dotted for dotted, _ in tool.public_modules()}
    for expected in (
        "repro.nn", "repro.bnn", "repro.bnn.kernels", "repro.finn",
        "repro.core", "repro.hetero", "repro.serve", "repro.obs",
        "repro.stream", "repro.experiments",
    ):
        assert expected in names, f"{expected} missing from enumeration"


def test_module_enumeration_sees_ladder_modules():
    tool = _load_tool()
    names = {dotted for dotted, _ in tool.public_modules()}
    for expected in ("repro.core.ladder", "repro.nn.quantized"):
        assert expected in names, f"{expected} missing from enumeration"


def test_internal_helpers_allowlist_is_live():
    """Every allowlist entry names a real module that docs do NOT name."""
    tool = _load_tool()
    names = {dotted for dotted, _ in tool.public_modules()}
    text = tool.docs_text()
    for entry in tool.INTERNAL_HELPERS:
        assert entry in names, f"stale allowlist entry {entry}"
        assert not tool._referenced(entry, text), (
            f"{entry} is referenced from docs/ — drop it from INTERNAL_HELPERS"
        )


def test_ladder_modules_must_not_be_allowlisted():
    """The ladder surface is documentation-bearing, never an internal helper."""
    tool = _load_tool()
    for dotted in (
        "repro.core.ladder", "repro.nn.quantized",
        "repro.serve.controller", "repro.serve.metrics",
        "repro.obs.residuals",
    ):
        assert dotted not in tool.INTERNAL_HELPERS


def test_observability_doc_linked():
    assert (REPO_ROOT / "docs" / "OBSERVABILITY.md").exists()
    assert "docs/OBSERVABILITY.md" in (REPO_ROOT / "README.md").read_text()


def test_ladder_doc_cross_linked():
    assert (REPO_ROOT / "docs" / "LADDER.md").exists()
    for doc in ("README.md", "docs/API.md", "docs/OBSERVABILITY.md"):
        assert "LADDER.md" in (REPO_ROOT / doc).read_text(), (
            f"{doc} does not link docs/LADDER.md"
        )
