"""The documentation coverage gate, run as part of the test suite.

Mirrors the CI step (``python tools/check_doc_coverage.py``): every
public ``repro.*`` package/module must be reflected in ``docs/API.md``,
and the observability guide must exist and be linked from the README.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_doc_coverage.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_doc_coverage", TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_doc_coverage", module)
    spec.loader.exec_module(module)
    return module


def test_doc_coverage_tool_exists():
    assert TOOL.exists()


def test_public_surface_is_documented():
    tool = _load_tool()
    problems = tool.check()
    assert problems == [], "documentation drift:\n" + "\n".join(problems)


def test_module_enumeration_sees_core_packages():
    tool = _load_tool()
    names = {dotted for dotted, _ in tool.public_modules()}
    for expected in (
        "repro.nn", "repro.bnn", "repro.bnn.kernels", "repro.finn",
        "repro.core", "repro.hetero", "repro.serve", "repro.obs",
        "repro.stream", "repro.experiments",
    ):
        assert expected in names, f"{expected} missing from enumeration"


def test_observability_doc_linked():
    assert (REPO_ROOT / "docs" / "OBSERVABILITY.md").exists()
    assert "docs/OBSERVABILITY.md" in (REPO_ROOT / "README.md").read_text()
