"""ASCII chart rendering."""

import pytest

from repro.core import line_chart


class TestLineChart:
    def test_basic_render(self):
        text = line_chart([0, 1, 2, 3], {"y": [0.0, 1.0, 2.0, 3.0]}, width=20, height=5)
        lines = text.splitlines()
        assert any("*" in l for l in lines)
        assert "* y" in lines[-1]

    def test_title_and_labels(self):
        text = line_chart(
            [0, 1], {"a": [1, 2]}, title="T", x_label="pe", y_label="fps"
        )
        assert text.startswith("T")
        assert "x: pe" in text and "y: fps" in text

    def test_multiple_series_distinct_markers(self):
        text = line_chart([0, 1, 2], {"a": [0, 1, 2], "b": [2, 1, 0]}, width=12, height=5)
        assert "*" in text and "o" in text

    def test_monotone_series_slopes_up(self):
        # The first x should plot lower (later line) than the last x.
        text = line_chart([0, 1, 2, 3], {"y": [0, 1, 2, 3]}, width=8, height=4)
        rows = [l for l in text.splitlines() if "|" in l]
        first_marker_row = next(i for i, r in enumerate(rows) if "*" in r)
        last_marker_row = max(i for i, r in enumerate(rows) if "*" in r)
        assert first_marker_row < last_marker_row

    def test_constant_series_ok(self):
        text = line_chart([0, 1], {"y": [5, 5]})
        assert "*" in text

    def test_errors(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], {})
        with pytest.raises(ValueError):
            line_chart([0], {"y": [1]})
        with pytest.raises(ValueError):
            line_chart([0, 1], {"y": [1]})
