"""Decision-Making Unit: training, categories, threshold behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DecisionMakingUnit, DMUCategories, threshold_sweep, train_dmu
from repro.data import build_score_dataset


def synthetic_scores(n=2000, num_classes=10, seed=0, separability=3.0):
    """Score vectors where top-margin correlates with correctness.

    Mimics BNN behaviour: correct classifications have larger winning
    margins, incorrect ones are close calls.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=n)
    scores = rng.normal(0.0, 1.0, size=(n, num_classes))
    correct = rng.random(n) < 0.78  # ~BNN accuracy
    for i in range(n):
        if correct[i]:
            scores[i, labels[i]] += separability + rng.exponential(1.0)
        else:
            wrong = (labels[i] + rng.integers(1, num_classes)) % num_classes
            scores[i, wrong] += 0.8 + 0.4 * rng.random()
            scores[i, labels[i]] += 0.6 * rng.random()
    return build_score_dataset(scores, labels)


class TestDMUConstruction:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DecisionMakingUnit(np.ones(10), 0.0, threshold=1.5)

    def test_confidence_shape_and_range(self):
        dmu = DecisionMakingUnit(np.ones(10), 0.0)
        scores = np.random.default_rng(0).normal(size=(5, 10))
        conf = dmu.confidence(scores)
        assert conf.shape == (5,)
        assert ((conf >= 0) & (conf <= 1)).all()

    def test_wrong_score_width(self):
        dmu = DecisionMakingUnit(np.ones(10), 0.0)
        with pytest.raises(ValueError):
            dmu.confidence(np.zeros((2, 5)))

    def test_accept_is_complement_of_flag(self):
        dmu = DecisionMakingUnit(np.ones(10), 0.0, threshold=0.7)
        scores = np.random.default_rng(1).normal(size=(20, 10))
        np.testing.assert_array_equal(
            dmu.accept(scores), ~dmu.flag_for_rerun(scores)
        )


class TestDMUCategories:
    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            DMUCategories(fs=0.5, fbar_sbar=0.2, fbar_s=0.2, f_sbar=0.2, threshold=0.8)

    def test_derived_quantities(self):
        # Paper Table II: FS=66.2, F̄S̄=12.8, F̄S=8.7, FS̄=12.3 at thr 0.84.
        cats = DMUCategories(fs=0.662, fbar_sbar=0.128, fbar_s=0.087, f_sbar=0.123, threshold=0.84)
        assert cats.dmu_accuracy == pytest.approx(0.79)
        assert cats.rerun_ratio == pytest.approx(0.251)      # the paper's 25.1%
        assert cats.rerun_err_ratio == pytest.approx(0.123)
        assert cats.max_achievable_accuracy == pytest.approx(0.913)  # paper: 91.3%


class TestTrainDMU:
    @pytest.fixture(scope="class")
    def trained(self):
        ds = synthetic_scores()
        dmu = train_dmu(ds, epochs=40, rng=np.random.default_rng(0))
        return ds, dmu

    def test_beats_majority_baseline(self, trained):
        ds, dmu = trained
        cats = dmu.categorize(ds, threshold=0.5)
        majority = max(ds.classifier_accuracy, 1 - ds.classifier_accuracy)
        assert cats.dmu_accuracy > majority + 0.02

    def test_confidence_correlates_with_correctness(self, trained):
        ds, dmu = trained
        conf = dmu.confidence(ds.scores)
        assert conf[ds.correct == 1].mean() > conf[ds.correct == 0].mean() + 0.2

    def test_categorize_fractions_consistent(self, trained):
        ds, dmu = trained
        cats = dmu.categorize(ds)
        # FS + FS̄ = classifier accuracy.
        assert cats.fs + cats.f_sbar == pytest.approx(ds.classifier_accuracy)
        assert cats.fbar_s + cats.fbar_sbar == pytest.approx(1 - ds.classifier_accuracy)

    def test_empty_dataset_rejected(self):
        ds = build_score_dataset(np.zeros((0, 10)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            train_dmu(ds)
        dmu = DecisionMakingUnit(np.ones(10), 0.0)
        with pytest.raises(ValueError):
            dmu.categorize(ds)

    def test_deterministic_given_seed(self):
        ds = synthetic_scores(n=500)
        a = train_dmu(ds, epochs=5, rng=np.random.default_rng(7))
        b = train_dmu(ds, epochs=5, rng=np.random.default_rng(7))
        np.testing.assert_allclose(a.weights, b.weights)
        assert a.bias == pytest.approx(b.bias)


class TestThresholdSweep:
    def test_fig5_monotonicity(self):
        # Paper: "in threshold values range of 0.5-1, F̄S decreases while
        # FS̄ increases".
        ds = synthetic_scores()
        dmu = train_dmu(ds, epochs=40, rng=np.random.default_rng(0))
        sweep = threshold_sweep(dmu, ds, np.linspace(0.5, 0.999, 11))
        fbar_s = [c.fbar_s for c in sweep]
        f_sbar = [c.f_sbar for c in sweep]
        assert all(a >= b - 1e-12 for a, b in zip(fbar_s, fbar_s[1:]))  # non-increasing
        assert all(a <= b + 1e-12 for a, b in zip(f_sbar, f_sbar[1:]))  # non-decreasing

    def test_rerun_ratio_increases_with_threshold(self):
        ds = synthetic_scores(n=800)
        dmu = train_dmu(ds, epochs=20, rng=np.random.default_rng(1))
        sweep = threshold_sweep(dmu, ds, np.array([0.5, 0.7, 0.9, 0.99]))
        ratios = [c.rerun_ratio for c in sweep]
        assert all(a <= b + 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_default_range(self):
        ds = synthetic_scores(n=300)
        dmu = train_dmu(ds, epochs=5, rng=np.random.default_rng(2))
        sweep = threshold_sweep(dmu, ds)
        assert len(sweep) == 11
        assert sweep[0].threshold == pytest.approx(0.5)

    @given(st.floats(0.5, 0.99))
    @settings(max_examples=15, deadline=None)
    def test_property_fractions_valid(self, thr):
        ds = synthetic_scores(n=400, seed=3)
        dmu = DecisionMakingUnit(np.ones(10) * 0.2, -0.5, threshold=0.84)
        cats = dmu.categorize(ds, thr)
        for frac in (cats.fs, cats.fbar_sbar, cats.fbar_s, cats.f_sbar):
            assert 0.0 <= frac <= 1.0
        assert cats.rerun_ratio + cats.fs + cats.fbar_s == pytest.approx(1.0)
