"""DMU confidence-calibration diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import auroc, calibration_report


class TestCalibrationReport:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(0)
        conf = rng.random(20000)
        correct = rng.random(20000) < conf  # outcomes drawn at the stated rate
        report = calibration_report(conf, correct)
        assert report.expected_calibration_error < 0.03

    def test_overconfident_detected(self):
        conf = np.full(1000, 0.95)
        correct = np.zeros(1000, dtype=bool)
        correct[:500] = True  # only 50% correct at 95% confidence
        report = calibration_report(conf, correct)
        assert report.expected_calibration_error > 0.4
        assert report.max_calibration_error > 0.4

    def test_bins_partition_counts(self):
        rng = np.random.default_rng(1)
        conf = rng.random(500)
        correct = rng.random(500) < 0.5
        report = calibration_report(conf, correct, num_bins=7)
        assert sum(b.count for b in report.bins) == 500
        assert len(report.bins) == 7

    def test_boundary_one_included(self):
        report = calibration_report(np.array([1.0]), np.array([True]))
        assert sum(b.count for b in report.bins) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            calibration_report(np.array([0.5]), np.array([True, False]))
        with pytest.raises(ValueError):
            calibration_report(np.array([1.5]), np.array([True]))
        with pytest.raises(ValueError):
            calibration_report(np.array([0.5]), np.array([True]), num_bins=0)

    def test_format(self):
        report = calibration_report(np.array([0.1, 0.9]), np.array([False, True]))
        text = report.format()
        assert "ECE" in text and "acc=" in text

    def test_empty(self):
        report = calibration_report(np.zeros(0), np.zeros(0, dtype=bool))
        assert report.expected_calibration_error == 0.0
        assert report.max_calibration_error == 0.0


class TestAUROC:
    def test_perfect_separation(self):
        conf = np.array([0.1, 0.2, 0.8, 0.9])
        correct = np.array([False, False, True, True])
        assert auroc(conf, correct) == pytest.approx(1.0)

    def test_inverted(self):
        conf = np.array([0.9, 0.8, 0.2, 0.1])
        correct = np.array([False, False, True, True])
        assert auroc(conf, correct) == pytest.approx(0.0)

    def test_uninformative(self):
        rng = np.random.default_rng(2)
        conf = rng.random(4000)
        correct = rng.random(4000) < 0.5  # independent of confidence
        assert auroc(conf, correct) == pytest.approx(0.5, abs=0.03)

    def test_ties_averaged(self):
        conf = np.array([0.5, 0.5, 0.5, 0.5])
        correct = np.array([True, False, True, False])
        assert auroc(conf, correct) == pytest.approx(0.5)

    def test_degenerate_is_nan(self):
        assert np.isnan(auroc(np.array([0.5]), np.array([True])))

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_property_monotone_transform_invariant(self, seed):
        rng = np.random.default_rng(seed)
        conf = rng.random(50)
        correct = rng.random(50) < 0.6
        if correct.all() or not correct.any():
            return
        a = auroc(conf, correct)
        b = auroc(conf**3, correct)  # strictly monotone transform
        assert a == pytest.approx(b)

    def test_trained_dmu_is_informative(self):
        # Wire-up check with the DMU itself on margin-coded scores.
        from repro.core import train_dmu
        from repro.data import build_score_dataset

        rng = np.random.default_rng(9)
        n = 800
        labels = rng.integers(0, 10, size=n)
        scores = rng.normal(size=(n, 10))
        correct = rng.random(n) < 0.75
        scores[np.arange(n), labels] += np.where(correct, 4.0, 0.5)
        wrong = (labels + rng.integers(1, 10, size=n)) % 10
        scores[np.arange(n)[~correct], wrong[~correct]] += 1.5
        ds = build_score_dataset(scores, labels)

        dmu = train_dmu(ds, epochs=20, rng=np.random.default_rng(0))
        score = auroc(dmu.confidence(ds.scores), ds.correct)
        assert score > 0.75
