"""Cascade edge cases: empty batches, threshold extremes, monotonicity.

Convention under test (``MultiPrecisionPipeline``): an image is rerun on
the host iff its DMU confidence is *strictly below* the threshold.
Sigmoid confidence lies in the open interval (0, 1), so threshold 0
accepts every image (pure-BNN operation) and threshold 1 reruns every
image (pure-host operation) — the two ends of the paper's
accuracy/throughput knob.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CascadeResult, DecisionMakingUnit, MultiPrecisionPipeline

NUM_CLASSES = 10


class _ScoreBNN:
    """Fake BNN that reads the score vector out of the image channels."""

    def class_scores(self, images, batch_size=128):
        return images.reshape(images.shape[0], NUM_CLASSES)


class _OffsetHost:
    """Fake host whose answer provably differs from the BNN's."""

    def predict_classes(self, images, batch_size=128):
        scores = images.reshape(images.shape[0], NUM_CLASSES)
        return (scores.argmax(axis=1) + 1) % NUM_CLASSES


def margin_dmu(threshold: float) -> DecisionMakingUnit:
    weights = np.zeros(NUM_CLASSES)
    weights[0], weights[1] = 4.0, -4.0
    return DecisionMakingUnit(weights, bias=0.0, threshold=threshold)


def score_images(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, NUM_CLASSES, 1, 1))


def run_cascade(threshold: float, images: np.ndarray) -> CascadeResult:
    pipe = MultiPrecisionPipeline(_ScoreBNN(), margin_dmu(threshold), _OffsetHost())
    return pipe.classify(images)


class TestEmptyBatch:
    def test_classify_empty_batch(self):
        result = run_cascade(0.5, score_images(0))
        assert result.predictions.shape == (0,)
        assert result.bnn_predictions.shape == (0,)
        assert result.rerun_mask.shape == (0,)
        assert result.rerun_ratio == 0.0
        assert result.accuracy(np.empty(0, dtype=np.int64)) == 0.0
        assert result.bnn_accuracy(np.empty(0, dtype=np.int64)) == 0.0
        assert np.isnan(result.host_subset_accuracy(np.empty(0, dtype=np.int64)))

    def test_accuracy_rejects_mismatched_labels(self):
        result = run_cascade(0.5, score_images(4))
        with pytest.raises(ValueError):
            result.accuracy(np.zeros(5, dtype=np.int64))


class TestThresholdExtremes:
    def test_threshold_zero_accepts_everything(self):
        result = run_cascade(0.0, score_images(64))
        assert result.rerun_ratio == 0.0
        assert not result.rerun_mask.any()
        np.testing.assert_array_equal(result.predictions, result.bnn_predictions)
        assert result.host_predictions.size == 0

    def test_threshold_one_reruns_everything(self):
        images = score_images(64)
        result = run_cascade(1.0, images)
        assert result.rerun_ratio == 1.0
        assert result.rerun_mask.all()
        expected_host = _OffsetHost().predict_classes(images)
        np.testing.assert_array_equal(result.predictions, expected_host)
        assert not np.array_equal(result.predictions, result.bnn_predictions)


class TestMonotonicity:
    """R_rerun is non-decreasing in the threshold on a fixed score set.

    This is the property that makes the paper's Fig. 5 sweep (and the
    serving layer's integral controller) well-posed.
    """

    IMAGES = score_images(96, seed=7)

    @settings(max_examples=60, deadline=None)
    @given(
        t_a=st.floats(min_value=0.0, max_value=1.0),
        t_b=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_rerun_ratio_non_decreasing_in_threshold(self, t_a, t_b):
        lo, hi = sorted((t_a, t_b))
        assert run_cascade(lo, self.IMAGES).rerun_ratio <= run_cascade(hi, self.IMAGES).rerun_ratio

    def test_full_sweep_is_sorted(self):
        ratios = [
            run_cascade(t, self.IMAGES).rerun_ratio for t in np.linspace(0.0, 1.0, 21)
        ]
        assert ratios == sorted(ratios)
        assert ratios[0] == 0.0 and ratios[-1] == 1.0
