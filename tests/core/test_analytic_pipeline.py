"""Eqs. (1)-(2) closed forms and the functional cascade pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DecisionMakingUnit,
    MultiPrecisionPipeline,
    estimate,
    host_timing_gain,
    multi_precision_accuracy,
    multi_precision_interval,
    render_table,
    format_percent,
)


class TestEq1:
    def test_host_bound(self):
        # Paper: "in general the host re-inference latency is the bottleneck".
        t = multi_precision_interval(t_fp=1 / 29.68, t_bnn=1 / 430.15, r_rerun=0.251)
        assert t == pytest.approx(0.251 / 29.68)

    def test_fpga_bound_at_tiny_rerun(self):
        t = multi_precision_interval(t_fp=1 / 29.68, t_bnn=1 / 430.15, r_rerun=0.001)
        assert t == pytest.approx(1 / 430.15)

    def test_paper_headline_rate(self):
        # Model A & FINN: ~90.82 img/s at R_rerun ~= 25.1% and a host-side
        # rate slightly above the standalone 29.68 (paper reports the
        # host accuracy/rate improve on the subset).
        t = multi_precision_interval(1 / 29.68, 1 / 430.15, 0.251)
        assert 1 / t == pytest.approx(118.2, rel=0.01)
        # The paper's measured 90.82 is below this ideal Eq. (1) value —
        # the equation is explicitly an upper-bound approximation.
        assert 1 / t > 90.82

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            multi_precision_interval(0.0, 0.1, 0.5)
        with pytest.raises(ValueError):
            multi_precision_interval(0.1, 0.1, 1.5)

    @given(
        t_fp=st.floats(1e-3, 1.0),
        t_bnn=st.floats(1e-5, 1e-2),
        r=st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_bounds(self, t_fp, t_bnn, r):
        t = multi_precision_interval(t_fp, t_bnn, r)
        assert t >= t_bnn
        assert t >= t_fp * r
        assert t == pytest.approx(max(t_fp * r, t_bnn))


class TestEq2:
    def test_paper_table2_numbers(self):
        # Acc_bnn=78.5%, host subset acc drives the gain; with Table II's
        # R_rerun=25.1% and R_rerun_err=12.3%, a host at 65% subset accuracy:
        acc = multi_precision_accuracy(0.785, 0.65, 0.251, 0.123)
        assert acc == pytest.approx(0.825, abs=0.01)  # paper: 82.5%

    def test_zero_rerun_is_bnn(self):
        assert multi_precision_accuracy(0.785, 0.9, 0.0, 0.0) == pytest.approx(0.785)

    def test_invalid(self):
        with pytest.raises(ValueError):
            multi_precision_accuracy(1.2, 0.5, 0.5, 0.1)

    @given(
        acc_bnn=st.floats(0, 1),
        acc_fp=st.floats(0, 1),
        r=st.floats(0, 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_perfect_dmu_improves(self, acc_bnn, acc_fp, r):
        # With no DMU error, re-inference can only add accuracy.
        assert multi_precision_accuracy(acc_bnn, acc_fp, r, 0.0) >= acc_bnn


class TestEstimateAndGain:
    def test_bottleneck_labels(self):
        assert estimate(1 / 30, 1 / 430, 0.785, 0.65, 0.25, 0.12).bottleneck == "host"
        assert estimate(1 / 30, 1 / 430, 0.785, 0.65, 0.001, 0.0).bottleneck == "fpga"

    def test_timing_gain(self):
        assert host_timing_gain(1 / 29.68, 0.251) == pytest.approx(0.749 / 29.68)
        with pytest.raises(ValueError):
            host_timing_gain(0.0, 0.5)


class _ConstantBNN:
    """Fake FoldedBNN: fixed scores per image."""

    def __init__(self, scores):
        self.scores = np.asarray(scores, dtype=float)
        self.num_classes = self.scores.shape[1]

    def class_scores(self, images, batch_size=128):
        return self.scores[: images.shape[0]]


class _ConstantHost:
    """Fake host network answering a fixed class."""

    def __init__(self, answer):
        self.answer = answer
        self.seen = 0

    def predict_classes(self, images, batch_size=128):
        self.seen += images.shape[0]
        return np.full(images.shape[0], self.answer, dtype=np.int64)


class TestPipeline:
    def _dmu(self):
        # Confidence = sigmoid(10 * score[0]) on raw (unsorted) scores:
        # images with score[0] >= 0 accepted at threshold 0.5.
        w = np.zeros(3)
        w[0] = 10.0
        return DecisionMakingUnit(w, 0.0, threshold=0.5, sort_inputs=False)

    def test_cascade_routing(self):
        scores = np.array(
            [
                [5.0, 0.0, 1.0],   # confident -> class 0 accepted
                [-5.0, 2.0, 0.0],  # unconfident -> host answers 2
                [3.0, 4.0, 0.0],   # confident -> class 1 accepted
            ]
        )
        pipe = MultiPrecisionPipeline(_ConstantBNN(scores), self._dmu(), _ConstantHost(2))
        result = pipe.classify(np.zeros((3, 3, 4, 4)))
        np.testing.assert_array_equal(result.predictions, [0, 2, 1])
        np.testing.assert_array_equal(result.rerun_mask, [False, True, False])
        assert result.rerun_ratio == pytest.approx(1 / 3)

    def test_no_reruns(self):
        scores = np.array([[5.0, 0.0, 0.0]] * 4)
        host = _ConstantHost(1)
        pipe = MultiPrecisionPipeline(_ConstantBNN(scores), self._dmu(), host)
        result = pipe.classify(np.zeros((4, 3, 4, 4)))
        assert host.seen == 0
        assert result.rerun_ratio == 0.0
        np.testing.assert_array_equal(result.predictions, result.bnn_predictions)

    def test_accuracy_metrics(self):
        scores = np.array(
            [
                [5.0, 0.0, 0.0],
                [-5.0, 2.0, 0.0],
                [-5.0, 0.0, 2.0],
            ]
        )
        pipe = MultiPrecisionPipeline(_ConstantBNN(scores), self._dmu(), _ConstantHost(2))
        result = pipe.classify(np.zeros((3, 3, 4, 4)))
        labels = np.array([0, 2, 2])
        assert result.accuracy(labels) == pytest.approx(1.0)
        assert result.bnn_accuracy(labels) == pytest.approx(2 / 3)
        assert result.host_subset_accuracy(labels) == pytest.approx(1.0)

    def test_host_subset_accuracy_nan_when_no_reruns(self):
        scores = np.array([[5.0, 0.0, 0.0]])
        pipe = MultiPrecisionPipeline(_ConstantBNN(scores), self._dmu(), _ConstantHost(0))
        result = pipe.classify(np.zeros((1, 3, 4, 4)))
        assert np.isnan(result.host_subset_accuracy(np.array([0])))

    def test_threshold_override(self):
        scores = np.array([[1.0, 0.0, 0.0]])  # conf = sigmoid(10) ~ 1
        pipe = MultiPrecisionPipeline(
            _ConstantBNN(scores), self._dmu(), _ConstantHost(1), threshold=1.0
        )
        result = pipe.classify(np.zeros((1, 3, 4, 4)))
        assert result.rerun_mask.all()  # threshold 1.0 reruns everything

    def test_input_validation(self):
        pipe = MultiPrecisionPipeline(_ConstantBNN(np.zeros((1, 3))), self._dmu(), _ConstantHost(0))
        with pytest.raises(ValueError):
            pipe.classify(np.zeros((1, 3, 4)))
        with pytest.raises(ValueError):
            pipe.classify(np.zeros((1, 3, 4, 4)), bnn_images=np.zeros((2, 3, 4, 4)))
        with pytest.raises(ValueError):
            MultiPrecisionPipeline(_ConstantBNN(np.zeros((1, 3))), self._dmu(), _ConstantHost(0), threshold=2.0)


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_format_percent(self):
        assert format_percent(0.825) == "82.5%"
