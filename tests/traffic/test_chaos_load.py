"""Chaos under open-loop load: same seed ⇒ same faults, ≥99% terminal.

Extends the ``tests/faults`` determinism contract to trace-driven load:
replaying one bursty trace twice against two servers wrapped in the same
seeded :class:`repro.faults.FaultPlan` must inject the *identical* fault
sequence both times, and (nearly) every attempted arrival must still
reach a terminal state — answer or typed error, never a hang.
"""

from pathlib import Path

import numpy as np

from repro.core.dmu import DecisionMakingUnit
from repro.faults import load_fault_plan, wrap_stack
from repro.serve import CascadeServer
from repro.traffic import TraceReplayer, make_trace

PLAN_PATH = Path(__file__).parents[2] / "examples" / "faultplan_host_flaky.json"


def _oracle_stack(seed=0, threshold=0.8):
    rng = np.random.default_rng(seed)
    payloads = rng.normal(0.0, 1.0, size=(32, 10))
    weights = np.zeros(10)
    weights[0], weights[1] = 4.0, -4.0
    dmu = DecisionMakingUnit(weights, bias=0.0, threshold=threshold)
    return (lambda images: images), dmu, (lambda images: images.argmax(axis=1)), payloads


def _run_once():
    """One bursty replay under the flaky-host plan; returns (log, books)."""
    trace = make_trace("burst", rate=600.0, duration=2.0, seed=7, num_payloads=32)
    plan = load_fault_plan(PLAN_PATH)
    bnn_fn, dmu, host_fn, payloads = _oracle_stack()
    bnn_fn, dmu, host_fn, injector = wrap_stack(plan, bnn_fn, dmu, host_fn)
    server = CascadeServer(
        bnn_fn, dmu, host_fn,
        max_batch_size=16, batch_delay_s=0.002, host_queue_capacity=64,
    )
    replayer = TraceReplayer(server.submit, payloads, time_scale=20.0)
    with server:
        result = replayer.replay(trace)
        ok, errs = result.settle(timeout=60.0)
    total = server.snapshot()
    fault_log = {
        stage: [
            (event.call_index, event.kind, event.spec_index)
            for event in injector.log.for_stage(stage)
        ]
        for stage in ("bnn", "dmu", "host")
    }
    return trace, result, ok, errs, total, fault_log


def test_chaos_under_load_is_seed_deterministic_and_terminal():
    runs = [_run_once(), _run_once()]

    # identical trace both times (the open-loop determinism contract) ...
    assert runs[0][0].to_json() == runs[1][0].to_json()
    # ... and identical injected fault sequences per stage (the fault
    # plan's own per-stage decision streams are position-keyed, so the
    # same submission order must consume them identically).
    assert runs[0][5] == runs[1][5]
    assert any(runs[0][5].values()), "plan injected nothing; test is vacuous"

    for trace, result, ok, errs, total, _ in runs:
        assert result.attempted == len(trace)
        # ≥99% of attempted arrivals reached a terminal state: an answer,
        # a typed error, or a front-door refusal (counted in attempted).
        terminal = len(ok) + len(errs) + result.refused
        assert terminal / result.attempted >= 0.99
        # books balance even under chaos
        answered = total.accepted + total.rerun + total.degraded + total.failed
        assert answered == total.submitted
