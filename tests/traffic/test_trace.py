"""Trace format: determinism, canonical JSON, golden pin, typed errors."""

import json
from pathlib import Path

import pytest

from repro.traffic import (
    TRACE_FORMAT_VERSION,
    TRACE_SHAPES,
    ArrivalEvent,
    ArrivalTrace,
    TraceFormatError,
    load_trace,
    make_trace,
    poisson_trace,
)

GOLDEN = Path(__file__).parent / "golden_trace.json"


# -- determinism contract ----------------------------------------------------
@pytest.mark.parametrize("shape", sorted(TRACE_SHAPES))
def test_same_seed_byte_identical_json(shape):
    a = make_trace(shape, rate=40.0, duration=2.0, seed=11, num_payloads=8)
    b = make_trace(shape, rate=40.0, duration=2.0, seed=11, num_payloads=8)
    assert a.to_json() == b.to_json()


@pytest.mark.parametrize("shape", sorted(TRACE_SHAPES))
def test_different_seed_different_arrivals(shape):
    a = make_trace(shape, rate=40.0, duration=2.0, seed=1)
    b = make_trace(shape, rate=40.0, duration=2.0, seed=2)
    if shape == "constant":  # deterministic by construction
        assert a.to_json() != b.to_json()  # seed is still recorded
        return
    assert [e.t_offset for e in a] != [e.t_offset for e in b]


def test_save_load_round_trip(tmp_path):
    trace = make_trace("burst", rate=50.0, duration=2.0, seed=5, num_payloads=4)
    path = trace.save(tmp_path / "t.json")
    loaded = load_trace(path)
    assert loaded == trace
    assert loaded.to_json() == trace.to_json()


def test_golden_fixture_pins_serialized_format():
    """The committed fixture is exactly what today's generator emits."""
    regenerated = poisson_trace(rate=8.0, duration=2.0, seed=2018, num_payloads=4)
    assert GOLDEN.read_text() == regenerated.to_json()
    loaded = load_trace(GOLDEN)
    assert loaded == regenerated
    assert loaded.name == "poisson" and loaded.seed == 2018


# -- structural properties ---------------------------------------------------
def test_traces_are_time_sorted_and_non_negative():
    for shape in TRACE_SHAPES:
        trace = make_trace(shape, rate=60.0, duration=1.5, seed=3, num_payloads=5)
        offsets = [e.t_offset for e in trace]
        assert offsets == sorted(offsets)
        assert all(t >= 0.0 for t in offsets)
        assert all(0 <= e.payload_ref < 5 for e in trace)


def test_scaled_compresses_time_only():
    trace = make_trace("poisson", rate=30.0, duration=2.0, seed=0)
    fast = trace.scaled(4.0)
    assert len(fast) == len(trace)
    for a, b in zip(trace, fast):
        assert b.t_offset == pytest.approx(a.t_offset / 4.0)
        assert b.payload_ref == a.payload_ref


def test_rate_in_window():
    trace = ArrivalTrace(events=tuple(ArrivalEvent(i * 0.1, 0) for i in range(10)))
    assert trace.rate_in_window(0.0, 1.0) == pytest.approx(10.0)
    assert trace.rate_in_window(5.0, 6.0) == 0.0
    with pytest.raises(ValueError):
        trace.rate_in_window(1.0, 1.0)


def test_unsorted_events_rejected():
    with pytest.raises(TraceFormatError, match="time-sorted"):
        ArrivalTrace(events=(ArrivalEvent(1.0, 0), ArrivalEvent(0.5, 0)))


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.5])
def test_bad_offsets_rejected(bad):
    with pytest.raises(TraceFormatError):
        ArrivalEvent(bad, 0)


def test_bad_payload_ref_rejected():
    with pytest.raises(TraceFormatError):
        ArrivalEvent(0.0, -1)
    with pytest.raises(TraceFormatError):
        ArrivalEvent(0.0, 1.5)


# -- corrupt/truncated loaders degrade to the typed error --------------------
@pytest.mark.parametrize(
    "text",
    [
        "",                                        # empty file
        "{not json",                               # malformed JSON
        "[1, 2, 3]",                               # wrong top-level type
        '{"version": 99, "events": []}',           # unknown version
        '{"events": []}',                          # missing version
        '{"version": 1, "events": [[0.0]]}',       # truncated event pair
        '{"version": 1, "events": [[0.0, 0, 9]]}', # oversized event
        '{"version": 1, "events": [["x", 0]]}',    # non-numeric offset
        '{"version": 1, "events": [[0.0, 1.5]]}',  # fractional payload_ref
        '{"version": 1, "events": [[0.0, true]]}', # bool payload_ref
        '{"version": 1, "events": {}}',            # events not a list
        '{"version": 1, "events": [], "bogus": 1}',  # unknown key
        '{"version": 1, "events": [], "name": 7}',   # non-string name
        '{"version": 1, "events": [], "seed": "x"}', # non-int seed
    ],
)
def test_corrupt_traces_raise_trace_format_error(tmp_path, text):
    path = tmp_path / "bad.json"
    path.write_text(text)
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_truncated_golden_raises_typed_error(tmp_path):
    blob = GOLDEN.read_text()
    path = tmp_path / "cut.json"
    path.write_text(blob[: len(blob) // 2])
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_missing_file_raises_typed_error(tmp_path):
    with pytest.raises(TraceFormatError, match="cannot read"):
        load_trace(tmp_path / "nope.json")


def test_trace_format_error_is_value_error():
    """Callers may catch the broad class; the CLI relies on this."""
    assert issubclass(TraceFormatError, ValueError)


def test_version_constant_matches_golden():
    assert json.loads(GOLDEN.read_text())["version"] == TRACE_FORMAT_VERSION
