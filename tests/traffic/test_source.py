"""Video traffic source: frame-synchronous arrivals, seed-deterministic."""

import numpy as np
import pytest

from repro.stream import SyntheticVideo
from repro.traffic import TraceReplayer, VideoTrafficSource


def test_build_produces_aligned_trace_and_bank():
    source = VideoTrafficSource(fps=30.0, seed=3)
    trace, payloads = source.build(4)
    assert len(trace) == len(payloads)
    assert trace.name == "video"
    # every payload is a normalized 32x32 crop
    for patch in payloads:
        assert patch.shape == (3, 32, 32)
        assert patch.min() >= -1.0 and patch.max() <= 1.0
    # arrivals sit on frame presentation times
    frame_times = {i / 30.0 for i in range(4)}
    assert {e.t_offset for e in trace} <= frame_times
    # payload refs are unique, in order
    assert [e.payload_ref for e in trace] == list(range(len(trace)))


def test_same_seed_same_trace_and_payloads():
    a_trace, a_payloads = VideoTrafficSource(fps=24.0, seed=9).build(3)
    b_trace, b_payloads = VideoTrafficSource(fps=24.0, seed=9).build(3)
    assert a_trace.to_json() == b_trace.to_json()
    assert len(a_payloads) == len(b_payloads)
    for a, b in zip(a_payloads, b_payloads):
        np.testing.assert_array_equal(a, b)


def test_video_trace_replays_like_any_other():
    trace, payloads = VideoTrafficSource(fps=30.0, seed=1).build(3)
    clock = [0.0]

    def sleep(seconds):
        clock[0] += seconds

    submitted = []

    def submit(payload):
        from concurrent.futures import Future

        submitted.append(payload)
        future = Future()
        future.set_result(None)
        return future

    replayer = TraceReplayer(
        submit, payloads, time_scale=100.0, clock=lambda: clock[0], sleep=sleep
    )
    result = replayer.replay(trace)
    assert result.accepted == len(trace)
    assert len(submitted) == len(payloads)


def test_repeat_frames_holds_each_frame():
    base_trace, base_payloads = VideoTrafficSource(fps=30.0, seed=5).build(3)
    trace, payloads = VideoTrafficSource(fps=30.0, seed=5, repeat_frames=3).build(3)
    # The payload bank is untouched: repeats reference, they never copy.
    assert len(payloads) == len(base_payloads)
    for a, b in zip(payloads, base_payloads):
        np.testing.assert_array_equal(a, b)
    # Each frame's refs are emitted repeat_frames times on consecutive
    # slots, so the duplicate fraction is exactly (n - 1) / n.
    assert len(trace) == 3 * len(base_trace)
    refs = [e.payload_ref for e in trace]
    assert refs.count(refs[0]) == 3
    duplicates = len(refs) - len(set(refs))
    assert duplicates / len(refs) == pytest.approx(2 / 3)
    # Arrival slots still tick at 1/fps.
    times = sorted({e.t_offset for e in trace})
    assert times == pytest.approx([i / 30.0 for i in range(len(times))])
    # repeat_frames=1 is the identity.
    same_trace, _ = VideoTrafficSource(fps=30.0, seed=5, repeat_frames=1).build(3)
    assert same_trace.to_json() == base_trace.to_json()
    with pytest.raises(ValueError):
        VideoTrafficSource(fps=30.0, repeat_frames=0)


def test_raw_mode_and_validation():
    video = SyntheticVideo(seed=0)
    source = VideoTrafficSource(video=video, fps=10.0, normalize=False)
    trace, payloads = source.build(2)
    for patch in payloads:
        assert patch.min() >= 0.0  # raw [0, 1] pixels, not normalized
    with pytest.raises(ValueError):
        VideoTrafficSource(fps=0.0)
    with pytest.raises(ValueError):
        source.build(0)
