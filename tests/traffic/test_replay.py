"""Replayer: exact submission counts/order on a scaled, non-wall clock."""

from concurrent.futures import Future

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import TRACE_SHAPES, TraceReplayer, make_trace


class FakeClock:
    """Deterministic clock: sleep() advances it, nothing else does."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def sleep(self, seconds):
        self.t += seconds


class MockBackend:
    """Records submission order; optionally refuses chosen arrivals."""

    def __init__(self, refuse=(), closed_after=None):
        self.submitted = []
        self.refuse = set(refuse)
        self.closed_after = closed_after

    def submit(self, payload):
        if self.closed_after is not None and len(self.submitted) >= self.closed_after:
            raise RuntimeError("server is closed")
        if len(self.submitted) in self.refuse:
            self.submitted.append(None)
            raise ValueError("transient refusal")
        self.submitted.append(payload)
        future = Future()
        future.set_result(payload)
        return future


def replayer_for(backend, payloads, **kwargs):
    clock = FakeClock()
    return TraceReplayer(
        backend.submit, payloads, clock=clock, sleep=clock.sleep, **kwargs
    ), clock


# -- hypothesis: the deterministic-replay property over all shapes -----------
@settings(max_examples=40, deadline=None)
@given(
    shape=st.sampled_from(sorted(TRACE_SHAPES)),
    rate=st.floats(min_value=5.0, max_value=200.0),
    duration=st.floats(min_value=0.1, max_value=4.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    num_payloads=st.integers(min_value=1, max_value=16),
    time_scale=st.floats(min_value=0.5, max_value=1000.0),
)
def test_any_generated_trace_replays_exactly(
    shape, rate, duration, seed, num_payloads, time_scale
):
    trace = make_trace(shape, rate=rate, duration=duration, seed=seed,
                       num_payloads=num_payloads)
    # structural invariants of every generated trace
    offsets = [e.t_offset for e in trace]
    assert offsets == sorted(offsets)
    assert all(t >= 0.0 for t in offsets)
    # replay against a mock backend on the fake (non-wall) clock
    backend = MockBackend()
    payloads = [f"payload-{i}" for i in range(num_payloads)]
    replayer, clock = replayer_for(backend, payloads, time_scale=time_scale)
    result = replayer.replay(trace)
    assert result.attempted == len(trace)
    assert result.accepted == len(trace)
    assert len(backend.submitted) == len(trace)
    # submission order is the trace order, payloads bound by ref
    assert backend.submitted == [payloads[e.payload_ref] for e in trace]
    # the fake clock advanced by (at most) the scaled trace span
    assert clock.t == pytest.approx(trace.duration_seconds / time_scale)


def test_same_seed_identical_submission_order():
    orders = []
    for _ in range(2):
        trace = make_trace("burst", rate=80.0, duration=2.0, seed=42, num_payloads=6)
        backend = MockBackend()
        replayer, _ = replayer_for(backend, list(range(6)), time_scale=50.0)
        replayer.replay(trace)
        orders.append(list(backend.submitted))
    assert orders[0] == orders[1]


def test_submission_instants_follow_the_scaled_schedule():
    trace = make_trace("poisson", rate=30.0, duration=2.0, seed=9)
    backend = MockBackend()
    replayer, _ = replayer_for(backend, [0], time_scale=4.0)
    result = replayer.replay(trace)
    for request, event in zip(result.requests, trace):
        assert request.scheduled_s == pytest.approx(event.t_offset / 4.0)
        # the fake clock never runs late: submissions land on schedule
        assert request.submitted_s == pytest.approx(request.scheduled_s)
        assert request.lag_seconds == pytest.approx(0.0)


def test_transient_refusals_are_recorded_not_raised():
    trace = make_trace("constant", rate=10.0, duration=1.0, seed=0)
    backend = MockBackend(refuse={2, 5})
    replayer, _ = replayer_for(backend, [0], time_scale=100.0)
    result = replayer.replay(trace)
    assert result.attempted == len(trace)
    assert result.refused == 2
    assert result.accepted == len(trace) - 2
    results, errors = result.settle(timeout=1.0)
    assert len(results) == len(trace) - 2
    assert len(errors) == 2 and all(isinstance(e, ValueError) for e in errors)


def test_backend_closed_stops_the_replay():
    trace = make_trace("constant", rate=10.0, duration=1.0, seed=0)
    backend = MockBackend(closed_after=4)
    replayer, _ = replayer_for(backend, [0], time_scale=100.0)
    result = replayer.replay(trace)
    assert result.accepted == 4
    assert result.attempted == 5  # the failed arrival is recorded
    assert isinstance(result.requests[-1].error, RuntimeError)


def test_payload_bank_must_cover_the_trace():
    trace = make_trace("constant", rate=10.0, duration=1.0, seed=0, num_payloads=4)
    replayer, _ = replayer_for(MockBackend(), [0, 1])  # bank of 2, refs up to 3
    with pytest.raises(ValueError, match="bank holds"):
        replayer.replay(trace)


def test_replay_in_thread_joins_with_result():
    trace = make_trace("poisson", rate=50.0, duration=1.0, seed=7)
    backend = MockBackend()
    replayer, _ = replayer_for(backend, [0], time_scale=1000.0)
    handle = replayer.replay_in_thread(trace)
    result = handle.join(timeout=10.0)
    assert not handle.running
    assert result.accepted == len(trace)


def test_constructor_validation():
    with pytest.raises(ValueError):
        TraceReplayer(lambda p: None, [], time_scale=1.0)
    with pytest.raises(ValueError):
        TraceReplayer(lambda p: None, [0], time_scale=0.0)
