"""Suite-wide isolation fixtures.

The kernel autotuner persists its selection cache to the user's home
directory by default; every test gets a session-scoped temp file instead
so the suite neither reads a developer's warm cache (timing decisions
would leak between machines) nor deletes it (``clear_selection_cache``
removes the file on disk).
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_kernel_cache(tmp_path_factory, monkeypatch):
    from repro.bnn.kernels.select import ENV_CACHE

    path = tmp_path_factory.getbasetemp() / "kernel_select.json"
    monkeypatch.setenv(ENV_CACHE, str(path))
