"""Binarization primitives and XNOR-popcount kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn import (
    binarize_sign,
    binary_dot,
    clip_weights,
    pack_pm1,
    ste_mask,
    unpack_pm1,
    xnor_popcount_matmul,
)
from repro.nn import Parameter


class TestBinarizeSign:
    def test_values(self):
        x = np.array([-2.0, -0.0, 0.0, 0.5])
        np.testing.assert_allclose(binarize_sign(x), [-1.0, 1.0, 1.0, 1.0])

    def test_zero_maps_to_plus_one(self):
        assert binarize_sign(np.array([0.0]))[0] == 1.0

    def test_idempotent(self):
        x = np.random.default_rng(0).normal(size=(4, 4))
        b = binarize_sign(x)
        np.testing.assert_allclose(binarize_sign(b), b)


class TestSTEMask:
    def test_window(self):
        x = np.array([-1.5, -1.0, 0.0, 1.0, 1.5])
        np.testing.assert_allclose(ste_mask(x), [0.0, 1.0, 1.0, 1.0, 0.0])


class TestClipWeights:
    def test_clips_2d_weight(self):
        p = Parameter(np.array([[2.0, -3.0], [0.5, 1.0]]), name="conv.weight")
        clip_weights(p)
        assert p.value.max() <= 1.0 and p.value.min() >= -1.0

    def test_leaves_bias_alone(self):
        p = Parameter(np.array([5.0]), name="conv.bias")
        clip_weights(p)
        assert p.value[0] == 5.0

    def test_leaves_non_weight_alone(self):
        p = Parameter(np.full((2, 2), 3.0), name="bn.gamma_matrix")
        clip_weights(p)
        assert p.value.max() == 3.0


class TestPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        x = binarize_sign(rng.normal(size=(5, 37)))
        packed, n = pack_pm1(x)
        assert n == 37
        assert packed.shape == (5, 5)  # ceil(37/8)
        np.testing.assert_allclose(unpack_pm1(packed, n), x)

    def test_rejects_non_pm1(self):
        with pytest.raises(ValueError):
            pack_pm1(np.array([[0.5, 1.0]]))

    def test_1d_promoted(self):
        packed, n = pack_pm1(np.array([1.0, -1.0, 1.0]))
        assert packed.shape == (1, 1)
        assert n == 3


class TestXnorMatmul:
    @pytest.mark.parametrize("m,k,n", [(3, 8, 4), (5, 37, 7), (1, 1, 1), (4, 129, 3)])
    def test_matches_float_matmul(self, m, k, n):
        rng = np.random.default_rng(1)
        a = binarize_sign(rng.normal(size=(m, k)))
        w = binarize_sign(rng.normal(size=(n, k)))
        ap, bits = pack_pm1(a)
        wp, _ = pack_pm1(w)
        got = xnor_popcount_matmul(ap, wp, bits)
        want = (a @ w.T).astype(np.int64)
        np.testing.assert_array_equal(got, want)

    def test_chunking_equivalent(self):
        rng = np.random.default_rng(2)
        a = binarize_sign(rng.normal(size=(100, 64)))
        w = binarize_sign(rng.normal(size=(16, 64)))
        ap, bits = pack_pm1(a)
        wp, _ = pack_pm1(w)
        np.testing.assert_array_equal(
            xnor_popcount_matmul(ap, wp, bits, chunk=7),
            xnor_popcount_matmul(ap, wp, bits, chunk=1000),
        )

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            xnor_popcount_matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 4), np.uint8), 24)

    def test_dot_range_parity(self):
        # +-1 dot over n elements lies in [-n, n] with the parity of n.
        rng = np.random.default_rng(3)
        n = 27
        for _ in range(20):
            a = binarize_sign(rng.normal(size=n))
            b = binarize_sign(rng.normal(size=n))
            d = binary_dot(a, b)
            assert -n <= d <= n
            assert (d - n) % 2 == 0

    @given(st.integers(1, 200), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_float(self, k, seed):
        rng = np.random.default_rng(seed)
        a = binarize_sign(rng.normal(size=(2, k)))
        w = binarize_sign(rng.normal(size=(3, k)))
        ap, bits = pack_pm1(a)
        wp, _ = pack_pm1(w)
        np.testing.assert_array_equal(
            xnor_popcount_matmul(ap, wp, bits), (a @ w.T).astype(np.int64)
        )
