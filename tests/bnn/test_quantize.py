"""k-bit quantization layers (future-work substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn import binarize_sign
from repro.bnn.quantize import (
    QuantizedActivation,
    QuantizedConv2D,
    QuantizedDense,
    quantize_unit,
    quantize_weights,
)


class TestQuantizeUnit:
    def test_one_bit_levels(self):
        x = np.array([0.0, 0.4, 0.6, 1.0])
        np.testing.assert_allclose(quantize_unit(x, 1), [0.0, 0.0, 1.0, 1.0])

    def test_two_bit_levels(self):
        out = quantize_unit(np.linspace(0, 1, 7), 2)
        assert set(np.round(out * 3).astype(int)) <= {0, 1, 2, 3}

    def test_clips_outside(self):
        np.testing.assert_allclose(quantize_unit(np.array([-1.0, 2.0]), 2), [0.0, 1.0])

    def test_idempotent(self):
        x = np.random.default_rng(0).random(50)
        q = quantize_unit(x, 3)
        np.testing.assert_allclose(quantize_unit(q, 3), q)

    def test_high_bits_identity(self):
        x = np.random.default_rng(0).random(10)
        np.testing.assert_allclose(quantize_unit(x, 32), x)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_unit(np.zeros(2), 0)

    @given(st.integers(1, 8), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_error_bounded(self, bits, seed):
        x = np.random.default_rng(seed).random(20)
        q = quantize_unit(x, bits)
        levels = (1 << bits) - 1
        assert np.abs(q - x).max() <= 0.5 / levels + 1e-12


class TestQuantizeWeights:
    def test_one_bit_is_sign(self):
        w = np.random.default_rng(0).normal(size=(4, 4))
        np.testing.assert_allclose(quantize_weights(w, 1), binarize_sign(w))

    def test_range(self):
        w = np.random.default_rng(1).normal(size=(8, 8)) * 3
        q = quantize_weights(w, 3)
        assert q.min() >= -1.0 and q.max() <= 1.0

    def test_monotone(self):
        w = np.linspace(-2, 2, 41)
        q = quantize_weights(w, 3)
        assert (np.diff(q) >= -1e-12).all()

    def test_more_bits_less_error(self):
        w = np.random.default_rng(2).normal(size=200)
        scale = np.max(np.abs(np.tanh(w)))
        target = np.tanh(w) / scale  # the continuous embedding
        err2 = np.abs(quantize_weights(w, 2) - target).mean()
        err5 = np.abs(quantize_weights(w, 5) - target).mean()
        assert err5 < err2


class TestQuantizedLayers:
    def test_conv_uses_quantized_weights(self):
        rng = np.random.default_rng(0)
        layer = QuantizedConv2D(2, 3, 3, weight_bits=2, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = layer.forward(x)
        from repro.nn import Conv2D

        ref = Conv2D(2, 3, 3, use_bias=False)
        ref.weight.value = layer.quantized_weight
        np.testing.assert_allclose(out, ref.forward(x))

    def test_latent_preserved(self):
        rng = np.random.default_rng(1)
        layer = QuantizedDense(4, 3, weight_bits=2, rng=rng)
        before = layer.weight.value.copy()
        layer.forward(rng.normal(size=(2, 4)))
        np.testing.assert_allclose(layer.weight.value, before)

    def test_gradients_flow(self):
        rng = np.random.default_rng(2)
        layer = QuantizedDense(4, 3, weight_bits=2, rng=rng)
        layer.forward(rng.normal(size=(2, 4)))
        layer.backward(np.ones((2, 3)))
        assert np.abs(layer.weight.grad).sum() > 0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizedConv2D(2, 2, 3, weight_bits=0)
        with pytest.raises(ValueError):
            QuantizedDense(2, 2, weight_bits=0)
        with pytest.raises(ValueError):
            QuantizedActivation(bits=0)

    def test_activation_quantizes_and_gates_gradient(self):
        act = QuantizedActivation(bits=2)
        x = np.array([[-0.5, 0.2, 0.8, 1.5]])
        out = act.forward(x)
        assert out[0, 0] == 0.0 and out[0, 3] == 1.0
        dx = act.backward(np.ones_like(x))
        np.testing.assert_allclose(dx, [[0.0, 1.0, 1.0, 0.0]])

    def test_quantized_net_learns(self):
        # 2-bit network learns a simple separable problem above chance.
        from repro.nn import Adam, BatchNorm, Flatten, Sequential, SoftmaxCrossEntropy, Trainer

        rng = np.random.default_rng(3)
        n = 120
        y = rng.integers(0, 2, size=n)
        x = np.zeros((n, 2, 8, 8))
        x[y == 0, 0] = 1.0
        x[y == 1, 1] = 1.0
        x += 0.1 * rng.normal(size=x.shape)
        net = Sequential(
            [
                QuantizedConv2D(2, 4, 3, weight_bits=2, rng=rng),
                BatchNorm(4),
                QuantizedActivation(bits=2),
                Flatten(),
                QuantizedDense(4 * 6 * 6, 2, weight_bits=2, rng=rng),
                BatchNorm(2),
            ]
        )
        trainer = Trainer(net, SoftmaxCrossEntropy(), Adam(net.params(), lr=0.01), rng=rng)
        trainer.fit(x, y, epochs=10, batch_size=32)
        assert trainer.evaluate(x, y) > 0.9
