"""Autotuner persistence and timing-isolation contracts.

Disk cache: decisions survive process restarts (simulated by clearing
the in-memory cache), corrupt/mismatched files degrade to a cache miss,
``REPRO_KERNEL_CACHE`` relocates or disables the file, and
``clear_selection_cache`` forgets disk state too.

Isolation (regression for the traced-server bug): the candidate
microbenchmarks must run with no tracer installed and with fault
injection suspended, so span bookkeeping and injected chaos can never
tilt the winner — while the ``kernel.autotune`` span still lands on the
caller's tracer.
"""

import json

import numpy as np
import pytest

from repro.bnn.kernels import (
    BinaryKernel,
    clear_selection_cache,
    get_kernel,
    select_backend,
    selection_cache,
    selection_cache_path,
)
from repro.bnn.kernels import select as select_mod
from repro.bnn.kernels.base import _REGISTRY
from repro.faults import FaultInjector, FaultPlan, FaultSpec, faults_suspended, suspend_faults
from repro.obs import tracer as tracer_mod


@pytest.fixture()
def cache_file(tmp_path, monkeypatch):
    path = tmp_path / "kernel_select.json"
    monkeypatch.setenv(select_mod.ENV_CACHE, str(path))
    clear_selection_cache()
    yield path
    clear_selection_cache()


def _forget_memory():
    """Simulate a fresh process: drop RAM state, keep the disk file."""
    select_mod._CACHE.clear()
    select_mod._DISK_LOADED.clear()


def test_round_trip_across_processes(cache_file):
    pick = select_backend(256, 16, 144)
    assert cache_file.exists()
    data = json.loads(cache_file.read_text())
    assert data["version"] == select_mod._DISK_VERSION
    assert pick in str(data["machines"])

    _forget_memory()
    assert selection_cache() == {}
    # Warm process: answered from disk — no re-benchmark, same winner.
    assert select_backend(256, 16, 144) == pick
    assert len(selection_cache()) == 1


def test_corrupt_file_is_a_cache_miss(cache_file):
    for garbage in ("not json{", '{"version": 1, "machines": "nope"}', ""):
        cache_file.write_text(garbage)
        _forget_memory()
        pick = select_backend(64, 8, 64)  # retunes instead of crashing
        get_kernel(pick)
        # ... and rewrites the file into a valid state.
        assert json.loads(cache_file.read_text())["version"] == select_mod._DISK_VERSION


def test_version_mismatch_is_a_cache_miss(cache_file):
    select_backend(64, 8, 64)
    data = json.loads(cache_file.read_text())
    data["version"] = 999
    cache_file.write_text(json.dumps(data))
    _forget_memory()
    select_backend(64, 8, 64)
    assert selection_cache()  # re-measured, not silently trusted


def test_stale_backend_names_are_skipped(cache_file):
    select_backend(64, 8, 64)
    data = json.loads(cache_file.read_text())
    for entries in data["machines"].values():
        for key in entries:
            entries[key] = "kernel-that-no-longer-exists"
    cache_file.write_text(json.dumps(data))
    _forget_memory()
    pick = select_backend(64, 8, 64)
    get_kernel(pick)  # retuned to a real backend


def test_env_disables_persistence(tmp_path, monkeypatch):
    monkeypatch.setenv(select_mod.ENV_CACHE, "off")
    assert selection_cache_path() is None
    clear_selection_cache()
    select_backend(64, 8, 64)
    assert selection_cache()  # in-memory caching still works
    assert list(tmp_path.iterdir()) == []
    clear_selection_cache()


def test_clear_selection_cache_clears_disk(cache_file):
    select_backend(64, 8, 64)
    assert cache_file.exists()
    clear_selection_cache()
    assert not cache_file.exists()
    assert selection_cache() == {}


# -- timing isolation (regression: traced/chaos servers tilted autotune) ----


class _ProbeKernel(BinaryKernel):
    """Records the isolation state observed inside the timed matmul."""

    autotune = False

    def __init__(self, name):
        self.name = name
        self.observed = []

    def matmul(self, a_words, w_prep, n, out=None):
        self.observed.append(
            (tracer_mod.active() is None, faults_suspended())
        )
        m, n_out_ = a_words.shape[0], w_prep.shape[0]
        result = np.zeros((m, n_out_), dtype=np.int64)
        if out is None:
            return result
        out[...] = result
        return out


@pytest.fixture()
def probe_kernels(cache_file):
    probes = [_ProbeKernel("probe-a"), _ProbeKernel("probe-b")]
    _REGISTRY.update({p.name: p for p in probes})
    yield probes
    for p in probes:
        _REGISTRY.pop(p.name, None)


def test_autotune_runs_under_null_tracer_with_faults_suspended(probe_kernels):
    tracer = tracer_mod.Tracer()
    with tracer_mod.tracing(tracer):
        winner = select_backend(32, 4, 64, candidates=("probe-a", "probe-b"))
        # ...and the tracer is back in place once tuning returns.
        assert tracer_mod.active() is tracer
    assert winner in ("probe-a", "probe-b")
    for probe in probe_kernels:
        assert probe.observed, probe.name
        assert all(probe.observed), (
            f"{probe.name} saw a live tracer or unsuspended faults: {probe.observed}"
        )
    # The decision itself is still observable on the caller's tracer...
    autotune = [s for s in tracer.spans if s.name == "kernel.autotune"]
    assert len(autotune) == 1
    assert autotune[0].args["winner"] == winner
    assert set(autotune[0].args["timings_ms"]) == {"probe-a", "probe-b"}


def test_autotune_not_charged_to_fault_streams(probe_kernels):
    plan = FaultPlan(
        seed=7,
        specs=(FaultSpec(stage="bnn", kind="exception", probability=1.0),),
    )
    injector = FaultInjector(plan)

    def tuned_stage(images):
        return select_backend(32, 4, 64, candidates=("probe-a", "probe-b"))

    wrapped = injector.wrap("bnn", tuned_stage)
    # Outside suspension the stage faults as planned ...
    with pytest.raises(Exception):
        wrapped(None)
    calls_after_fault = injector.calls("bnn")
    # ... but a suspended caller (e.g. warmup/tuning paths) passes through
    # without drawing from the stream, so replay sequences stay intact.
    with suspend_faults():
        wrapped(None)
    assert injector.calls("bnn") == calls_after_fault
    assert faults_suspended() is False  # context restored


def test_suspend_faults_is_reentrant():
    assert faults_suspended() is False
    with suspend_faults():
        assert faults_suspended() is True
        with suspend_faults():
            assert faults_suspended() is True
        assert faults_suspended() is True
    assert faults_suspended() is False
