"""Binarized layers, threshold folding, and folded-network equivalence."""

import numpy as np
import pytest

from repro.bnn import (
    BinaryActivation,
    BinaryConv2D,
    BinaryDense,
    FoldedBNN,
    binarize_sign,
    fold_batchnorm,
    fold_network,
)
from repro.nn import (
    Adam,
    BatchNorm,
    Dense,
    Flatten,
    MaxPool2D,
    Sequential,
    SquaredHinge,
    Trainer,
)


class TestBinaryLayers:
    def test_conv_uses_binarized_weights(self):
        rng = np.random.default_rng(0)
        layer = BinaryConv2D(2, 3, 3, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = layer.forward(x)
        # Reference: same conv with explicitly binarized weights.
        from repro.nn import Conv2D

        ref = Conv2D(2, 3, 3, use_bias=False, rng=np.random.default_rng(99))
        ref.weight.value = binarize_sign(layer.weight.value)
        np.testing.assert_allclose(out, ref.forward(x))

    def test_latent_weights_untouched_by_forward(self):
        rng = np.random.default_rng(1)
        layer = BinaryConv2D(2, 2, 3, rng=rng)
        before = layer.weight.value.copy()
        layer.forward(rng.normal(size=(1, 2, 5, 5)))
        np.testing.assert_allclose(layer.weight.value, before)

    def test_dense_uses_binarized_weights(self):
        rng = np.random.default_rng(2)
        layer = BinaryDense(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(layer.forward(x), x @ binarize_sign(layer.weight.value))

    def test_straight_through_gradient_nonzero(self):
        rng = np.random.default_rng(3)
        layer = BinaryDense(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        layer.forward(x)
        layer.backward(np.ones((2, 3)))
        assert np.abs(layer.weight.grad).sum() > 0

    def test_binary_activation_values(self):
        act = BinaryActivation()
        out = act.forward(np.array([[-0.5, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[-1.0, 1.0, 1.0]])
        dx = act.backward(np.ones((1, 3)))
        np.testing.assert_allclose(dx, [[1.0, 1.0, 0.0]])  # |2.0| > 1 cancelled

    def test_no_bias_anywhere(self):
        assert BinaryConv2D(2, 2, 3).bias is None
        assert BinaryDense(2, 2).bias is None


class TestFoldBatchnorm:
    def _check_equivalence(self, bn, y):
        bn.eval_mode()
        want = binarize_sign(bn.forward(y))
        got = fold_batchnorm(bn).apply(y, channel_axis=1)
        np.testing.assert_allclose(got, want)

    def test_positive_gamma(self):
        rng = np.random.default_rng(0)
        bn = BatchNorm(4)
        bn.running_mean.value = rng.normal(size=4)
        bn.running_var.value = rng.uniform(0.5, 2.0, size=4)
        bn.gamma.value = rng.uniform(0.5, 2.0, size=4)
        bn.beta.value = rng.normal(size=4)
        self._check_equivalence(bn, rng.normal(size=(8, 4)) * 3)

    def test_negative_gamma_flips_comparison(self):
        rng = np.random.default_rng(1)
        bn = BatchNorm(3)
        bn.gamma.value = np.array([-1.0, -0.5, -2.0])
        bn.beta.value = rng.normal(size=3)
        bn.running_mean.value = rng.normal(size=3)
        bn.running_var.value = rng.uniform(0.5, 2.0, size=3)
        self._check_equivalence(bn, rng.normal(size=(16, 3)) * 2)

    def test_zero_gamma_constant_output(self):
        bn = BatchNorm(2)
        bn.gamma.value = np.array([0.0, 0.0])
        bn.beta.value = np.array([0.5, -0.5])
        y = np.random.default_rng(2).normal(size=(4, 2))
        out = fold_batchnorm(bn).apply(y)
        np.testing.assert_allclose(out[:, 0], 1.0)
        np.testing.assert_allclose(out[:, 1], -1.0)

    def test_4d_application(self):
        rng = np.random.default_rng(3)
        bn = BatchNorm(3)
        bn.running_mean.value = rng.normal(size=3)
        bn.running_var.value = rng.uniform(0.5, 2.0, size=3)
        bn.gamma.value = rng.uniform(0.2, 2.0, size=3)
        bn.beta.value = rng.normal(size=3)
        y = rng.normal(size=(2, 3, 4, 4)) * 2
        bn.eval_mode()
        want = binarize_sign(bn.forward(y))
        got = fold_batchnorm(bn).apply(y, channel_axis=1)
        np.testing.assert_allclose(got, want)

    def test_channel_mismatch_raises(self):
        bn = BatchNorm(3)
        with pytest.raises(ValueError):
            fold_batchnorm(bn).apply(np.zeros((2, 4)))


def tiny_bnn(rng):
    """A miniature CNV-style binarized net for 8x8x2 inputs, 3 classes."""
    return Sequential(
        [
            BinaryConv2D(2, 8, 3, rng=rng),          # 8x8 -> 6x6
            BatchNorm(8),
            BinaryActivation(),
            MaxPool2D(2),                              # 6x6 -> 3x3
            BinaryConv2D(8, 8, 3, rng=rng),          # 3x3 -> 1x1
            BatchNorm(8),
            BinaryActivation(),
            Flatten(),
            BinaryDense(8, 8, rng=rng),
            BatchNorm(8),
            BinaryActivation(),
            BinaryDense(8, 3, rng=rng),
            BatchNorm(3),
        ],
        name="tiny_bnn",
    )


def _materialize_running_stats(net, x, rng):
    """Run a few training-mode forwards so BN running stats are non-trivial."""
    net.train_mode()
    for _ in range(5):
        net.forward(x + 0.01 * rng.normal(size=x.shape))
    net.eval_mode()


class TestFoldNetwork:
    def test_decisions_match_training_net_eval(self):
        rng = np.random.default_rng(0)
        net = tiny_bnn(rng)
        x = binarize_sign(rng.normal(size=(32, 2, 8, 8)))  # binary-ish inputs
        _materialize_running_stats(net, x, rng)

        folded = fold_network(net, num_classes=3)
        want = net.forward(x)  # eval mode scores (after final BN)
        got = folded.forward(x)
        np.testing.assert_array_equal(got.argmax(axis=1), want.argmax(axis=1))
        # Scores equal too, since final affine is folded exactly.
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    def test_real_valued_first_layer_input(self):
        rng = np.random.default_rng(1)
        net = tiny_bnn(rng)
        x = rng.uniform(-1, 1, size=(16, 2, 8, 8))  # non-binary inputs
        _materialize_running_stats(net, x, rng)
        folded = fold_network(net, num_classes=3)
        np.testing.assert_allclose(folded.forward(x), net.forward(x), rtol=1e-9, atol=1e-9)

    def test_inner_stages_use_packed_path(self):
        rng = np.random.default_rng(2)
        net = tiny_bnn(rng)
        folded = fold_network(net, num_classes=3)
        from repro.bnn import FoldedConv

        convs = [s for s in folded.stages if isinstance(s, FoldedConv)]
        assert convs[0].binary_input is False
        assert all(c.binary_input for c in convs[1:])

    def test_class_scores_truncate_padding(self):
        rng = np.random.default_rng(3)
        net = tiny_bnn(rng)
        x = rng.uniform(-1, 1, size=(4, 2, 8, 8))
        _materialize_running_stats(net, x, rng)
        folded = fold_network(net, num_classes=2)  # pretend 1 pad output
        assert folded.class_scores(x).shape == (4, 2)
        assert folded.forward(x).shape == (4, 3)

    def test_unfoldable_layer_raises(self):
        from repro.nn import ReLU

        net = Sequential([ReLU()])
        with pytest.raises(TypeError):
            fold_network(net)

    def test_missing_bn_act_raises(self):
        net = Sequential([BinaryConv2D(2, 2, 3), MaxPool2D(2)])
        with pytest.raises(TypeError):
            fold_network(net)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            FoldedBNN([])

    def test_batched_forward_consistent(self):
        rng = np.random.default_rng(5)
        net = tiny_bnn(rng)
        x = rng.uniform(-1, 1, size=(10, 2, 8, 8))
        _materialize_running_stats(net, x, rng)
        folded = fold_network(net, num_classes=3)
        np.testing.assert_allclose(
            folded.forward(x, batch_size=3), folded.forward(x, batch_size=100)
        )


class TestBNNTraining:
    def test_bnn_learns_simple_task(self):
        # Binarized net should learn a 2-class pattern well above chance.
        rng = np.random.default_rng(6)
        n = 120
        y = rng.integers(0, 2, size=n)
        x = np.zeros((n, 2, 8, 8))
        x[y == 0, 0, :4, :] = 1.0   # class 0: top half lit in channel 0
        x[y == 1, 1, 4:, :] = 1.0   # class 1: bottom half lit in channel 1
        x += 0.2 * rng.normal(size=x.shape)
        x = np.clip(x, -1, 1)

        net = Sequential(
            [
                BinaryConv2D(2, 8, 3, rng=rng),
                BatchNorm(8),
                BinaryActivation(),
                MaxPool2D(2),
                Flatten(),
                BinaryDense(8 * 3 * 3, 2, rng=rng),
                BatchNorm(2),
            ]
        )
        from repro.bnn import clip_weights

        opt = Adam(net.params(), lr=0.01, post_update=clip_weights)
        trainer = Trainer(net, SquaredHinge(), opt, rng=rng)
        trainer.fit(x, y, epochs=15, batch_size=32)
        acc = trainer.evaluate(x, y)
        assert acc > 0.9

        # And the folded deployment net agrees with the trained net.
        folded = fold_network(net, num_classes=2)
        np.testing.assert_array_equal(folded.predict(x), net.predict_classes(x))
