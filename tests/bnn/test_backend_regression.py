"""Backend regression on a *trained* network.

The property tests cover random operands; this pins the full deployed
artifact: every kernel backend and both datapaths (packed and unpacked)
must produce identical class scores — hence identical predictions and
accuracy — for the trained micro-workbench CNV on its real test split.
"""

import numpy as np

from repro.bnn import fold_network
from repro.bnn.kernels import available_backends
from repro.data import normalize_to_pm1


def test_trained_network_identical_across_backends(micro_workbench):
    net = micro_workbench.bnn_net
    images = normalize_to_pm1(micro_workbench.splits.test.images)

    baseline = fold_network(net, backend="reference", packed=False)
    scores = baseline.class_scores(images, batch_size=64)
    np.testing.assert_allclose(
        scores, net.predict(images)[:, :10], rtol=1e-9, atol=1e-9
    )

    for backend in (*available_backends(), "auto"):
        folded = fold_network(net, backend=backend, packed=True)
        np.testing.assert_allclose(
            folded.class_scores(images, batch_size=64),
            scores,
            rtol=1e-9,
            atol=1e-9,
            err_msg=backend,
        )
        np.testing.assert_array_equal(
            folded.predict(images, batch_size=64), scores.argmax(axis=1), err_msg=backend
        )
