"""Trained micro workbench for BNN regression tests.

Same configuration (and therefore the same on-disk cache entry) as the
experiment-layer tests, so the training cost is paid once per checkout.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import Workbench, WorkbenchConfig

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

MICRO_CONFIG = WorkbenchConfig(
    num_train=300,
    num_test=120,
    bnn_scale=0.1,
    host_scale=0.15,
    bnn_epochs=2,
    host_epochs=2,
)


@pytest.fixture(scope="session")
def micro_workbench() -> Workbench:
    wb = Workbench(MICRO_CONFIG, cache_dir=REPO_ROOT / ".workbench_cache")
    wb.prepare_all()
    return wb
