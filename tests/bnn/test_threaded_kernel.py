"""Threaded cache-blocked bitplane GEMM: bit-exact under any schedule.

Every (thread count, row tile, column tile) schedule must reproduce the
reference kernel exactly — products are in {-1, 0, +1} and partial sums
are integers below the float32-exact limit, so tiling can only change
*when* values are computed, never *what* they are.  Also pins the
scheduling policy itself: the serial threshold, the thread-count
resolution order (arg > env > auto), and the ``threaded@K[:TILE]``
variant grammar the autotuner races.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn.kernels import get_kernel
from repro.bnn.kernels.threaded import (
    ENV_THREADS,
    ThreadedBitplaneKernel,
    resolve_bnn_threads,
)
from repro.bnn.xnor import pack_pm1


def _packed_case(seed, m, n_out, n_bits):
    rng = np.random.default_rng(seed)
    a = rng.choice([-1.0, 1.0], size=(m, n_bits))
    w = rng.choice([-1.0, 1.0], size=(n_out, n_bits))
    a_words, n = pack_pm1(a)
    w_words, _ = pack_pm1(w)
    return a_words, w_words, n, (a @ w.T).astype(np.int64)


@given(
    seed=st.integers(0, 10_000),
    m=st.integers(1, 40),
    n_out=st.integers(1, 12),
    n_bits=st.sampled_from([1, 7, 8, 9, 63, 64, 65, 144, 200]),
    threads=st.sampled_from([1, 2, 3, 4]),
)
@settings(max_examples=40, deadline=None)
def test_matches_oracle_any_thread_count(seed, m, n_out, n_bits, threads):
    a_words, w_words, n, oracle = _packed_case(seed, m, n_out, n_bits)
    # min_rows_per_thread=1 forces the parallel path even on tiny M.
    kernel = ThreadedBitplaneKernel(threads=threads, min_rows_per_thread=1)
    out = kernel.matmul(a_words, kernel.prepare(w_words, n), n)
    assert out.dtype == np.int64
    np.testing.assert_array_equal(out, oracle)


@pytest.mark.parametrize("row_tile,col_tile", [(1, 1), (3, 2), (7, 5), (64, 4096)])
def test_tiling_edges_and_tails(row_tile, col_tile):
    # M/N chosen to leave ragged tail tiles for every parametrized size.
    a_words, w_words, n, oracle = _packed_case(5, 29, 11, 100)
    kernel = ThreadedBitplaneKernel(
        threads=2, row_tile=row_tile, col_tile=col_tile, min_rows_per_thread=1
    )
    np.testing.assert_array_equal(
        kernel.matmul(a_words, kernel.prepare(w_words, n), n), oracle
    )


def test_out_buffer_is_written_and_returned():
    a_words, w_words, n, oracle = _packed_case(7, 17, 6, 64)
    kernel = ThreadedBitplaneKernel(threads=2, min_rows_per_thread=1)
    out = np.empty((17, 6), dtype=np.int64)
    result = kernel.matmul(a_words, kernel.prepare(w_words, n), n, out=out)
    assert result is out
    np.testing.assert_array_equal(out, oracle)


def test_serial_threshold_keeps_small_shapes_serial():
    kernel = ThreadedBitplaneKernel(threads=8, min_rows_per_thread=2048)
    assert kernel._effective_threads(16) == 1          # FC-sized: serial
    assert kernel._effective_threads(4096) == 2        # two full slabs
    assert kernel._effective_threads(1 << 20) == 8     # capped by threads
    # Threshold disabled: thread count passes through.
    assert ThreadedBitplaneKernel(threads=3, min_rows_per_thread=0)._effective_threads(2) == 3


def test_resolve_bnn_threads(monkeypatch):
    monkeypatch.delenv(ENV_THREADS, raising=False)
    assert resolve_bnn_threads(5) == 5             # explicit arg wins
    assert resolve_bnn_threads() >= 1              # auto: cpu-derived
    monkeypatch.setenv(ENV_THREADS, "3")
    assert resolve_bnn_threads() == 3              # env default
    assert resolve_bnn_threads(2) == 2             # arg still beats env
    monkeypatch.setenv(ENV_THREADS, "not-a-number")
    with pytest.raises(ValueError):
        resolve_bnn_threads()


def test_variant_lookup():
    base = get_kernel("threaded")
    two = get_kernel("threaded@2")
    assert isinstance(two, ThreadedBitplaneKernel)
    assert two.name == "threaded@2"
    assert two.threads == 2
    assert get_kernel("threaded@2") is two         # cached instance
    tiled = get_kernel("threaded@2:8192")
    assert (tiled.threads, tiled.row_tile) == (2, 8192)
    assert base.threads is None                    # base stays env-driven
    with pytest.raises(KeyError):
        get_kernel("threaded@zippy")
    with pytest.raises(KeyError):
        get_kernel("reference@2")                  # no variants there


def test_variant_matches_base():
    a_words, w_words, n, oracle = _packed_case(11, 33, 9, 144)
    for name in ("threaded", "threaded@1", "threaded@2", "threaded@2:8"):
        kernel = get_kernel(name)
        np.testing.assert_array_equal(
            kernel.matmul(a_words, kernel.prepare(w_words, n), n), oracle,
            err_msg=name,
        )
