"""Packed activation pipeline: bit containers vs the float datapath.

Each packed building block (im2col byte-gather, threshold-to-bits,
boolean-OR max pooling, weight permutation) must reproduce its float
counterpart exactly, and the whole packed FoldedBNN must produce scores
identical to the unpacked pipeline on every backend.
"""

import numpy as np
import pytest

from repro.bnn import (
    BinaryActivation,
    BinaryConv2D,
    BinaryDense,
    PackedMaps,
    PackedRows,
    fold_network,
    maxpool_packed,
)
from repro.bnn.kernels import available_backends
from repro.bnn.packing import conv_weight_words, dense_weight_words_hwc
from repro.bnn.thresholding import ChannelThresholds
from repro.bnn.xnor import pack_pm1
from repro.nn import BatchNorm, Flatten, MaxPool2D, Sequential
from repro.nn.functional import im2col, im2col_packed


def pack_maps(x):
    """Bit-pack float ±1 NCHW maps into the channel-innermost layout."""
    n, c, h, w = x.shape
    bc = -(-c // 8)
    bits = np.zeros((n, h, w, bc * 8), dtype=np.uint8)
    bits[..., :c] = (x > 0).transpose(0, 2, 3, 1)
    return PackedMaps(np.packbits(bits.reshape(n, h, w, -1), axis=3), c)


def random_pm1_maps(rng, n, c, h, w):
    return rng.choice([-1.0, 1.0], size=(n, c, h, w))


@pytest.mark.parametrize("channels", [1, 3, 8, 11])
def test_packed_maps_round_trip(channels):
    rng = np.random.default_rng(0)
    x = random_pm1_maps(rng, 2, channels, 5, 4)
    maps = pack_maps(x)
    np.testing.assert_array_equal(maps.to_pm1(), x)
    # Flattened rows unpack back to the (c, h, w) feature order Flatten uses.
    np.testing.assert_array_equal(maps.flatten_rows().to_pm1(), x.reshape(2, -1))


@pytest.mark.parametrize("channels,kernel", [(3, 3), (8, 3), (11, 2)])
def test_packed_im2col_matches_float_im2col(channels, kernel):
    """Packed conv = byte-gather im2col x permuted weights, bit for bit."""
    rng = np.random.default_rng(1)
    x = random_pm1_maps(rng, 2, channels, 7, 6)
    weights = rng.choice([-1.0, 1.0], size=(5, channels * kernel * kernel))

    cols = im2col(x, kernel, kernel, stride=1, pad=0)
    expected = (cols @ weights.T).astype(np.int64)

    packed_cols = im2col_packed(pack_maps(x).words, kernel, kernel, stride=1)
    w_words = conv_weight_words(weights, channels, kernel)
    n = channels * kernel * kernel
    rows = PackedRows(packed_cols, n=n, layout=None)  # pads are zero both sides
    from repro.bnn.kernels import get_kernel

    for name in available_backends():
        k = get_kernel(name)
        out = k.matmul(rows.words, k.prepare(w_words, n), n)
        np.testing.assert_array_equal(out, expected, err_msg=name)


def test_dense_weight_words_hwc_matches_flatten_order():
    rng = np.random.default_rng(2)
    c, h, w = 11, 3, 4
    x = random_pm1_maps(rng, 3, c, h, w)
    weights = rng.choice([-1.0, 1.0], size=(6, c * h * w))
    expected = (x.reshape(3, -1) @ weights.T).astype(np.int64)

    rows = pack_maps(x).flatten_rows()
    w_words = dense_weight_words_hwc(weights, h, w, c)
    from repro.bnn.kernels import get_kernel

    k = get_kernel("reference")
    out = k.matmul(rows.words, k.prepare(w_words, rows.n), rows.n)
    np.testing.assert_array_equal(out, expected)


def test_apply_bits_matches_apply():
    rng = np.random.default_rng(3)
    channels = 13
    thresholds = ChannelThresholds(
        tau=rng.normal(0, 3, size=channels),
        sign=rng.choice([-1.0, 0.0, 1.0], size=channels),
        constant=rng.choice([-1.0, 1.0], size=channels),
    )
    y = rng.integers(-20, 20, size=(9, channels)).astype(np.float64)
    # Include exact-threshold ties: sign(0) = +1 convention must survive.
    y[0] = thresholds.tau

    expected = thresholds.apply(y, channel_axis=1)
    words = thresholds.apply_bits(y)
    unpacked = np.unpackbits(words, axis=1)[:, :channels].astype(np.float64) * 2.0 - 1.0
    np.testing.assert_array_equal(unpacked, expected)


@pytest.mark.parametrize("channels", [3, 8, 9])
def test_maxpool_packed_matches_float_maxpool(channels):
    rng = np.random.default_rng(4)
    x = random_pm1_maps(rng, 2, channels, 8, 8)
    pooled = MaxPool2D(2).forward(x)
    packed = maxpool_packed(pack_maps(x), window=2, stride=2)
    np.testing.assert_array_equal(packed.to_pm1(), pooled)


def random_bnn(rng, in_channels=3, channels=8, fc_width=16, num_classes=4):
    net = Sequential(
        [
            BinaryConv2D(in_channels, channels, 3, rng=rng),
            BatchNorm(channels),
            BinaryActivation(),
            BinaryConv2D(channels, channels, 3, rng=rng),
            BatchNorm(channels),
            BinaryActivation(),
            MaxPool2D(2),
            Flatten(),
            BinaryDense(channels * 2 * 2, fc_width, rng=rng),
            BatchNorm(fc_width),
            BinaryActivation(),
            BinaryDense(fc_width, num_classes, rng=rng),
            BatchNorm(num_classes),
        ]
    )
    for layer in net:
        if isinstance(layer, BatchNorm):
            n = layer.num_features
            layer.running_mean.value = rng.normal(0, 2, size=n)
            layer.running_var.value = rng.uniform(0.3, 3.0, size=n)
            layer.gamma.value = rng.normal(0, 1, size=n)
            layer.beta.value = rng.normal(0, 1, size=n)
    net.eval_mode()
    return net


def test_packed_pipeline_matches_unpacked_on_all_backends():
    rng = np.random.default_rng(5)
    net = random_bnn(rng)
    x = rng.uniform(-1, 1, size=(6, 3, 8, 8))
    baseline = fold_network(net, num_classes=4, backend="reference", packed=False).forward(x)
    np.testing.assert_allclose(baseline, net.forward(x), rtol=1e-9, atol=1e-9)
    for backend in (*available_backends(), "auto"):
        folded = fold_network(net, num_classes=4, backend=backend, packed=True)
        np.testing.assert_allclose(
            folded.forward(x), baseline, rtol=1e-9, atol=1e-9, err_msg=backend
        )


def test_with_backend_rebinds_without_refolding():
    rng = np.random.default_rng(6)
    net = random_bnn(rng)
    x = rng.uniform(-1, 1, size=(3, 3, 8, 8))
    folded = fold_network(net, num_classes=4, backend="reference")
    rebased = folded.with_backend("bitplane")
    assert rebased.stages is folded.stages
    np.testing.assert_allclose(rebased.forward(x), folded.forward(x), rtol=1e-9, atol=1e-9)
