"""Folded-BNN serialization round-trips bit-exactly."""

import numpy as np
import pytest

from repro.bnn import (
    BinaryActivation,
    BinaryConv2D,
    BinaryDense,
    fold_network,
    load_folded_bnn,
    save_folded_bnn,
)
from repro.nn import BatchNorm, Flatten, MaxPool2D, Sequential


@pytest.fixture()
def trained_folded():
    rng = np.random.default_rng(0)
    net = Sequential(
        [
            BinaryConv2D(2, 8, 3, rng=rng),
            BatchNorm(8),
            BinaryActivation(),
            MaxPool2D(2),
            Flatten(),
            BinaryDense(8 * 3 * 3, 8, rng=rng),
            BatchNorm(8),
            BinaryActivation(),
            BinaryDense(8, 4, rng=rng),
            BatchNorm(4),
        ]
    )
    x = rng.uniform(-1, 1, size=(16, 2, 8, 8))
    net.train_mode()
    for _ in range(3):
        net.forward(x)
    net.eval_mode()
    return fold_network(net, num_classes=4), x


class TestExportRoundtrip:
    def test_scores_bit_exact(self, trained_folded, tmp_path):
        folded, x = trained_folded
        path = tmp_path / "bnn.npz"
        save_folded_bnn(folded, path)
        loaded = load_folded_bnn(path)
        np.testing.assert_array_equal(loaded.forward(x), folded.forward(x))

    def test_stage_structure_preserved(self, trained_folded, tmp_path):
        folded, _ = trained_folded
        path = tmp_path / "bnn.npz"
        save_folded_bnn(folded, path)
        loaded = load_folded_bnn(path)
        assert [type(s).__name__ for s in loaded.stages] == [
            type(s).__name__ for s in folded.stages
        ]
        assert loaded.num_classes == folded.num_classes

    def test_no_pickle_needed(self, trained_folded, tmp_path):
        # Artifact is plain arrays: loadable with allow_pickle=False.
        folded, _ = trained_folded
        path = tmp_path / "bnn.npz"
        save_folded_bnn(folded, path)
        data = np.load(path, allow_pickle=False)
        assert "__format__" in data

    def test_bad_version_rejected(self, trained_folded, tmp_path):
        folded, _ = trained_folded
        path = tmp_path / "bnn.npz"
        save_folded_bnn(folded, path)
        data = dict(np.load(path))
        data["__format__"] = np.array(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_folded_bnn(path)

    def test_artifact_is_compact(self, trained_folded, tmp_path):
        # Binary weights compress well; artifact far smaller than float64.
        folded, _ = trained_folded
        path = tmp_path / "bnn.npz"
        save_folded_bnn(folded, path)
        float_bytes = sum(
            s.weight_matrix.size * 8
            for s in folded.stages
            if hasattr(s, "weight_matrix")
        )
        assert path.stat().st_size < float_bytes
