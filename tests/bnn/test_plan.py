"""Compiled-plan contract: ``FoldedBNN.compile_inference`` is invisible.

The plan preallocates every buffer and fuses pack/GEMM/threshold hops,
but the XNOR arithmetic is integer-exact, so on a *trained* network the
compiled path must reproduce the uncompiled loop bit-for-bit — for every
backend, every thread count, and batch sizes that exercise full chunks,
ragged tails, and single images.  Buffer reuse across calls must be
observable only as speed, never as state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn import ENV_COMPILE, PlanUnsupported, fold_network
from repro.data import normalize_to_pm1

BATCH_SIZES = (1, 7, 64, 129)
BACKENDS = ("reference", "bitplane", "lut64", "threaded", "threaded@2", "auto")


@pytest.fixture(scope="module")
def folded_packed(micro_workbench):
    return fold_network(micro_workbench.bnn_net, packed=True)


@pytest.fixture(scope="module")
def test_images(micro_workbench):
    return normalize_to_pm1(micro_workbench.splits.test.images)


@pytest.mark.parametrize("micro_batch", BATCH_SIZES)
def test_plan_bit_identical_every_backend(folded_packed, test_images, micro_batch):
    # batch 1 walks one image per chunk; cap the count so the slow
    # reference backend stays cheap without losing the ragged-tail case.
    images = test_images[:13] if micro_batch == 1 else test_images
    for backend in BACKENDS:
        expected = folded_packed.with_backend(backend).forward_uncompiled(
            images, batch_size=micro_batch
        )
        plan = folded_packed.compile_inference(
            micro_batch=micro_batch, backend=backend
        )
        np.testing.assert_array_equal(
            plan.forward(images), expected, err_msg=f"{backend}@batch{micro_batch}"
        )


def test_thread_count_invariance(folded_packed, test_images):
    plans = [
        folded_packed.compile_inference(micro_batch=64, backend="threaded", threads=k)
        for k in (1, 2, 4)
    ]
    baseline = plans[0].forward(test_images).copy()
    for k, plan in zip((2, 4), plans[1:]):
        np.testing.assert_array_equal(
            plan.forward(test_images), baseline, err_msg=f"threads={k}"
        )


def test_buffer_reuse_is_deterministic(folded_packed, test_images):
    plan = folded_packed.compile_inference(micro_batch=32)
    first = plan.forward(test_images)
    first_copy = first.copy()
    second = plan.forward(test_images)
    np.testing.assert_array_equal(second, first_copy)
    # The returned array is the caller's, not a view of the reused pool.
    np.testing.assert_array_equal(first, first_copy)
    assert first is not second


def test_class_scores_and_predict(folded_packed, test_images):
    plan = folded_packed.compile_inference(micro_batch=64)
    scores = plan.class_scores(test_images)
    assert scores.shape == (len(test_images), folded_packed.num_classes)
    np.testing.assert_array_equal(
        scores, folded_packed.class_scores(test_images, batch_size=64)
    )
    np.testing.assert_array_equal(plan.predict(test_images), scores.argmax(axis=1))


def test_forward_autocompiles_and_env_disables(folded_packed, test_images, monkeypatch):
    monkeypatch.delenv(ENV_COMPILE, raising=False)
    auto = folded_packed.forward(test_images, batch_size=64)
    assert folded_packed._auto_plan(64) is not None
    np.testing.assert_array_equal(
        auto, folded_packed.forward_uncompiled(test_images, batch_size=64)
    )
    monkeypatch.setenv(ENV_COMPILE, "0")
    assert folded_packed._auto_plan(64) is None
    np.testing.assert_array_equal(
        folded_packed.forward(test_images, batch_size=64), auto
    )


def test_unpacked_network_is_unsupported(micro_workbench):
    unpacked = fold_network(micro_workbench.bnn_net, packed=False)
    with pytest.raises(PlanUnsupported):
        unpacked.compile_inference()
    assert unpacked._auto_plan(64) is None  # forward falls back silently


def test_batch_size_must_match_micro_batch(folded_packed, test_images):
    plan = folded_packed.compile_inference(micro_batch=64)
    with pytest.raises(ValueError):
        plan.forward(test_images, batch_size=32)
    # Explicitly passing the plan's own micro-batch is fine.
    plan.forward(test_images[:64], batch_size=64)


@given(seed=st.integers(0, 10_000), n=st.integers(1, 9))
@settings(max_examples=10, deadline=None)
def test_plan_matches_uncompiled_on_random_inputs(folded_packed, seed, n):
    rng = np.random.default_rng(seed)
    images = rng.uniform(-1.0, 1.0, size=(n, 3, 32, 32))
    plan = folded_packed.compile_inference(micro_batch=4)
    np.testing.assert_array_equal(
        plan.forward(images),
        folded_packed.forward_uncompiled(images, batch_size=4),
    )
