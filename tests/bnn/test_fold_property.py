"""Property test: folding preserves decisions for random tiny BNNs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn import BinaryActivation, BinaryConv2D, BinaryDense, fold_network
from repro.nn import BatchNorm, Flatten, MaxPool2D, Sequential


def random_bnn(rng, channels, fc_width, num_classes):
    """A random small conv->fc binarized network with random BN statistics."""
    net = Sequential(
        [
            BinaryConv2D(2, channels, 3, rng=rng),
            BatchNorm(channels),
            BinaryActivation(),
            MaxPool2D(2),
            Flatten(),
            BinaryDense(channels * 3 * 3, fc_width, rng=rng),
            BatchNorm(fc_width),
            BinaryActivation(),
            BinaryDense(fc_width, num_classes, rng=rng),
            BatchNorm(num_classes),
        ]
    )
    # Random (but valid) BN statistics, including negative gammas.
    for layer in net:
        if isinstance(layer, BatchNorm):
            n = layer.num_features
            layer.running_mean.value = rng.normal(0, 2, size=n)
            layer.running_var.value = rng.uniform(0.3, 3.0, size=n)
            layer.gamma.value = rng.normal(0, 1, size=n)
            layer.beta.value = rng.normal(0, 1, size=n)
    net.eval_mode()
    return net


@given(
    seed=st.integers(0, 10_000),
    channels=st.sampled_from([4, 8]),
    fc_width=st.sampled_from([4, 8, 16]),
)
@settings(max_examples=15, deadline=None)
def test_fold_preserves_scores_for_random_networks(seed, channels, fc_width):
    rng = np.random.default_rng(seed)
    net = random_bnn(rng, channels, fc_width, num_classes=3)
    folded = fold_network(net, num_classes=3)
    x = rng.uniform(-1, 1, size=(6, 2, 8, 8))
    np.testing.assert_allclose(folded.forward(x), net.forward(x), rtol=1e-9, atol=1e-9)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_fold_predictions_invariant_to_batching(seed):
    rng = np.random.default_rng(seed)
    net = random_bnn(rng, 4, 8, num_classes=3)
    folded = fold_network(net, num_classes=3)
    x = rng.uniform(-1, 1, size=(7, 2, 8, 8))
    np.testing.assert_array_equal(
        folded.predict(x, batch_size=2), folded.predict(x, batch_size=100)
    )
