"""Partially-binarised networks: float classifier head over binary features."""

import numpy as np
import pytest

from repro.bnn import (
    BinaryActivation,
    BinaryConv2D,
    FloatDenseHead,
    fold_network,
    load_folded_bnn,
    save_folded_bnn,
)
from repro.nn import BatchNorm, Dense, Flatten, MaxPool2D, Sequential


def partially_binarized_net(rng):
    """Binary conv features + full-precision Dense classifier."""
    return Sequential(
        [
            BinaryConv2D(2, 8, 3, rng=rng),
            BatchNorm(8),
            BinaryActivation(),
            MaxPool2D(2),
            Flatten(),
            Dense(8 * 3 * 3, 5, rng=rng),
        ]
    )


@pytest.fixture()
def trained(tmp_path):
    rng = np.random.default_rng(0)
    net = partially_binarized_net(rng)
    x = rng.uniform(-1, 1, size=(12, 2, 8, 8))
    net.train_mode()
    for _ in range(3):
        net.forward(x)
    net.eval_mode()
    return net, x


class TestFloatHead:
    def test_fold_matches_training_net(self, trained):
        net, x = trained
        folded = fold_network(net, num_classes=5)
        np.testing.assert_allclose(folded.forward(x), net.forward(x), rtol=1e-9, atol=1e-9)

    def test_head_stage_present(self, trained):
        net, _ = trained
        folded = fold_network(net, num_classes=5)
        assert isinstance(folded.stages[-1], FloatDenseHead)
        assert folded.stages[-1].out_features == 5

    def test_non_terminal_dense_rejected(self):
        rng = np.random.default_rng(1)
        net = Sequential(
            [
                Flatten(),
                Dense(8, 4, rng=rng),   # float dense NOT at the end
                Dense(4, 2, rng=rng),
            ]
        )
        with pytest.raises(TypeError):
            fold_network(net)

    def test_serialization_roundtrip(self, trained, tmp_path):
        net, x = trained
        folded = fold_network(net, num_classes=5)
        path = tmp_path / "partial.npz"
        save_folded_bnn(folded, path)
        loaded = load_folded_bnn(path)
        np.testing.assert_allclose(loaded.forward(x), folded.forward(x))

    def test_head_validation(self):
        with pytest.raises(ValueError):
            FloatDenseHead(np.zeros((3,)), None)
        with pytest.raises(ValueError):
            FloatDenseHead(np.zeros((3, 4)), np.zeros(3))

    def test_head_without_bias(self):
        head = FloatDenseHead(np.eye(3), None)
        x = np.arange(6.0).reshape(2, 3)
        np.testing.assert_allclose(head(x), x)
