"""Kernel backend contract: every backend is bit-exact ±1 arithmetic.

Property-tests all registered backends against an independent float
matmul oracle (not the packed path) across random shapes and fan-ins,
including widths that are not multiples of 8 or 64 so pad-bit handling
is exercised; plus the NumPy-1.x LUT popcount fallback, the registry,
the environment override, and the autotuner cache.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bnn import bitops
from repro.bnn.kernels import (
    ENV_BACKEND,
    available_backends,
    clear_selection_cache,
    default_backend,
    get_kernel,
    select_backend,
    selection_cache,
)
from repro.bnn.xnor import binary_dot, pack_pm1, xnor_popcount_matmul


def random_pm1(rng, shape):
    return rng.choice([-1.0, 1.0], size=shape)


@given(
    seed=st.integers(0, 10_000),
    m=st.integers(1, 24),
    n_out=st.integers(1, 12),
    # Deliberately spans widths below/above one uint64 word and widths
    # that are not multiples of 8 (pad bits) or 64 (partial words).
    n_bits=st.sampled_from([1, 3, 7, 8, 9, 17, 63, 64, 65, 100, 144, 200]),
)
@settings(max_examples=40, deadline=None)
def test_all_backends_match_float_oracle(seed, m, n_out, n_bits):
    rng = np.random.default_rng(seed)
    a = random_pm1(rng, (m, n_bits))
    w = random_pm1(rng, (n_out, n_bits))
    oracle = (a @ w.T).astype(np.int64)

    a_words, n = pack_pm1(a)
    w_words, _ = pack_pm1(w)
    for name in available_backends():
        kernel = get_kernel(name)
        out = kernel.matmul(a_words, kernel.prepare(w_words, n), n)
        assert out.dtype == np.int64, name
        np.testing.assert_array_equal(out, oracle, err_msg=name)


@given(seed=st.integers(0, 10_000), n_bits=st.integers(1, 130))
@settings(max_examples=25, deadline=None)
def test_backends_match_binary_dot(seed, n_bits):
    rng = np.random.default_rng(seed)
    a = random_pm1(rng, (n_bits,))
    w = random_pm1(rng, (n_bits,))
    expected = binary_dot(a, w)
    a_words, n = pack_pm1(a.reshape(1, -1))
    w_words, _ = pack_pm1(w.reshape(1, -1))
    for name in available_backends():
        kernel = get_kernel(name)
        assert int(kernel.matmul(a_words, kernel.prepare(w_words, n), n)[0, 0]) == expected


def test_popcount_lut_fallback_matches_native(monkeypatch):
    """The NumPy<2.0 path (no ``np.bitwise_count``) must agree everywhere."""
    rng = np.random.default_rng(0)
    words = rng.integers(0, 256, size=(64, 18), dtype=np.uint8)
    native = bitops.popcount(words)
    monkeypatch.setattr(bitops, "HAVE_BITWISE_COUNT", False)
    np.testing.assert_array_equal(bitops.popcount(words), native)

    # The whole reference kernel keeps working on the fallback.
    a = random_pm1(rng, (9, 77))
    w = random_pm1(rng, (5, 77))
    a_words, n = pack_pm1(a)
    w_words, _ = pack_pm1(w)
    np.testing.assert_array_equal(
        xnor_popcount_matmul(a_words, w_words, n), (a @ w.T).astype(np.int64)
    )


def test_popcount_u64_matches_bit_count():
    rng = np.random.default_rng(1)
    words = rng.integers(0, 2**63, size=37, dtype=np.uint64)
    expected = np.array([bin(int(v)).count("1") for v in words])
    np.testing.assert_array_equal(bitops.popcount_u64(words), expected)


def test_registry_and_reference_first():
    names = available_backends()
    assert names[0] == "reference"
    assert {"reference", "bitplane", "lut64"} <= set(names)
    with pytest.raises(KeyError):
        get_kernel("no-such-backend")


def test_default_backend_env_override(monkeypatch):
    monkeypatch.delenv(ENV_BACKEND, raising=False)
    assert default_backend() == "auto"
    monkeypatch.setenv(ENV_BACKEND, "bitplane")
    assert default_backend() == "bitplane"
    monkeypatch.setenv(ENV_BACKEND, "auto")
    assert default_backend() == "auto"
    monkeypatch.setenv(ENV_BACKEND, "bogus")
    with pytest.raises(KeyError):
        default_backend()


def test_select_backend_returns_valid_name_and_caches():
    clear_selection_cache()
    pick = select_backend(256, 16, 144)
    get_kernel(pick)  # valid name or variant (e.g. "threaded@2")
    assert len(selection_cache()) == 1
    # Same shape bucket: answered from cache, no new entry.
    assert select_backend(200, 16, 144) == pick
    assert len(selection_cache()) == 1
    # Different shape: new measurement.
    select_backend(8, 4, 32)
    assert len(selection_cache()) == 2
    clear_selection_cache()
    assert len(selection_cache()) == 0


def test_select_backend_candidate_subset():
    clear_selection_cache()
    assert select_backend(16, 4, 64, candidates=("reference",)) == "reference"
    clear_selection_cache()
