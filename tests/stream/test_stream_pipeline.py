"""End-to-end video cascade with a stub classifier."""

import numpy as np
import pytest

from repro.stream import StreamReport, SyntheticVideo, VideoCascade


class _OracleBNN:
    """Stub classifier: 'classifies' by mean patch colour bucket."""

    def __init__(self, num_classes=10):
        self.num_classes = num_classes

    def class_scores(self, images, batch_size=128):
        n = images.shape[0]
        scores = np.zeros((n, self.num_classes))
        bucket = (images.mean(axis=(1, 2, 3)) * self.num_classes).astype(int)
        scores[np.arange(n), np.clip(bucket, 0, self.num_classes - 1)] = 5.0
        return scores


class _StubHost:
    def predict_classes(self, images, batch_size=128):
        return np.zeros(images.shape[0], dtype=np.int64)


def make_cascade(threshold=0.5):
    from repro.core import DecisionMakingUnit, MultiPrecisionPipeline

    dmu = DecisionMakingUnit(np.full(10, 0.5), 0.0, threshold=threshold)
    pipeline = MultiPrecisionPipeline(_OracleBNN(), dmu, _StubHost())
    return VideoCascade(pipeline)


class TestVideoCascade:
    def test_processes_frames(self):
        video = SyntheticVideo(height=160, width=240, num_objects=2, object_size=40, seed=0)
        cascade = make_cascade()
        report = cascade.run(video, num_frames=3)
        assert len(report.frames) == 3
        assert report.total_objects == 6
        assert report.total_patches >= report.matched_objects

    def test_detection_recall_reasonable(self):
        video = SyntheticVideo(height=160, width=240, num_objects=2, object_size=40, seed=1)
        report = make_cascade().run(video, num_frames=5)
        assert report.detection_recall > 0.6

    def test_rerun_accounting(self):
        video = SyntheticVideo(height=160, width=240, num_objects=1, object_size=40, seed=2)
        report = make_cascade(threshold=1.0).run(video, num_frames=2)
        # Threshold 1.0 flags everything for the host.
        assert report.total_reruns == report.total_patches
        assert report.rerun_ratio == pytest.approx(1.0)

    def test_empty_report_metrics(self):
        report = StreamReport()
        assert report.detection_recall == 0.0
        assert report.classification_accuracy == 0.0
        assert report.rerun_ratio == 0.0

    def test_invalid_iou_threshold(self):
        from repro.core import DecisionMakingUnit, MultiPrecisionPipeline

        dmu = DecisionMakingUnit(np.ones(10), 0.0)
        pipeline = MultiPrecisionPipeline(_OracleBNN(), dmu, _StubHost())
        with pytest.raises(ValueError):
            VideoCascade(pipeline, iou_threshold=0.0)

    def test_frame_result_counts(self):
        video = SyntheticVideo(height=160, width=240, num_objects=2, object_size=40, seed=3)
        cascade = make_cascade()
        result = cascade.process_frame(video.next_frame())
        assert result.num_detections == len(result.boxes)
        assert result.predictions.shape[0] == result.num_detections
