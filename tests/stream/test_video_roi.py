"""Synthetic video source and ROI extraction front-end."""

import numpy as np
import pytest

from repro.stream import (
    RoiConfig,
    SyntheticVideo,
    box_iou,
    detect_rois,
    extract_patches,
    resize_bilinear,
)


class TestSyntheticVideo:
    def test_frame_geometry(self):
        video = SyntheticVideo(height=120, width=160, num_objects=2, object_size=32, seed=0)
        frame = video.next_frame()
        assert frame.pixels.shape == (3, 120, 160)
        assert frame.pixels.min() >= 0 and frame.pixels.max() <= 1
        assert len(frame.boxes) == 2 and len(frame.labels) == 2

    def test_objects_move(self):
        video = SyntheticVideo(height=120, width=160, num_objects=1, object_size=32, seed=1)
        a = video.next_frame().boxes[0]
        b = video.next_frame().boxes[0]
        assert a != b

    def test_boxes_stay_inside_frame(self):
        video = SyntheticVideo(height=100, width=100, num_objects=2, object_size=32, seed=2)
        for frame in video.frames(50):
            for y0, x0, y1, x1 in frame.boxes:
                assert 0 <= y0 < y1 <= 100
                assert 0 <= x0 < x1 <= 100

    def test_frame_indices_sequential(self):
        video = SyntheticVideo(seed=0)
        indices = [f.index for f in video.frames(5)]
        assert indices == [0, 1, 2, 3, 4]

    def test_labels_valid(self):
        video = SyntheticVideo(num_objects=4, seed=3)
        frame = video.next_frame()
        assert all(0 <= l < 10 for l in frame.labels)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SyntheticVideo(height=20, width=100, object_size=48)
        with pytest.raises(ValueError):
            SyntheticVideo(num_objects=0)
        with pytest.raises(ValueError):
            list(SyntheticVideo(seed=0).frames(0))


class TestResize:
    def test_identity_size(self):
        img = np.random.default_rng(0).random((3, 16, 16))
        out = resize_bilinear(img, 16, 16)
        np.testing.assert_allclose(out, img, atol=1e-12)

    def test_constant_preserved(self):
        img = np.full((3, 40, 50), 0.7)
        out = resize_bilinear(img, 32, 32)
        np.testing.assert_allclose(out, np.full((3, 32, 32), 0.7))

    def test_downscale_shape(self):
        img = np.random.default_rng(1).random((3, 48, 48))
        assert resize_bilinear(img, 32, 32).shape == (3, 32, 32)

    def test_upscale_range(self):
        img = np.random.default_rng(2).random((3, 8, 8))
        out = resize_bilinear(img, 32, 32)
        assert out.min() >= img.min() - 1e-9 and out.max() <= img.max() + 1e-9

    def test_invalid(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((3, 4, 4)), 0, 4)
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((4, 4)), 4, 4)


class TestDetectRois:
    def test_finds_planted_objects(self):
        video = SyntheticVideo(height=160, width=240, num_objects=2, object_size=40, seed=0)
        frame = video.next_frame()
        boxes = detect_rois(frame.pixels)
        for truth in frame.boxes:
            assert any(box_iou(truth, b) >= 0.3 for b in boxes)

    def test_plain_background_no_boxes(self):
        frame = np.full((3, 100, 100), 0.5)
        assert detect_rois(frame) == []

    def test_max_boxes_respected(self):
        video = SyntheticVideo(height=200, width=300, num_objects=4, object_size=40, seed=1)
        cfg = RoiConfig(max_boxes=2)
        boxes = detect_rois(video.next_frame().pixels, cfg)
        assert len(boxes) <= 2

    def test_invalid_frame(self):
        with pytest.raises(ValueError):
            detect_rois(np.zeros((100, 100)))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RoiConfig(blur_size=4)
        with pytest.raises(ValueError):
            RoiConfig(threshold=0.0)
        with pytest.raises(ValueError):
            RoiConfig(pad=-1)


class TestExtractPatches:
    def test_shapes(self):
        frame = np.random.default_rng(0).random((3, 100, 100))
        patches = extract_patches(frame, [(0, 0, 50, 50), (20, 20, 60, 80)], out_size=32)
        assert patches.shape == (2, 3, 32, 32)

    def test_empty_boxes(self):
        frame = np.zeros((3, 50, 50))
        assert extract_patches(frame, []).shape == (0, 3, 32, 32)

    def test_degenerate_box_rejected(self):
        frame = np.zeros((3, 50, 50))
        with pytest.raises(ValueError):
            extract_patches(frame, [(10, 10, 10, 20)])


class TestBoxIoU:
    def test_identical(self):
        assert box_iou((0, 0, 10, 10), (0, 0, 10, 10)) == pytest.approx(1.0)

    def test_disjoint(self):
        assert box_iou((0, 0, 10, 10), (20, 20, 30, 30)) == 0.0

    def test_half_overlap(self):
        assert box_iou((0, 0, 10, 10), (0, 5, 10, 15)) == pytest.approx(1 / 3)
