"""CLI experiment runner (analytical experiments only — no training)."""

import pytest

from repro.cli import EXPERIMENTS, TRAIN_BUDGETS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "table5" in out

    def test_analytic_experiment(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_multiple_experiments(self, capsys):
        assert main(["fig3", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out and "Fig. 4" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_budgets_defined(self):
        assert set(TRAIN_BUDGETS) == {"micro", "bench", "full"}
        assert TRAIN_BUDGETS["micro"].num_train < TRAIN_BUDGETS["full"].num_train

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig3", "fig4", "fig5", "table2",
            "table3", "table4", "table5", "ablations",
        }

    def test_ablations_runner(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "batch size" in out and "Eq. (1)" in out


class TestTraceCommand:
    def test_trace_runs_and_writes_artifacts(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        summary_path = tmp_path / "summary.json"
        assert main([
            "trace", "--requests", "48", "--scale", "0.1",
            "--host-scale", "0.15", "--batch-size", "16",
            "--output", str(trace_path), "--summary-json", str(summary_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Eq. (1) overlap check" in out
        assert "Eqs. (3)-(5)" in out
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "serve.bnn" in names and "serve.host" in names
        summary = json.loads(summary_path.read_text())
        assert summary["completed"] == 48
        assert "serve.bnn" in summary["summary"]["spans"]

    def test_trace_skip_output(self, capsys):
        assert main(["trace", "--requests", "32", "--scale", "0.1",
                     "--host-scale", "0.15", "--output", "-"]) == 0
        assert "span summary" in capsys.readouterr().out

    def test_trace_rejects_bad_args(self):
        with pytest.raises(SystemExit):
            main(["trace", "--requests", "0"])
        with pytest.raises(SystemExit):
            main(["trace", "--target-rerun", "1.5"])


class TestFutureWork:
    def test_armv8_projection_improves_everything(self):
        from repro.experiments.future_work import run_armv8_projection

        rows = run_armv8_projection()
        for r in rows:
            assert r.host_speedup > 2.0
            assert r.a53_cascade_fps > r.a9_cascade_fps

    def test_mixed_precision_sweep_shape(self):
        from repro.experiments.future_work import run_mixed_precision_sweep

        rows = run_mixed_precision_sweep()
        by_label = {r.label: r for r in rows}
        # Higher precision can never be cheaper in BRAM at equal target.
        assert by_label["W1A1"].bram_pct < by_label["W2A2"].bram_pct
        assert by_label["W2A2"].bram_pct < by_label["W8A8"].bram_pct
        # The fully binarised design fits the device; 8-bit does not.
        assert by_label["W1A1"].fits_device
        assert not by_label["W8A8"].fits_device

    def test_format_helpers(self):
        from repro.experiments.future_work import (
            format_armv8,
            format_mixed_precision,
            run_armv8_projection,
            run_mixed_precision_sweep,
        )

        assert "ARMv8" in format_armv8(run_armv8_projection())
        assert "mixed-precision" in format_mixed_precision(run_mixed_precision_sweep())
