"""Regression: corrupt ``.workbench_cache`` entries must mean retrain, not crash.

The seed repository shipped truncated ``.npz`` blobs that made every
cache load raise ``zipfile.BadZipFile`` before a single test ran.  These
tests pre-seed a cache directory with each corruption mode the loaders
must survive — truncated zip, empty file, wrong keys — across all three
loader paths (``_load_net``, ``_scores_for``, the ``dmu`` property) and
assert ``prepare_all`` silently retrains and rewrites valid entries.
"""

import numpy as np
import pytest

from repro.experiments import Workbench, WorkbenchConfig

TINY_CONFIG = WorkbenchConfig(
    num_train=80,
    num_test=40,
    bnn_scale=0.1,
    host_scale=0.15,
    bnn_epochs=1,
    host_epochs=1,
)

TRUNCATED_NPZ = b"PK\x03\x04this is not a complete zip archive"


def corrupt_cache(cache_dir):
    """One corruption mode per loader path."""
    cache_dir.mkdir(parents=True, exist_ok=True)
    (cache_dir / "finn_cnv.npz").write_bytes(TRUNCATED_NPZ)        # _load_net: bad zip
    (cache_dir / "model_a.npz").write_bytes(b"")                   # _load_net: empty file
    np.savez(cache_dir / "model_b.npz", wrong_key=np.zeros(3))     # _load_net: missing keys
    (cache_dir / "scores_train.npz").write_bytes(TRUNCATED_NPZ)    # _scores_for: bad zip
    np.savez(cache_dir / "scores_test.npz", wrong_key=np.zeros(3)) # _scores_for: missing key
    np.savez(cache_dir / "dmu.npz", weights=np.zeros(10))          # dmu: missing 'bias'


class TestCacheRepair:
    def test_prepare_all_recovers_from_corrupt_cache(self, tmp_path):
        workbench = Workbench(TINY_CONFIG, cache_dir=tmp_path)
        corrupt_cache(workbench.cache_dir)

        workbench.prepare_all()  # must retrain everything, not raise

        assert 0.0 <= workbench.bnn_accuracy <= 1.0
        assert 0.0 <= workbench.host_accuracy("model_a") <= 1.0
        assert workbench.dmu.weights.shape == (10,)
        assert len(workbench.train_scores) == TINY_CONFIG.num_train
        assert len(workbench.test_scores) == TINY_CONFIG.num_test

        # The corrupt entries were replaced by loadable artefacts ...
        for name in ("finn_cnv", "model_a", "model_b", "scores_train", "scores_test", "dmu"):
            with np.load(workbench.cache_dir / f"{name}.npz") as data:
                assert data.files, name

        # ... which a fresh workbench now loads (same artefacts, no retrain).
        reloaded = Workbench(TINY_CONFIG, cache_dir=tmp_path)
        assert reloaded.bnn_accuracy == pytest.approx(workbench.bnn_accuracy)
        np.testing.assert_array_equal(reloaded.dmu.weights, workbench.dmu.weights)

    def test_dmu_truncated_zip_is_also_a_miss(self, tmp_path):
        workbench = Workbench(TINY_CONFIG, cache_dir=tmp_path)
        workbench.cache_dir.mkdir(parents=True, exist_ok=True)
        (workbench.cache_dir / "dmu.npz").write_bytes(TRUNCATED_NPZ)
        dmu = workbench.dmu  # trains BNN + scores + DMU from scratch
        assert dmu.weights.shape == (10,)
        assert np.isfinite(dmu.bias)
