"""Seeded workbench runs are bit-identical; cache keys hash the right fields."""

import numpy as np

from repro.data import normalize_to_pm1
from repro.experiments import Workbench, WorkbenchConfig

TINY_CONFIG = WorkbenchConfig(
    num_train=80,
    num_test=40,
    bnn_scale=0.1,
    host_scale=0.15,
    bnn_epochs=1,
    host_epochs=1,
)


def bnn_artifacts(cache_dir):
    """(test-set class scores, DMU weights, DMU bias) of a fresh run."""
    workbench = Workbench(TINY_CONFIG, cache_dir=cache_dir)
    scores = workbench.folded_bnn.class_scores(
        normalize_to_pm1(workbench.splits.test.images)
    )
    dmu = workbench.dmu
    return scores, dmu.weights.copy(), dmu.bias


class TestSeedDeterminism:
    def test_same_seed_fresh_caches_identical_bnn_and_dmu(self, tmp_path):
        scores_a, weights_a, bias_a = bnn_artifacts(tmp_path / "run_a")
        scores_b, weights_b, bias_b = bnn_artifacts(tmp_path / "run_b")
        np.testing.assert_array_equal(scores_a, scores_b)
        np.testing.assert_array_equal(
            scores_a.argmax(axis=1), scores_b.argmax(axis=1)
        )
        np.testing.assert_array_equal(weights_a, weights_b)
        assert bias_a == bias_b


class TestCacheKey:
    def test_insensitive_to_threshold_metadata(self):
        base = WorkbenchConfig()
        assert base.cache_key() == WorkbenchConfig(dmu_threshold=0.5).cache_key()
        assert base.cache_key() == WorkbenchConfig(target_rerun_ratio=0.25).cache_key()
        assert (
            base.cache_key()
            == WorkbenchConfig(dmu_threshold=0.1, target_rerun_ratio=0.9).cache_key()
        )

    def test_sensitive_to_training_fields(self):
        base = WorkbenchConfig()
        assert base.cache_key() != WorkbenchConfig(seed=1).cache_key()
        assert base.cache_key() != WorkbenchConfig(num_train=base.num_train + 1).cache_key()
        assert base.cache_key() != WorkbenchConfig(bnn_epochs=base.bnn_epochs + 1).cache_key()
