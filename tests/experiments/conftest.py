"""Micro workbench for experiment-layer unit tests.

Tiny data and epoch budgets: these tests validate *structure and wiring*
of the experiment runners, not reproduction quality (that is the
benchmark harness's job, on a bigger budget).  Cached on disk so repeat
test runs skip training.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import Workbench, WorkbenchConfig

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

MICRO_CONFIG = WorkbenchConfig(
    num_train=300,
    num_test=120,
    bnn_scale=0.1,
    host_scale=0.15,
    bnn_epochs=2,
    host_epochs=2,
)


@pytest.fixture(scope="session")
def micro_workbench() -> Workbench:
    wb = Workbench(MICRO_CONFIG, cache_dir=REPO_ROOT / ".workbench_cache")
    wb.prepare_all()
    return wb
