"""Figure chart rendering (ASCII plots of Figs. 3-5)."""

import pytest

from repro.experiments import standard_sweep
from repro.experiments.fig34 import run_fig3, run_fig4
from repro.experiments.fig5_table2 import run_fig5


@pytest.fixture(scope="module")
def points():
    return standard_sweep()


class TestFigureCharts:
    def test_fig3_chart_has_both_panels(self, points):
        chart = run_fig3(points).chart()
        assert "images/sec vs total PE count" in chart
        assert "utilization vs total PE count" in chart
        assert "expected" in chart and "obtained" in chart
        assert "BRAM_18K %" in chart and "LUT %" in chart

    def test_fig4_chart_renders(self, points):
        chart = run_fig4(points).chart()
        assert "img/s" in chart

    def test_fig5_chart_renders(self, micro_workbench):
        chart = run_fig5(micro_workbench).chart()
        assert "DMU behaviour vs Softmax threshold" in chart
        assert "threshold" in chart
