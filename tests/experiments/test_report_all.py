"""Aggregate report generation (micro workbench)."""

from repro.experiments.report_all import generate_report, write_report


class TestReportAll:
    def test_contains_every_section(self, micro_workbench):
        text = generate_report(micro_workbench)
        for heading in (
            "Table I",
            "Fig. 3",
            "Fig. 4",
            "Fig. 5",
            "Table II",
            "Table III",
            "Table IV",
            "Table V",
            "Ablations",
            "Future work",
        ):
            assert heading in text, heading

    def test_write_report(self, micro_workbench, tmp_path):
        path = write_report(micro_workbench, tmp_path / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# Reproduction report")


class TestThresholdSelection:
    def test_target_rerun_ratio_respected(self, micro_workbench):
        from repro.experiments import Workbench, WorkbenchConfig

        import dataclasses

        cfg = dataclasses.replace(micro_workbench.config, target_rerun_ratio=0.4)
        wb = Workbench(cfg, cache_dir=micro_workbench.cache_dir.parent)
        cats = wb.dmu.categorize(wb.train_scores)
        # The selected threshold's training rerun ratio is near the target
        # (exactness limited by the discrete confidence distribution).
        assert abs(cats.rerun_ratio - 0.4) < 0.15

    def test_same_weights_different_threshold(self, micro_workbench):
        import dataclasses
        import numpy as np

        from repro.experiments import Workbench

        cfg = dataclasses.replace(micro_workbench.config, target_rerun_ratio=0.7)
        wb = Workbench(cfg, cache_dir=micro_workbench.cache_dir.parent)
        np.testing.assert_allclose(wb.dmu.weights, micro_workbench.dmu.weights)
        assert wb.config.cache_key() == micro_workbench.config.cache_key()
