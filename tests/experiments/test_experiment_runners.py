"""Experiment runners: structure, wiring, and format output."""

import numpy as np
import pytest

from repro.experiments import (
    HOST_MODEL_NAMES,
    Workbench,
    WorkbenchConfig,
    chosen_configuration,
    standard_sweep,
)
from repro.experiments import fig34, fig5_table2, table1, table3, table4, table5
from repro.experiments.ablations import (
    run_balance_ablation,
    run_batch_size_sweep,
    run_dmu_variants,
    run_eq1_validation,
)


@pytest.fixture(scope="module")
def points():
    return standard_sweep()


@pytest.fixture(scope="module")
def design():
    return chosen_configuration()


class TestFinnConfig:
    def test_sweep_covers_targets(self, points):
        fps = [p.performance_naive.expected_fps for p in points]
        assert min(fps) < 150 and max(fps) > 2500

    def test_chosen_meets_anchor(self, design):
        assert design.performance_partitioned.obtained_fps >= 430 * 0.94

    def test_chosen_is_min_bram_among_feasible(self, points, design):
        feasible = [
            p for p in points
            if p.performance_partitioned.obtained_fps >= 430 * 0.94
        ]
        assert design.resources_partitioned.total_brams == min(
            p.resources_partitioned.total_brams for p in feasible
        )

    def test_impossible_anchor_raises(self):
        with pytest.raises(ValueError):
            chosen_configuration(min_fps=1e9)


class TestTable1:
    def test_rows_and_format(self, design):
        result = table1.run(design)
        assert len(result.rows) == 9
        text = result.format()
        assert "conv1" in text and "fc3" in text
        assert "Table I" in text


class TestFig34:
    def test_fig3_rows_sorted_by_pe(self, points):
        rows = fig34.run_fig3(points).rows
        pes = [r.total_pe for r in rows]
        assert pes == sorted(pes)

    def test_fig4_bram_never_higher(self, points):
        naive = fig34.run_fig3(points).rows
        part = fig34.run_fig4(points).rows
        for n, p in zip(naive, part):
            assert p.bram_pct <= n.bram_pct + 1e-9

    def test_format_contains_units(self, points):
        assert "BRAM_18K %" in fig34.run_fig3(points).format()


class TestWorkbench:
    def test_cache_roundtrip(self, micro_workbench, tmp_path):
        # A second workbench with the same config loads from cache and
        # reproduces identical accuracies.
        wb2 = Workbench(micro_workbench.config, cache_dir=micro_workbench.cache_dir.parent)
        assert wb2.bnn_accuracy == pytest.approx(micro_workbench.bnn_accuracy)
        assert wb2.host_accuracy("model_a") == pytest.approx(
            micro_workbench.host_accuracy("model_a")
        )

    def test_cache_key_distinguishes_configs(self):
        a = WorkbenchConfig(num_train=100)
        b = WorkbenchConfig(num_train=101)
        assert a.cache_key() != b.cache_key()

    def test_unknown_host_rejected(self, micro_workbench):
        with pytest.raises(KeyError):
            micro_workbench.host_net("resnet")

    def test_score_datasets_align(self, micro_workbench):
        assert len(micro_workbench.train_scores) == micro_workbench.config.num_train
        assert len(micro_workbench.test_scores) == micro_workbench.config.num_test

    def test_bnn_accuracy_above_chance(self, micro_workbench):
        assert micro_workbench.bnn_accuracy > 0.15  # 10-class chance = 0.1


class TestFig5Table2:
    def test_fig5_structure(self, micro_workbench):
        result = fig5_table2.run_fig5(micro_workbench)
        assert len(result.categories) == len(result.thresholds)
        assert "Fig. 5" in result.format()

    def test_table2_structure(self, micro_workbench):
        result = fig5_table2.run_table2(micro_workbench)
        assert result.train.threshold == micro_workbench.config.dmu_threshold
        assert "Table II" in result.format()


class TestTable3:
    def test_structure(self):
        result = table3.run()
        assert {r.model for r in result.rows} == {"Model A", "Model B", "Model C"}
        assert "Table III" in result.format()


class TestTable4:
    def test_structure(self, micro_workbench, design):
        result = table4.run(micro_workbench, design)
        assert len(result.rows) == 4
        a = result.row("Model A")
        assert a.images_per_second == pytest.approx(29.68, abs=0.01)
        assert 0 < a.accuracy <= 1
        with pytest.raises(KeyError):
            result.row("Model Z")
        assert "Table IV" in result.format()


class TestTable5:
    def test_structure(self, micro_workbench, design):
        result = table5.run(micro_workbench, design)
        assert {r.model for r in result.rows} == {"Model A", "Model B", "Model C"}
        for row in result.rows:
            assert 0 <= row.rerun_ratio <= 1
            assert row.images_per_second > 0
            # Simulated rate never beats the Eq. (1) bound.
            assert row.images_per_second <= row.eq1_images_per_second * 1.01
        assert "Table V" in result.format()


class TestAblations:
    def test_batch_size_rows(self):
        rows = run_batch_size_sweep(num_images=800, batch_sizes=(50, 100, 200))
        assert [r.batch_size for r in rows] == [50, 100, 200]
        lat = [r.average_batch_latency for r in rows]
        assert lat == sorted(lat)

    def test_eq1_rows(self):
        rows = run_eq1_validation(num_images=1000, rerun_ratios=(0.0, 0.5, 1.0))
        assert all(r.relative_error >= -1e-9 for r in rows)

    def test_dmu_variants(self, micro_workbench):
        rows = run_dmu_variants(micro_workbench)
        assert len(rows) == 3
        assert all(0 <= r.dmu_accuracy <= 1 for r in rows)

    def test_balance_ablation(self):
        result = run_balance_ablation()
        assert result.speedup > 1.0
        assert result.uniform_total_pe > 0
