"""Multi-tenant serving: DRR pool scheduling, quotas, per-tenant books."""

import threading
from unittest import mock

import numpy as np
import pytest

from repro.core import DecisionMakingUnit
from repro.serve import (
    CascadeServer,
    MultiTenantServer,
    SharedHostPool,
    TenantQuotaExceeded,
    TenantSpec,
    UnknownTenant,
)
from repro.serve.tenancy import _Work

NUM_CLASSES = 10


def make_dmu(threshold: float = 0.7) -> DecisionMakingUnit:
    weights = np.zeros(NUM_CLASSES)
    weights[0], weights[1] = 4.0, -4.0
    return DecisionMakingUnit(weights, bias=0.0, threshold=threshold)


def make_images(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, NUM_CLASSES, 1, 1))


def scores_fn(images: np.ndarray) -> np.ndarray:
    return images.reshape(len(images), NUM_CLASSES)


def neg_scores_fn(images: np.ndarray) -> np.ndarray:
    return -images.reshape(len(images), NUM_CLASSES)


def host_fn(images: np.ndarray) -> np.ndarray:
    return (images.reshape(len(images), NUM_CLASSES).argmax(axis=1) + 1) % NUM_CLASSES


def shifted_host_fn(images: np.ndarray) -> np.ndarray:
    return (images.reshape(len(images), NUM_CLASSES).argmax(axis=1) + 5) % NUM_CLASSES


def spec(name: str, **kwargs) -> TenantSpec:
    kwargs.setdefault("bnn_scores_fn", scores_fn)
    kwargs.setdefault("dmu", make_dmu())
    kwargs.setdefault("host_predict_fn", host_fn)
    kwargs.setdefault(
        "server_kwargs", {"batch_delay_s": 0.001, "host_queue_capacity": 256}
    )
    return TenantSpec(name=name, **kwargs)


# -- the DRR decision rule, without dispatcher threads ------------------------

def scheduler_only(**kwargs) -> SharedHostPool:
    """A pool whose lanes exit immediately: _next_work is ours to drive."""
    with mock.patch.object(SharedHostPool, "_lane_loop", lambda self: None):
        return SharedHostPool(**kwargs)


def enqueue(pool: SharedHostPool, name: str, cost_s: float) -> None:
    with pool._lock:
        pool._tenants[name].queue.append(_Work(np.zeros((1, 4)), cost_s=cost_s))


def drain(pool: SharedHostPool, n: int) -> list[str]:
    picks = []
    with pool._lock:
        for _ in range(n):
            picked = pool._next_work()
            if picked is None:
                break
            picks.append(picked[0].name)
    return picks


class TestDeficitRoundRobin:
    def test_weights_set_the_service_ratio(self):
        # Equal per-item cost, weight 2:1 -> tenant a is served twice as
        # often; the exact cycle is a, a, c.
        pool = scheduler_only(lanes=1, quantum_s=0.5)
        pool.register("a", host_fn, weight=2.0)
        pool.register("c", host_fn, weight=1.0)
        for _ in range(6):
            enqueue(pool, "a", 1.0)
            enqueue(pool, "c", 1.0)
        assert drain(pool, 9) == ["a", "a", "c"] * 3

    def test_cost_equalises_host_seconds_not_item_counts(self):
        # Equal weights but tenant a's items cost 4x: a is served once
        # per four c items, so host-seconds still divide evenly.
        pool = scheduler_only(lanes=1, quantum_s=1.0)
        pool.register("a", host_fn, weight=1.0)
        pool.register("c", host_fn, weight=1.0)
        for _ in range(3):
            enqueue(pool, "a", 4.0)
        for _ in range(12):
            enqueue(pool, "c", 1.0)
        picks = drain(pool, 5)
        assert picks == ["c", "c", "c", "c", "a"]

    def test_idle_tenant_banks_no_credit(self):
        pool = scheduler_only(lanes=1, quantum_s=1.0)
        pool.register("a", host_fn)
        pool.register("c", host_fn)
        with pool._lock:
            pool._tenants["a"].deficit = 50.0  # stale credit, empty queue
        enqueue(pool, "c", 1.0)
        assert drain(pool, 1) == ["c"]
        assert pool.stats()["a"].deficit == 0.0

    def test_blocked_tenant_deficit_is_capped(self):
        # A tenant stuck behind one huge item can accrue at most its
        # head cost plus one weighted quantum, however long it waits.
        pool = scheduler_only(lanes=1, quantum_s=1.0)
        pool.register("a", host_fn, weight=1.0)
        pool.register("c", host_fn, weight=1.0)
        enqueue(pool, "a", 100.0)
        for _ in range(30):
            enqueue(pool, "c", 1.0)
        drain(pool, 30)
        assert pool.stats()["a"].deficit <= 100.0 + pool.quantum_s

    def test_empty_pool_returns_none(self):
        pool = scheduler_only(lanes=1)
        pool.register("a", host_fn)
        assert drain(pool, 1) == []


class TestSharedHostPool:
    def test_handle_executes_and_accounts(self):
        with SharedHostPool(lanes=1) as pool:
            handle = pool.register("a", host_fn, cost_s_per_image=0.5)
            images = make_images(4)
            labels = handle(images)
            np.testing.assert_array_equal(labels, host_fn(images))
            stats = pool.stats()["a"]
            assert stats.scheduled == 1
            assert stats.images_executed == 4
            assert stats.busy_seconds >= 0.0
            # The EWMA pulled the seeded 0.5 s/img toward the measured
            # sub-millisecond truth.
            assert stats.cost_s_per_image < 0.5

    def test_tenant_exception_is_contained(self):
        def broken(images):
            raise ValueError("model a is broken")

        with SharedHostPool(lanes=1) as pool:
            bad = pool.register("a", broken)
            good = pool.register("c", host_fn)
            with pytest.raises(ValueError, match="model a is broken"):
                bad(make_images(2))
            np.testing.assert_array_equal(
                good(make_images(2, seed=1)), host_fn(make_images(2, seed=1))
            )

    def test_duplicate_registration_rejected(self):
        with SharedHostPool(lanes=1) as pool:
            pool.register("a", host_fn)
            with pytest.raises(ValueError, match="already registered"):
                pool.register("a", host_fn)

    def test_close_strands_queued_work_and_rejects_new(self):
        pool = scheduler_only(lanes=1)
        pool.register("a", host_fn)
        enqueue(pool, "a", 1.0)
        stranded = pool._tenants["a"].queue[0]
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            stranded.future.result(timeout=1.0)
        with pytest.raises(RuntimeError, match="closed"):
            pool.register("b", host_fn)

    def test_rejects_bad_config(self):
        for kwargs in (
            {"lanes": 0},
            {"quantum_s": 0.0},
            {"max_pending": 0},
            {"ewma_alpha": 0.0},
        ):
            with pytest.raises(ValueError):
                SharedHostPool(**kwargs)


class TestTenantSpecValidation:
    def test_rejects_bad_specs(self):
        for kwargs in (
            {"name": ""},
            {"weight": 0.0},
            {"quota": 0},
            {"cost_s_per_image": 0.0},
        ):
            with pytest.raises(ValueError):
                spec(kwargs.pop("name", "a"), **kwargs)

    def test_server_rejects_bad_rosters(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiTenantServer([])
        with pytest.raises(ValueError, match="unique"):
            MultiTenantServer([spec("a"), spec("a")])


class TestMultiTenantServer:
    def make_server(self, **kwargs) -> MultiTenantServer:
        kwargs.setdefault(
            "tenants",
            [
                spec("model-a"),
                spec(
                    "model-c",
                    bnn_scores_fn=neg_scores_fn,
                    host_predict_fn=shifted_host_fn,
                ),
            ],
        )
        kwargs.setdefault("lanes", 2)
        kwargs.setdefault("cache_max_bytes", 1 << 20)
        return MultiTenantServer(**kwargs)

    def test_unknown_tenant_is_rejected_unbooked(self):
        with self.make_server() as server:
            with pytest.raises(UnknownTenant):
                server.submit(make_images(1)[0], tenant="nope")
            assert server.snapshot().submitted == 0

    def test_default_tenant_is_the_first_registered(self):
        with self.make_server() as server:
            img = make_images(1, seed=3)[0]
            default = server.submit(img).result(timeout=10.0)
            named = server.submit(img, tenant="model-a").result(timeout=10.0)
            assert (default.prediction, default.bnn_prediction) == (
                named.prediction, named.bnn_prediction
            )
            assert server.tenant_snapshot("model-a").metrics.submitted == 2
            assert server.tenant_snapshot("model-c").metrics.submitted == 0

    def test_namespacing_keeps_tenant_answers_apart(self):
        # Same pixels, two models: the shared cache must never leak
        # model-a's answer to model-c.
        with self.make_server() as server:
            img = make_images(1, seed=4)[0]
            a1 = server.submit(img, tenant="model-a").result(timeout=10.0)
            c1 = server.submit(img, tenant="model-c").result(timeout=10.0)
            assert (a1.prediction, a1.bnn_prediction) != (
                c1.prediction, c1.bnn_prediction
            )
            # Repeats are cache-served and bit-identical per tenant.
            a2 = server.submit(img, tenant="model-a").result(timeout=10.0)
            c2 = server.submit(img, tenant="model-c").result(timeout=10.0)
            assert a2.source == "cache" and c2.source == "cache"
            assert (a2.prediction, a2.bnn_prediction, a2.confidence) == (
                a1.prediction, a1.bnn_prediction, a1.confidence
            )
            assert (c2.prediction, c2.bnn_prediction, c2.confidence) == (
                c1.prediction, c1.bnn_prediction, c1.confidence
            )

    def test_quota_rejection_books_nothing(self):
        gate = threading.Event()

        def gated_scores(images):
            gate.wait(timeout=10.0)
            return scores_fn(images)

        roster = [spec("model-a", bnn_scores_fn=gated_scores, quota=2)]
        with MultiTenantServer(roster, cache_max_bytes=0) as server:
            imgs = make_images(3, seed=5)
            futures = [server.submit(imgs[0]), server.submit(imgs[1])]
            with pytest.raises(TenantQuotaExceeded):
                server.submit(imgs[2])
            snap = server.tenant_snapshot("model-a")
            assert snap.rejected == 1
            assert snap.in_flight == 2
            assert snap.metrics.submitted == 2  # the rejection left no trace
            gate.set()
            for f in futures:
                f.result(timeout=10.0)
            snap = server.tenant_snapshot("model-a")
            assert snap.in_flight == 0
            assert snap.balanced
            # Freed quota admits again.
            server.submit(imgs[2]).result(timeout=10.0)

    def test_books_balance_across_tenants_under_load(self):
        with self.make_server() as server:
            imgs = make_images(12, seed=6)
            futures = []
            for i, img in enumerate(imgs):
                tenant = "model-a" if i % 2 == 0 else "model-c"
                futures.append(server.submit(img, tenant=tenant))
                if i % 3 == 0:  # duplicate pressure on both tenants
                    futures.append(server.submit(img, tenant=tenant))
            for f in futures:
                f.result(timeout=10.0)
            snap = server.snapshot()
        assert snap.balanced
        assert snap.submitted == len(futures)
        assert snap.cache is not None and snap.cache.balanced
        hits = sum(t.metrics.cache_hits for t in snap.tenants.values())
        assert hits == len(futures) - 12
        for name in ("model-a", "model-c"):
            assert snap.tenants[name].pool.images_executed >= 0

    def test_classify_many_routes_one_tenant(self):
        with self.make_server() as server:
            results = server.classify_many(
                make_images(4, seed=7), tenant="model-c", timeout=10.0
            )
            assert len(results) == 4
            assert server.tenant_snapshot("model-c").metrics.submitted == 4

    def test_cache_disabled_serves_cold_every_time(self):
        roster = [spec("model-a")]
        with MultiTenantServer(roster, cache_max_bytes=0) as server:
            assert server.cache is None
            img = make_images(1, seed=8)[0]
            first = server.submit(img).result(timeout=10.0)
            second = server.submit(img).result(timeout=10.0)
            assert second.source != "cache"
            assert (second.prediction, second.bnn_prediction) == (
                first.prediction, first.bnn_prediction
            )
            snap = server.snapshot()
            assert snap.cache is None
            assert snap.balanced

    def test_tenant_servers_share_one_pool(self):
        with self.make_server() as server:
            for t in server._tenants.values():
                assert isinstance(t.server, CascadeServer)
            assert set(server.pool.stats()) == {"model-a", "model-c"}
            assert server.tenant_names == ("model-a", "model-c")
