"""Adaptive threshold controller: convergence, clamping, overload backoff."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.serve import AdaptiveThresholdController


def margin_confidences(rng: np.random.Generator, n: int) -> np.ndarray:
    """Confidence population of the serve-bench DMU: sigmoid(4 * margin)."""
    scores = np.sort(rng.normal(size=(n, 10)), axis=1)
    return F.sigmoid(4.0 * (scores[:, -1] - scores[:, -2]))


class TestConvergence:
    @pytest.mark.parametrize("target", [0.2, 0.5])
    def test_holds_rerun_ratio_at_target(self, target):
        rng = np.random.default_rng(0)
        controller = AdaptiveThresholdController(
            initial_threshold=0.97, target_rerun_ratio=target, gain=0.08
        )
        ratios = []
        for _ in range(400):
            confidence = margin_confidences(rng, 64)
            rerun = int((confidence < controller.threshold).sum())
            controller.observe(total=64, rerun=rerun)
            ratios.append(rerun / 64)
        steady = float(np.mean(ratios[-100:]))
        assert abs(steady - target) < 0.05
        assert abs(controller.observed_rerun_ratio - target) < 0.05

    def test_zero_gain_is_static(self):
        controller = AdaptiveThresholdController(
            initial_threshold=0.8, target_rerun_ratio=0.3, gain=0.0, overload_backoff=0.0
        )
        for _ in range(50):
            controller.observe(total=32, rerun=32)
        assert controller.threshold == 0.8

    def test_threshold_stays_clamped(self):
        controller = AdaptiveThresholdController(
            initial_threshold=0.5, target_rerun_ratio=1.0, gain=5.0,
            min_threshold=0.1, max_threshold=0.9,
        )
        for _ in range(20):
            controller.observe(total=10, rerun=0)   # far below target -> push up
        assert controller.threshold == 0.9
        controller = AdaptiveThresholdController(
            initial_threshold=0.5, target_rerun_ratio=0.0, gain=5.0,
            min_threshold=0.1, max_threshold=0.9,
        )
        for _ in range(20):
            controller.observe(total=10, rerun=10)  # far above target -> push down
        assert controller.threshold == 0.1


class TestOverloadBackoff:
    def test_degradation_pushes_threshold_below_no_overload_case(self):
        def run(degraded: int) -> float:
            controller = AdaptiveThresholdController(
                initial_threshold=0.8, target_rerun_ratio=0.3, gain=0.05,
                overload_backoff=0.3,
            )
            for _ in range(30):
                controller.observe(total=32, rerun=10, degraded=degraded)
            return controller.threshold

        assert run(degraded=8) < run(degraded=0)


class TestValidation:
    def test_constructor_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            AdaptiveThresholdController(initial_threshold=1.5)
        with pytest.raises(ValueError):
            AdaptiveThresholdController(target_rerun_ratio=-0.1)
        with pytest.raises(ValueError):
            AdaptiveThresholdController(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveThresholdController(gain=-1.0)
        with pytest.raises(ValueError):
            AdaptiveThresholdController(min_threshold=0.8, max_threshold=0.2)

    def test_observe_validates_counts(self):
        controller = AdaptiveThresholdController()
        with pytest.raises(ValueError):
            controller.observe(total=10, rerun=11)
        with pytest.raises(ValueError):
            controller.observe(total=10, rerun=5, degraded=6)

    def test_observe_empty_batch_is_a_noop(self):
        controller = AdaptiveThresholdController(initial_threshold=0.7)
        assert controller.observe(total=0, rerun=0) == 0.7
        assert controller.observations == 0
