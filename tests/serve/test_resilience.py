"""Unit tests for repro.serve.resilience: RetryPolicy + CircuitBreaker."""

import random

import pytest

from repro.serve import CircuitBreaker, RetryPolicy
from repro.serve.resilience import DeadlineExceeded, ServerClosed, StageFailure


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(ServerClosed, RuntimeError)
        assert issubclass(DeadlineExceeded, TimeoutError)
        assert issubclass(StageFailure, RuntimeError)

    def test_stage_failure_carries_stage_and_cause(self):
        cause = ValueError("boom")
        exc = StageFailure("host", cause)
        assert exc.stage == "host"
        assert exc.__cause__ is cause
        assert "host" in str(exc)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.5, max_delay_s=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(-1)

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.05, jitter=0.0)
        assert policy.backoff_s(0) == pytest.approx(0.01)
        assert policy.backoff_s(1) == pytest.approx(0.02)
        assert policy.backoff_s(2) == pytest.approx(0.04)
        assert policy.backoff_s(3) == pytest.approx(0.05)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.05)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.1, jitter=0.5)
        rng = random.Random(7)
        delays = [policy.backoff_s(0, rng) for _ in range(200)]
        assert all(0.05 <= d <= 0.15 for d in delays)
        assert len(set(delays)) > 1  # actually jittered

    def test_no_rng_means_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.1, jitter=0.5)
        assert policy.backoff_s(0) == pytest.approx(0.1)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)

    def test_opens_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_half_open_after_cooldown_limits_probes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=10.0, half_open_probes=1, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # concurrent probes rejected

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert breaker.trips == 1

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        clock.advance(0.5)
        assert not breaker.allow()  # cooldown restarted at reopen
        clock.advance(0.6)
        assert breaker.allow()

    def test_on_transition_fires_once_per_edge_outside_lock(self):
        clock = FakeClock()
        seen = []

        def listener(state):
            # Re-entering the breaker from the callback must not deadlock —
            # proof the callback runs outside the breaker lock.
            _ = breaker.trips
            seen.append(state)

        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_s=1.0, clock=clock, on_transition=listener
        )
        breaker.record_failure()
        breaker.record_failure()   # -> open
        clock.advance(1.0)
        breaker.allow()            # -> half_open (refresh), probe admitted
        breaker.record_success()   # -> closed
        assert seen == ["open", "half_open", "closed"]

    def test_success_in_closed_state_emits_no_transition(self):
        seen = []
        breaker = CircuitBreaker(clock=FakeClock(), on_transition=seen.append)
        breaker.record_success()
        breaker.record_success()
        assert seen == []
