"""Serving metrics facade and its Eq. (1) bridge into repro.hetero."""

import pytest

from repro.hetero import AnalyticComparison, compare_serving_with_eq1
from repro.serve import MetricsSnapshot, ServerMetrics


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clocked():
    clock = FakeClock()
    return clock, ServerMetrics(clock=clock)


class TestStages:
    def test_observe_aggregates_latency(self, clocked):
        _, metrics = clocked
        metrics.observe_stage("bnn", 0.2, count=10)
        metrics.observe_stage("bnn", 0.4, count=10)
        stage = metrics.snapshot().stages["bnn"]
        assert stage.count == 20
        assert stage.total_seconds == pytest.approx(0.6)
        assert stage.max_seconds == pytest.approx(0.4)
        assert stage.mean_seconds == pytest.approx(0.03)


class TestQueues:
    def test_depth_gauge_tracks_maximum(self, clocked):
        _, metrics = clocked
        metrics.register_queue("host", capacity=8)
        for depth in (3, 7, 2):
            metrics.set_queue_depth("host", depth)
        q = metrics.snapshot().queues["host"]
        assert (q.capacity, q.depth, q.max_depth) == (8, 2, 7)


class TestDecisions:
    def test_counters_and_ratios(self, clocked):
        clock, metrics = clocked
        metrics.record_decisions(accepted=60, rerun=30, degraded=10)
        clock.now = 2.0
        snap = metrics.snapshot()
        assert snap.completed == 100
        assert snap.rerun_ratio == pytest.approx(0.3)
        assert snap.degraded_ratio == pytest.approx(0.1)
        assert snap.images_per_second == pytest.approx(50.0)
        assert snap.seconds_per_image == pytest.approx(0.02)

    def test_empty_snapshot_is_well_defined(self, clocked):
        _, metrics = clocked
        snap = metrics.snapshot()
        assert snap.completed == 0
        assert snap.rerun_ratio == 0.0
        assert snap.images_per_second == 0.0
        assert snap.seconds_per_image == float("inf")

    def test_threshold_trajectory_records_every_update(self, clocked):
        _, metrics = clocked
        for t in (0.9, 0.8, 0.7):
            metrics.record_threshold(t)
        snap = metrics.snapshot()
        assert snap.threshold == 0.7
        assert snap.threshold_trajectory == (0.9, 0.8, 0.7)

    def test_since_windows_counters_and_wall_clock(self, clocked):
        clock, metrics = clocked
        metrics.record_decisions(accepted=50, rerun=50)
        clock.now = 1.0
        earlier = metrics.snapshot()
        metrics.record_decisions(accepted=90, rerun=10)
        clock.now = 2.0
        window = metrics.snapshot().since(earlier)
        assert window.completed == 100
        assert window.rerun_ratio == pytest.approx(0.1)
        assert window.wall_seconds == pytest.approx(1.0)
        assert window.images_per_second == pytest.approx(100.0)


class TestRobustnessCounters:
    def test_fault_retry_deadline_failure_counters(self, clocked):
        _, metrics = clocked
        metrics.record_submitted(10)
        metrics.record_fault("host")
        metrics.record_fault("host")
        metrics.record_fault("bnn")
        metrics.record_retry(3)
        metrics.record_deadline_miss(2)
        metrics.record_failure(1)
        metrics.record_decisions(accepted=5, rerun=2, degraded=2)
        snap = metrics.snapshot()
        assert snap.submitted == 10
        assert snap.faults == {"host": 2, "bnn": 1}
        assert snap.fault_total == 3
        assert snap.retries == 3
        assert snap.deadline_missed == 2
        assert snap.failed == 1
        assert snap.completed == 9
        assert snap.terminal == 10
        assert snap.in_flight == 0
        assert snap.answered == 9

    def test_cache_hits_balance_the_books(self, clocked):
        # accepted + rerun + degraded + cache_hits + failed == submitted:
        # a cache-served answer is a terminal state of its own, counted
        # toward completed but never toward the stage decisions.
        _, metrics = clocked
        metrics.record_submitted(10)
        metrics.record_decisions(accepted=4, rerun=2, degraded=1)
        metrics.record_cache_hit(2)
        metrics.record_failure(1)
        metrics.set_cache_bytes(4096)
        snap = metrics.snapshot()
        assert snap.cache_hits == 2
        assert snap.cache_bytes == 4096
        assert snap.completed == 9          # 4 + 2 + 1 + 2
        assert snap.terminal == 10
        assert (
            snap.accepted + snap.rerun + snap.degraded + snap.cache_hits
            + snap.failed
            == snap.submitted
        )

    def test_cache_hits_window_delta(self, clocked):
        clock, metrics = clocked
        metrics.record_submitted(4)
        metrics.record_cache_hit(3)
        metrics.set_cache_bytes(100)
        clock.now = 1.0
        earlier = metrics.snapshot()
        metrics.record_submitted(2)
        metrics.record_cache_hit(1)
        metrics.set_cache_bytes(250)
        clock.now = 2.0
        window = metrics.snapshot().since(earlier)
        assert window.cache_hits == 1
        assert window.cache_bytes == 250    # a gauge, not a delta
        assert window.completed == 1

    def test_breaker_state_integrates_open_time(self, clocked):
        clock, metrics = clocked
        metrics.record_breaker_state("open")
        clock.now = 2.0
        metrics.record_breaker_state("half_open")
        clock.now = 3.0
        metrics.record_breaker_state("closed")
        snap = metrics.snapshot()
        assert snap.breaker_state == "closed"
        assert snap.breaker_trips == 1
        # open (2 s) + half_open (1 s) both count as degraded-mode time.
        assert snap.breaker_open_seconds == pytest.approx(3.0)

    def test_breaker_open_time_accrues_while_still_open(self, clocked):
        clock, metrics = clocked
        metrics.record_breaker_state("open")
        clock.now = 1.5
        snap = metrics.snapshot()
        assert snap.breaker_state == "open"
        assert snap.breaker_open_seconds == pytest.approx(1.5)

    def test_since_windows_robustness_counters(self, clocked):
        clock, metrics = clocked
        metrics.record_submitted(5)
        metrics.record_fault("host")
        metrics.record_retry(1)
        clock.now = 1.0
        earlier = metrics.snapshot()
        metrics.record_submitted(7)
        metrics.record_fault("host")
        metrics.record_fault("dmu")
        metrics.record_retry(2)
        metrics.record_deadline_miss(1)
        metrics.record_failure(1)
        window = metrics.snapshot().since(earlier)
        assert window.submitted == 7
        assert window.faults == {"host": 1, "dmu": 1}
        assert window.retries == 2
        assert window.deadline_missed == 1
        assert window.failed == 1


class TestEq1Bridge:
    def _snapshot(self, completed_rerun: tuple[int, int], wall: float) -> MetricsSnapshot:
        accepted = completed_rerun[0] - completed_rerun[1]
        return MetricsSnapshot(
            stages={}, queues={}, completed=completed_rerun[0],
            accepted=accepted, rerun=completed_rerun[1], degraded=0,
            threshold=0.8, threshold_trajectory=(), wall_seconds=wall,
        )

    def test_host_bound_window(self):
        # 1000 images in 4 s at 30% rerun, t_fp = 10 ms: Eq. (1) says
        # 3 ms/img, so the measured 4 ms/img is 33% above the bound.
        snap = self._snapshot((1000, 300), wall=4.0)
        cmp = compare_serving_with_eq1(snap, t_fp=0.010, t_bnn=0.001)
        assert isinstance(cmp, AnalyticComparison)
        assert cmp.analytic_seconds_per_image == pytest.approx(0.003)
        assert cmp.relative_error == pytest.approx(1 / 3)

    def test_host_pool_scales_the_bound(self):
        snap = self._snapshot((1000, 300), wall=4.0)
        one = compare_serving_with_eq1(snap, t_fp=0.010, t_bnn=0.0001)
        two = compare_serving_with_eq1(snap, t_fp=0.010, t_bnn=0.0001, num_host_workers=2)
        assert two.analytic_seconds_per_image == pytest.approx(
            one.analytic_seconds_per_image / 2
        )

    def test_bnn_bound_window(self):
        snap = self._snapshot((1000, 0), wall=1.5)
        cmp = compare_serving_with_eq1(snap, t_fp=0.010, t_bnn=0.001)
        assert cmp.analytic_seconds_per_image == pytest.approx(0.001)
        assert cmp.simulated_fps == pytest.approx(1000 / 1.5)
