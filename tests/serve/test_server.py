"""Cascade server: semantics, backpressure, degradation, clean shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.core import DecisionMakingUnit, MultiPrecisionPipeline
from repro.serve import AdaptiveThresholdController, CascadeServer

NUM_CLASSES = 10


def make_dmu(threshold: float = 0.7) -> DecisionMakingUnit:
    weights = np.zeros(NUM_CLASSES)
    weights[0], weights[1] = 4.0, -4.0  # read the sorted top-2 margin
    return DecisionMakingUnit(weights, bias=0.0, threshold=threshold)


def make_images(n: int, seed: int = 0) -> np.ndarray:
    """4-D images whose channels encode the BNN score vector directly."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, NUM_CLASSES, 1, 1))


def bnn_scores_fn(images: np.ndarray) -> np.ndarray:
    return images.reshape(len(images), NUM_CLASSES)


def host_predict_fn(images: np.ndarray) -> np.ndarray:
    # Deliberately different from the BNN's argmax so rerun is observable.
    return (images.reshape(len(images), NUM_CLASSES).argmax(axis=1) + 1) % NUM_CLASSES


class StubFoldedBNN:
    def class_scores(self, images, batch_size=128):
        return bnn_scores_fn(images)


class StubHostNet:
    def predict_classes(self, images, batch_size=256):
        return host_predict_fn(images)


def serve_all(server: CascadeServer, images: np.ndarray):
    return server.classify_many(list(images), timeout=10.0)


class TestCascadeSemantics:
    def test_matches_offline_pipeline(self):
        """The served answers are exactly the offline cascade's answers."""
        images = make_images(100)
        dmu = make_dmu(threshold=0.7)
        offline = MultiPrecisionPipeline(StubFoldedBNN(), dmu, StubHostNet()).classify(images)
        with CascadeServer(
            bnn_scores_fn, dmu, host_predict_fn,
            batch_delay_s=0.001, host_queue_capacity=256,
        ) as server:
            results = serve_all(server, images)

        assert [r.prediction for r in results] == offline.predictions.tolist()
        assert [r.bnn_prediction for r in results] == offline.bnn_predictions.tolist()
        assert [r.source == "host" for r in results] == offline.rerun_mask.tolist()
        np.testing.assert_allclose(
            [r.confidence for r in results], offline.confidence, rtol=1e-12
        )
        assert all(r.latency_seconds >= 0 for r in results)

    def test_all_accept_and_all_rerun_extremes(self):
        images = make_images(40)
        with CascadeServer(
            bnn_scores_fn, make_dmu(), host_predict_fn,
            controller=0.0, batch_delay_s=0.001,
        ) as server:
            results = serve_all(server, images)
        assert {r.source for r in results} == {"bnn"}

        with CascadeServer(
            bnn_scores_fn, make_dmu(), host_predict_fn,
            controller=1.0, batch_delay_s=0.001, host_queue_capacity=256,
        ) as server:
            results = serve_all(server, images)
        assert {r.source for r in results} == {"host"}
        assert all(r.rerun for r in results)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            CascadeServer(bnn_scores_fn, make_dmu(), host_predict_fn, controller=1.5)


class TestBackpressureAndDegradation:
    def _slow_host(self, images):
        time.sleep(0.002 * len(images))
        return host_predict_fn(images)

    def test_bounded_host_queue_never_exceeded(self):
        capacity = 4
        images = make_images(80)
        with CascadeServer(
            bnn_scores_fn, make_dmu(), self._slow_host,
            controller=1.0,  # flag everything: worst case for the queue
            batch_delay_s=0.001, host_queue_capacity=capacity, host_batch_size=2,
        ) as server:
            results = serve_all(server, images)
            snapshot = server.snapshot()
        assert snapshot.queues["host"].max_depth <= capacity
        assert len(results) == len(images)

    def test_overload_degrades_to_bnn_answer(self):
        images = make_images(120)
        with CascadeServer(
            bnn_scores_fn, make_dmu(), self._slow_host,
            controller=1.0, batch_delay_s=0.001,
            host_queue_capacity=2, host_batch_size=1,
        ) as server:
            results = serve_all(server, images)
            snapshot = server.snapshot()
        degraded = [r for r in results if r.source == "degraded"]
        assert degraded, "tiny queue + slow host must shed load"
        for r in degraded:
            assert r.prediction == r.bnn_prediction
        assert snapshot.degraded == len(degraded)
        assert snapshot.completed == len(images)

    def test_no_degradation_with_ample_capacity(self):
        images = make_images(60)
        with CascadeServer(
            bnn_scores_fn, make_dmu(), host_predict_fn,
            batch_delay_s=0.001, host_queue_capacity=256,
        ) as server:
            results = serve_all(server, images)
        assert all(r.source != "degraded" for r in results)


class TestAdaptiveIntegration:
    def test_controller_drives_threshold_and_metrics_record_it(self):
        controller = AdaptiveThresholdController(
            initial_threshold=0.97, target_rerun_ratio=0.3, gain=0.1
        )
        images = make_images(600, seed=3)
        with CascadeServer(
            bnn_scores_fn, make_dmu(), host_predict_fn,
            controller=controller, max_batch_size=32,
            batch_delay_s=0.001, host_queue_capacity=512,
        ) as server:
            serve_all(server, images)
            snapshot = server.snapshot()
        assert snapshot.threshold == controller.threshold
        assert len(snapshot.threshold_trajectory) > 10
        assert snapshot.threshold_trajectory[-1] < 0.97  # walked down from naive
        assert abs(controller.observed_rerun_ratio - 0.3) < 0.15


class TestShutdown:
    def test_close_leaves_no_dangling_threads(self):
        before = set(threading.enumerate())
        server = CascadeServer(
            bnn_scores_fn, make_dmu(), host_predict_fn,
            batch_delay_s=0.001, num_host_workers=3,
        )
        futures = [server.submit(img) for img in make_images(50)]
        server.close()
        # Every request accepted before close() is answered.
        assert all(f.result(timeout=1.0) is not None for f in futures)
        leftovers = set(threading.enumerate()) - before
        assert not leftovers, f"dangling worker threads: {leftovers}"

    def test_close_idempotent_and_submit_rejected_after(self):
        server = CascadeServer(bnn_scores_fn, make_dmu(), host_predict_fn)
        server.close()
        server.close()
        with pytest.raises(RuntimeError):
            server.submit(make_images(1)[0])

    def test_context_manager_closes(self):
        before = set(threading.enumerate())
        with CascadeServer(bnn_scores_fn, make_dmu(), host_predict_fn) as server:
            server.classify_many(list(make_images(10)))
        assert set(threading.enumerate()) - before == set()

    def test_close_with_inflight_requests_fails_their_futures(self):
        """Regression: close() used to leave in-flight futures unresolved
        forever.  Now stranded requests fail with ServerClosed."""
        from repro.serve import ServerClosed

        entered = threading.Event()
        release = threading.Event()

        def hanging_host(images):
            entered.set()
            release.wait(5.0)
            return host_predict_fn(images)

        server = CascadeServer(
            bnn_scores_fn, make_dmu(threshold=1.0), hanging_host,
            batch_delay_s=0.001, host_batch_size=1, num_host_workers=1,
            host_workers=0,  # events must fire in-process; pin the serial host
        )
        try:
            futures = [server.submit(img) for img in make_images(12)]
            assert entered.wait(5.0), "host worker never started"
            server.close(timeout=0.3)
        finally:
            release.set()
        # Every future is terminal: no stranded request can hang a caller.
        for f in futures:
            assert f.done(), "close() left a future unresolved"
        stranded = [f for f in futures if f.exception() is not None]
        for f in stranded:
            assert isinstance(f.exception(), ServerClosed)
        snapshot = server.snapshot()
        assert snapshot.failed == len(stranded)
        assert snapshot.completed + snapshot.failed == snapshot.submitted
