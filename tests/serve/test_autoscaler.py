"""SLO autoscaler: convergence, anti-thrash, scale-down, balanced books.

Two layers of coverage: a deterministic toy plant (fake clock, fake
pool) pins the control law's exact behaviour — convergence within K
windows, bounded action rate, full de-escalation — and a real oracle
cascade under an open-loop flash-crowd trace shows the integrated loop
recovering p99 with books that still balance.
"""

import numpy as np
import pytest

from repro.serve import (
    AdaptiveThresholdController,
    SLOAutoscaler,
    ServerMetrics,
)


class Plant:
    """Deterministic latency plant: p99 falls with workers and tightening.

    One ``window()`` call = one control window: it records a latency
    sample set whose level is ``base * load / (workers * relief)`` where
    each tightening step halves the host-bound load (relief).  The
    fixed-point structure mirrors the real cascade: more workers or less
    admitted work ⇒ lower latency.
    """

    def __init__(self, scaler, metrics, clock, base_ms=20.0):
        self.scaler = scaler
        self.metrics = metrics
        self.clock = clock
        self.base_ms = base_ms
        self.load = 1.0

    def window(self):
        workers = max(1, self.scaler.workers)
        relief = 0.5 ** self.scaler.tighten_depth
        latency_s = self.base_ms * 1e-3 * self.load * relief / workers
        for _ in range(200):
            self.metrics.record_latency(latency_s)
        self.clock[0] += 1.0
        return self.scaler.observe_window()


def make_scaler(max_workers=4, controllers=(), **kwargs):
    metrics = ServerMetrics()
    clock = [0.0]
    scale_calls = []

    def scale(n):
        scale_calls.append(n)
        return n

    kwargs.setdefault("cooldown_windows", 2)
    kwargs.setdefault("clear_windows", 3)
    scaler = SLOAutoscaler(
        metrics,
        slo_p99_ms=25.0,
        scale_fn=scale,
        current_workers=1,
        min_workers=1,
        max_workers=max_workers,
        controllers=controllers,
        clock=lambda: clock[0],
        **kwargs,
    )
    return scaler, metrics, clock, scale_calls


def test_step_load_converges_within_k_windows():
    scaler, metrics, clock, _ = make_scaler()
    plant = Plant(scaler, metrics, clock)
    plant.load = 1.0
    assert not plant.window().violating  # healthy baseline

    plant.load = 3.0  # step: 60 ms at 1 worker; needs 3 workers for 20 ms
    decisions = [plant.window() for _ in range(10)]
    assert decisions[0].violating
    # converged: p99 back under SLO within K windows (two scale-ups at
    # cooldown 2, plus one window of slack)
    recovered_at = next(i for i, d in enumerate(decisions) if not d.violating)
    assert recovered_at <= 6
    # the scaler probes downward after a healthy streak and re-escalates,
    # but the loop must settle at the fixed point: 3 workers, healthy tail
    assert scaler.workers == 3
    assert not decisions[-1].violating
    assert sum(d.violating for d in decisions[recovered_at:]) <= 3


def test_flash_crowd_tightens_after_pool_exhausted():
    ctrl = AdaptiveThresholdController(target_rerun_ratio=0.4)
    scaler, metrics, clock, _ = make_scaler(max_workers=2, controllers=[ctrl])
    plant = Plant(scaler, metrics, clock)
    plant.load = 16.0  # flash: unreachable by capacity alone (max 2 workers)
    for _ in range(12):
        plant.window()
    assert scaler.workers == 2                  # capacity exhausted first
    assert scaler.tighten_depth > 0             # then admission tightened
    assert ctrl.target_rerun_ratio < 0.4        # knob actually moved
    assert ctrl.target_rerun_ratio == pytest.approx(
        0.4 * scaler.tighten_factor ** scaler.tighten_depth
    )


def test_never_thrashes_bounded_action_rate():
    scaler, metrics, clock, scale_calls = make_scaler()
    plant = Plant(scaler, metrics, clock)
    # oscillating load, adversarial for a naive scaler
    for i in range(30):
        plant.load = 8.0 if i % 2 == 0 else 0.5
        plant.window()
    # at most one action per cooldown window, ever
    assert scaler.actions_taken <= 30 // scaler.cooldown_windows + 1
    # consecutive actions never alternate faster than the cooldown
    action_windows = [
        d.window for d in scaler.decisions
        if d.action in ("scale_up", "scale_down", "tighten", "relax")
    ]
    gaps = np.diff(action_windows)
    assert (gaps >= scaler.cooldown_windows).all()


def test_scale_down_returns_to_min_workers_and_original_targets():
    ctrl = AdaptiveThresholdController(target_rerun_ratio=0.3)
    scaler, metrics, clock, _ = make_scaler(max_workers=3, controllers=[ctrl])
    plant = Plant(scaler, metrics, clock)
    plant.load = 20.0
    for _ in range(12):
        plant.window()
    assert scaler.workers == 3 and scaler.tighten_depth > 0

    plant.load = 0.2  # load drops away
    for _ in range(40):
        plant.window()
    assert scaler.tighten_depth == 0
    assert ctrl.target_rerun_ratio == pytest.approx(0.3)  # fully restored
    assert scaler.workers == scaler.min_workers


def test_empty_windows_count_as_healthy():
    scaler, metrics, clock, _ = make_scaler()
    plant = Plant(scaler, metrics, clock)
    plant.load = 5.0
    for _ in range(4):
        plant.window()
    assert scaler.workers > 1
    # traffic stops entirely: no samples at all, still walks back down
    for _ in range(20):
        clock[0] += 1.0
        scaler.observe_window()
    assert scaler.workers == scaler.min_workers


def test_violation_seconds_accumulate():
    scaler, metrics, clock, _ = make_scaler()
    plant = Plant(scaler, metrics, clock)
    plant.load = 50.0
    for _ in range(5):
        plant.window()
    assert scaler.violation_seconds == pytest.approx(5.0)  # 1 s windows


def test_threshold_only_mode_without_pool():
    """A serial-host server still gets admission control."""
    metrics = ServerMetrics()
    ctrl = AdaptiveThresholdController(target_rerun_ratio=0.3)
    clock = [0.0]
    scaler = SLOAutoscaler(
        metrics, slo_p99_ms=10.0, scale_fn=None, controllers=[ctrl],
        cooldown_windows=1, clock=lambda: clock[0],
    )
    for _ in range(4):
        for _ in range(50):
            metrics.record_latency(0.05)
        clock[0] += 1.0
        scaler.observe_window()
    assert scaler.tighten_depth > 0
    assert all(
        d.action in ("tighten", "saturated", "observe") for d in scaler.decisions
    )


def test_constructor_validation():
    metrics = ServerMetrics()
    with pytest.raises(ValueError):
        SLOAutoscaler(metrics, slo_p99_ms=0.0)
    with pytest.raises(ValueError):
        SLOAutoscaler(metrics, slo_p99_ms=10, tighten_factor=1.5)
    with pytest.raises(ValueError):
        SLOAutoscaler(metrics, slo_p99_ms=10, cooldown_windows=0)
    with pytest.raises(ValueError):
        SLOAutoscaler(
            metrics, slo_p99_ms=10, scale_fn=lambda n: n,
            min_workers=4, max_workers=2,
        )


# -- integrated: oracle cascade under an open-loop flash crowd ---------------
def test_flash_crowd_recovery_on_real_cascade():
    """The acceptance-criteria scenario, compressed for CI.

    A flash-crowd trace replays open-loop against a real CascadeServer
    with a 1-process host pool; the autoscaler must take scale-up
    actions during the spike, end with balanced books, and leave p99
    under the SLO once the spike decays.
    """
    from repro.traffic import ServeLoadConfig, run_serve_load

    report = run_serve_load(
        ServeLoadConfig(
            trace="flash",
            rate=300.0,
            duration=10.0,
            time_scale=5.0,
            slo_p99_ms=40.0,
            window_seconds=0.4,
            host_workers=1,
            max_workers=3,
            seed=0,
        )
    )
    assert report.books["balanced"], report.books
    assert report.terminal_fraction == pytest.approx(1.0)
    assert report.actions_taken >= 1
    assert report.final_workers > 1          # the pool actually grew
    assert report.recovered, [
        (w.index, w.p99_ms, w.action) for w in report.windows
    ]


def test_for_server_wires_pool_and_controllers():
    import time

    from repro.core.dmu import DecisionMakingUnit
    from repro.serve import CascadeServer

    rng = np.random.default_rng(0)
    weights = np.zeros(10)
    weights[0], weights[1] = 4.0, -4.0
    dmu = DecisionMakingUnit(weights, bias=0.0, threshold=0.9)
    ctrl = AdaptiveThresholdController(initial_threshold=0.9)

    def bnn_fn(images):
        time.sleep(0.0001 * len(images))
        return images

    def host_fn(images):
        time.sleep(0.001 * len(images))
        return images.argmax(axis=1)

    with CascadeServer(
        bnn_fn, dmu, host_fn, controller=ctrl, host_workers=1
    ) as server:
        scaler = SLOAutoscaler.for_server(server, slo_p99_ms=50.0, max_workers=2)
        assert scaler.workers == 1
        assert ctrl in scaler.controllers
        for payload in rng.normal(size=(40, 10)):
            server.submit(payload)
        # a tick drains the latency buffer and records a decision
        decision = scaler.observe_window()
        assert decision.action in SLOAutoscaler.ACTIONS
        # the capacity actuator drives the real pool
        scaler.scale_fn(2)
        assert server.host_pool_size == 2
    total = server.snapshot()
    answered = total.accepted + total.rerun + total.degraded + total.failed
    assert answered == total.submitted
