"""CascadeServer with the process-parallel host pool (host_workers=N)."""

import numpy as np
import pytest

from repro.core import DecisionMakingUnit
from repro.parallel import ParallelHostRunner
from repro.serve import CascadeServer
from repro.serve.metrics import ServerMetrics

NUM_CLASSES = 10


def make_dmu(threshold: float = 0.7) -> DecisionMakingUnit:
    weights = np.zeros(NUM_CLASSES)
    weights[0], weights[1] = 4.0, -4.0
    return DecisionMakingUnit(weights, bias=0.0, threshold=threshold)


def make_images(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, NUM_CLASSES, 1, 1))


def bnn_scores_fn(images: np.ndarray) -> np.ndarray:
    return images.reshape(len(images), NUM_CLASSES)


def host_predict_fn(images: np.ndarray) -> np.ndarray:
    return (images.reshape(len(images), NUM_CLASSES).argmax(axis=1) + 1) % NUM_CLASSES


def flaky_host(images: np.ndarray) -> np.ndarray:
    if float(images.max()) > 1e5:  # any shard carrying the poison image fails
        raise RuntimeError("injected host fault")
    return host_predict_fn(images)


class TestParallelHostServer:
    def test_answers_match_serial_host_and_books_balance(self):
        images = make_images(80)
        with CascadeServer(
            bnn_scores_fn, make_dmu(), host_predict_fn,
            host_workers=2, batch_delay_s=0.001,
        ) as server:
            results = server.classify_many(list(images), timeout=30.0)
        snap = server.snapshot()
        assert snap.submitted == 80
        assert snap.accepted + snap.rerun + snap.degraded + snap.failed == snap.submitted
        for image, result in zip(images, results):
            if result.source == "host":
                assert result.prediction == host_predict_fn(image[None])[0]

    def test_per_worker_counters_cover_all_reruns(self):
        with CascadeServer(
            bnn_scores_fn, make_dmu(), host_predict_fn,
            host_workers=2, batch_delay_s=0.001,
        ) as server:
            server.classify_many(list(make_images(80)), timeout=30.0)
            snap = server.snapshot()
        assert snap.host_parallel_workers == 2
        assert sum(snap.host_worker_images.values()) == snap.rerun
        assert set(snap.host_worker_images) <= {0, 1}

    def test_queue_wait_stage_is_split_from_inference(self):
        with CascadeServer(
            bnn_scores_fn, make_dmu(), host_predict_fn,
            host_workers=2, batch_delay_s=0.001,
        ) as server:
            server.classify_many(list(make_images(80)), timeout=30.0)
            snap = server.snapshot()
        if snap.rerun:
            wait = snap.stages["host_queue_wait"]
            host = snap.stages["host"]
            assert wait.count == snap.rerun
            assert host.count == snap.rerun
            assert wait.total_seconds >= 0.0

    def test_env_var_selects_parallel_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOST_WORKERS", "2")
        with CascadeServer(
            bnn_scores_fn, make_dmu(), host_predict_fn, batch_delay_s=0.001
        ) as server:
            assert server._host_runner is not None
            assert server._host_runner.n_workers == 2
            assert server._owns_host_runner
            server.classify_many(list(make_images(20)), timeout=30.0)
        assert server._host_runner._closed  # server owns + closes the pool

    def test_caller_owned_runner_is_not_closed_by_server(self):
        with ParallelHostRunner(predict_fn=host_predict_fn, n_workers=2) as pool:
            with CascadeServer(
                bnn_scores_fn, make_dmu(), pool, batch_delay_s=0.001
            ) as server:
                server.classify_many(list(make_images(40)), timeout=30.0)
                assert server._host_runner is pool
                assert not server._owns_host_runner
            assert not pool._closed  # still usable after the server is gone
            assert pool(make_images(4)).shape == (4,)

    def test_host_fault_in_pool_retries_then_degrades(self):
        """The pool's StageFailure plugs into the retry/degrade contract."""
        images = make_images(40)
        images[:, :] = np.abs(images)  # keep DMU flags plentiful
        images[0] = 1e6  # poison: every host call on a batch with image 0 raises
        metrics = ServerMetrics()
        with CascadeServer(
            bnn_scores_fn, make_dmu(threshold=0.99), flaky_host,
            host_workers=2, batch_delay_s=0.001, metrics=metrics,
        ) as server:
            results = server.classify_many(list(images), timeout=30.0)
        snap = metrics.snapshot()
        assert len(results) == 40  # nobody stranded, nobody errored out
        assert snap.accepted + snap.rerun + snap.degraded + snap.failed == snap.submitted
        assert snap.faults.get("host", 0) >= 1
        assert snap.degraded >= 1  # poisoned batch fell back to BNN answers

    def test_serial_default_has_no_pool(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOST_WORKERS", raising=False)
        with CascadeServer(
            bnn_scores_fn, make_dmu(), host_predict_fn, batch_delay_s=0.001
        ) as server:
            assert server._host_runner is None
            server.classify_many(list(make_images(10)), timeout=30.0)
            assert server.snapshot().host_parallel_workers == 0
