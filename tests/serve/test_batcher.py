"""Micro-batcher: size flush, deadline flush, backpressure, shutdown."""

import threading
import time

import pytest

from repro.serve import MicroBatcher


class Collector:
    """Thread-safe sink recording emitted batches and their arrival time."""

    def __init__(self, block_on: threading.Event | None = None):
        self.batches: list[list[int]] = []
        self.times: list[float] = []
        self._lock = threading.Lock()
        self._block_on = block_on

    def __call__(self, batch):
        if self._block_on is not None:
            self._block_on.wait()
        with self._lock:
            self.batches.append(list(batch))
            self.times.append(time.monotonic())

    def wait_for(self, num_batches: int, timeout: float = 2.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if len(self.batches) >= num_batches:
                    return
            time.sleep(0.001)
        raise AssertionError(f"never saw {num_batches} batches: {self.batches}")


class TestFlushRules:
    def test_size_flush_does_not_wait_for_deadline(self):
        sink = Collector()
        with MicroBatcher(sink, max_batch_size=4, max_delay_s=30.0) as batcher:
            start = time.monotonic()
            for i in range(4):
                batcher.submit(i)
            sink.wait_for(1)
        assert sink.batches[0] == [0, 1, 2, 3]
        assert sink.times[0] - start < 5.0  # long before the 30 s deadline

    def test_deadline_flush_emits_partial_batch(self):
        sink = Collector()
        with MicroBatcher(sink, max_batch_size=64, max_delay_s=0.05) as batcher:
            start = time.monotonic()
            for i in range(3):
                batcher.submit(i)
            sink.wait_for(1)
        elapsed = sink.times[0] - start
        assert sink.batches[0] == [0, 1, 2]
        assert 0.04 <= elapsed < 1.0  # flushed by deadline, not by close()

    def test_order_preserved_across_batches(self):
        sink = Collector()
        with MicroBatcher(sink, max_batch_size=5, max_delay_s=0.01) as batcher:
            for i in range(23):
                batcher.submit(i)
        flat = [item for batch in sink.batches for item in batch]
        assert flat == list(range(23))

    def test_oversize_stream_splits_into_max_size_batches(self):
        sink = Collector()
        with MicroBatcher(sink, max_batch_size=8, max_delay_s=10.0) as batcher:
            for i in range(16):
                batcher.submit(i)
            sink.wait_for(2)
        assert [len(b) for b in sink.batches[:2]] == [8, 8]


class TestBackpressure:
    def test_submit_blocks_when_pending_full(self):
        gate = threading.Event()
        sink = Collector(block_on=gate)
        batcher = MicroBatcher(sink, max_batch_size=2, max_delay_s=0.001, max_pending=4)
        try:
            # The flusher takes one batch of 2 and blocks in emit; filling
            # the 4-slot pending buffer afterwards strands the producer.
            for i in range(6):
                batcher.submit(i)
            blocked = threading.Thread(target=batcher.submit, args=(99,), daemon=True)
            blocked.start()
            blocked.join(timeout=0.2)
            assert blocked.is_alive(), "submit should block while pending is full"
            gate.set()  # unblock the sink -> flusher drains -> submit resumes
            blocked.join(timeout=2.0)
            assert not blocked.is_alive()
        finally:
            gate.set()
            batcher.close()
        flat = [item for batch in sink.batches for item in batch]
        assert sorted(flat) == sorted(list(range(6)) + [99])


class TestShutdown:
    def test_close_flushes_remainder_and_stops_thread(self):
        sink = Collector()
        batcher = MicroBatcher(sink, max_batch_size=64, max_delay_s=30.0)
        batcher.submit("a")
        batcher.submit("b")
        batcher.close()
        assert sink.batches == [["a", "b"]]
        assert not batcher._thread.is_alive()

    def test_close_is_idempotent_and_submit_raises_after(self):
        sink = Collector()
        batcher = MicroBatcher(sink, max_batch_size=2, max_delay_s=0.01)
        batcher.close()
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, max_delay_s=0.0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: None, max_batch_size=8, max_pending=4)
