"""Deterministic fault injection for the cascade serving layer.

The paper's heterogeneous cascade (Fig. 1) is a distributed system in
miniature: an FPGA-style fast path, a host recovery path, and queues
between them.  Eq. (1) ``t_multi = max(t_fp * R_rerun, t_bnn)`` is a
statement about that system staying *up* — so this package makes its
failure modes first-class and replayable:

* :mod:`~repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`:
  seeded, JSON-serializable chaos scenarios (per-stage exception /
  latency / hang / corrupt-output faults with probabilities, arming
  windows and budgets).
* :mod:`~repro.faults.inject` — :class:`FaultInjector`: wraps the BNN,
  DMU and host callables; per-stage fault decisions are a pure function
  of ``(seed, stage, call_index)``, logged to a :class:`FaultLog` so any
  run can be replayed bit-for-bit.

The hardened :class:`repro.serve.CascadeServer` (crash-safe workers,
deadlines, retries, circuit breaker) is tested against this package in
``tests/faults``; ``repro serve-bench --fault-plan plan.json`` drives
the load harness through a scenario.  See ``docs/ROBUSTNESS.md``.
"""

from .inject import (
    FaultEvent,
    FaultInjector,
    FaultLog,
    InjectedFault,
    faults_suspended,
    suspend_faults,
    wrap_stack,
)
from .plan import FAULT_KINDS, STAGES, FaultPlan, FaultSpec, load_fault_plan

__all__ = [
    "STAGES",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "load_fault_plan",
    "InjectedFault",
    "FaultEvent",
    "FaultLog",
    "FaultInjector",
    "wrap_stack",
    "suspend_faults",
    "faults_suspended",
]
