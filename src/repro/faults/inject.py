"""Deterministic fault injection around the cascade's stage callables.

A :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into wrappers for the three stage callables the serving layer consumes
(``bnn_scores_fn``, ``dmu.confidence``, ``host_predict_fn``).  Each
stage gets its own seeded random stream, and fault decisions are drawn
strictly in call order under a per-stage lock, so the decision sequence
for a stage depends only on ``(plan.seed, stage, call_index)`` — never
on thread timing.  Two runs that make the same stage calls therefore see
*identical* fault sequences, which is what lets ``tests/faults`` replay
any chaos scenario bit-for-bit.

Every injected fault is appended to a :class:`FaultLog` as a
:class:`FaultEvent`; tests compare per-stage event sequences across runs
and reconcile them against :class:`repro.serve.ServerMetrics` counters.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .plan import STAGES, FaultPlan, FaultSpec

__all__ = [
    "InjectedFault",
    "FaultEvent",
    "FaultLog",
    "FaultInjector",
    "wrap_stack",
    "suspend_faults",
    "faults_suspended",
]


#: Thread-local suspension depth: while > 0 on the *current thread*,
#: wrapped stage callables pass straight through without drawing from
#: the fault stream.  Thread-local on purpose — suspending faults inside
#: a kernel-autotune microbenchmark on the BNN thread must not change
#: what the host/DMU threads observe, and passing through *without
#: consuming the stream* keeps the per-stage decision sequence a pure
#: function of (seed, stage, call_index) for the calls that do count.
_SUSPENDED = threading.local()


def faults_suspended() -> bool:
    """True while the current thread is inside :func:`suspend_faults`."""
    return getattr(_SUSPENDED, "depth", 0) > 0


class suspend_faults:
    """``with suspend_faults():`` — bypass fault injection on this thread.

    Used by the kernel autotuner (:func:`repro.bnn.kernels.select_backend`)
    so microbenchmark timings inside a chaos-wrapped server measure the
    kernels, not the injected latency/exception schedule.  Re-entrant.
    """

    __slots__ = ()

    def __enter__(self):
        _SUSPENDED.depth = getattr(_SUSPENDED, "depth", 0) + 1
        return self

    def __exit__(self, *exc):
        _SUSPENDED.depth = getattr(_SUSPENDED, "depth", 1) - 1
        return None


class InjectedFault(RuntimeError):
    """Raised by a wrapped stage when an ``exception`` fault fires."""

    def __init__(self, stage: str, call_index: int, spec_index: int):
        super().__init__(
            f"injected fault: stage={stage!r} call={call_index} spec={spec_index}"
        )
        self.stage = stage
        self.call_index = call_index
        self.spec_index = spec_index


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (the unit of replay comparison)."""

    stage: str
    call_index: int
    kind: str
    spec_index: int


class FaultLog:
    """Thread-safe append-only record of injected faults."""

    def __init__(self):
        self._lock = threading.Lock()
        self._events: list[FaultEvent] = []

    def append(self, event: FaultEvent) -> None:
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def for_stage(self, stage: str) -> tuple[FaultEvent, ...]:
        """Events of one stage, ordered by call index (the replayable view)."""
        return tuple(
            sorted(
                (e for e in self.events if e.stage == stage),
                key=lambda e: (e.call_index, e.spec_index),
            )
        )

    def counts(self) -> dict[str, int]:
        """``{stage: fired_faults}`` including delay/corrupt kinds."""
        totals = dict.fromkeys(STAGES, 0)
        for event in self.events:
            totals[event.stage] += 1
        return totals

    def counts_by_kind(self, stage: str) -> dict[str, int]:
        totals: dict[str, int] = {}
        for event in self.for_stage(stage):
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return totals


class _StageState:
    """Per-stage call counter + seeded stream + per-spec fire budget."""

    __slots__ = ("lock", "rng", "calls", "fired")

    def __init__(self, seed: int, stage_index: int, num_specs: int):
        self.lock = threading.Lock()
        self.rng = np.random.default_rng([seed, stage_index])
        self.calls = 0
        self.fired = [0] * num_specs


class FaultInjector:
    """Apply a :class:`FaultPlan` to stage callables.

    Usage::

        injector = FaultInjector(plan)
        bnn_fn = injector.wrap("bnn", bnn_fn)
        dmu = injector.wrap_dmu(dmu)
        host_fn = injector.wrap("host", host_fn)
        ...
        injector.log.for_stage("host")   # replayable fault sequence

    The ``sleep`` parameter is injectable so tests can fake time.
    """

    def __init__(self, plan: FaultPlan, sleep: Callable[[float], None] = time.sleep):
        self.plan = plan
        self.log = FaultLog()
        self._sleep = sleep
        self._specs: dict[str, tuple[tuple[int, FaultSpec], ...]] = {}
        self._state: dict[str, _StageState] = {}
        for stage_index, stage in enumerate(STAGES):
            indexed = tuple(
                (i, spec) for i, spec in enumerate(plan.specs) if spec.stage == stage
            )
            self._specs[stage] = indexed
            self._state[stage] = _StageState(plan.seed, stage_index, len(indexed))

    # -- decision core -------------------------------------------------------
    def decide(self, stage: str) -> list[FaultEvent]:
        """Draw this call's fault decisions (in plan order) for *stage*.

        One uniform variate is consumed per armed spec per call, in plan
        order, under the stage lock — the stream is a pure function of
        ``(seed, stage, call_index)``.  Returns the events that fire this
        call (usually zero or one; multiple specs may fire together).

        At most one ``exception`` event fires per call: the wrapped
        callable can only raise once, so letting a second exception spec
        "fire" would log an event with no observable fault and desync the
        log from :class:`repro.serve.ServerMetrics` fault counters.  The
        losing spec's variate is still drawn (stream position is call-
        indexed) and its fire budget is not consumed.
        """
        if stage not in STAGES:
            raise ValueError(f"stage must be one of {STAGES}, got {stage!r}")
        state = self._state[stage]
        events: list[FaultEvent] = []
        with state.lock:
            call_index = state.calls
            state.calls += 1
            for slot, (spec_index, spec) in enumerate(self._specs[stage]):
                # Draw unconditionally so the stream position never depends
                # on arming windows or budgets, only on the call index.
                u = float(state.rng.random())
                if call_index < spec.start_call:
                    continue
                if spec.max_faults is not None and state.fired[slot] >= spec.max_faults:
                    continue
                if spec.kind == "exception" and any(
                    e.kind == "exception" for e in events
                ):
                    continue
                if u < spec.probability:
                    state.fired[slot] += 1
                    events.append(
                        FaultEvent(stage, call_index, spec.kind, spec_index)
                    )
        for event in events:
            self.log.append(event)
        return events

    def calls(self, stage: str) -> int:
        state = self._state[stage]
        with state.lock:
            return state.calls

    # -- wrappers ------------------------------------------------------------
    def _apply(self, stage: str, fn: Callable, args, kwargs):
        if faults_suspended():
            return fn(*args, **kwargs)
        events = self.decide(stage)
        delay = 0.0
        corrupt = False
        raiser: FaultEvent | None = None
        for event in events:
            if event.kind in ("latency", "hang"):
                delay += self.plan.specs[event.spec_index].effective_delay_s
            elif event.kind == "corrupt":
                corrupt = True
            elif event.kind == "exception":
                raiser = event
        if delay:
            self._sleep(delay)
        if raiser is not None:
            raise InjectedFault(stage, raiser.call_index, raiser.spec_index)
        out = fn(*args, **kwargs)
        if corrupt:
            out = np.roll(np.asarray(out), 1, axis=-1)
        return out

    def wrap(self, stage: str, fn: Callable) -> Callable:
        """Wrap a stage callable; faults fire per invocation."""
        if stage not in STAGES:
            raise ValueError(f"stage must be one of {STAGES}, got {stage!r}")

        def wrapped(*args, **kwargs):
            return self._apply(stage, fn, args, kwargs)

        wrapped.__name__ = f"faulty_{stage}"
        wrapped.__qualname__ = f"FaultInjector.<{stage}>"
        return wrapped

    def wrap_dmu(self, dmu):
        """Proxy a DMU whose ``confidence`` is fault-wrapped.

        Every other attribute (``threshold``, training metadata, ...)
        delegates to the wrapped unit unchanged.
        """
        return _FaultyDMU(dmu, self)


class _FaultyDMU:
    """Attribute-delegating DMU proxy with an injected ``confidence``."""

    def __init__(self, dmu, injector: FaultInjector):
        object.__setattr__(self, "_dmu", dmu)
        object.__setattr__(self, "_confidence", injector.wrap("dmu", dmu.confidence))

    def confidence(self, scores):
        return self._confidence(scores)

    def __getattr__(self, name):
        return getattr(self._dmu, name)


def wrap_stack(plan: FaultPlan, bnn_scores_fn, dmu, host_predict_fn, *,
               sleep: Callable[[float], None] = time.sleep):
    """Convenience: wrap all three cascade stages under one injector.

    Returns ``(bnn_scores_fn, dmu, host_predict_fn, injector)`` ready to
    hand to :class:`repro.serve.CascadeServer`.
    """
    injector = FaultInjector(plan, sleep=sleep)
    return (
        injector.wrap("bnn", bnn_scores_fn),
        injector.wrap_dmu(dmu),
        injector.wrap("host", host_predict_fn),
        injector,
    )
