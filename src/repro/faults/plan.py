"""Seeded fault plans: *what* goes wrong, *where*, and *how often*.

The cascade of Fig. 1 only achieves Eq. (1)'s ``t_multi = max(t_fp *
R_rerun, t_bnn)`` if the two precision domains tolerate each other's
stalls and failures.  A :class:`FaultPlan` describes a reproducible
chaos scenario against the serving layer: a seed plus a list of
:class:`FaultSpec` entries, each naming a pipeline stage (``bnn`` /
``dmu`` / ``host``), a fault kind, and a per-call probability.

Determinism is the point — the same plan produces the same per-stage
fault decision stream on every run (see
:class:`repro.faults.inject.FaultInjector`), so any chaos test failure
can be replayed bit-for-bit from its seed.

Plans round-trip through JSON (``to_json`` / ``from_json`` /
:func:`load_fault_plan`) so scenarios can live in version control, e.g.
``examples/faultplan_host_flaky.json`` for ``repro serve-bench
--fault-plan``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "STAGES",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "load_fault_plan",
]

#: Pipeline stages a fault can target (the three cascade callables).
STAGES = ("bnn", "dmu", "host")

#: Supported fault kinds:
#:
#: * ``exception``  — the stage callable raises :class:`~repro.faults.inject.InjectedFault`.
#: * ``latency``    — the call is delayed by ``delay_s`` (default 50 ms) before running.
#: * ``hang``       — like ``latency`` but long (default 2 s): a stall that
#:   should trip per-request deadlines, not merely slow a batch down.
#: * ``corrupt``    — the call runs, then its output array is rolled by one
#:   along the last axis (scores: argmax moves; labels: answers shift).
FAULT_KINDS = ("exception", "latency", "hang", "corrupt")

_DEFAULT_DELAYS = {"latency": 0.05, "hang": 2.0}


@dataclass(frozen=True)
class FaultSpec:
    """One fault source: *stage* misbehaves with *probability* per call.

    Parameters
    ----------
    stage:
        Which cascade callable to afflict: ``"bnn"``, ``"dmu"`` or ``"host"``.
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Chance, per stage invocation, that this spec fires (decided from
        the plan's seeded per-stage random stream).
    delay_s:
        Sleep injected by ``latency``/``hang`` faults.  ``None`` picks the
        kind's default (50 ms / 2 s); ignored by other kinds.
    start_call:
        First stage invocation index (0-based) at which this spec is
        armed — lets a scenario hold fire through warm-up.
    max_faults:
        Cap on how many times this spec may fire (``None`` = unlimited),
        e.g. a crash-loop that eventually "recovers".
    """

    stage: str
    kind: str
    probability: float = 1.0
    delay_s: float | None = None
    start_call: int = 0
    max_faults: int | None = None

    def __post_init__(self):
        if self.stage not in STAGES:
            raise ValueError(f"stage must be one of {STAGES}, got {self.stage!r}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay_s is not None and self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.start_call < 0:
            raise ValueError("start_call must be >= 0")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be >= 0")

    @property
    def effective_delay_s(self) -> float:
        """The sleep this spec injects when it fires (0 for non-delay kinds)."""
        if self.delay_s is not None:
            return self.delay_s
        return _DEFAULT_DELAYS.get(self.kind, 0.0)


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus fault specs: one complete, replayable chaos scenario."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        # Accept any iterable of specs / dicts, normalize to a tuple.
        normalized = tuple(
            s if isinstance(s, FaultSpec) else FaultSpec(**s) for s in self.specs
        )
        object.__setattr__(self, "specs", normalized)

    def for_stage(self, stage: str) -> tuple[FaultSpec, ...]:
        """The specs targeting *stage*, in plan order."""
        if stage not in STAGES:
            raise ValueError(f"stage must be one of {STAGES}, got {stage!r}")
        return tuple(s for s in self.specs if s.stage == stage)

    # -- JSON round-trip -----------------------------------------------------
    def to_dict(self) -> dict:
        return {"seed": self.seed, "specs": [asdict(s) for s in self.specs]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        unknown = set(data) - {"seed", "specs"}
        if unknown:
            raise ValueError(f"unknown FaultPlan keys: {sorted(unknown)}")
        return cls(
            seed=int(data.get("seed", 0)),
            specs=tuple(FaultSpec(**spec) for spec in data.get("specs", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file (``--fault-plan``)."""
    return FaultPlan.from_json(Path(path).read_text())
