"""SLO autoscaler: hold a p99 latency target under open-loop load.

:class:`AdaptiveThresholdController` (PR 4) regulates an *internal*
quantity — the rerun ratio — which keeps Eq. (1) honest but says nothing
a user can feel.  :class:`SLOAutoscaler` closes the loop on the quantity
users do feel: windowed p99 end-to-end latency, sampled from
:meth:`repro.serve.metrics.ServerMetrics.drain_latencies`.

Two actuators, engaged in a fixed escalation order:

1. **capacity** — grow the parallel host pool one worker at a time
   (:meth:`repro.parallel.ParallelHostRunner.resize` via
   :meth:`CascadeServer.resize_host_workers`), up to ``max_workers``;
2. **admission** — once capacity is exhausted, tighten the cascade's
   routing knobs: every attached
   :class:`~repro.serve.controller.AdaptiveThresholdController` (hop 0's
   DMU and any ladder knob) gets its ``target_rerun_ratio`` multiplied
   by ``tighten_factor``, shedding host-bound work so the queues drain.
   By Eq. (1) this trades a little accuracy for bounded latency — the
   CascadeCNN-style confidence/throughput trade, driven by load.

De-escalation mirrors it: after ``clear_windows`` consecutive healthy
windows the scaler first relaxes thresholds back toward their original
targets, then releases workers down to ``min_workers``.  At most one
action per ``cooldown_windows`` control windows, in either direction —
the anti-thrash bound ``tests/serve/test_autoscaler.py`` pins.

The scaler is deliberately *tick-driven*: no internal thread, no wall
clock of its own.  Call :meth:`observe_window` once per control window
(the ``repro serve-load`` harness does; tests drive it with a fake
clock), and every decision lands in :mod:`repro.obs` as the
``slo.workers`` gauge, a ``slo.decision`` instant, and the cumulative
``slo.violation_seconds`` counter.  The actuators never touch the books:
``accepted + Σ rerun_i + degraded + failed == submitted`` holds across
any action sequence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from .. import obs
from ..obs import percentile
from .controller import AdaptiveThresholdController
from .metrics import ServerMetrics

__all__ = ["ScalerDecision", "SLOAutoscaler"]


@dataclass(frozen=True)
class ScalerDecision:
    """One control window's reading and the action taken on it."""

    window: int                 # 0-based control-window index
    samples: int                # latency samples drained this window
    p50_ms: float               # 0 when the window is empty
    p99_ms: float
    violating: bool
    action: str                 # see SLOAutoscaler.ACTIONS
    workers: int                # pool size *after* the action
    tighten_depth: int          # threshold-tightening level after the action
    window_seconds: float       # wall span the window covered
    violation_seconds: float    # portion counted toward the SLO violation total


class SLOAutoscaler:
    """Windowed p99-latency SLO controller (see module docs).

    Parameters
    ----------
    metrics:
        The served stack's :class:`ServerMetrics`; each tick drains its
        latency buffer, so one scaler instance owns one server's samples.
    slo_p99_ms:
        The target: windowed p99 end-to-end latency, milliseconds.
    scale_fn:
        ``n -> new_n`` pool actuator (``server.resize_host_workers``).
        ``None`` disables the capacity actuator (threshold-only mode,
        used when the server runs a serial host).
    current_workers:
        Pool size at attach time (``server.host_pool_size``).
    min_workers / max_workers:
        Capacity actuator range.
    controllers:
        The admission knobs to tighten — any mix of hop-0 and ladder
        :class:`AdaptiveThresholdController` s.
    tighten_factor:
        Multiplier applied to each knob's ``target_rerun_ratio`` per
        tightening step (< 1).
    max_tighten_depth:
        Tightening steps allowed before the scaler reports saturation.
    cooldown_windows:
        Minimum control windows between consecutive actions.
    clear_windows:
        Consecutive healthy windows required before de-escalating.
    clock:
        Injectable time source for window spans (tests pass a fake).
    """

    #: Every action :meth:`observe_window` can report.
    ACTIONS = (
        "hold",          # healthy, nothing to undo
        "observe",       # violating, but in cooldown / waiting
        "scale_up",
        "tighten",
        "saturated",     # violating with every actuator exhausted
        "relax",
        "scale_down",
    )

    def __init__(
        self,
        metrics: ServerMetrics,
        slo_p99_ms: float,
        scale_fn: Callable[[int], int] | None = None,
        current_workers: int = 0,
        min_workers: int = 1,
        max_workers: int = 4,
        controllers: Sequence[AdaptiveThresholdController] = (),
        tighten_factor: float = 0.5,
        max_tighten_depth: int = 3,
        cooldown_windows: int = 2,
        clear_windows: int = 3,
        clock: Callable[[], float] = time.monotonic,
    ):
        if slo_p99_ms <= 0:
            raise ValueError("slo_p99_ms must be positive")
        if not 0 < tighten_factor < 1:
            raise ValueError("tighten_factor must be in (0, 1)")
        if max_tighten_depth < 0:
            raise ValueError("max_tighten_depth must be >= 0")
        if cooldown_windows < 1 or clear_windows < 1:
            raise ValueError("cooldown_windows and clear_windows must be >= 1")
        if scale_fn is not None and not 1 <= min_workers <= max_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        self.metrics = metrics
        self.slo_p99_ms = float(slo_p99_ms)
        self.scale_fn = scale_fn
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.controllers = tuple(controllers)
        self.tighten_factor = float(tighten_factor)
        self.max_tighten_depth = int(max_tighten_depth)
        self.cooldown_windows = int(cooldown_windows)
        self.clear_windows = int(clear_windows)
        self._clock = clock
        self.workers = int(current_workers) if scale_fn is not None else 0
        self._original_targets = tuple(c.target_rerun_ratio for c in self.controllers)
        self._tighten_depth = 0
        self._window = 0
        self._windows_since_action = cooldown_windows  # first window may act
        self._healthy_streak = 0
        self._last_tick = clock()
        self.violation_seconds = 0.0
        self.decisions: list[ScalerDecision] = []

    @classmethod
    def for_server(cls, server, slo_p99_ms: float, **kwargs) -> "SLOAutoscaler":
        """Attach to a :class:`repro.serve.CascadeServer`.

        Wires the capacity actuator to ``server.resize_host_workers``
        when the server runs a parallel host pool (threshold-only mode
        otherwise) and collects every adaptive knob on the server's hops.
        """
        pool = server.host_pool_size
        scale_fn = server.resize_host_workers if pool else None
        if pool:
            kwargs.setdefault("min_workers", min(pool, kwargs.get("max_workers", 4)))
            kwargs.setdefault("max_workers", max(pool, 4))
        controllers = [c for c in server._hop_controllers if c is not None]
        return cls(
            metrics=server.metrics,
            slo_p99_ms=slo_p99_ms,
            scale_fn=scale_fn,
            current_workers=pool,
            controllers=controllers,
            **kwargs,
        )

    # -- state ---------------------------------------------------------------
    @property
    def tighten_depth(self) -> int:
        """Current admission-tightening level (0 = original targets)."""
        return self._tighten_depth

    @property
    def actions_taken(self) -> int:
        """Windows on which the scaler actually moved an actuator."""
        return sum(
            1 for d in self.decisions
            if d.action in ("scale_up", "tighten", "relax", "scale_down")
        )

    # -- control loop --------------------------------------------------------
    def observe_window(self) -> ScalerDecision:
        """Close one control window: read p99, maybe act, record obs."""
        now = self._clock()
        window_seconds = max(0.0, now - self._last_tick)
        self._last_tick = now
        samples = self.metrics.drain_latencies()
        if samples:
            p50_ms = percentile(samples, 50) * 1e3
            p99_ms = percentile(samples, 99) * 1e3
        else:
            # An empty window has no latency to violate: it counts as
            # healthy so a drained server walks back down to min workers.
            p50_ms = p99_ms = 0.0
        violating = p99_ms > self.slo_p99_ms
        violation_seconds = window_seconds if violating else 0.0
        self._window += 1
        self._windows_since_action += 1

        if violating:
            self._healthy_streak = 0
            if self._windows_since_action >= self.cooldown_windows:
                action = self._escalate()
            else:
                action = "observe"
        else:
            self._healthy_streak += 1
            if (
                self._healthy_streak >= self.clear_windows
                and self._windows_since_action >= self.cooldown_windows
            ):
                action = self._deescalate()
            else:
                action = "hold"
        if action in ("scale_up", "tighten", "relax", "scale_down"):
            self._windows_since_action = 0

        decision = ScalerDecision(
            window=self._window - 1,
            samples=len(samples),
            p50_ms=p50_ms,
            p99_ms=p99_ms,
            violating=violating,
            action=action,
            workers=self.workers,
            tighten_depth=self._tighten_depth,
            window_seconds=window_seconds,
            violation_seconds=violation_seconds,
        )
        self.decisions.append(decision)
        if violation_seconds:
            self.violation_seconds += violation_seconds
            obs.count("slo.violation_seconds", violation_seconds)
        obs.gauge("slo.workers", self.workers)
        obs.instant(
            "slo.decision",
            window=decision.window,
            action=action,
            p99_ms=round(p99_ms, 3),
            slo_p99_ms=self.slo_p99_ms,
            workers=self.workers,
            tighten_depth=self._tighten_depth,
            samples=len(samples),
        )
        return decision

    # -- actuators -----------------------------------------------------------
    def _escalate(self) -> str:
        if self.scale_fn is not None and self.workers < self.max_workers:
            self.workers = self.scale_fn(self.workers + 1)
            return "scale_up"
        if self.controllers and self._tighten_depth < self.max_tighten_depth:
            self._tighten_depth += 1
            self._apply_targets()
            return "tighten"
        return "saturated"

    def _deescalate(self) -> str:
        if self._tighten_depth > 0:
            self._tighten_depth -= 1
            self._apply_targets()
            return "relax"
        if self.scale_fn is not None and self.workers > self.min_workers:
            self.workers = self.scale_fn(self.workers - 1)
            return "scale_down"
        return "hold"

    def _apply_targets(self) -> None:
        factor = self.tighten_factor ** self._tighten_depth
        for controller, original in zip(self.controllers, self._original_targets):
            controller.target_rerun_ratio = original * factor
