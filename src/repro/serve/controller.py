"""Adaptive DMU-threshold control (the paper's operating point, closed-loop).

The paper selects the DMU threshold *offline*: sweep thresholds on the
training set and pick the one whose rerun ratio hits the wanted
accuracy/throughput balance (Fig. 5).  That choice bakes in one score
distribution; live traffic drifts, and by Eq. (1) the host stage
saturates as soon as the realized ``R_rerun`` exceeds
``t_bnn / t_fp`` — throughput then collapses to ``1 / (t_fp * R_rerun)``.

:class:`AdaptiveThresholdController` makes the selection dynamic: an
integral controller nudges the threshold after every BNN batch so the
exponentially-weighted rerun ratio tracks ``target_rerun_ratio``, and
overload feedback (images the server had to degrade because the host
queue was full) pushes the threshold down further, shedding host work
*before* queueing delay explodes.  Static thresholds remain available by
passing ``gain=0``.
"""

from __future__ import annotations

import threading
from typing import Sequence

__all__ = ["AdaptiveThresholdController", "LadderThresholdController"]


class AdaptiveThresholdController:
    """Integral controller holding the cascade's rerun ratio at a target.

    The plant: with DMU confidence ``c`` an image is rerun iff
    ``c < threshold``, so the rerun ratio is the confidence CDF at the
    threshold — continuous and non-decreasing in the threshold.  An
    integral term therefore converges to the unique threshold whose rerun
    ratio equals the target whenever the target is reachable.

    Parameters
    ----------
    initial_threshold:
        Starting DMU threshold (also the value used before any feedback).
    target_rerun_ratio:
        Steady-state fraction of traffic to re-process on the host.
    gain:
        Integral gain in threshold-units per unit of rerun-ratio error
        per observation.  ``0`` freezes the threshold (static operation).
    ewma_alpha:
        Smoothing of the observed rerun ratio (1 = use only the latest
        batch).
    overload_backoff:
        Extra threshold decrement per observation, scaled by the fraction
        of the batch that had to be degraded (host queue full).
    min_threshold / max_threshold:
        Clamp range; also the graceful-degradation floor/ceiling.
    """

    def __init__(
        self,
        initial_threshold: float = 0.84,
        target_rerun_ratio: float = 0.3,
        gain: float = 0.08,
        ewma_alpha: float = 0.25,
        overload_backoff: float = 0.2,
        min_threshold: float = 0.0,
        max_threshold: float = 1.0,
    ):
        if not 0.0 <= initial_threshold <= 1.0:
            raise ValueError("initial_threshold must be in [0, 1]")
        if not 0.0 <= target_rerun_ratio <= 1.0:
            raise ValueError("target_rerun_ratio must be in [0, 1]")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if gain < 0 or overload_backoff < 0:
            raise ValueError("gain and overload_backoff must be >= 0")
        if not 0.0 <= min_threshold <= max_threshold <= 1.0:
            raise ValueError("need 0 <= min_threshold <= max_threshold <= 1")
        self.target_rerun_ratio = float(target_rerun_ratio)
        self.gain = float(gain)
        self.ewma_alpha = float(ewma_alpha)
        self.overload_backoff = float(overload_backoff)
        self.min_threshold = float(min_threshold)
        self.max_threshold = float(max_threshold)
        self._lock = threading.Lock()
        self._threshold = float(initial_threshold)
        self._ewma_rerun: float | None = None
        self._observations = 0

    @property
    def threshold(self) -> float:
        with self._lock:
            return self._threshold

    @property
    def observed_rerun_ratio(self) -> float:
        """Current EWMA of the rerun ratio (target before any feedback)."""
        with self._lock:
            return self.target_rerun_ratio if self._ewma_rerun is None else self._ewma_rerun

    @property
    def observations(self) -> int:
        with self._lock:
            return self._observations

    def observe(self, total: int, rerun: int, degraded: int = 0) -> float:
        """Feed one batch's decisions back; returns the updated threshold.

        ``rerun`` counts images *flagged* for the host (including those
        later degraded); ``degraded`` counts the subset the server had to
        answer with the BNN result because the host queue was full.
        """
        if total <= 0:
            return self.threshold
        if not 0 <= rerun <= total or not 0 <= degraded <= rerun:
            raise ValueError("need 0 <= degraded <= rerun <= total")
        batch_ratio = rerun / total
        with self._lock:
            if self._ewma_rerun is None:
                self._ewma_rerun = batch_ratio
            else:
                a = self.ewma_alpha
                self._ewma_rerun = (1 - a) * self._ewma_rerun + a * batch_ratio
            step = self.gain * (self.target_rerun_ratio - self._ewma_rerun)
            step -= self.overload_backoff * (degraded / total)
            self._threshold = min(
                self.max_threshold, max(self.min_threshold, self._threshold + step)
            )
            self._observations += 1
            return self._threshold


class LadderThresholdController:
    """Multi-knob routing policy: one integral controller per ladder hop.

    An N-stage precision ladder (``docs/LADDER.md``) has ``N - 1``
    forwarding decisions, each with its own DMU threshold.  This class
    composes one :class:`AdaptiveThresholdController` per hop — knob
    ``i`` regulates the forward ratio ``r_i`` of stage ``i`` toward its
    own target, which via Eq. (1') sets the reach products ``R_i`` and
    hence which rung Eq. (1N) makes the bottleneck.  The knobs are
    independent by design: each hop's plant (its confidence CDF) only
    depends on its own threshold, while upstream knobs merely rescale
    its traffic volume, which a ratio controller is invariant to.

    :class:`repro.serve.CascadeServer` feeds each knob from the stage
    worker that owns it; hop 0 is the BNN's DMU, hop ``N-2`` gates entry
    to the final (host) rung.
    """

    def __init__(self, knobs: Sequence[AdaptiveThresholdController]):
        knobs = tuple(knobs)
        if not knobs:
            raise ValueError("need at least one knob (one per ladder hop)")
        self.knobs = knobs

    @classmethod
    def from_targets(
        cls,
        initial_thresholds: Sequence[float],
        target_forward_ratios: Sequence[float],
        **kwargs,
    ) -> "LadderThresholdController":
        """One knob per hop from parallel threshold/target lists.

        ``kwargs`` (``gain``, ``ewma_alpha``, ...) are shared by every
        knob; build the knobs by hand for per-hop tuning.
        """
        if len(initial_thresholds) != len(target_forward_ratios):
            raise ValueError("need one target per initial threshold")
        return cls(
            [
                AdaptiveThresholdController(
                    initial_threshold=float(thr),
                    target_rerun_ratio=float(target),
                    **kwargs,
                )
                for thr, target in zip(initial_thresholds, target_forward_ratios)
            ]
        )

    @property
    def num_hops(self) -> int:
        return len(self.knobs)

    @property
    def thresholds(self) -> list[float]:
        return [knob.threshold for knob in self.knobs]

    def threshold_for(self, hop: int) -> float:
        return self.knobs[hop].threshold

    def observe(self, hop: int, total: int, forwarded: int, degraded: int = 0) -> float:
        """Feed one batch of hop *hop*'s decisions; returns its threshold.

        ``forwarded`` plays the role of ``rerun`` on the underlying
        knob: images the stage's DMU flagged for the next rung
        (including any later degraded).
        """
        return self.knobs[hop].observe(total=total, rerun=forwarded, degraded=degraded)
