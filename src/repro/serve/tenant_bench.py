"""Two-tenant cache benchmark (``repro serve-tenants``).

Drives a :class:`~repro.serve.tenancy.MultiTenantServer` — tenant
``model-a`` (host = Model A) and tenant ``model-c`` (host = Model C),
sharing one DRR-scheduled :class:`~repro.serve.tenancy.SharedHostPool`
— with the open-loop :class:`~repro.traffic.source.VideoTrafficSource`
trace, twice:

* the **no_cache** leg (``cache_max_bytes=0``) recomputes every frame;
* the **cached** leg fronts both tenants with one content-addressed
  :class:`repro.cache.ResultCache` (per-tenant namespaces).

The video source's ``repeat_frames`` hold knob makes the duplicate
fraction *exact by construction* — each frame's crops are re-emitted
``repeat_frames`` times referencing the same payload — so the report
can assert, not estimate:

1. cache hit rate (hits + single-flight coalesces) >= the trace's
   duplicate fraction,
2. cached-leg throughput strictly above the no-cache leg,
3. cached answers bit-identical to the cold server's, per payload and
   per tenant,
4. per-tenant and global books balance
   (``accepted + rerun + degraded + cache_hits + failed == submitted``),
5. the cache's own books reconcile (``hits + misses == lookups``).

``repro serve-tenants`` prints the table and writes the JSON report
(``benchmarks/results/BENCH_cache.json``), exiting nonzero unless every
check passes.

The BNN stage is a seeded hash of the image bytes (a pure function of
content, so caching correctness is checkable bit-for-bit) plus a
``t_bnn`` sleep to model its compute; the *host* stages are the real
Model A / Model C inference engines, so the pool's per-tenant cost EWMA
tracks genuinely different measured ``t_fp``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass

import numpy as np

from ..core.dmu import DecisionMakingUnit
from ..core.report import format_percent, format_rate, render_table
from .tenancy import MultiTenantServer, TenantSpec

__all__ = [
    "TenantBenchConfig",
    "hashed_scores_fn",
    "run_tenant_bench",
    "format_tenant_bench",
    "write_tenant_bench",
]

TENANT_A = "model-a"
TENANT_C = "model-c"


@dataclass(frozen=True)
class TenantBenchConfig:
    """One serve-tenants scenario (defaults sized for a CI smoke run)."""

    num_frames: int = 24
    #: Trace presentation rate; repeats of a frame land 1/fps apart.
    fps: float = 30.0
    #: Duplicate knob: exact duplicate fraction = (repeat_frames-1)/repeat_frames.
    repeat_frames: int = 3
    #: Replay the trace this many times faster than recorded, so the
    #: legs are compute-bound and the cache's win shows in throughput.
    time_scale: float = 25.0
    lanes: int = 2
    quantum_s: float = 0.002
    max_pending: int = 64
    cache_max_bytes: int = 32 * 1024 * 1024
    quota: int = 4096
    #: DRR weights of the two tenants (host-seconds shares under load).
    weight_a: float = 2.0
    weight_c: float = 1.0
    #: Width scales of the real host models.
    scale_a: float = 0.15
    scale_c: float = 0.15
    #: Static DMU threshold (no controller: decisions must be a pure
    #: function of the image for the bit-identity check).
    threshold: float = 0.9
    t_bnn: float = 0.002
    host_workers: int | None = None
    seed: int = 0

    @property
    def duplicate_fraction(self) -> float:
        return (self.repeat_frames - 1) / self.repeat_frames


def hashed_scores_fn(t_bnn: float = 0.0):
    """A pure-function-of-content BNN stage for cache benchmarks.

    Each image's 10-way score vector is drawn from a generator seeded by
    the blake2b digest of its bytes: deterministic per content (the
    property the bit-identity check leans on), continuous margins (so a
    mid-range DMU threshold splits traffic), and microseconds per image
    — with an optional ``t_bnn`` sleep to model the real stage's cost.
    """

    def fn(images: np.ndarray) -> np.ndarray:
        if t_bnn:
            time.sleep(t_bnn * len(images))
        out = np.empty((len(images), 10))
        for i, image in enumerate(images):
            digest = hashlib.blake2b(
                np.ascontiguousarray(image).tobytes(), digest_size=8
            ).digest()
            rng = np.random.default_rng(int.from_bytes(digest, "big"))
            out[i] = rng.normal(size=10)
        return out

    return fn


def _margin_dmu(threshold: float) -> DecisionMakingUnit:
    weights = np.zeros(10)
    weights[0], weights[1] = 4.0, -4.0
    return DecisionMakingUnit(weights, bias=0.0, threshold=threshold)


def _host_fn(build, scale: float, seed: int):
    """Real host model: argmax over the compiled inference fast path."""
    net = build(scale=scale, rng=np.random.default_rng(seed))
    net.eval_mode()
    engine = net.compile_inference(micro_batch=16)

    def fn(images: np.ndarray) -> np.ndarray:
        return engine.predict_scores(np.asarray(images)).argmax(axis=1)

    return fn


def _build_server(config: TenantBenchConfig, cache_max_bytes: int) -> MultiTenantServer:
    from ..models.host_models import build_model_a, build_model_c

    specs = [
        TenantSpec(
            name=TENANT_A,
            bnn_scores_fn=hashed_scores_fn(config.t_bnn),
            dmu=_margin_dmu(config.threshold),
            host_predict_fn=_host_fn(build_model_a, config.scale_a, config.seed),
            weight=config.weight_a,
            quota=config.quota,
            server_kwargs={"controller": config.threshold},
        ),
        TenantSpec(
            name=TENANT_C,
            bnn_scores_fn=hashed_scores_fn(config.t_bnn),
            dmu=_margin_dmu(config.threshold),
            host_predict_fn=_host_fn(build_model_c, config.scale_c, config.seed + 1),
            weight=config.weight_c,
            quota=config.quota,
            server_kwargs={"controller": config.threshold},
        ),
    ]
    return MultiTenantServer(
        specs,
        lanes=config.lanes,
        quantum_s=config.quantum_s,
        max_pending=config.max_pending,
        cache_max_bytes=cache_max_bytes,
        host_workers=config.host_workers,
    )


def _run_leg(config: TenantBenchConfig, trace, payloads, cache_max_bytes: int) -> dict:
    """One full replay of the trace against both tenants; drained books."""
    from ..serve.resilience import ServerClosed
    from ..traffic.replay import TraceReplayer

    answers: dict[str, dict[int, tuple]] = {TENANT_A: {}, TENANT_C: {}}
    with _build_server(config, cache_max_bytes) as server:
        start = time.monotonic()
        handles = {}
        for tenant in (TENANT_A, TENANT_C):
            replayer = TraceReplayer(
                lambda img, _t=tenant: server.submit(img, tenant=_t),
                payloads,
                time_scale=config.time_scale,
                stop_on=(ServerClosed,),
            )
            handles[tenant] = replayer.replay_in_thread(trace, name=f"replay-{tenant}")
        results = {t: h.join(timeout=300.0) for t, h in handles.items()}
        identical_within_leg = True
        answered = 0
        for tenant, result in results.items():
            for request in result.requests:
                if request.future is None:
                    continue
                r = request.future.result(timeout=60.0)
                answered += 1
                answer = (int(r.prediction), int(r.bnn_prediction), float(r.confidence))
                seen = answers[tenant].setdefault(request.payload_ref, answer)
                if seen != answer:
                    identical_within_leg = False
        wall = time.monotonic() - start
        snap = server.snapshot()
    tenants = {}
    for name, t in snap.tenants.items():
        m = t.metrics
        tenants[name] = {
            "submitted": m.submitted,
            "accepted": m.accepted,
            "rerun": m.rerun,
            "degraded": m.degraded,
            "cache_hits": m.cache_hits,
            "failed": m.failed,
            "rejected": t.rejected,
            "balanced": t.balanced,
            "pool_scheduled": t.pool.scheduled,
            "pool_images": t.pool.images_executed,
            "pool_busy_seconds": t.pool.busy_seconds,
            "measured_t_fp": t.pool.cost_s_per_image,
            "weight": t.weight,
        }
    cache = None
    if snap.cache is not None:
        cache = dict(asdict(snap.cache), hit_rate=snap.cache.hit_rate,
                     balanced=snap.cache.balanced)
    submitted = snap.submitted
    cache_hits = sum(t.metrics.cache_hits for t in snap.tenants.values())
    return {
        "wall_seconds": wall,
        "answered": answered,
        "throughput_ips": answered / wall if wall > 0 else float("nan"),
        "submitted": submitted,
        "served_from_cache": cache_hits,
        "hit_rate": cache_hits / submitted if submitted else 0.0,
        "books_balanced": snap.balanced,
        "tenants": tenants,
        "cache": cache,
        "answers": answers,
        "identical_within_leg": identical_within_leg,
    }


def run_tenant_bench(config: TenantBenchConfig | None = None) -> dict:
    config = config or TenantBenchConfig()
    from ..traffic.source import VideoTrafficSource

    source = VideoTrafficSource(
        fps=config.fps, seed=config.seed, repeat_frames=config.repeat_frames
    )
    trace, payloads = source.build(config.num_frames)

    legs = {
        "no_cache": _run_leg(config, trace, payloads, cache_max_bytes=0),
        "cached": _run_leg(
            config, trace, payloads, cache_max_bytes=config.cache_max_bytes
        ),
    }
    # Bit-identity across legs: the cached leg's answer for every payload
    # must equal the cold (no-cache) server's, tenant by tenant.
    bit_identical = all(leg["identical_within_leg"] for leg in legs.values())
    for tenant in (TENANT_A, TENANT_C):
        cold = legs["no_cache"]["answers"][tenant]
        warm = legs["cached"]["answers"][tenant]
        if set(cold) != set(warm) or any(cold[ref] != warm[ref] for ref in cold):
            bit_identical = False
    for leg in legs.values():
        del leg["answers"]  # not JSON material; the check above consumed them

    checks = {
        "hit_rate_ge_duplicate_fraction": (
            legs["cached"]["hit_rate"] >= config.duplicate_fraction
        ),
        "cached_throughput_above_no_cache": (
            legs["cached"]["throughput_ips"] > legs["no_cache"]["throughput_ips"]
        ),
        "bit_identical": bit_identical,
        "books_balanced": all(leg["books_balanced"] for leg in legs.values()),
        "cache_books_balanced": (
            legs["cached"]["cache"] is not None
            and legs["cached"]["cache"]["balanced"]
        ),
    }
    return {
        "config": asdict(config),
        "duplicate_fraction": config.duplicate_fraction,
        "trace_events": len(trace.events),
        "unique_payloads": len(payloads),
        "legs": legs,
        "checks": checks,
        "ok": all(checks.values()),
    }


def format_tenant_bench(report: dict) -> str:
    rows = []
    for label, leg in report["legs"].items():
        rows.append([
            label,
            str(leg["submitted"]),
            format_rate(leg["throughput_ips"]),
            format_percent(leg["hit_rate"]),
            str(leg["served_from_cache"]),
            "OK" if leg["books_balanced"] else "IMBALANCED",
        ])
    table = render_table(
        ["leg", "submitted", "img/s", "hit rate", "from cache", "books"],
        rows,
        title=(
            "serve-tenants: two tenants, one shared DRR host pool, "
            f"video trace x{report['config']['repeat_frames']} frame hold "
            f"(duplicate fraction {report['duplicate_fraction']:.0%}, "
            f"{report['trace_events']} events/tenant over "
            f"{report['unique_payloads']} unique crops)"
        ),
    )
    tenant_lines = []
    for label, leg in report["legs"].items():
        for name, t in leg["tenants"].items():
            tenant_lines.append(
                f"  {label:<9} {name:<8} w={t['weight']:g} submitted "
                f"{t['submitted']} = accepted {t['accepted']} + rerun "
                f"{t['rerun']} + degraded {t['degraded']} + cache "
                f"{t['cache_hits']} + failed {t['failed']} "
                f"({'OK' if t['balanced'] else 'IMBALANCED'}); pool ran "
                f"{t['pool_images']} imgs in {t['pool_busy_seconds'] * 1e3:.0f} ms, "
                f"measured t_fp {t['measured_t_fp'] * 1e3:.2f} ms/img"
            )
    cache = report["legs"]["cached"]["cache"]
    cache_line = ""
    if cache is not None:
        cache_line = (
            f"\n\ncache books: lookups {cache['lookups']} = hits {cache['hits']} "
            f"+ misses {cache['misses']} "
            f"({'OK' if cache['balanced'] else 'IMBALANCED'}); "
            f"{cache['entries']} entries / {cache['bytes']}B of "
            f"{cache['max_bytes']}B"
        )
    checks = "\n".join(
        f"  [{'PASS' if ok else 'FAIL'}] {name}"
        for name, ok in report["checks"].items()
    )
    return (
        table
        + "\n\nper-tenant books (shared pool, weighted DRR):\n"
        + "\n".join(tenant_lines)
        + cache_line
        + "\n\nchecks:\n" + checks
    )


def write_tenant_bench(report: dict, path: str):
    import json
    from pathlib import Path

    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out
