"""Multi-tenant serving: named models sharing one host compute pool.

One deployment rarely serves one model.  :class:`MultiTenantServer`
runs N named *tenants* — each a full :class:`CascadeServer` (its own
BNN, DMU, ladder, threshold policy and :class:`ServerMetrics`) fronted
by a :class:`repro.cache.CachingFrontend` — while the expensive
host-stage compute is **shared**: every tenant's host re-inference
calls flow through one :class:`SharedHostPool`, which schedules them
with weighted deficit-round-robin (DRR) over per-tenant bounded
queues:

* **cost-based** — a work item costs ``len(batch) × cost_s_per_image``
  where the per-image cost is the tenant's *measured* host latency
  (EWMA of ``t_fp``, seeded from the spec), so a tenant with a 4×
  slower model consumes 4× the deficit per image and cannot starve the
  cheap tenants by submitting equal image counts;
* **weighted** — each visit tops a backlogged tenant's deficit up by
  ``quantum_s × weight``, so long-run host-seconds divide
  proportionally to the configured weights while every backlogged
  tenant keeps making progress (no strict-priority starvation);
* **bounded banking** — an idle tenant's deficit resets, and a blocked
  tenant's deficit never exceeds its head item's cost plus one
  quantum, so nobody hoards credit while waiting.

Admission control is per tenant: :meth:`MultiTenantServer.submit`
raises :class:`TenantQuotaExceeded` once the tenant's in-flight count
reaches its quota (the request is *not* booked as submitted), and
:class:`UnknownTenant` for names never registered.  Books therefore
balance per tenant **and** globally:
``accepted + rerun + degraded + cache_hits + failed == submitted``.

With ``host_workers`` (or ``REPRO_HOST_WORKERS``) set, each tenant's
raw host callable is wrapped in its own
:class:`repro.parallel.ParallelHostRunner` before registration, so DRR
arbitrates *which tenant* runs while the process pool accelerates *how
fast* that tenant's batch runs.

See ``docs/TENANCY.md`` for the design and a worked two-tenant
example; ``repro serve-tenants`` drives two tenants from one video
trace and writes ``benchmarks/results/BENCH_cache.json``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from .. import obs
from .metrics import MetricsSnapshot, ServerMetrics
from .server import CascadeServer

if TYPE_CHECKING:
    # Import cycle: repro.cache.front imports repro.serve.  The
    # annotations below stay lazy (PEP 563); the classes are imported at
    # construction time in MultiTenantServer.__init__ instead.
    from ..cache import CacheSnapshot, ResultCache  # noqa: F401

__all__ = [
    "MultiTenantServer",
    "MultiTenantSnapshot",
    "PoolTenantStats",
    "SharedHostPool",
    "TenantQuotaExceeded",
    "TenantSnapshot",
    "TenantSpec",
    "UnknownTenant",
]


class UnknownTenant(KeyError):
    """Submit named a tenant that was never registered."""


class TenantQuotaExceeded(RuntimeError):
    """The tenant is at its in-flight quota; the request was not admitted."""


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: model configuration + share of the common pool.

    ``bnn_scores_fn`` / ``dmu`` / ``host_predict_fn`` are the tenant's
    own cascade (exactly the :class:`CascadeServer` arguments);
    ``server_kwargs`` passes anything else through (``ladder=``,
    ``controller=``, queue capacities, ...).

    ``weight`` is the DRR share of the host pool, ``quota`` the maximum
    in-flight requests admitted, ``cost_s_per_image`` the initial
    estimate of the tenant's per-image host latency (refined online by
    the pool's EWMA).
    """

    name: str
    bnn_scores_fn: Callable[[np.ndarray], np.ndarray]
    dmu: Any
    host_predict_fn: Callable[[np.ndarray], np.ndarray]
    weight: float = 1.0
    quota: int = 256
    cost_s_per_image: float = 1e-3
    server_kwargs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.quota < 1:
            raise ValueError("quota must be >= 1")
        if self.cost_s_per_image <= 0:
            raise ValueError("cost_s_per_image must be positive")


# -- shared host pool ---------------------------------------------------------

class _Work:
    __slots__ = ("images", "future", "cost_s")

    def __init__(self, images: np.ndarray, cost_s: float):
        self.images = images
        self.future: Future = Future()
        self.cost_s = cost_s


class _PoolTenant:
    __slots__ = (
        "name", "predict_fn", "weight", "queue", "deficit",
        "cost_s_per_image", "scheduled", "images_executed", "busy_seconds",
    )

    def __init__(self, name, predict_fn, weight, cost_s_per_image):
        self.name = name
        self.predict_fn = predict_fn
        self.weight = float(weight)
        self.queue: deque[_Work] = deque()
        self.deficit = 0.0
        self.cost_s_per_image = float(cost_s_per_image)
        self.scheduled = 0          # work items executed
        self.images_executed = 0
        self.busy_seconds = 0.0     # measured host time consumed


@dataclass(frozen=True)
class PoolTenantStats:
    """Per-tenant scheduling books of a :class:`SharedHostPool`."""

    name: str
    weight: float
    scheduled: int
    images_executed: int
    busy_seconds: float
    cost_s_per_image: float
    queued: int
    deficit: float


class SharedHostPool:
    """Weighted deficit-round-robin executor of tenant host batches.

    *lanes* dispatcher threads pull one work item at a time; which
    item is decided by DRR over the registered tenants' queues (see
    module docs for the exact crediting rule).  Tenant host callables
    run *outside* the scheduler lock, so slow models never block the
    scheduling of other lanes.

    The pool is model-agnostic: each tenant registers its own
    ``images -> labels`` callable (possibly a
    :class:`repro.parallel.ParallelHostRunner`), and an exception it
    raises propagates to that tenant's waiting host worker only —
    fault containment between tenants is preserved.
    """

    def __init__(
        self,
        lanes: int = 1,
        quantum_s: float = 0.002,
        max_pending: int = 64,
        ewma_alpha: float = 0.2,
        clock: Callable[[], float] = time.monotonic,
    ):
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if quantum_s <= 0:
            raise ValueError("quantum_s must be positive")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if not 0 < ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.quantum_s = float(quantum_s)
        self.max_pending = int(max_pending)
        self._alpha = float(ewma_alpha)
        self._clock = clock
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._space_ready = threading.Condition(self._lock)
        self._tenants: dict[str, _PoolTenant] = {}
        self._order: list[_PoolTenant] = []
        self._cursor = 0
        self._closed = False
        self._lanes = [
            threading.Thread(target=self._lane_loop, name=f"pool-lane-{i}", daemon=True)
            for i in range(lanes)
        ]
        for t in self._lanes:
            t.start()

    @property
    def lanes(self) -> int:
        return len(self._lanes)

    def register(
        self,
        name: str,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        weight: float = 1.0,
        cost_s_per_image: float = 1e-3,
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Add a tenant; returns the blocking handle to use as its
        ``host_predict_fn`` (enqueue → DRR-scheduled execute → labels)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} already registered")
            tenant = _PoolTenant(name, predict_fn, weight, cost_s_per_image)
            self._tenants[name] = tenant
            self._order.append(tenant)

        def handle(images: np.ndarray) -> np.ndarray:
            return self._execute(tenant, np.asarray(images))

        return handle

    # -- producer side --------------------------------------------------------
    def _execute(self, tenant: _PoolTenant, images: np.ndarray) -> np.ndarray:
        work = _Work(images, cost_s=len(images) * tenant.cost_s_per_image)
        with self._lock:
            while len(tenant.queue) >= self.max_pending and not self._closed:
                self._space_ready.wait(timeout=0.1)
            if self._closed:
                raise RuntimeError("shared host pool is closed")
            tenant.queue.append(work)
            self._work_ready.notify()
        return work.future.result()

    # -- dispatcher side ------------------------------------------------------
    def _next_work(self) -> tuple[_PoolTenant, _Work] | None:
        """One DRR decision; caller holds the lock.  None = nothing queued."""
        n = len(self._order)
        while True:
            backlogged = 0
            for step in range(n):
                tenant = self._order[(self._cursor + step) % n]
                if not tenant.queue:
                    tenant.deficit = 0.0  # no banking while idle
                    continue
                backlogged += 1
                if tenant.deficit >= tenant.queue[0].cost_s:
                    work = tenant.queue.popleft()
                    tenant.deficit -= work.cost_s
                    # Stay on this tenant: DRR serves while credit lasts.
                    self._cursor = (self._cursor + step) % n
                    return tenant, work
            if not backlogged:
                return None
            # Nobody has enough credit: top every backlogged tenant up by
            # one weighted quantum, capped at head-cost + one quantum so a
            # blocked tenant cannot hoard credit.
            for tenant in self._order:
                if tenant.queue:
                    cap = tenant.queue[0].cost_s + self.quantum_s * tenant.weight
                    tenant.deficit = min(
                        tenant.deficit + self.quantum_s * tenant.weight, cap
                    )

    def _lane_loop(self) -> None:
        while True:
            with self._lock:
                picked = self._next_work()
                while picked is None and not self._closed:
                    self._work_ready.wait(timeout=0.1)
                    picked = self._next_work()
                if picked is None:  # closed and drained
                    return
                tenant, work = picked
                self._space_ready.notify_all()
            start = self._clock()
            try:
                with obs.trace_span("pool.execute", tenant=tenant.name,
                                    batch=len(work.images)):
                    labels = np.asarray(tenant.predict_fn(work.images))
            except BaseException as exc:
                self._account(tenant, work, self._clock() - start)
                work.future.set_exception(exc)
                continue
            self._account(tenant, work, self._clock() - start)
            work.future.set_result(labels)

    def _account(self, tenant: _PoolTenant, work: _Work, elapsed: float) -> None:
        with self._lock:
            tenant.scheduled += 1
            tenant.images_executed += len(work.images)
            tenant.busy_seconds += elapsed
            if len(work.images):
                per_image = elapsed / len(work.images)
                tenant.cost_s_per_image += self._alpha * (
                    per_image - tenant.cost_s_per_image
                )
        obs.count(f"tenant.{tenant.name}.scheduled", 1)

    # -- reading / lifecycle --------------------------------------------------
    def stats(self) -> dict[str, PoolTenantStats]:
        with self._lock:
            return {
                t.name: PoolTenantStats(
                    name=t.name,
                    weight=t.weight,
                    scheduled=t.scheduled,
                    images_executed=t.images_executed,
                    busy_seconds=t.busy_seconds,
                    cost_s_per_image=t.cost_s_per_image,
                    queued=len(t.queue),
                    deficit=t.deficit,
                )
                for t in self._order
            }

    def close(self, timeout: float | None = 5.0) -> None:
        """Stop the lanes; queued-but-unexecuted work fails (the owning
        tenant's host worker degrades those requests)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            stranded = [
                work for tenant in self._order for work in tenant.queue
            ]
            for tenant in self._order:
                tenant.queue.clear()
            self._work_ready.notify_all()
            self._space_ready.notify_all()
        for work in stranded:
            work.future.set_exception(RuntimeError("shared host pool is closed"))
        for lane in self._lanes:
            lane.join(timeout=timeout)

    def __enter__(self) -> "SharedHostPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the multi-tenant server --------------------------------------------------

@dataclass(frozen=True)
class TenantSnapshot:
    """One tenant's complete books at a point in time."""

    name: str
    metrics: MetricsSnapshot
    pool: PoolTenantStats
    rejected: int            # quota rejections (never booked as submitted)
    in_flight: int
    quota: int
    weight: float
    cache: CacheSnapshot | None = None

    @property
    def balanced(self) -> bool:
        m = self.metrics
        return (
            m.accepted + m.rerun + m.degraded + m.cache_hits + m.failed
            == m.submitted
        )


@dataclass(frozen=True)
class MultiTenantSnapshot:
    """All tenants + the global books-balancing invariant."""

    tenants: dict[str, TenantSnapshot]
    cache: CacheSnapshot | None = None

    @property
    def submitted(self) -> int:
        return sum(t.metrics.submitted for t in self.tenants.values())

    @property
    def terminal(self) -> int:
        return sum(
            t.metrics.accepted + t.metrics.rerun + t.metrics.degraded
            + t.metrics.cache_hits + t.metrics.failed
            for t in self.tenants.values()
        )

    @property
    def balanced(self) -> bool:
        """Global books: every submitted request reached one terminal state."""
        return self.terminal == self.submitted and all(
            t.balanced for t in self.tenants.values()
        )


class _Tenant:
    __slots__ = (
        "spec", "metrics", "server", "frontend", "runner",
        "in_flight", "rejected", "admit_lock",
    )


class MultiTenantServer:
    """N named cascade tenants over one DRR-scheduled host pool.

    Parameters
    ----------
    tenants:
        The :class:`TenantSpec` roster.  The first spec is the
        *default tenant* — requests that name no tenant (e.g. wire
        frames from pre-tenancy clients) are routed to it.
    lanes:
        Concurrent host executions in the shared pool (dispatcher
        threads).
    quantum_s / max_pending:
        DRR quantum and per-tenant pool queue bound (see
        :class:`SharedHostPool`).
    cache_max_bytes:
        Byte budget of the shared result cache; ``0`` disables caching
        entirely.  Keys are namespaced per tenant (same image, two
        models → two entries).
    cache_near_duplicate / cache_atol:
        Near-duplicate tier knobs (:class:`repro.cache.ResultCache`).
    host_workers:
        Per-tenant :class:`~repro.parallel.ParallelHostRunner` size
        (``None`` → ``REPRO_HOST_WORKERS`` env var; 0/unset → serial).
        Applied to each tenant's raw host callable *before* pool
        registration, so DRR decides which tenant runs and the process
        pool accelerates that tenant's batch.
    """

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        lanes: int = 1,
        quantum_s: float = 0.002,
        max_pending: int = 64,
        cache_max_bytes: int = 64 * 1024 * 1024,
        cache_near_duplicate: bool = False,
        cache_atol: float = 0.0,
        host_workers: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not tenants:
            raise ValueError("at least one TenantSpec is required")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        self._clock = clock
        self.pool = SharedHostPool(
            lanes=lanes, quantum_s=quantum_s, max_pending=max_pending, clock=clock
        )
        from ..cache import ResultCache

        self.cache: ResultCache | None = (
            ResultCache(
                max_bytes=cache_max_bytes,
                near_duplicate=cache_near_duplicate,
                atol=cache_atol,
            )
            if cache_max_bytes
            else None
        )
        from ..parallel import resolve_host_workers

        n_procs = resolve_host_workers(host_workers)
        self._tenants: dict[str, _Tenant] = {}
        self.default_tenant = tenants[0].name
        try:
            for spec in tenants:
                self._tenants[spec.name] = self._build_tenant(spec, n_procs)
        except BaseException:
            self.close()
            raise

    def _build_tenant(self, spec: TenantSpec, n_procs: int | None) -> _Tenant:
        tenant = _Tenant()
        tenant.spec = spec
        tenant.metrics = ServerMetrics(clock=self._clock)
        tenant.in_flight = 0
        tenant.rejected = 0
        tenant.admit_lock = threading.Lock()
        tenant.runner = None
        predict_fn = spec.host_predict_fn
        if n_procs is not None:
            from ..parallel import ParallelHostRunner

            tenant.runner = ParallelHostRunner(predict_fn=predict_fn, n_workers=n_procs)
            tenant.runner.set_metrics(tenant.metrics)
            predict_fn = tenant.runner
        handle = self.pool.register(
            spec.name,
            predict_fn,
            weight=spec.weight,
            cost_s_per_image=spec.cost_s_per_image,
        )
        # host_workers=0 pins the tenant server serial: the pool handle
        # must never be re-wrapped in a process pool (it is not
        # picklable, and parallelism already lives behind it).
        tenant.server = CascadeServer(
            bnn_scores_fn=spec.bnn_scores_fn,
            dmu=spec.dmu,
            host_predict_fn=handle,
            metrics=tenant.metrics,
            clock=self._clock,
            host_workers=0,
            **spec.server_kwargs,
        )
        if self.cache is not None:
            from ..cache import CachingFrontend

            tenant.frontend = CachingFrontend(
                tenant.server, self.cache, namespace=spec.name,
                metrics=tenant.metrics, clock=self._clock,
            )
        else:
            tenant.frontend = tenant.server
        return tenant

    # -- public API -----------------------------------------------------------
    @property
    def tenant_names(self) -> tuple[str, ...]:
        return tuple(self._tenants)

    def _lookup(self, name: str | None) -> _Tenant:
        if not name:
            name = self.default_tenant
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenant(name)
        return tenant

    def submit(self, image: np.ndarray, tenant: str | None = None) -> Future:
        """Admit one image for *tenant* (default: the first registered).

        Raises :class:`UnknownTenant` / :class:`TenantQuotaExceeded`
        before any accounting — a rejected request is never
        ``submitted`` and needs no terminal state.
        """
        t = self._lookup(tenant)
        with t.admit_lock:
            if t.in_flight >= t.spec.quota:
                t.rejected += 1
                obs.count(f"tenant.{t.spec.name}.rejected", 1)
                raise TenantQuotaExceeded(
                    f"tenant {t.spec.name!r} is at its quota of {t.spec.quota}"
                )
            t.in_flight += 1
        try:
            future = t.frontend.submit(image)
        except BaseException:
            with t.admit_lock:
                t.in_flight -= 1
            raise
        future.add_done_callback(lambda _f: self._release(t))
        return future

    def _release(self, t: _Tenant) -> None:
        with t.admit_lock:
            t.in_flight -= 1

    def classify_many(
        self, images, tenant: str | None = None, timeout: float | None = None
    ):
        futures = [self.submit(img, tenant=tenant) for img in images]
        return [f.result(timeout=timeout) for f in futures]

    def tenant_snapshot(self, name: str | None = None) -> TenantSnapshot:
        t = self._lookup(name)
        pool_stats = self.pool.stats()[t.spec.name]
        if self.cache is not None:
            t.metrics.set_cache_bytes(self.cache.bytes)
        with t.admit_lock:
            rejected, in_flight = t.rejected, t.in_flight
        return TenantSnapshot(
            name=t.spec.name,
            metrics=t.metrics.snapshot(),
            pool=pool_stats,
            rejected=rejected,
            in_flight=in_flight,
            quota=t.spec.quota,
            weight=t.spec.weight,
            cache=self.cache.snapshot() if self.cache is not None else None,
        )

    def snapshot(self) -> MultiTenantSnapshot:
        return MultiTenantSnapshot(
            tenants={name: self.tenant_snapshot(name) for name in self._tenants},
            cache=self.cache.snapshot() if self.cache is not None else None,
        )

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain every tenant's cascade, then stop the shared pool."""
        for tenant in getattr(self, "_tenants", {}).values():
            tenant.frontend.close(timeout)
        self.pool.close(timeout=timeout)
        for tenant in getattr(self, "_tenants", {}).values():
            if tenant.runner is not None:
                tenant.runner.close()

    def __enter__(self) -> "MultiTenantServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
