"""Concurrent cascade inference server (Fig. 1, request-driven).

:class:`repro.core.MultiPrecisionPipeline` computes the cascade offline,
one big array in, one big array out.  :class:`CascadeServer` runs the
same BNN → DMU → host cascade as a concurrent system of workers joined
by bounded queues, which is how the paper's hardware actually behaves
(the FPGA streams batches while the ARM host re-processes the previous
batch's flagged subset in parallel):

    submit() ──► MicroBatcher ──► bnn queue ──► BNN worker ──► futures
                  (size/deadline)   (bounded)       │ DMU accept
                                                    │ DMU flag
                                              host queue (bounded)
                                                    │        │ Full → degrade:
                                              host workers   │ answer with the
                                                    └──► futures  BNN result

    Every bounded queue exerts backpressure upstream; the only queue that
    *sheds* instead of blocking is the host queue, because blocking there
    would stall the BNN for the exact traffic mix (R_rerun too high) that
    Eq. (1) says the host cannot absorb anyway.

An :class:`~repro.serve.controller.AdaptiveThresholdController` closes
the loop between the two stages at runtime; a plain float threshold
reproduces the paper's static operating point.

Paper anchors: Fig. 1 (cascade structure), Eq. (1) timing regime
(host-bound vs BNN-bound).  When a :mod:`repro.obs` tracer is installed
the workers emit ``serve.enqueue`` / ``serve.bnn`` / ``serve.dmu`` /
``serve.host`` spans plus queue-depth gauges and accepted/rerun/degraded
counters; with no tracer installed the instrumentation is a no-op.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from .. import obs
from ..core.dmu import DecisionMakingUnit
from .batcher import MicroBatcher
from .controller import AdaptiveThresholdController
from .metrics import MetricsSnapshot, ServerMetrics

__all__ = ["ServeResult", "CascadeServer"]

_SHUTDOWN = object()

BNN_QUEUE = "bnn"
HOST_QUEUE = "host"


@dataclass(frozen=True)
class ServeResult:
    """Answer to one serving request."""

    prediction: int
    bnn_prediction: int
    confidence: float
    source: str                # "bnn" | "host" | "degraded"
    latency_seconds: float

    @property
    def rerun(self) -> bool:
        return self.source == "host"


class _Request:
    __slots__ = ("image", "future", "submit_ts", "bnn_prediction", "confidence")

    def __init__(self, image: np.ndarray, submit_ts: float):
        self.image = image
        self.future: Future[ServeResult] = Future()
        self.submit_ts = submit_ts
        self.bnn_prediction = -1
        self.confidence = float("nan")


class CascadeServer:
    """Request-driven BNN + DMU + host cascade with adaptive thresholding.

    Parameters
    ----------
    bnn_scores_fn:
        Batch scorer of the fast stage: ``(N, ...) images -> (N, C)``
        class scores (e.g. :meth:`repro.bnn.FoldedBNN.class_scores`).
    dmu:
        Trained :class:`repro.core.DecisionMakingUnit`.
    host_predict_fn:
        Batch classifier of the accurate stage: ``(N, ...) images ->
        (N,)`` class labels (e.g. ``Sequential.predict_classes``).
    controller:
        Threshold policy.  A float gives the paper's static threshold; an
        :class:`AdaptiveThresholdController` adapts it at runtime.
        ``None`` uses ``dmu.threshold`` statically.
    max_batch_size / batch_delay_s:
        Micro-batcher limits for the BNN stage.
    bnn_queue_capacity / host_queue_capacity:
        Bounds of the inter-stage queues (batches / images respectively).
    num_host_workers:
        Host re-inference worker threads (the paper has one ARM core
        pool; scale up for stronger hosts).
    host_batch_size:
        Greedy drain limit per host inference call.
    """

    def __init__(
        self,
        bnn_scores_fn: Callable[[np.ndarray], np.ndarray],
        dmu: DecisionMakingUnit,
        host_predict_fn: Callable[[np.ndarray], np.ndarray],
        controller: AdaptiveThresholdController | float | None = None,
        max_batch_size: int = 32,
        batch_delay_s: float = 0.002,
        bnn_queue_capacity: int = 4,
        host_queue_capacity: int = 64,
        num_host_workers: int = 1,
        host_batch_size: int = 8,
        metrics: ServerMetrics | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if num_host_workers < 1:
            raise ValueError("num_host_workers must be >= 1")
        if host_queue_capacity < 1 or bnn_queue_capacity < 1:
            raise ValueError("queue capacities must be >= 1")
        self._bnn_scores_fn = bnn_scores_fn
        self._dmu = dmu
        self._host_predict_fn = host_predict_fn
        if controller is None:
            controller = float(dmu.threshold)
        if isinstance(controller, AdaptiveThresholdController):
            self._controller: AdaptiveThresholdController | None = controller
            self._static_threshold = controller.threshold
        else:
            self._controller = None
            self._static_threshold = float(controller)
            if not 0.0 <= self._static_threshold <= 1.0:
                raise ValueError("threshold must be in [0, 1]")
        self._clock = clock
        self.metrics = metrics if metrics is not None else ServerMetrics(clock=clock)
        self.metrics.register_queue(BNN_QUEUE, bnn_queue_capacity)
        self.metrics.register_queue(HOST_QUEUE, host_queue_capacity)
        self.metrics.record_threshold(self.threshold)

        self._bnn_queue: queue.Queue = queue.Queue(maxsize=bnn_queue_capacity)
        self._host_queue: queue.Queue = queue.Queue(maxsize=host_queue_capacity)
        self._host_batch_size = max(1, int(host_batch_size))
        self._closed = False
        self._close_lock = threading.Lock()

        self._batcher: MicroBatcher[_Request] = MicroBatcher(
            emit=self._enqueue_bnn_batch,
            max_batch_size=max_batch_size,
            max_delay_s=batch_delay_s,
            clock=clock,
        )
        self._bnn_thread = threading.Thread(
            target=self._bnn_loop, name="serve-bnn", daemon=True
        )
        self._host_threads = [
            threading.Thread(target=self._host_loop, name=f"serve-host-{i}", daemon=True)
            for i in range(num_host_workers)
        ]
        self._bnn_thread.start()
        for t in self._host_threads:
            t.start()

    # -- public API ---------------------------------------------------------
    @property
    def threshold(self) -> float:
        """The DMU threshold currently applied to new batches."""
        if self._controller is not None:
            return self._controller.threshold
        return self._static_threshold

    def submit(self, image: np.ndarray) -> Future:
        """Enqueue one image; resolves to a :class:`ServeResult`.

        Blocks (backpressure) while the front buffer is full; raises
        ``RuntimeError`` once the server is closed.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        request = _Request(np.asarray(image), self._clock())
        self._batcher.submit(request)
        return request.future

    def classify_many(self, images: Iterable[np.ndarray], timeout: float | None = None) -> list[ServeResult]:
        """Convenience: submit a stream and wait for every answer."""
        futures = [self.submit(img) for img in images]
        return [f.result(timeout=timeout) for f in futures]

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain every stage and join every worker thread.

        All requests accepted before ``close`` are answered; the call is
        idempotent and afterwards no worker threads remain.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._batcher.close(timeout=timeout)
        self._bnn_queue.put(_SHUTDOWN)
        self._bnn_thread.join(timeout=timeout)
        for _ in self._host_threads:
            self._host_queue.put(_SHUTDOWN)
        for t in self._host_threads:
            t.join(timeout=timeout)

    def __enter__(self) -> "CascadeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internal: batcher -> BNN queue -------------------------------------
    def _enqueue_bnn_batch(self, batch: list[_Request]) -> None:
        # Span covers the bounded put: its duration IS the backpressure.
        with obs.trace_span("serve.enqueue", batch=len(batch)):
            self._bnn_queue.put(batch)  # bounded: blocks, pushing backpressure up
        depth = self._bnn_queue.qsize()
        self.metrics.set_queue_depth(BNN_QUEUE, depth)
        obs.gauge("queue.bnn", depth)

    # -- internal: BNN worker ------------------------------------------------
    def _resolve(self, request: _Request, prediction: int, source: str) -> None:
        request.future.set_result(
            ServeResult(
                prediction=int(prediction),
                bnn_prediction=int(request.bnn_prediction),
                confidence=float(request.confidence),
                source=source,
                latency_seconds=self._clock() - request.submit_ts,
            )
        )

    def _bnn_loop(self) -> None:
        while True:
            batch = self._bnn_queue.get()
            self.metrics.set_queue_depth(BNN_QUEUE, self._bnn_queue.qsize())
            if batch is _SHUTDOWN:
                return
            start = self._clock()
            with obs.trace_span("serve.bnn", batch=len(batch)):
                images = np.stack([r.image for r in batch])
                scores = np.asarray(self._bnn_scores_fn(images))
            with obs.trace_span("serve.dmu", batch=len(batch)):
                predictions = scores.argmax(axis=1)
                confidence = np.atleast_1d(self._dmu.confidence(scores))
                threshold = self.threshold
                accept = confidence >= threshold
            self.metrics.observe_stage("bnn", self._clock() - start, count=len(batch))

            accepted = degraded = 0
            for i, request in enumerate(batch):
                request.bnn_prediction = int(predictions[i])
                request.confidence = float(confidence[i])
                if accept[i]:
                    self._resolve(request, predictions[i], "bnn")
                    accepted += 1
                    continue
                try:
                    self._host_queue.put_nowait(request)
                    depth = self._host_queue.qsize()
                    self.metrics.set_queue_depth(HOST_QUEUE, depth)
                    obs.gauge("queue.host", depth)
                except queue.Full:
                    # Graceful degradation: the host stage is saturated, so
                    # answer with the BNN result instead of stalling the
                    # fast stage (Eq. (1)'s host-bound regime).
                    self._resolve(request, predictions[i], "degraded")
                    degraded += 1
            flagged = len(batch) - accepted
            self.metrics.record_decisions(
                accepted=accepted, rerun=flagged - degraded, degraded=degraded
            )
            if obs.enabled():
                obs.count("serve.accepted", accepted)
                obs.count("serve.rerun", flagged - degraded)
                obs.count("serve.degraded", degraded)
            if self._controller is not None:
                new_threshold = self._controller.observe(
                    total=len(batch), rerun=flagged, degraded=degraded
                )
                self.metrics.record_threshold(new_threshold)
                obs.gauge("serve.threshold", new_threshold)

    # -- internal: host workers ----------------------------------------------
    def _take_host_requests(self) -> list[_Request] | None:
        first = self._host_queue.get()
        if first is _SHUTDOWN:
            return None
        requests = [first]
        while len(requests) < self._host_batch_size:
            try:
                item = self._host_queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Not ours to consume: hand it to a sibling worker.  Safe
                # to block — sentinels are only enqueued after the BNN
                # producer has exited.
                self._host_queue.put(item)
                break
            requests.append(item)
        depth = self._host_queue.qsize()
        self.metrics.set_queue_depth(HOST_QUEUE, depth)
        obs.gauge("queue.host", depth)
        return requests

    def _host_loop(self) -> None:
        while True:
            requests = self._take_host_requests()
            if requests is None:
                return
            start = self._clock()
            with obs.trace_span("serve.host", batch=len(requests)):
                images = np.stack([r.image for r in requests])
                predictions = np.asarray(self._host_predict_fn(images)).reshape(-1)
            self.metrics.observe_stage("host", self._clock() - start, count=len(requests))
            for request, prediction in zip(requests, predictions):
                self._resolve(request, prediction, "host")
