"""Concurrent cascade inference server (Fig. 1, request-driven).

:class:`repro.core.MultiPrecisionPipeline` computes the cascade offline,
one big array in, one big array out.  :class:`CascadeServer` runs the
same BNN → DMU → host cascade as a concurrent system of workers joined
by bounded queues, which is how the paper's hardware actually behaves
(the FPGA streams batches while the ARM host re-processes the previous
batch's flagged subset in parallel):

    submit() ──► MicroBatcher ──► bnn queue ──► BNN worker ──► futures
                  (size/deadline)   (bounded)       │ DMU accept
                                                    │ DMU flag
                                           stage-1 queue (bounded)
                                                    │ per-stage worker:
                                                    │ score, DMU accept
                                                    │ or forward residue
                                                   ...
                                              host queue (bounded)
                                                    │        │ Full → degrade:
                                              host workers   │ answer with the
                                                    └──► futures  best so far

    The default is the paper's 2-stage shape (no middle rungs).  Passing
    ``ladder=[LadderStage(...), ...]`` inserts quantized middle rungs
    between the BNN and the host — the N-stage precision ladder of
    ``docs/LADDER.md`` — each with its own bounded queue, worker thread,
    DMU and threshold knob.  Every bounded queue exerts backpressure
    upstream; the queues that *shed* instead of blocking are the
    forwarding queues (middle and host), because blocking there would
    stall the cheaper rungs for the exact traffic mix (reach ``R_i`` too
    high) that Eq. (1N) says the slower rungs cannot absorb anyway.

An :class:`~repro.serve.controller.AdaptiveThresholdController` closes
the loop between the two stages at runtime; a plain float threshold
reproduces the paper's static operating point, and a
:class:`~repro.serve.controller.LadderThresholdController` carries one
knob per hop for ladders.

Fault containment (``docs/ROBUSTNESS.md``): worker loops are crash-safe
— a raise inside any stage callable fails only the affected requests and
never kills a thread.  A BNN/DMU failure with no fallback answer fails
those futures with :class:`~repro.serve.resilience.StageFailure`; a DMU
failure *after* BNN scoring degrades to the BNN argmax; host failures
are retried under a :class:`~repro.serve.resilience.RetryPolicy`
(exponential backoff + jitter) and then degrade to the BNN answer; a
:class:`~repro.serve.resilience.CircuitBreaker` flips the server into a
degraded "accept BNN result, skip host" mode while the host stage is
tripping and recovers it after a cool-down.  Optional per-request
deadlines (``deadline_s``) bound tail latency: a request that misses its
deadline before the BNN answers fails with
:class:`~repro.serve.resilience.DeadlineExceeded`; after the BNN has
answered it degrades instead.  Every submitted request reaches exactly
one terminal state — a :class:`ServeResult` or an exception — even
across :meth:`CascadeServer.close` with work in flight
(:class:`~repro.serve.resilience.ServerClosed`).

Paper anchors: Fig. 1 (cascade structure), Eq. (1) timing regime
(host-bound vs BNN-bound); the degraded mode realizes CascadeCNN's
fall-back-to-low-precision semantics.  When a :mod:`repro.obs` tracer is
installed the workers emit ``serve.enqueue`` / ``serve.bnn`` /
``serve.dmu`` / ``serve.host`` spans plus queue-depth gauges,
accepted/rerun/degraded counters and fault/retry/deadline/breaker
events; with no tracer installed the instrumentation is a no-op.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from .. import obs
from ..core.dmu import DecisionMakingUnit
from ..core.ladder import LadderStage
from .batcher import MicroBatcher
from .controller import AdaptiveThresholdController, LadderThresholdController
from .metrics import MetricsSnapshot, ServerMetrics
from .resilience import (
    CircuitBreaker,
    DeadlineExceeded,
    RetryPolicy,
    ServerClosed,
    StageFailure,
)

__all__ = ["ServeResult", "CascadeServer"]

_SHUTDOWN = object()
#: Sentinel distinguishing "use a default CircuitBreaker" from "no breaker".
_DEFAULT = object()

BNN_QUEUE = "bnn"
HOST_QUEUE = "host"


@dataclass(frozen=True)
class ServeResult:
    """Answer to one serving request.

    ``source`` names what produced the answer: ``"bnn"`` (DMU accepted
    the fast stage), ``"degraded"`` (fell back to the best cheap answer),
    ``"host"`` or a middle-rung name (re-run above stage 0), or
    ``"cache"`` — re-served by a :class:`repro.cache.CachingFrontend`
    without running the cascade at all; ``cold_source`` then preserves
    the rung that produced the original cold answer.
    """

    prediction: int
    bnn_prediction: int
    confidence: float
    source: str                # "bnn" | "degraded" | "host" | "cache" | a rung name
    latency_seconds: float
    cold_source: str | None = None  # original rung behind a "cache" answer

    @property
    def rerun(self) -> bool:
        """True when a rung above stage 0 produced the answer."""
        return self.source not in ("bnn", "degraded", "cache")


class _Request:
    __slots__ = (
        "image", "future", "submit_ts", "deadline_ts", "bnn_prediction", "confidence",
        "last_prediction", "host_enqueue_ts",
    )

    def __init__(self, image: np.ndarray, submit_ts: float, deadline_ts: float | None):
        self.image = image
        self.future: Future[ServeResult] = Future()
        self.submit_ts = submit_ts
        self.deadline_ts = deadline_ts
        self.bnn_prediction = -1
        # Best answer produced so far (refined at every rung) — what a
        # degrade falls back to.  Equals bnn_prediction in 2-stage mode.
        self.last_prediction = -1
        self.confidence = float("nan")
        # Set whenever the request is enqueued to the *next* rung's
        # queue; the consuming worker books the queue-wait under
        # "<rung>_queue_wait".
        self.host_enqueue_ts = float("nan")


class CascadeServer:
    """Request-driven BNN + DMU + host cascade with adaptive thresholding.

    Parameters
    ----------
    bnn_scores_fn:
        Batch scorer of the fast stage: ``(N, ...) images -> (N, C)``
        class scores (e.g. :meth:`repro.bnn.FoldedBNN.class_scores`).
    dmu:
        Trained :class:`repro.core.DecisionMakingUnit`.
    host_predict_fn:
        Batch classifier of the accurate stage: ``(N, ...) images ->
        (N,)`` class labels (e.g. ``Sequential.predict_classes``).
    controller:
        Threshold policy.  A float gives the paper's static threshold; an
        :class:`AdaptiveThresholdController` adapts it at runtime.
        ``None`` uses ``dmu.threshold`` statically.  With a ladder, a
        :class:`LadderThresholdController` supplies one knob per hop
        (it must have ``len(ladder) + 1`` knobs); any other value
        applies to hop 0 only, with the middle rungs pinned to their
        stages' static thresholds.
    ladder:
        Optional middle rungs (:class:`repro.core.LadderStage`, cheapest
        first) inserted between the BNN and the host — each needs a DMU
        and gets its own bounded queue and worker thread.  ``None`` or
        empty reproduces the paper's 2-stage cascade exactly.
    ladder_queue_capacity:
        Bound of each middle rung's queue in images (default: the host
        queue capacity).
    max_batch_size / batch_delay_s:
        Micro-batcher limits for the BNN stage.
    bnn_queue_capacity / host_queue_capacity:
        Bounds of the inter-stage queues (batches / images respectively).
    num_host_workers:
        Host re-inference worker threads (the paper has one ARM core
        pool; scale up for stronger hosts).
    host_workers:
        Process-parallel host pool size.  When set (or via the
        ``REPRO_HOST_WORKERS`` env var), ``host_predict_fn`` is wrapped
        in a :class:`repro.parallel.ParallelHostRunner` that shards each
        host batch across that many worker *processes* over shared
        memory — the Eq. (1) ``t_fp -> t_fp / N`` lever.  The server
        owns and closes the pool.  Alternatively pass an existing
        ``ParallelHostRunner`` directly as ``host_predict_fn`` (the
        caller keeps ownership); either way its per-worker counters are
        bridged into :attr:`metrics`.  ``None`` with no env var keeps
        the plain serial callable.
    host_batch_size:
        Greedy drain limit per host inference call.
    deadline_s:
        Optional per-request deadline measured from ``submit``.  ``None``
        (default) disables deadline enforcement.  Deadlines are checked
        at stage boundaries — a call already executing is never
        interrupted (pure-python stages cannot be preempted safely).
    retry:
        :class:`RetryPolicy` for failed host re-inference calls
        (default: 2 retries, 10 ms base backoff, jitter).  Retries
        exhausted ⇒ the affected requests degrade to their BNN answer.
    breaker:
        :class:`CircuitBreaker` guarding the host path.  Default: a
        breaker with 5-failure threshold and 1 s cool-down on the
        server's clock.  Pass ``None`` to disable.  If the supplied
        breaker has no ``on_transition`` callback the server installs
        its metrics bridge.
    """

    def __init__(
        self,
        bnn_scores_fn: Callable[[np.ndarray], np.ndarray],
        dmu: DecisionMakingUnit,
        host_predict_fn: Callable[[np.ndarray], np.ndarray],
        controller: (
            AdaptiveThresholdController | LadderThresholdController | float | None
        ) = None,
        max_batch_size: int = 32,
        batch_delay_s: float = 0.002,
        bnn_queue_capacity: int = 4,
        host_queue_capacity: int = 64,
        num_host_workers: int = 1,
        host_workers: int | None = None,
        host_batch_size: int = 8,
        metrics: ServerMetrics | None = None,
        clock: Callable[[], float] = time.monotonic,
        deadline_s: float | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = _DEFAULT,  # type: ignore[assignment]
        ladder: Sequence[LadderStage] | None = None,
        ladder_queue_capacity: int | None = None,
    ):
        if num_host_workers < 1:
            raise ValueError("num_host_workers must be >= 1")
        if host_queue_capacity < 1 or bnn_queue_capacity < 1:
            raise ValueError("queue capacities must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        self._bnn_scores_fn = bnn_scores_fn
        self._dmu = dmu
        self._host_predict_fn = host_predict_fn

        # -- ladder topology: middle rungs between the BNN and the host.
        stages = tuple(ladder) if ladder else ()
        reserved = {"bnn", "host", "degraded"}
        names = [s.name for s in stages]
        if len(set(names)) != len(names) or reserved & set(names):
            raise ValueError(
                f"ladder stage names must be unique and none of {sorted(reserved)}"
            )
        for stage in stages:
            if stage.dmu is None:
                raise ValueError(
                    f"ladder stage {stage.name!r} forwards traffic and needs a DMU"
                )
        self._ladder_stages = stages
        num_hops = 1 + len(stages)
        if ladder_queue_capacity is None:
            ladder_queue_capacity = host_queue_capacity
        if ladder_queue_capacity < 1:
            raise ValueError("ladder_queue_capacity must be >= 1")

        # -- routing policy: one (static or adaptive) knob per hop.
        self._hop_controllers: list[AdaptiveThresholdController | None]
        self._hop_static: list[float] = [0.0] * num_hops
        if isinstance(controller, LadderThresholdController):
            if controller.num_hops != num_hops:
                raise ValueError(
                    f"LadderThresholdController has {controller.num_hops} knobs "
                    f"but the ladder has {num_hops} hops"
                )
            self._hop_controllers = list(controller.knobs)
        else:
            self._hop_controllers = [None] * num_hops
            hop0 = float(dmu.threshold) if controller is None else controller
            if isinstance(hop0, AdaptiveThresholdController):
                self._hop_controllers[0] = hop0
            else:
                self._hop_static[0] = float(hop0)
                if not 0.0 <= self._hop_static[0] <= 1.0:
                    raise ValueError("threshold must be in [0, 1]")
            for i, stage in enumerate(stages):
                thr = stage.effective_threshold
                if thr is None:
                    raise ValueError(
                        f"ladder stage {stage.name!r} has no threshold"
                    )
                self._hop_static[i + 1] = float(thr)
        self._clock = clock
        self.metrics = metrics if metrics is not None else ServerMetrics(clock=clock)
        self.metrics.register_queue(BNN_QUEUE, bnn_queue_capacity)
        for stage in stages:
            self.metrics.register_queue(stage.name, ladder_queue_capacity)
        self.metrics.register_queue(HOST_QUEUE, host_queue_capacity)
        self.metrics.record_threshold(self.threshold)

        # Optional process-parallel host pool (repro.parallel).
        self._host_runner, self._owns_host_runner = self._init_parallel_host(
            host_predict_fn, host_workers
        )
        if self._host_runner is not None:
            self._host_predict_fn = self._host_runner
            self._host_runner.set_metrics(self.metrics)

        self._deadline_s = deadline_s
        self._retry = retry if retry is not None else RetryPolicy()
        self._retry_rng = random.Random(0xC0FFEE)
        if breaker is _DEFAULT:
            breaker = CircuitBreaker(clock=clock)
        self._breaker: CircuitBreaker | None = breaker
        if self._breaker is not None and self._breaker._on_transition is None:
            self._breaker._on_transition = self._on_breaker_transition

        self._bnn_queue: queue.Queue = queue.Queue(maxsize=bnn_queue_capacity)
        self._mid_queues: list[queue.Queue] = [
            queue.Queue(maxsize=ladder_queue_capacity) for _ in stages
        ]
        self._host_queue: queue.Queue = queue.Queue(maxsize=host_queue_capacity)
        self._host_batch_size = max(1, int(host_batch_size))
        self._closed = False
        self._close_lock = threading.Lock()
        self._inflight: set[_Request] = set()
        self._inflight_lock = threading.Lock()

        self._batcher: MicroBatcher[_Request] = MicroBatcher(
            emit=self._enqueue_bnn_batch,
            max_batch_size=max_batch_size,
            max_delay_s=batch_delay_s,
            clock=clock,
        )
        self._bnn_thread = threading.Thread(
            target=self._bnn_loop, name="serve-bnn", daemon=True
        )
        self._mid_threads = [
            threading.Thread(
                target=self._mid_loop, args=(i,), name=f"serve-{stage.name}",
                daemon=True,
            )
            for i, stage in enumerate(stages)
        ]
        self._host_threads = [
            threading.Thread(target=self._host_loop, name=f"serve-host-{i}", daemon=True)
            for i in range(num_host_workers)
        ]
        self._bnn_thread.start()
        for t in self._mid_threads:
            t.start()
        for t in self._host_threads:
            t.start()

    @staticmethod
    def _init_parallel_host(host_predict_fn, host_workers):
        """Resolve the process-pool request into (runner, server_owns_it)."""
        # Local import: repro.parallel pulls in multiprocessing machinery
        # that serial servers never need.
        from ..parallel import ParallelHostRunner, resolve_host_workers

        if isinstance(host_predict_fn, ParallelHostRunner):
            return host_predict_fn, False
        n_workers = resolve_host_workers(host_workers)
        if n_workers is None:
            return None, False
        return ParallelHostRunner(predict_fn=host_predict_fn, n_workers=n_workers), True

    # -- public API ---------------------------------------------------------
    @property
    def threshold(self) -> float:
        """The hop-0 DMU threshold currently applied to new batches."""
        return self.stage_threshold(0)

    def stage_threshold(self, hop: int) -> float:
        """The threshold gating hop *hop* (0 = BNN, then middle rungs)."""
        ctrl = self._hop_controllers[hop]
        return ctrl.threshold if ctrl is not None else self._hop_static[hop]

    @property
    def num_stages(self) -> int:
        """Rung count including the BNN and the host (2 = paper cascade)."""
        return 2 + len(self._ladder_stages)

    @property
    def stage_names(self) -> tuple[str, ...]:
        return ("bnn", *(s.name for s in self._ladder_stages), "host")

    @property
    def degraded_mode(self) -> bool:
        """True while the circuit breaker holds the host path open."""
        return self._breaker is not None and self._breaker.state != CircuitBreaker.CLOSED

    def submit(self, image: np.ndarray) -> Future:
        """Enqueue one image; resolves to a :class:`ServeResult`.

        Blocks (backpressure) while the front buffer is full; raises
        :class:`ServerClosed` once the server is closed.  The returned
        future always reaches a terminal state: a result, or one of
        :class:`StageFailure` / :class:`DeadlineExceeded` /
        :class:`ServerClosed`.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        now = self._clock()
        deadline = now + self._deadline_s if self._deadline_s is not None else None
        request = _Request(np.asarray(image), now, deadline)
        with self._inflight_lock:
            self._inflight.add(request)
        self.metrics.record_submitted(1)
        try:
            self._batcher.submit(request)
        except RuntimeError:
            # Batcher closed between our check and the submit: fail the
            # request we registered rather than stranding it.
            if self._claim(request):
                self.metrics.record_failure(1)
                request.future.set_exception(ServerClosed("server is closed"))
            raise ServerClosed("server is closed") from None
        return request.future

    def classify_many(
        self, images: Iterable[np.ndarray], timeout: float | None = None
    ) -> list[ServeResult]:
        """Convenience: submit a stream and wait for every answer.

        Raises the per-request error (e.g. :class:`StageFailure`) of the
        first failed request, like the underlying futures would.
        """
        futures = [self.submit(img) for img in images]
        return [f.result(timeout=timeout) for f in futures]

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    @property
    def host_pool_size(self) -> int:
        """Process workers in the parallel host pool (0 = serial host)."""
        return self._host_runner.n_workers if self._host_runner is not None else 0

    def resize_host_workers(self, n: int) -> int:
        """Grow/shrink the parallel host pool mid-stream; returns new size.

        Requires the server to be running a
        :class:`repro.parallel.ParallelHostRunner` host stage
        (``host_workers=...`` or ``REPRO_HOST_WORKERS``); serial hosts
        have nothing to resize and raise :class:`RuntimeError`.  Safe
        while requests are in flight — the runner only cuts shard
        boundaries between micro-batches.
        """
        if self._host_runner is None:
            raise RuntimeError("server has no parallel host pool to resize")
        return self._host_runner.resize(n)

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain every stage, join every worker, strand no future.

        All requests accepted before ``close`` are answered when the
        workers are healthy; if a worker is stuck (or *timeout* expires
        first) the remaining in-flight futures fail with
        :class:`ServerClosed` instead of hanging their waiters.  The call
        is idempotent.
        """
        with self._close_lock:
            first = not self._closed
            self._closed = True
        if first:
            self._batcher.close(timeout=timeout)
            self._put_sentinel(self._bnn_queue, timeout)
            self._bnn_thread.join(timeout=timeout)
            # Drain the ladder top-down: each rung's sentinel goes in only
            # after every producer above it has exited, so no request is
            # left behind a sentinel.
            for i, thread in enumerate(self._mid_threads):
                self._put_sentinel(self._mid_queues[i], timeout)
                thread.join(timeout=timeout)
            for _ in self._host_threads:
                self._put_sentinel(self._host_queue, timeout)
        for t in self._host_threads:
            t.join(timeout=timeout)
        if first and self._owns_host_runner and self._host_runner is not None:
            self._host_runner.close()
        # Anything still unresolved is stuck behind a dead/hung stage (or
        # the joins timed out): fail it now so no caller waits forever.
        with self._inflight_lock:
            stranded = list(self._inflight)
            self._inflight.clear()
        if stranded:
            self.metrics.record_failure(len(stranded))
            obs.count("serve.failed", len(stranded))
            for request in stranded:
                request.future.set_exception(ServerClosed("server closed mid-flight"))

    @staticmethod
    def _put_sentinel(q: queue.Queue, timeout: float | None) -> None:
        """Best-effort shutdown signal: never block forever on a full queue."""
        try:
            q.put(_SHUTDOWN, timeout=timeout)
        except queue.Full:
            pass

    def __enter__(self) -> "CascadeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internal: terminal-state bookkeeping --------------------------------
    def _claim(self, request: _Request) -> bool:
        """Acquire the exclusive right to resolve *request*'s future."""
        with self._inflight_lock:
            if request in self._inflight:
                self._inflight.remove(request)
                return True
            return False

    def _resolve(self, request: _Request, prediction: int, source: str) -> None:
        if not self._claim(request):
            return  # already failed by close()/deadline — exactly-once wins
        if source == "bnn":
            self.metrics.record_decisions(accepted=1)
        elif source == "degraded":
            self.metrics.record_decisions(degraded=1)
        else:
            # Any rung above 0 — "host" or a middle-stage name.  The
            # top-line ``rerun`` counter keeps the 2-stage books
            # invariant; the stage tag adds the per-rung breakdown.
            self.metrics.record_decisions(rerun=1, stage=source)
        latency = self._clock() - request.submit_ts
        self.metrics.record_latency(latency)
        request.future.set_result(
            ServeResult(
                prediction=int(prediction),
                bnn_prediction=int(request.bnn_prediction),
                confidence=float(request.confidence),
                source=source,
                latency_seconds=latency,
            )
        )

    def _fail(self, request: _Request, exc: BaseException) -> None:
        if not self._claim(request):
            return
        self.metrics.record_failure(1)
        obs.count("serve.failed", 1)
        request.future.set_exception(exc)

    def _past_deadline(self, request: _Request) -> bool:
        return request.deadline_ts is not None and self._clock() > request.deadline_ts

    # -- internal: batcher -> BNN queue -------------------------------------
    def _enqueue_bnn_batch(self, batch: list[_Request]) -> None:
        # Span covers the bounded put: its duration IS the backpressure.
        with obs.trace_span("serve.enqueue", batch=len(batch)):
            self._bnn_queue.put(batch)  # bounded: blocks, pushing backpressure up
        depth = self._bnn_queue.qsize()
        self.metrics.set_queue_depth(BNN_QUEUE, depth)
        obs.gauge("queue.bnn", depth)

    # -- internal: BNN worker ------------------------------------------------
    def _bnn_loop(self) -> None:
        while True:
            batch = self._bnn_queue.get()
            self.metrics.set_queue_depth(BNN_QUEUE, self._bnn_queue.qsize())
            if batch is _SHUTDOWN:
                return
            try:
                self._process_bnn_batch(batch)
            except Exception as exc:  # containment: never kill the worker
                for request in batch:
                    self._fail(request, StageFailure("bnn", exc))

    def _process_bnn_batch(self, batch: list[_Request]) -> None:
        # Deadline gate: no BNN answer exists yet, so a missed deadline
        # is a hard per-request error, not a degraded answer.
        live: list[_Request] = []
        for request in batch:
            if self._past_deadline(request):
                self.metrics.record_deadline_miss(1)
                obs.count("serve.deadline_missed", 1)
                self._fail(request, DeadlineExceeded("deadline passed before BNN stage"))
            else:
                live.append(request)
        if not live:
            return

        start = self._clock()
        try:
            with obs.trace_span("serve.bnn", batch=len(live)):
                images = np.stack([r.image for r in live])
                scores = np.asarray(self._bnn_scores_fn(images))
                predictions = scores.argmax(axis=1)
        except Exception as exc:
            # Fast stage down: no answer of any precision exists.
            self.metrics.record_fault("bnn")
            obs.count("serve.fault.bnn", 1)
            for request in live:
                self._fail(request, StageFailure("bnn", exc))
            return

        for i, request in enumerate(live):
            request.bnn_prediction = int(predictions[i])

        try:
            with obs.trace_span("serve.dmu", batch=len(live)):
                confidence = np.atleast_1d(self._dmu.confidence(scores))
                threshold = self.threshold
                accept = confidence >= threshold
        except Exception as exc:
            # DMU down but the BNN answered: CascadeCNN fall-back — accept
            # every BNN answer as a degraded result (Eq. (2) floor).
            self.metrics.record_fault("dmu")
            obs.count("serve.fault.dmu", 1)
            if obs.enabled():
                obs.count("serve.degraded", len(live))
            for i, request in enumerate(live):
                self._resolve(request, predictions[i], "degraded")
            return
        self.metrics.observe_stage("bnn", self._clock() - start, count=len(live))

        for i, request in enumerate(live):
            request.last_prediction = int(predictions[i])
        accepted, forwarded, degraded = self._route_after_scoring(
            0, live, predictions, confidence, accept, "bnn"
        )
        flagged = len(live) - accepted
        self.metrics.record_stage_traffic("bnn", arrived=len(live), forwarded=forwarded)
        if obs.enabled():
            obs.count("serve.accepted", accepted)
            obs.count("serve.rerun", forwarded)
            obs.count("serve.degraded", degraded)
        ctrl = self._hop_controllers[0]
        if ctrl is not None:
            new_threshold = ctrl.observe(
                total=len(live), rerun=flagged, degraded=degraded
            )
            self.metrics.record_threshold(new_threshold)
            obs.gauge("serve.threshold", new_threshold)

    # -- internal: routing between rungs --------------------------------------
    def _next_queue(self, rung: int) -> tuple[queue.Queue, str, bool]:
        """``(queue, name, breaker_guarded)`` feeding rung ``rung + 1``."""
        nxt = rung + 1
        if nxt <= len(self._ladder_stages):
            return self._mid_queues[nxt - 1], self._ladder_stages[nxt - 1].name, False
        return self._host_queue, HOST_QUEUE, True

    def _route_after_scoring(
        self,
        rung: int,
        live: list[_Request],
        predictions: np.ndarray,
        confidence: np.ndarray,
        accept: np.ndarray,
        source: str,
    ) -> tuple[int, int, int]:
        """Resolve accepted requests, forward the residue one rung up.

        Shared by the BNN worker (rung 0) and every middle-rung worker.
        The breaker gates only the hop *into* the host — the middle
        rungs have their own fallback (degrade to the best answer so
        far) and must not consume half-open probes.  Returns
        ``(accepted, forwarded, degraded)``.
        """
        nq, nq_name, guarded = self._next_queue(rung)
        # Lazy so a fully-accepted batch never consumes a half-open probe.
        host_open: bool | None = None
        accepted = forwarded = degraded = 0
        for i, request in enumerate(live):
            request.confidence = float(confidence[i])
            if accept[i]:
                self._resolve(request, predictions[i], source)
                accepted += 1
                continue
            if self._past_deadline(request):
                # An answer exists at this precision: degrade, don't error.
                self.metrics.record_deadline_miss(1)
                obs.count("serve.deadline_missed", 1)
                self._resolve(request, predictions[i], "degraded")
                degraded += 1
                continue
            if guarded:
                if host_open is None:
                    host_open = self._breaker is not None and not self._breaker.allow()
                if host_open:
                    # Breaker open: "accept current result, skip host" mode.
                    self._resolve(request, predictions[i], "degraded")
                    degraded += 1
                    continue
            try:
                request.host_enqueue_ts = self._clock()
                nq.put_nowait(request)
                forwarded += 1
                depth = nq.qsize()
                self.metrics.set_queue_depth(nq_name, depth)
                obs.gauge(f"queue.{nq_name}", depth)
            except queue.Full:
                # Graceful degradation: the next rung is saturated, so
                # answer with this rung's result instead of stalling the
                # fast stages (Eq. (1N)'s slow-rung-bound regime).
                self._resolve(request, predictions[i], "degraded")
                degraded += 1
        return accepted, forwarded, degraded

    # -- internal: middle-rung workers ----------------------------------------
    def _mid_loop(self, idx: int) -> None:
        stage = self._ladder_stages[idx]
        q = self._mid_queues[idx]
        while True:
            requests = self._take_requests(q, stage.name)
            if requests is None:
                return
            try:
                self._process_mid_batch(idx, requests)
            except Exception:  # containment: degrade, never kill the worker
                self._degrade_batch(requests)

    def _process_mid_batch(self, idx: int, requests: list[_Request]) -> None:
        stage = self._ladder_stages[idx]
        rung = idx + 1
        # Deadline gate: these requests carry a cheaper rung's answer, so
        # lateness degrades (counted) instead of erroring.
        live: list[_Request] = []
        for request in requests:
            if self._past_deadline(request):
                self.metrics.record_deadline_miss(1)
                obs.count("serve.deadline_missed", 1)
                self._resolve(request, request.last_prediction, "degraded")
            else:
                live.append(request)
        if not live:
            return

        now = self._clock()
        queue_wait = sum(
            now - r.host_enqueue_ts for r in live if r.host_enqueue_ts == r.host_enqueue_ts
        )
        self.metrics.observe_stage(f"{stage.name}_queue_wait", queue_wait, count=len(live))

        start = self._clock()
        try:
            with obs.trace_span(f"serve.{stage.name}", batch=len(live)):
                images = np.stack([r.image for r in live])
                scores = np.asarray(stage.scores_fn(images))
                predictions = scores.argmax(axis=1)
        except Exception:
            # This rung is down, but every request carries an answer from
            # a cheaper rung: fall back instead of erroring.
            self.metrics.record_fault(stage.name)
            obs.count(f"serve.fault.{stage.name}", 1)
            self._degrade_batch(live)
            return
        for i, request in enumerate(live):
            request.last_prediction = int(predictions[i])

        try:
            with obs.trace_span(f"serve.{stage.name}.dmu", batch=len(live)):
                confidence = np.atleast_1d(stage.dmu.confidence(scores))
                accept = confidence >= self.stage_threshold(rung)
        except Exception:
            # DMU down but the rung answered: keep this rung's (better)
            # answer as a degraded result — CascadeCNN's fall-back.
            self.metrics.record_fault(f"{stage.name}.dmu")
            obs.count(f"serve.fault.{stage.name}.dmu", 1)
            if obs.enabled():
                obs.count("serve.degraded", len(live))
            for i, request in enumerate(live):
                self._resolve(request, predictions[i], "degraded")
            return
        self.metrics.observe_stage(stage.name, self._clock() - start, count=len(live))

        accepted, forwarded, degraded = self._route_after_scoring(
            rung, live, predictions, confidence, accept, stage.name
        )
        self.metrics.record_stage_traffic(
            stage.name, arrived=len(live), forwarded=forwarded
        )
        if obs.enabled():
            obs.count(f"serve.{stage.name}.accepted", accepted)
            obs.count(f"serve.{stage.name}.forwarded", forwarded)
            obs.count("serve.degraded", degraded)
        ctrl = self._hop_controllers[rung]
        if ctrl is not None:
            ctrl.observe(
                total=len(live), rerun=len(live) - accepted, degraded=degraded
            )

    # -- internal: host workers ----------------------------------------------
    def _take_requests(self, q: queue.Queue, name: str) -> list[_Request] | None:
        first = q.get()
        if first is _SHUTDOWN:
            return None
        requests = [first]
        while len(requests) < self._host_batch_size:
            try:
                item = q.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Not ours to consume: hand it to a sibling worker.  Safe
                # to block — sentinels are only enqueued after the
                # upstream producers have exited.
                q.put(item)
                break
            requests.append(item)
        depth = q.qsize()
        self.metrics.set_queue_depth(name, depth)
        obs.gauge(f"queue.{name}", depth)
        return requests

    def _host_loop(self) -> None:
        while True:
            requests = self._take_requests(self._host_queue, HOST_QUEUE)
            if requests is None:
                return
            try:
                self._process_host_batch(requests)
            except Exception:  # containment: degrade, never kill the worker
                self._degrade_batch(requests)

    def _degrade_batch(self, requests: Sequence[_Request]) -> None:
        for request in requests:
            self._resolve(request, request.last_prediction, "degraded")

    def _process_host_batch(self, requests: list[_Request]) -> None:
        # Deadline gate: these requests carry a BNN answer, so lateness
        # degrades (counted) instead of erroring.
        live: list[_Request] = []
        for request in requests:
            if self._past_deadline(request):
                self.metrics.record_deadline_miss(1)
                obs.count("serve.deadline_missed", 1)
                self._resolve(request, request.last_prediction, "degraded")
            else:
                live.append(request)
        if not live:
            return
        self.metrics.record_stage_traffic(HOST_QUEUE, arrived=len(live))

        # Queue-wait vs pure-inference split: the "host" stage below times
        # only the (successful) inference call, so time spent parked in the
        # host queue must be booked separately or throughput reports blur
        # dispatch latency into compute cost.
        now = self._clock()
        queue_wait = sum(
            now - r.host_enqueue_ts for r in live if r.host_enqueue_ts == r.host_enqueue_ts
        )
        self.metrics.observe_stage("host_queue_wait", queue_wait, count=len(live))

        retries = 0
        while True:
            start = self._clock()
            try:
                with obs.trace_span("serve.host", batch=len(live)):
                    images = np.stack([r.image for r in live])
                    predictions = np.asarray(self._host_predict_fn(images)).reshape(-1)
                if len(predictions) != len(live):
                    raise ValueError(
                        f"host returned {len(predictions)} predictions "
                        f"for {len(live)} images"
                    )
            except Exception:
                self.metrics.record_fault("host")
                obs.count("serve.fault.host", 1)
                if self._breaker is not None:
                    self._breaker.record_failure()
                breaker_open = (
                    self._breaker is not None
                    and self._breaker.state == CircuitBreaker.OPEN
                )
                if retries >= self._retry.max_retries or breaker_open or self._closed:
                    # Retries exhausted (or pointless): fall back to the
                    # low-precision answer for the whole batch.
                    self._degrade_batch(live)
                    return
                self.metrics.record_retry(1)
                obs.count("serve.retry", 1)
                time.sleep(self._retry.backoff_s(retries, self._retry_rng))
                retries += 1
                continue
            break

        if self._breaker is not None:
            self._breaker.record_success()
        self.metrics.observe_stage("host", self._clock() - start, count=len(live))
        for request, prediction in zip(live, predictions):
            self._resolve(request, prediction, "host")

    # -- internal: breaker bridge --------------------------------------------
    def _on_breaker_transition(self, state: str) -> None:
        self.metrics.record_breaker_state(state)
        if obs.enabled():
            obs.instant("serve.breaker", state=state)
