"""Concurrent cascade inference server (Fig. 1, request-driven).

:class:`repro.core.MultiPrecisionPipeline` computes the cascade offline,
one big array in, one big array out.  :class:`CascadeServer` runs the
same BNN → DMU → host cascade as a concurrent system of workers joined
by bounded queues, which is how the paper's hardware actually behaves
(the FPGA streams batches while the ARM host re-processes the previous
batch's flagged subset in parallel):

    submit() ──► MicroBatcher ──► bnn queue ──► BNN worker ──► futures
                  (size/deadline)   (bounded)       │ DMU accept
                                                    │ DMU flag
                                              host queue (bounded)
                                                    │        │ Full → degrade:
                                              host workers   │ answer with the
                                                    └──► futures  BNN result

    Every bounded queue exerts backpressure upstream; the only queue that
    *sheds* instead of blocking is the host queue, because blocking there
    would stall the BNN for the exact traffic mix (R_rerun too high) that
    Eq. (1) says the host cannot absorb anyway.

An :class:`~repro.serve.controller.AdaptiveThresholdController` closes
the loop between the two stages at runtime; a plain float threshold
reproduces the paper's static operating point.

Fault containment (``docs/ROBUSTNESS.md``): worker loops are crash-safe
— a raise inside any stage callable fails only the affected requests and
never kills a thread.  A BNN/DMU failure with no fallback answer fails
those futures with :class:`~repro.serve.resilience.StageFailure`; a DMU
failure *after* BNN scoring degrades to the BNN argmax; host failures
are retried under a :class:`~repro.serve.resilience.RetryPolicy`
(exponential backoff + jitter) and then degrade to the BNN answer; a
:class:`~repro.serve.resilience.CircuitBreaker` flips the server into a
degraded "accept BNN result, skip host" mode while the host stage is
tripping and recovers it after a cool-down.  Optional per-request
deadlines (``deadline_s``) bound tail latency: a request that misses its
deadline before the BNN answers fails with
:class:`~repro.serve.resilience.DeadlineExceeded`; after the BNN has
answered it degrades instead.  Every submitted request reaches exactly
one terminal state — a :class:`ServeResult` or an exception — even
across :meth:`CascadeServer.close` with work in flight
(:class:`~repro.serve.resilience.ServerClosed`).

Paper anchors: Fig. 1 (cascade structure), Eq. (1) timing regime
(host-bound vs BNN-bound); the degraded mode realizes CascadeCNN's
fall-back-to-low-precision semantics.  When a :mod:`repro.obs` tracer is
installed the workers emit ``serve.enqueue`` / ``serve.bnn`` /
``serve.dmu`` / ``serve.host`` spans plus queue-depth gauges,
accepted/rerun/degraded counters and fault/retry/deadline/breaker
events; with no tracer installed the instrumentation is a no-op.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from .. import obs
from ..core.dmu import DecisionMakingUnit
from .batcher import MicroBatcher
from .controller import AdaptiveThresholdController
from .metrics import MetricsSnapshot, ServerMetrics
from .resilience import (
    CircuitBreaker,
    DeadlineExceeded,
    RetryPolicy,
    ServerClosed,
    StageFailure,
)

__all__ = ["ServeResult", "CascadeServer"]

_SHUTDOWN = object()
#: Sentinel distinguishing "use a default CircuitBreaker" from "no breaker".
_DEFAULT = object()

BNN_QUEUE = "bnn"
HOST_QUEUE = "host"


@dataclass(frozen=True)
class ServeResult:
    """Answer to one serving request."""

    prediction: int
    bnn_prediction: int
    confidence: float
    source: str                # "bnn" | "host" | "degraded"
    latency_seconds: float

    @property
    def rerun(self) -> bool:
        return self.source == "host"


class _Request:
    __slots__ = (
        "image", "future", "submit_ts", "deadline_ts", "bnn_prediction", "confidence",
        "host_enqueue_ts",
    )

    def __init__(self, image: np.ndarray, submit_ts: float, deadline_ts: float | None):
        self.image = image
        self.future: Future[ServeResult] = Future()
        self.submit_ts = submit_ts
        self.deadline_ts = deadline_ts
        self.bnn_prediction = -1
        self.confidence = float("nan")
        self.host_enqueue_ts = float("nan")


class CascadeServer:
    """Request-driven BNN + DMU + host cascade with adaptive thresholding.

    Parameters
    ----------
    bnn_scores_fn:
        Batch scorer of the fast stage: ``(N, ...) images -> (N, C)``
        class scores (e.g. :meth:`repro.bnn.FoldedBNN.class_scores`).
    dmu:
        Trained :class:`repro.core.DecisionMakingUnit`.
    host_predict_fn:
        Batch classifier of the accurate stage: ``(N, ...) images ->
        (N,)`` class labels (e.g. ``Sequential.predict_classes``).
    controller:
        Threshold policy.  A float gives the paper's static threshold; an
        :class:`AdaptiveThresholdController` adapts it at runtime.
        ``None`` uses ``dmu.threshold`` statically.
    max_batch_size / batch_delay_s:
        Micro-batcher limits for the BNN stage.
    bnn_queue_capacity / host_queue_capacity:
        Bounds of the inter-stage queues (batches / images respectively).
    num_host_workers:
        Host re-inference worker threads (the paper has one ARM core
        pool; scale up for stronger hosts).
    host_workers:
        Process-parallel host pool size.  When set (or via the
        ``REPRO_HOST_WORKERS`` env var), ``host_predict_fn`` is wrapped
        in a :class:`repro.parallel.ParallelHostRunner` that shards each
        host batch across that many worker *processes* over shared
        memory — the Eq. (1) ``t_fp -> t_fp / N`` lever.  The server
        owns and closes the pool.  Alternatively pass an existing
        ``ParallelHostRunner`` directly as ``host_predict_fn`` (the
        caller keeps ownership); either way its per-worker counters are
        bridged into :attr:`metrics`.  ``None`` with no env var keeps
        the plain serial callable.
    host_batch_size:
        Greedy drain limit per host inference call.
    deadline_s:
        Optional per-request deadline measured from ``submit``.  ``None``
        (default) disables deadline enforcement.  Deadlines are checked
        at stage boundaries — a call already executing is never
        interrupted (pure-python stages cannot be preempted safely).
    retry:
        :class:`RetryPolicy` for failed host re-inference calls
        (default: 2 retries, 10 ms base backoff, jitter).  Retries
        exhausted ⇒ the affected requests degrade to their BNN answer.
    breaker:
        :class:`CircuitBreaker` guarding the host path.  Default: a
        breaker with 5-failure threshold and 1 s cool-down on the
        server's clock.  Pass ``None`` to disable.  If the supplied
        breaker has no ``on_transition`` callback the server installs
        its metrics bridge.
    """

    def __init__(
        self,
        bnn_scores_fn: Callable[[np.ndarray], np.ndarray],
        dmu: DecisionMakingUnit,
        host_predict_fn: Callable[[np.ndarray], np.ndarray],
        controller: AdaptiveThresholdController | float | None = None,
        max_batch_size: int = 32,
        batch_delay_s: float = 0.002,
        bnn_queue_capacity: int = 4,
        host_queue_capacity: int = 64,
        num_host_workers: int = 1,
        host_workers: int | None = None,
        host_batch_size: int = 8,
        metrics: ServerMetrics | None = None,
        clock: Callable[[], float] = time.monotonic,
        deadline_s: float | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = _DEFAULT,  # type: ignore[assignment]
    ):
        if num_host_workers < 1:
            raise ValueError("num_host_workers must be >= 1")
        if host_queue_capacity < 1 or bnn_queue_capacity < 1:
            raise ValueError("queue capacities must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        self._bnn_scores_fn = bnn_scores_fn
        self._dmu = dmu
        self._host_predict_fn = host_predict_fn
        if controller is None:
            controller = float(dmu.threshold)
        if isinstance(controller, AdaptiveThresholdController):
            self._controller: AdaptiveThresholdController | None = controller
            self._static_threshold = controller.threshold
        else:
            self._controller = None
            self._static_threshold = float(controller)
            if not 0.0 <= self._static_threshold <= 1.0:
                raise ValueError("threshold must be in [0, 1]")
        self._clock = clock
        self.metrics = metrics if metrics is not None else ServerMetrics(clock=clock)
        self.metrics.register_queue(BNN_QUEUE, bnn_queue_capacity)
        self.metrics.register_queue(HOST_QUEUE, host_queue_capacity)
        self.metrics.record_threshold(self.threshold)

        # Optional process-parallel host pool (repro.parallel).
        self._host_runner, self._owns_host_runner = self._init_parallel_host(
            host_predict_fn, host_workers
        )
        if self._host_runner is not None:
            self._host_predict_fn = self._host_runner
            self._host_runner.set_metrics(self.metrics)

        self._deadline_s = deadline_s
        self._retry = retry if retry is not None else RetryPolicy()
        self._retry_rng = random.Random(0xC0FFEE)
        if breaker is _DEFAULT:
            breaker = CircuitBreaker(clock=clock)
        self._breaker: CircuitBreaker | None = breaker
        if self._breaker is not None and self._breaker._on_transition is None:
            self._breaker._on_transition = self._on_breaker_transition

        self._bnn_queue: queue.Queue = queue.Queue(maxsize=bnn_queue_capacity)
        self._host_queue: queue.Queue = queue.Queue(maxsize=host_queue_capacity)
        self._host_batch_size = max(1, int(host_batch_size))
        self._closed = False
        self._close_lock = threading.Lock()
        self._inflight: set[_Request] = set()
        self._inflight_lock = threading.Lock()

        self._batcher: MicroBatcher[_Request] = MicroBatcher(
            emit=self._enqueue_bnn_batch,
            max_batch_size=max_batch_size,
            max_delay_s=batch_delay_s,
            clock=clock,
        )
        self._bnn_thread = threading.Thread(
            target=self._bnn_loop, name="serve-bnn", daemon=True
        )
        self._host_threads = [
            threading.Thread(target=self._host_loop, name=f"serve-host-{i}", daemon=True)
            for i in range(num_host_workers)
        ]
        self._bnn_thread.start()
        for t in self._host_threads:
            t.start()

    @staticmethod
    def _init_parallel_host(host_predict_fn, host_workers):
        """Resolve the process-pool request into (runner, server_owns_it)."""
        # Local import: repro.parallel pulls in multiprocessing machinery
        # that serial servers never need.
        from ..parallel import ParallelHostRunner, resolve_host_workers

        if isinstance(host_predict_fn, ParallelHostRunner):
            return host_predict_fn, False
        n_workers = resolve_host_workers(host_workers)
        if n_workers is None:
            return None, False
        return ParallelHostRunner(predict_fn=host_predict_fn, n_workers=n_workers), True

    # -- public API ---------------------------------------------------------
    @property
    def threshold(self) -> float:
        """The DMU threshold currently applied to new batches."""
        if self._controller is not None:
            return self._controller.threshold
        return self._static_threshold

    @property
    def degraded_mode(self) -> bool:
        """True while the circuit breaker holds the host path open."""
        return self._breaker is not None and self._breaker.state != CircuitBreaker.CLOSED

    def submit(self, image: np.ndarray) -> Future:
        """Enqueue one image; resolves to a :class:`ServeResult`.

        Blocks (backpressure) while the front buffer is full; raises
        :class:`ServerClosed` once the server is closed.  The returned
        future always reaches a terminal state: a result, or one of
        :class:`StageFailure` / :class:`DeadlineExceeded` /
        :class:`ServerClosed`.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        now = self._clock()
        deadline = now + self._deadline_s if self._deadline_s is not None else None
        request = _Request(np.asarray(image), now, deadline)
        with self._inflight_lock:
            self._inflight.add(request)
        self.metrics.record_submitted(1)
        try:
            self._batcher.submit(request)
        except RuntimeError:
            # Batcher closed between our check and the submit: fail the
            # request we registered rather than stranding it.
            if self._claim(request):
                self.metrics.record_failure(1)
                request.future.set_exception(ServerClosed("server is closed"))
            raise ServerClosed("server is closed") from None
        return request.future

    def classify_many(
        self, images: Iterable[np.ndarray], timeout: float | None = None
    ) -> list[ServeResult]:
        """Convenience: submit a stream and wait for every answer.

        Raises the per-request error (e.g. :class:`StageFailure`) of the
        first failed request, like the underlying futures would.
        """
        futures = [self.submit(img) for img in images]
        return [f.result(timeout=timeout) for f in futures]

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain every stage, join every worker, strand no future.

        All requests accepted before ``close`` are answered when the
        workers are healthy; if a worker is stuck (or *timeout* expires
        first) the remaining in-flight futures fail with
        :class:`ServerClosed` instead of hanging their waiters.  The call
        is idempotent.
        """
        with self._close_lock:
            first = not self._closed
            self._closed = True
        if first:
            self._batcher.close(timeout=timeout)
            self._put_sentinel(self._bnn_queue, timeout)
            self._bnn_thread.join(timeout=timeout)
            for _ in self._host_threads:
                self._put_sentinel(self._host_queue, timeout)
        for t in self._host_threads:
            t.join(timeout=timeout)
        if first and self._owns_host_runner and self._host_runner is not None:
            self._host_runner.close()
        # Anything still unresolved is stuck behind a dead/hung stage (or
        # the joins timed out): fail it now so no caller waits forever.
        with self._inflight_lock:
            stranded = list(self._inflight)
            self._inflight.clear()
        if stranded:
            self.metrics.record_failure(len(stranded))
            obs.count("serve.failed", len(stranded))
            for request in stranded:
                request.future.set_exception(ServerClosed("server closed mid-flight"))

    @staticmethod
    def _put_sentinel(q: queue.Queue, timeout: float | None) -> None:
        """Best-effort shutdown signal: never block forever on a full queue."""
        try:
            q.put(_SHUTDOWN, timeout=timeout)
        except queue.Full:
            pass

    def __enter__(self) -> "CascadeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internal: terminal-state bookkeeping --------------------------------
    def _claim(self, request: _Request) -> bool:
        """Acquire the exclusive right to resolve *request*'s future."""
        with self._inflight_lock:
            if request in self._inflight:
                self._inflight.remove(request)
                return True
            return False

    _SOURCE_COUNTER = {"bnn": "accepted", "host": "rerun", "degraded": "degraded"}

    def _resolve(self, request: _Request, prediction: int, source: str) -> None:
        if not self._claim(request):
            return  # already failed by close()/deadline — exactly-once wins
        self.metrics.record_decisions(**{self._SOURCE_COUNTER[source]: 1})
        request.future.set_result(
            ServeResult(
                prediction=int(prediction),
                bnn_prediction=int(request.bnn_prediction),
                confidence=float(request.confidence),
                source=source,
                latency_seconds=self._clock() - request.submit_ts,
            )
        )

    def _fail(self, request: _Request, exc: BaseException) -> None:
        if not self._claim(request):
            return
        self.metrics.record_failure(1)
        obs.count("serve.failed", 1)
        request.future.set_exception(exc)

    def _past_deadline(self, request: _Request) -> bool:
        return request.deadline_ts is not None and self._clock() > request.deadline_ts

    # -- internal: batcher -> BNN queue -------------------------------------
    def _enqueue_bnn_batch(self, batch: list[_Request]) -> None:
        # Span covers the bounded put: its duration IS the backpressure.
        with obs.trace_span("serve.enqueue", batch=len(batch)):
            self._bnn_queue.put(batch)  # bounded: blocks, pushing backpressure up
        depth = self._bnn_queue.qsize()
        self.metrics.set_queue_depth(BNN_QUEUE, depth)
        obs.gauge("queue.bnn", depth)

    # -- internal: BNN worker ------------------------------------------------
    def _bnn_loop(self) -> None:
        while True:
            batch = self._bnn_queue.get()
            self.metrics.set_queue_depth(BNN_QUEUE, self._bnn_queue.qsize())
            if batch is _SHUTDOWN:
                return
            try:
                self._process_bnn_batch(batch)
            except Exception as exc:  # containment: never kill the worker
                for request in batch:
                    self._fail(request, StageFailure("bnn", exc))

    def _process_bnn_batch(self, batch: list[_Request]) -> None:
        # Deadline gate: no BNN answer exists yet, so a missed deadline
        # is a hard per-request error, not a degraded answer.
        live: list[_Request] = []
        for request in batch:
            if self._past_deadline(request):
                self.metrics.record_deadline_miss(1)
                obs.count("serve.deadline_missed", 1)
                self._fail(request, DeadlineExceeded("deadline passed before BNN stage"))
            else:
                live.append(request)
        if not live:
            return

        start = self._clock()
        try:
            with obs.trace_span("serve.bnn", batch=len(live)):
                images = np.stack([r.image for r in live])
                scores = np.asarray(self._bnn_scores_fn(images))
                predictions = scores.argmax(axis=1)
        except Exception as exc:
            # Fast stage down: no answer of any precision exists.
            self.metrics.record_fault("bnn")
            obs.count("serve.fault.bnn", 1)
            for request in live:
                self._fail(request, StageFailure("bnn", exc))
            return

        for i, request in enumerate(live):
            request.bnn_prediction = int(predictions[i])

        try:
            with obs.trace_span("serve.dmu", batch=len(live)):
                confidence = np.atleast_1d(self._dmu.confidence(scores))
                threshold = self.threshold
                accept = confidence >= threshold
        except Exception as exc:
            # DMU down but the BNN answered: CascadeCNN fall-back — accept
            # every BNN answer as a degraded result (Eq. (2) floor).
            self.metrics.record_fault("dmu")
            obs.count("serve.fault.dmu", 1)
            if obs.enabled():
                obs.count("serve.degraded", len(live))
            for i, request in enumerate(live):
                self._resolve(request, predictions[i], "degraded")
            return
        self.metrics.observe_stage("bnn", self._clock() - start, count=len(live))

        # Lazy so a fully-accepted batch never consumes a half-open probe.
        host_open: bool | None = None
        accepted = degraded = 0
        for i, request in enumerate(live):
            request.confidence = float(confidence[i])
            if accept[i]:
                self._resolve(request, predictions[i], "bnn")
                accepted += 1
                continue
            if self._past_deadline(request):
                # The BNN answer exists: degrade rather than error.
                self.metrics.record_deadline_miss(1)
                obs.count("serve.deadline_missed", 1)
                self._resolve(request, predictions[i], "degraded")
                degraded += 1
                continue
            if host_open is None:
                host_open = self._breaker is not None and not self._breaker.allow()
            if host_open:
                # Breaker open: degraded "accept BNN result, skip host" mode.
                self._resolve(request, predictions[i], "degraded")
                degraded += 1
                continue
            try:
                request.host_enqueue_ts = self._clock()
                self._host_queue.put_nowait(request)
                depth = self._host_queue.qsize()
                self.metrics.set_queue_depth(HOST_QUEUE, depth)
                obs.gauge("queue.host", depth)
            except queue.Full:
                # Graceful degradation: the host stage is saturated, so
                # answer with the BNN result instead of stalling the
                # fast stage (Eq. (1)'s host-bound regime).
                self._resolve(request, predictions[i], "degraded")
                degraded += 1
        flagged = len(live) - accepted
        if obs.enabled():
            obs.count("serve.accepted", accepted)
            obs.count("serve.rerun", flagged - degraded)
            obs.count("serve.degraded", degraded)
        if self._controller is not None:
            new_threshold = self._controller.observe(
                total=len(live), rerun=flagged, degraded=degraded
            )
            self.metrics.record_threshold(new_threshold)
            obs.gauge("serve.threshold", new_threshold)

    # -- internal: host workers ----------------------------------------------
    def _take_host_requests(self) -> list[_Request] | None:
        first = self._host_queue.get()
        if first is _SHUTDOWN:
            return None
        requests = [first]
        while len(requests) < self._host_batch_size:
            try:
                item = self._host_queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Not ours to consume: hand it to a sibling worker.  Safe
                # to block — sentinels are only enqueued after the BNN
                # producer has exited.
                self._host_queue.put(item)
                break
            requests.append(item)
        depth = self._host_queue.qsize()
        self.metrics.set_queue_depth(HOST_QUEUE, depth)
        obs.gauge("queue.host", depth)
        return requests

    def _host_loop(self) -> None:
        while True:
            requests = self._take_host_requests()
            if requests is None:
                return
            try:
                self._process_host_batch(requests)
            except Exception:  # containment: degrade, never kill the worker
                for request in requests:
                    self._resolve(request, request.bnn_prediction, "degraded")

    def _degrade_batch(self, requests: Sequence[_Request]) -> None:
        for request in requests:
            self._resolve(request, request.bnn_prediction, "degraded")

    def _process_host_batch(self, requests: list[_Request]) -> None:
        # Deadline gate: these requests carry a BNN answer, so lateness
        # degrades (counted) instead of erroring.
        live: list[_Request] = []
        for request in requests:
            if self._past_deadline(request):
                self.metrics.record_deadline_miss(1)
                obs.count("serve.deadline_missed", 1)
                self._resolve(request, request.bnn_prediction, "degraded")
            else:
                live.append(request)
        if not live:
            return

        # Queue-wait vs pure-inference split: the "host" stage below times
        # only the (successful) inference call, so time spent parked in the
        # host queue must be booked separately or throughput reports blur
        # dispatch latency into compute cost.
        now = self._clock()
        queue_wait = sum(
            now - r.host_enqueue_ts for r in live if r.host_enqueue_ts == r.host_enqueue_ts
        )
        self.metrics.observe_stage("host_queue_wait", queue_wait, count=len(live))

        retries = 0
        while True:
            start = self._clock()
            try:
                with obs.trace_span("serve.host", batch=len(live)):
                    images = np.stack([r.image for r in live])
                    predictions = np.asarray(self._host_predict_fn(images)).reshape(-1)
                if len(predictions) != len(live):
                    raise ValueError(
                        f"host returned {len(predictions)} predictions "
                        f"for {len(live)} images"
                    )
            except Exception:
                self.metrics.record_fault("host")
                obs.count("serve.fault.host", 1)
                if self._breaker is not None:
                    self._breaker.record_failure()
                breaker_open = (
                    self._breaker is not None
                    and self._breaker.state == CircuitBreaker.OPEN
                )
                if retries >= self._retry.max_retries or breaker_open or self._closed:
                    # Retries exhausted (or pointless): fall back to the
                    # low-precision answer for the whole batch.
                    self._degrade_batch(live)
                    return
                self.metrics.record_retry(1)
                obs.count("serve.retry", 1)
                time.sleep(self._retry.backoff_s(retries, self._retry_rng))
                retries += 1
                continue
            break

        if self._breaker is not None:
            self._breaker.record_success()
        self.metrics.observe_stage("host", self._clock() - start, count=len(live))
        for request, prediction in zip(live, predictions):
            self._resolve(request, prediction, "host")

    # -- internal: breaker bridge --------------------------------------------
    def _on_breaker_transition(self, state: str) -> None:
        self.metrics.record_breaker_state(state)
        if obs.enabled():
            obs.instant("serve.breaker", state=state)
