"""Serving metrics: per-stage latency/throughput, queues, threshold trace.

One :class:`ServerMetrics` instance is shared by every component of a
:class:`repro.serve.CascadeServer` (batcher, BNN worker, host pool,
controller).  All mutation goes through a single lock, and
:meth:`ServerMetrics.snapshot` returns an immutable, self-consistent view
that the reporting layers — ``repro.cli serve-bench`` and
:func:`repro.hetero.metrics.compare_serving_with_eq1` — consume.

Paper anchors: the accepted/rerun/degraded counts realize the paper's
``R_rerun`` (Sec. III), the quantity Eq. (1) prices host time with
(``t_multi = max(t_fp * R_rerun, t_bnn)``); ``MetricsSnapshot.since``
carves the steady-state windows that are compared against that bound.
For event-level timing (individual spans rather than aggregates) the
server is instrumented with :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "StageStats",
    "QueueStats",
    "MetricsSnapshot",
    "ServerMetrics",
]


@dataclass(frozen=True)
class StageStats:
    """Aggregated latency of one pipeline stage (immutable view)."""

    name: str
    count: int
    total_seconds: float
    max_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass(frozen=True)
class QueueStats:
    """Depth gauge of one bounded queue (immutable view)."""

    name: str
    capacity: int
    depth: int
    max_depth: int


@dataclass(frozen=True)
class MetricsSnapshot:
    """Self-consistent point-in-time view of a serving run."""

    stages: dict[str, StageStats]
    queues: dict[str, QueueStats]
    completed: int
    accepted: int          # answered with the BNN result (DMU confident)
    rerun: int             # re-classified by a host worker
    degraded: int          # BNN result kept because the host was saturated
    threshold: float
    threshold_trajectory: tuple[float, ...]
    wall_seconds: float

    @property
    def rerun_ratio(self) -> float:
        """R_rerun of Eq. (1): fraction of answers sent to the host."""
        return self.rerun / self.completed if self.completed else 0.0

    @property
    def degraded_ratio(self) -> float:
        return self.degraded / self.completed if self.completed else 0.0

    @property
    def seconds_per_image(self) -> float:
        return self.wall_seconds / self.completed if self.completed else float("inf")

    @property
    def images_per_second(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def since(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Windowed delta (``self - earlier``) for steady-state readings.

        Stage/queue gauges keep the later values; the counters and the
        wall clock become the difference, so ``rerun_ratio`` and
        ``images_per_second`` describe only the window.
        """
        return MetricsSnapshot(
            stages=self.stages,
            queues=self.queues,
            completed=self.completed - earlier.completed,
            accepted=self.accepted - earlier.accepted,
            rerun=self.rerun - earlier.rerun,
            degraded=self.degraded - earlier.degraded,
            threshold=self.threshold,
            threshold_trajectory=self.threshold_trajectory,
            wall_seconds=self.wall_seconds - earlier.wall_seconds,
        )


class _MutableStage:
    __slots__ = ("count", "total_seconds", "max_seconds")

    def __init__(self):
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0


class ServerMetrics:
    """Thread-safe metrics facade for the cascade serving layer."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._stages: dict[str, _MutableStage] = {}
        self._queue_capacity: dict[str, int] = {}
        self._queue_depth: dict[str, int] = {}
        self._queue_max_depth: dict[str, int] = {}
        self._accepted = 0
        self._rerun = 0
        self._degraded = 0
        self._threshold = float("nan")
        self._trajectory: list[float] = []
        self._started = clock()

    # -- stage latency ------------------------------------------------------
    def observe_stage(self, name: str, seconds: float, count: int = 1) -> None:
        """Record that *count* images spent *seconds* in stage *name*."""
        with self._lock:
            stage = self._stages.setdefault(name, _MutableStage())
            stage.count += count
            stage.total_seconds += seconds
            stage.max_seconds = max(stage.max_seconds, seconds)

    # -- queues -------------------------------------------------------------
    def register_queue(self, name: str, capacity: int) -> None:
        with self._lock:
            self._queue_capacity[name] = capacity
            self._queue_depth.setdefault(name, 0)
            self._queue_max_depth.setdefault(name, 0)

    def set_queue_depth(self, name: str, depth: int) -> None:
        with self._lock:
            self._queue_depth[name] = depth
            if depth > self._queue_max_depth.get(name, 0):
                self._queue_max_depth[name] = depth

    # -- cascade decisions ----------------------------------------------------
    def record_decisions(self, accepted: int = 0, rerun: int = 0, degraded: int = 0) -> None:
        with self._lock:
            self._accepted += accepted
            self._rerun += rerun
            self._degraded += degraded

    def record_threshold(self, threshold: float) -> None:
        with self._lock:
            self._threshold = float(threshold)
            self._trajectory.append(float(threshold))

    # -- reading ------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            stages = {
                name: StageStats(name, s.count, s.total_seconds, s.max_seconds)
                for name, s in self._stages.items()
            }
            queues = {
                name: QueueStats(
                    name,
                    self._queue_capacity.get(name, 0),
                    self._queue_depth.get(name, 0),
                    self._queue_max_depth.get(name, 0),
                )
                for name in self._queue_capacity
            }
            return MetricsSnapshot(
                stages=stages,
                queues=queues,
                completed=self._accepted + self._rerun + self._degraded,
                accepted=self._accepted,
                rerun=self._rerun,
                degraded=self._degraded,
                threshold=self._threshold,
                threshold_trajectory=tuple(self._trajectory),
                wall_seconds=self._clock() - self._started,
            )
