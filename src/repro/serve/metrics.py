"""Serving metrics: per-stage latency/throughput, queues, faults, breaker.

One :class:`ServerMetrics` instance is shared by every component of a
:class:`repro.serve.CascadeServer` (batcher, BNN worker, host pool,
controller, circuit breaker).  All mutation goes through a single lock,
and :meth:`ServerMetrics.snapshot` returns an immutable, self-consistent
view that the reporting layers — ``repro.cli serve-bench`` and
:func:`repro.hetero.metrics.compare_serving_with_eq1` — consume.

Paper anchors: the accepted/rerun/degraded counts realize the paper's
``R_rerun`` (Sec. III), the quantity Eq. (1) prices host time with
(``t_multi = max(t_fp * R_rerun, t_bnn)``); ``MetricsSnapshot.since``
carves the steady-state windows that are compared against that bound.

N-stage ladders (``docs/LADDER.md``) keep the same top-line books —
``rerun`` totals every answer produced *above* stage 0 — and add a
per-stage breakdown: ``rerun_stages[name]`` splits ``rerun`` by the
answering rung (so ``accepted + Σ rerun_stages + degraded + failed ==
submitted`` once drained), while ``stage_arrived`` / ``stage_forwarded``
record per-rung traffic, giving the measured forward ratios ``r_i``
that :func:`repro.obs.ladder_eq1_residual` checks against Eq. (1N).

Robustness accounting (``docs/ROBUSTNESS.md``): every injected or
organic stage fault, host retry, deadline miss and failed request is
counted, and circuit-breaker transitions are integrated into
degraded-mode intervals — so a chaos run can assert the books balance:
``accepted + rerun + degraded + cache_hits + failed == submitted`` once
drained (``cache_hits`` stays zero unless a
:class:`repro.cache.CachingFrontend` shares the metrics object).
For event-level timing (individual spans rather than aggregates) the
server is instrumented with :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "StageStats",
    "QueueStats",
    "MetricsSnapshot",
    "ServerMetrics",
]


@dataclass(frozen=True)
class StageStats:
    """Aggregated latency of one pipeline stage (immutable view)."""

    name: str
    count: int
    total_seconds: float
    max_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass(frozen=True)
class QueueStats:
    """Depth gauge of one bounded queue (immutable view)."""

    name: str
    capacity: int
    depth: int
    max_depth: int


@dataclass(frozen=True)
class MetricsSnapshot:
    """Self-consistent point-in-time view of a serving run."""

    stages: dict[str, StageStats]
    queues: dict[str, QueueStats]
    completed: int
    accepted: int          # answered with the BNN result (DMU confident)
    rerun: int             # re-classified by a host worker
    degraded: int          # BNN result kept (host saturated/open/late/failed)
    threshold: float
    threshold_trajectory: tuple[float, ...]
    wall_seconds: float
    submitted: int = 0     # requests accepted by submit()
    failed: int = 0        # futures resolved with an exception
    faults: dict[str, int] = field(default_factory=dict)  # stage -> exceptions seen
    retries: int = 0       # host re-inference retry attempts
    deadline_missed: int = 0
    breaker_state: str = "closed"
    breaker_trips: int = 0
    breaker_open_seconds: float = 0.0   # time spent not-closed (degraded mode)
    host_parallel_workers: int = 0      # ParallelHostRunner pool size (0 = serial host)
    host_worker_images: dict[int, int] = field(default_factory=dict)  # worker -> imgs served
    host_worker_seconds: dict[int, float] = field(default_factory=dict)  # worker -> infer secs
    rerun_stages: dict[str, int] = field(default_factory=dict)   # answering rung -> answers
    stage_arrived: dict[str, int] = field(default_factory=dict)  # rung -> images scored
    stage_forwarded: dict[str, int] = field(default_factory=dict)  # rung -> images sent up
    cache_hits: int = 0    # answered from the content-addressed result cache
    cache_bytes: int = 0   # bytes resident in the attached cache (gauge)

    @property
    def answered(self) -> int:
        """Requests that got a classification (excludes ``failed``)."""
        return self.completed

    @property
    def terminal(self) -> int:
        """Requests that reached *any* terminal state (answer or error)."""
        return self.completed + self.failed

    @property
    def in_flight(self) -> int:
        """Submitted requests without a terminal state at snapshot time."""
        return self.submitted - self.terminal

    @property
    def fault_total(self) -> int:
        return sum(self.faults.values())

    @property
    def rerun_ratio(self) -> float:
        """R_rerun of Eq. (1): fraction of answers produced above stage 0."""
        return self.rerun / self.completed if self.completed else 0.0

    @property
    def ladder_forward_ratios(self) -> dict[str, float]:
        """Measured per-rung ``r_i``: forwarded / arrived (Eq. (1'))."""
        return {
            name: self.stage_forwarded.get(name, 0) / arrived if arrived else 0.0
            for name, arrived in self.stage_arrived.items()
        }

    @property
    def rerun_stage_total(self) -> int:
        """Σ rerun_i — must equal ``rerun`` when the breakdown is recorded."""
        return sum(self.rerun_stages.values())

    @property
    def degraded_ratio(self) -> float:
        return self.degraded / self.completed if self.completed else 0.0

    @property
    def seconds_per_image(self) -> float:
        return self.wall_seconds / self.completed if self.completed else float("inf")

    @property
    def images_per_second(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def since(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Windowed delta (``self - earlier``) for steady-state readings.

        Stage/queue gauges and the breaker state keep the later values;
        the counters and the wall clock become the difference, so
        ``rerun_ratio`` and ``images_per_second`` describe only the
        window.
        """
        return MetricsSnapshot(
            stages=self.stages,
            queues=self.queues,
            completed=self.completed - earlier.completed,
            accepted=self.accepted - earlier.accepted,
            rerun=self.rerun - earlier.rerun,
            degraded=self.degraded - earlier.degraded,
            threshold=self.threshold,
            threshold_trajectory=self.threshold_trajectory,
            wall_seconds=self.wall_seconds - earlier.wall_seconds,
            submitted=self.submitted - earlier.submitted,
            failed=self.failed - earlier.failed,
            faults={
                stage: count - earlier.faults.get(stage, 0)
                for stage, count in self.faults.items()
            },
            retries=self.retries - earlier.retries,
            deadline_missed=self.deadline_missed - earlier.deadline_missed,
            breaker_state=self.breaker_state,
            breaker_trips=self.breaker_trips - earlier.breaker_trips,
            breaker_open_seconds=self.breaker_open_seconds - earlier.breaker_open_seconds,
            host_parallel_workers=self.host_parallel_workers,
            host_worker_images={
                worker: count - earlier.host_worker_images.get(worker, 0)
                for worker, count in self.host_worker_images.items()
            },
            host_worker_seconds={
                worker: secs - earlier.host_worker_seconds.get(worker, 0.0)
                for worker, secs in self.host_worker_seconds.items()
            },
            rerun_stages={
                name: count - earlier.rerun_stages.get(name, 0)
                for name, count in self.rerun_stages.items()
            },
            stage_arrived={
                name: count - earlier.stage_arrived.get(name, 0)
                for name, count in self.stage_arrived.items()
            },
            stage_forwarded={
                name: count - earlier.stage_forwarded.get(name, 0)
                for name, count in self.stage_forwarded.items()
            },
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_bytes=self.cache_bytes,
        )


class _MutableStage:
    __slots__ = ("count", "total_seconds", "max_seconds")

    def __init__(self):
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0


#: Bounded end-to-end latency buffer: old samples are dropped once the
#: autoscaler stops draining (e.g. no scaler attached), so an unattended
#: server never grows without bound.
LATENCY_BUFFER_LIMIT = 100_000


class ServerMetrics:
    """Thread-safe metrics facade for the cascade serving layer."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._stages: dict[str, _MutableStage] = {}
        self._queue_capacity: dict[str, int] = {}
        self._queue_depth: dict[str, int] = {}
        self._queue_max_depth: dict[str, int] = {}
        self._submitted = 0
        self._accepted = 0
        self._rerun = 0
        self._degraded = 0
        self._failed = 0
        self._faults: dict[str, int] = {}
        self._retries = 0
        self._deadline_missed = 0
        self._breaker_state = "closed"
        self._breaker_since = clock()
        self._breaker_open_seconds = 0.0
        self._breaker_trips = 0
        self._threshold = float("nan")
        self._trajectory: list[float] = []
        self._host_parallel_workers = 0
        self._host_worker_images: dict[int, int] = {}
        self._host_worker_seconds: dict[int, float] = {}
        self._rerun_stages: dict[str, int] = {}
        self._stage_arrived: dict[str, int] = {}
        self._stage_forwarded: dict[str, int] = {}
        self._cache_hits = 0
        self._cache_bytes = 0
        self._latencies: deque[float] = deque(maxlen=LATENCY_BUFFER_LIMIT)
        self._started = clock()

    # -- stage latency ------------------------------------------------------
    def observe_stage(self, name: str, seconds: float, count: int = 1) -> None:
        """Record that *count* images spent *seconds* in stage *name*."""
        with self._lock:
            stage = self._stages.setdefault(name, _MutableStage())
            stage.count += count
            stage.total_seconds += seconds
            stage.max_seconds = max(stage.max_seconds, seconds)

    # -- queues -------------------------------------------------------------
    def register_queue(self, name: str, capacity: int) -> None:
        with self._lock:
            self._queue_capacity[name] = capacity
            self._queue_depth.setdefault(name, 0)
            self._queue_max_depth.setdefault(name, 0)

    def set_queue_depth(self, name: str, depth: int) -> None:
        with self._lock:
            self._queue_depth[name] = depth
            if depth > self._queue_max_depth.get(name, 0):
                self._queue_max_depth[name] = depth

    # -- cascade decisions ----------------------------------------------------
    def record_submitted(self, count: int = 1) -> None:
        with self._lock:
            self._submitted += count

    def record_decisions(
        self,
        accepted: int = 0,
        rerun: int = 0,
        degraded: int = 0,
        stage: str | None = None,
    ) -> None:
        """Book terminal answers; *stage* names the rung behind a ``rerun``.

        The top-line ``rerun`` counter is unchanged by *stage* — the
        per-rung breakdown rides alongside so the 2-stage books invariant
        keeps holding verbatim for ladders of any depth.
        """
        with self._lock:
            self._accepted += accepted
            self._rerun += rerun
            self._degraded += degraded
            if stage is not None and rerun:
                self._rerun_stages[stage] = self._rerun_stages.get(stage, 0) + rerun

    def record_cache_hit(self, count: int = 1) -> None:
        """*count* requests were answered from the result cache.

        A cache hit is a terminal answer: it counts toward ``completed``
        alongside accepted/rerun/degraded, keeping the books invariant
        ``accepted + rerun + degraded + cache_hits + failed == submitted``
        once drained.
        """
        with self._lock:
            self._cache_hits += count

    def set_cache_bytes(self, nbytes: int) -> None:
        """Gauge: bytes currently resident in the attached result cache."""
        with self._lock:
            self._cache_bytes = int(nbytes)

    def record_stage_traffic(self, name: str, arrived: int = 0, forwarded: int = 0) -> None:
        """Per-rung traffic: *arrived* images scored, *forwarded* sent up."""
        with self._lock:
            if arrived:
                self._stage_arrived[name] = self._stage_arrived.get(name, 0) + arrived
            if forwarded:
                self._stage_forwarded[name] = (
                    self._stage_forwarded.get(name, 0) + forwarded
                )

    def record_threshold(self, threshold: float) -> None:
        with self._lock:
            self._threshold = float(threshold)
            self._trajectory.append(float(threshold))

    # -- parallel host pool ---------------------------------------------------
    def set_host_parallel_workers(self, n_workers: int) -> None:
        """Declare that the host stage is a parallel pool of *n_workers*."""
        with self._lock:
            self._host_parallel_workers = int(n_workers)

    def record_host_worker_images(self, worker: int, count: int, seconds: float = 0.0) -> None:
        """One pool worker served *count* images in *seconds* of inference."""
        with self._lock:
            self._host_worker_images[worker] = self._host_worker_images.get(worker, 0) + count
            self._host_worker_seconds[worker] = (
                self._host_worker_seconds.get(worker, 0.0) + seconds
            )

    # -- end-to-end latency ---------------------------------------------------
    def record_latency(self, seconds: float) -> None:
        """One request's submit→resolve latency (fed to the SLO autoscaler)."""
        with self._lock:
            self._latencies.append(float(seconds))

    def drain_latencies(self) -> list[float]:
        """Pop every latency sample recorded since the previous drain.

        Each :class:`repro.serve.SLOAutoscaler` tick drains, so the
        returned list *is* the control window by construction — no
        timestamp filtering needed, and two consumers never double-count.
        """
        with self._lock:
            samples = list(self._latencies)
            self._latencies.clear()
        return samples

    # -- robustness ----------------------------------------------------------
    def record_fault(self, stage: str, count: int = 1) -> None:
        """A stage callable raised (injected or organic)."""
        with self._lock:
            self._faults[stage] = self._faults.get(stage, 0) + count

    def record_retry(self, count: int = 1) -> None:
        """A host re-inference attempt is being retried after a failure."""
        with self._lock:
            self._retries += count

    def record_deadline_miss(self, count: int = 1) -> None:
        with self._lock:
            self._deadline_missed += count

    def record_failure(self, count: int = 1) -> None:
        """*count* request futures were resolved with an exception."""
        with self._lock:
            self._failed += count

    def record_breaker_state(self, state: str) -> None:
        """Circuit-breaker transition; integrates degraded-mode time.

        Any state other than ``"closed"`` counts toward
        ``breaker_open_seconds`` (half-open still degrades most flagged
        traffic); entering ``"open"`` increments ``breaker_trips``.
        """
        with self._lock:
            now = self._clock()
            if self._breaker_state != "closed":
                self._breaker_open_seconds += now - self._breaker_since
            if state == "open" and self._breaker_state != "open":
                self._breaker_trips += 1
            self._breaker_state = state
            self._breaker_since = now

    # -- reading ------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            stages = {
                name: StageStats(name, s.count, s.total_seconds, s.max_seconds)
                for name, s in self._stages.items()
            }
            queues = {
                name: QueueStats(
                    name,
                    self._queue_capacity.get(name, 0),
                    self._queue_depth.get(name, 0),
                    self._queue_max_depth.get(name, 0),
                )
                for name in self._queue_capacity
            }
            now = self._clock()
            open_seconds = self._breaker_open_seconds
            if self._breaker_state != "closed":
                open_seconds += now - self._breaker_since
            return MetricsSnapshot(
                stages=stages,
                queues=queues,
                completed=(
                    self._accepted + self._rerun + self._degraded + self._cache_hits
                ),
                accepted=self._accepted,
                rerun=self._rerun,
                degraded=self._degraded,
                threshold=self._threshold,
                threshold_trajectory=tuple(self._trajectory),
                wall_seconds=now - self._started,
                submitted=self._submitted,
                failed=self._failed,
                faults=dict(self._faults),
                retries=self._retries,
                deadline_missed=self._deadline_missed,
                breaker_state=self._breaker_state,
                breaker_trips=self._breaker_trips,
                breaker_open_seconds=open_seconds,
                host_parallel_workers=self._host_parallel_workers,
                host_worker_images=dict(self._host_worker_images),
                host_worker_seconds=dict(self._host_worker_seconds),
                rerun_stages=dict(self._rerun_stages),
                stage_arrived=dict(self._stage_arrived),
                stage_forwarded=dict(self._stage_forwarded),
                cache_hits=self._cache_hits,
                cache_bytes=self._cache_bytes,
            )
