"""Concurrent cascade serving layer (request-driven Fig. 1).

Turns the offline :class:`repro.core.MultiPrecisionPipeline` into a
request-driven system: a size/deadline micro-batcher feeds the BNN
stage, a bounded queue with backpressure feeds a host re-inference
worker pool, and an adaptive controller holds the DMU threshold at the
operating point the paper selects statically.  ``python -m repro
serve-bench`` exercises the whole stack under load.

The same server runs N-stage precision ladders (``docs/LADDER.md``):
pass ``ladder=[LadderStage(...), ...]`` to insert quantized middle
rungs between the BNN and the host, each with its own queue, worker,
DMU, and — via :class:`LadderThresholdController` — threshold knob.

The stack is hardened against stage faults (see ``docs/ROBUSTNESS.md``
and :mod:`repro.faults`): crash-safe workers, per-request deadlines,
retry with backoff on the host path, and a circuit breaker that flips
the server into a degraded BNN-only mode while the host stage is down.

Multi-model deployments use :class:`MultiTenantServer`
(``docs/TENANCY.md``): named tenants — each a full cascade with its own
metrics, quota and :mod:`repro.cache` namespace — share one
:class:`SharedHostPool` that schedules host re-inference with weighted
deficit-round-robin over measured per-model cost.
"""

from .autoscaler import ScalerDecision, SLOAutoscaler
from .batcher import MicroBatcher
from .bench import (
    ServeBenchConfig,
    ServeBenchReport,
    ServeBenchRun,
    folded_bnn_scores_fn,
    format_serve_bench,
    measure_t_host,
    measured_t_bnn,
    run_books,
    run_serve_bench,
    synthetic_ladder_stages,
    synthetic_serving_stack,
)
from .controller import AdaptiveThresholdController, LadderThresholdController
from .metrics import MetricsSnapshot, QueueStats, ServerMetrics, StageStats
from .resilience import (
    CircuitBreaker,
    DeadlineExceeded,
    RetryPolicy,
    ServerClosed,
    StageFailure,
)
from .server import CascadeServer, ServeResult
from .tenancy import (
    MultiTenantServer,
    MultiTenantSnapshot,
    PoolTenantStats,
    SharedHostPool,
    TenantQuotaExceeded,
    TenantSnapshot,
    TenantSpec,
    UnknownTenant,
)

__all__ = [
    "MicroBatcher",
    "AdaptiveThresholdController",
    "LadderThresholdController",
    "ServerClosed",
    "DeadlineExceeded",
    "StageFailure",
    "RetryPolicy",
    "CircuitBreaker",
    "ServerMetrics",
    "MetricsSnapshot",
    "StageStats",
    "QueueStats",
    "CascadeServer",
    "ServeResult",
    "SLOAutoscaler",
    "ScalerDecision",
    "ServeBenchConfig",
    "ServeBenchRun",
    "ServeBenchReport",
    "synthetic_serving_stack",
    "synthetic_ladder_stages",
    "folded_bnn_scores_fn",
    "measured_t_bnn",
    "measure_t_host",
    "run_books",
    "run_serve_bench",
    "format_serve_bench",
    "MultiTenantServer",
    "MultiTenantSnapshot",
    "PoolTenantStats",
    "SharedHostPool",
    "TenantQuotaExceeded",
    "TenantSnapshot",
    "TenantSpec",
    "UnknownTenant",
]
