"""Load-test harness for the cascade server (``repro serve-bench``).

Drives :class:`~repro.serve.server.CascadeServer` with a closed-loop
client fleet over a synthetic score stream and compares a *naive* static
threshold (chosen as if the host were infinitely fast) against the
adaptive controller, both against the Eq. (1) analytic throughput bound

    fps_bound = 1 / max(t_fp * R_target / n_hosts, t_bnn)

The synthetic stack keeps the cascade *control* behaviour real while
making the compute cost explicit: each "image" is already a 10-way score
vector, the BNN stage sleeps ``t_bnn`` per image and returns the scores,
the host stage sleeps ``t_fp`` per image and returns the argmax, and a
fixed margin-reading DMU converts scores to confidence.  Timing is then
a controlled experiment in queueing, not in numpy throughput.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core.ascii_chart import line_chart
from ..core.dmu import DecisionMakingUnit
from ..core.report import format_percent, format_rate, render_table
from .controller import AdaptiveThresholdController
from .metrics import MetricsSnapshot
from .server import CascadeServer

__all__ = [
    "ServeBenchConfig",
    "ServeBenchRun",
    "ServeBenchReport",
    "synthetic_serving_stack",
    "folded_bnn_scores_fn",
    "measured_t_bnn",
    "measure_t_host",
    "run_serve_bench",
    "format_serve_bench",
]


@dataclass(frozen=True)
class ServeBenchConfig:
    """One serve-bench scenario (defaults: host-bound at R_target=0.3).

    The generator offers load at ``arrival_rate_fraction`` of the Eq. (1)
    capacity: right at the knee where a naive (accuracy-only) threshold
    floods the host queue — its flag rate is ``~0.7 / t_fp`` against a
    drain rate of ``1 / t_fp`` — while the target rerun ratio is exactly
    sustainable.  Holding that operating point *is* the controller's job.
    """

    num_requests: int = 3000
    num_clients: int = 8
    #: Offered arrival rate as a fraction of ``analytic_bound_fps``.
    arrival_rate_fraction: float = 0.9
    target_rerun_ratio: float = 0.30
    #: Static threshold a naive deployment might pick for accuracy alone.
    naive_threshold: float = 0.97
    t_bnn: float = 0.00025      # seconds/image, fast stage
    t_fp: float = 0.008         # seconds/image, host stage
    max_batch_size: int = 32
    batch_delay_s: float = 0.004
    host_queue_capacity: int = 48
    num_host_workers: int = 1
    host_batch_size: int = 8
    controller_gain: float = 0.08
    seed: int = 0
    #: Binary-kernel backend for the BNN stage (``repro.bnn.kernels``):
    #: a backend name, "auto", or None for the REPRO_BNN_BACKEND default.
    bnn_backend: str | None = None
    #: When set, replace the constant ``t_bnn`` with a *measured*
    #: seconds/image of the real folded CNV datapath at this width scale
    #: under ``bnn_backend`` — so a faster kernel backend directly raises
    #: the Eq. (1) bound the server is driven against.
    measured_bnn_scale: float | None = None
    #: When set, run the *adaptive* leg under a :mod:`repro.obs` tracer
    #: and write the Chrome trace JSON here; the report gains the span
    #: summary and per-policy Eq. (1) residuals.
    trace_path: str | None = None
    #: Path to a :class:`repro.faults.FaultPlan` JSON; when set, both
    #: legs run with the plan injected into the BNN/DMU/host callables
    #: (fresh injector per leg, so the per-stage fault streams are
    #: identical) and the report gains a fault/retry/breaker section.
    fault_plan_path: str | None = None
    #: Per-request deadline for the server (None disables).
    deadline_s: float | None = None
    #: When set, run both legs with ``CascadeServer(host_workers=N)`` —
    #: the host stage is sharded across N *processes* by a
    #: :class:`repro.parallel.ParallelHostRunner`, the Eq. (1)
    #: ``t_fp -> t_fp / N`` lever this bench then measures.
    host_process_workers: int | None = None
    #: When set, replace the constant ``t_fp`` with a *measured*
    #: seconds/image of the real host Model A inference fast path at this
    #: width scale, sharded over ``host_process_workers`` processes — the
    #: host-side analogue of ``measured_bnn_scale``.
    measured_host_scale: float | None = None

    @property
    def host_parallelism(self) -> int:
        """Total host-stage parallelism: threads x processes."""
        return self.num_host_workers * (self.host_process_workers or 1)

    @property
    def analytic_bound_fps(self) -> float:
        """Eq. (1) at the target rerun ratio, with the host pool scaled."""
        t_host = self.t_fp * self.target_rerun_ratio / self.host_parallelism
        return 1.0 / max(t_host, self.t_bnn)

    @property
    def offered_fps(self) -> float:
        return self.arrival_rate_fraction * self.analytic_bound_fps


def folded_bnn_scores_fn(folded, batch_size: int = 128):
    """Adapt a :class:`repro.bnn.FoldedBNN` to the CascadeServer BNN stage.

    The folded network's kernel backend (``FoldedBNN(backend=...)`` or the
    ``REPRO_BNN_BACKEND`` override) carries through unchanged — this is
    how a deployment serves real images instead of the synthetic stream.

    Packed networks route through one :class:`repro.bnn.CompiledBNNPlan`
    built here and reused for the life of the server (geometry/backends
    resolve on the first batch; every later batch hits preallocated
    buffers); networks the plan cannot compile (``packed=False``) keep
    the uncompiled datapath.  The results are bit-identical either way.
    """
    from ..bnn.plan import PlanUnsupported

    try:
        plan = folded.compile_inference(micro_batch=batch_size)
    except PlanUnsupported:
        plan = None

    def fn(images: np.ndarray) -> np.ndarray:
        if plan is not None:
            return plan.class_scores(images)
        return folded.class_scores(images, batch_size=batch_size)

    return fn


def measured_t_bnn(
    scale: float = 0.25,
    backend: str | None = None,
    batch_size: int = 64,
    num_images: int = 128,
    seed: int = 0,
) -> float:
    """Measured seconds/image of the real folded CNV datapath.

    Uses an untrained width-scaled CNV (kernel cost is independent of the
    weight values), so the serve bench can anchor its Eq. (1) bound to the
    actual BNN throughput of the chosen kernel backend.
    """
    from ..bnn import fold_network
    from ..data import normalize_to_pm1, synthetic_cifar10
    from ..models import build_finn_cnv

    net = build_finn_cnv(scale=scale, rng=np.random.default_rng(seed))
    net.eval_mode()
    folded = fold_network(net, backend=backend)
    images = normalize_to_pm1(
        synthetic_cifar10(num_train=1, num_test=num_images, seed=seed).test.images
    )
    folded.class_scores(images[:batch_size], batch_size=batch_size)  # warmup + autotune
    start = time.perf_counter()
    folded.class_scores(images, batch_size=batch_size)
    return (time.perf_counter() - start) / len(images)


def measure_t_host(
    scale: float = 1.0,
    workers: int = 1,
    num_images: int = 64,
    micro_batch: int = 16,
    seed: int = 0,
) -> float:
    """Measured seconds/image of the real host float path (Model A).

    Times the :class:`repro.nn.InferenceEngine` fast path — serially for
    ``workers <= 1``, else sharded over a
    :class:`repro.parallel.ParallelHostRunner` process pool — so the
    serve bench can anchor its Eq. (1) ``t_fp`` to the actual host
    throughput, exactly like :func:`measured_t_bnn` anchors ``t_bnn``.
    """
    from ..models.host_models import build_model_a

    rng = np.random.default_rng(seed)
    net = build_model_a(scale=scale, rng=rng)
    net.eval_mode()
    images = rng.normal(size=(num_images, 3, 32, 32))
    if workers <= 1:
        engine = net.compile_inference(micro_batch=micro_batch)
        engine.predict_scores(images[:micro_batch])  # warmup
        start = time.perf_counter()
        engine.predict_scores(images)
        return (time.perf_counter() - start) / len(images)
    from ..parallel import ParallelHostRunner

    with ParallelHostRunner(model=net, n_workers=workers, micro_batch=micro_batch) as pool:
        pool.predict_scores(images[:micro_batch])  # warmup (spawns + rings)
        start = time.perf_counter()
        pool.predict_scores(images)
        return (time.perf_counter() - start) / len(images)


def synthetic_serving_stack(config: ServeBenchConfig):
    """(bnn_scores_fn, dmu, host_predict_fn, score_stream) for a scenario.

    The DMU reads the sorted-score margin — ``sigmoid(4*(top1 - top2))``
    — so its confidence CDF is continuous and every rerun ratio in (0, 1)
    is reachable by some threshold, which is what gives the adaptive
    controller a well-posed plant.
    """
    rng = np.random.default_rng(config.seed)
    scores = rng.normal(0.0, 1.0, size=(config.num_requests, 10))
    weights = np.zeros(10)
    weights[0], weights[1] = 4.0, -4.0
    dmu = DecisionMakingUnit(weights, bias=0.0, threshold=config.naive_threshold)

    def bnn_scores_fn(images: np.ndarray) -> np.ndarray:
        time.sleep(config.t_bnn * len(images))
        return images

    def host_predict_fn(images: np.ndarray) -> np.ndarray:
        time.sleep(config.t_fp * len(images))
        return images.argmax(axis=1)

    return bnn_scores_fn, dmu, host_predict_fn, scores


@dataclass(frozen=True)
class ServeBenchRun:
    """Outcome of one server configuration under the client fleet."""

    label: str
    total: MetricsSnapshot
    steady: MetricsSnapshot        # second-half window (steady state)
    final_threshold: float
    analytic_bound_fps: float
    #: Eq. (1) residual at the *realized* steady rerun ratio
    #: (:func:`repro.obs.eq1_residual`), set by :func:`run_serve_bench`.
    eq1: dict | None = None

    @property
    def bound_fraction(self) -> float:
        """Steady throughput as a fraction of the Eq. (1) bound."""
        return self.steady.images_per_second / self.analytic_bound_fps


@dataclass(frozen=True)
class ServeBenchReport:
    config: ServeBenchConfig
    naive: ServeBenchRun
    adaptive: ServeBenchRun
    #: Chrome trace written for the adaptive leg (``trace_path`` set).
    trace_file: str | None = None
    #: Span summaries + counters of the traced leg (JSON-serializable).
    span_summary: dict | None = None
    #: Injected-fault counts per stage/kind per leg (``fault_plan_path``).
    fault_report: dict | None = None


def _drive(
    server: CascadeServer, scores: np.ndarray, config: ServeBenchConfig, label: str
) -> tuple[MetricsSnapshot, MetricsSnapshot]:
    """Paced open-loop generators: offered rate = ``config.offered_fps``.

    Each generator submits its stride of the stream on an absolute-time
    schedule (no drift accumulation); the server's front-door
    backpressure is the only brake.  All futures are awaited at the end,
    so every request is answered before the final snapshot.
    """
    num_clients = max(1, config.num_clients)
    interval = num_clients / config.offered_fps
    futures: list[list] = [[] for _ in range(num_clients)]

    def generator(lane: int) -> None:
        next_ts = time.monotonic() + interval
        for index in range(lane, len(scores), num_clients):
            try:
                futures[lane].append(server.submit(scores[index]))
            except RuntimeError:
                return  # server closed under us (e.g. Ctrl-C teardown)
            sleep_for = next_ts - time.monotonic()
            if sleep_for > 0:
                time.sleep(sleep_for)
            next_ts += interval

    threads = [
        threading.Thread(target=generator, args=(i,), name=f"{label}-gen-{i}", daemon=True)
        for i in range(num_clients)
    ]
    for t in threads:
        t.start()
    # Steady-state window: everything after the first half completes.
    warmup = len(scores) // 2
    while server.snapshot().completed < warmup:
        time.sleep(0.005)
    mid = server.snapshot()
    for t in threads:
        t.join()
    for lane in futures:
        for future in lane:
            try:
                future.result()
            except Exception:
                # Under a fault plan some requests legitimately resolve to
                # errors (StageFailure / DeadlineExceeded); the snapshot's
                # failed counter carries the tally.
                pass
    end = server.snapshot()
    return end, end.since(mid)


def run_serve_bench(config: ServeBenchConfig | None = None) -> ServeBenchReport:
    config = config or ServeBenchConfig()
    if config.measured_bnn_scale is not None:
        from dataclasses import replace

        config = replace(
            config,
            t_bnn=measured_t_bnn(
                scale=config.measured_bnn_scale,
                backend=config.bnn_backend,
                seed=config.seed,
            ),
        )
    if config.measured_host_scale is not None:
        from dataclasses import replace

        config = replace(
            config,
            t_fp=measure_t_host(
                scale=config.measured_host_scale,
                workers=config.host_process_workers or 1,
                seed=config.seed,
            ),
            # The measured rate already includes the process sharding, so
            # Eq. (1) must not divide by the pool size a second time.
            host_process_workers=None,
        )
    fault_plan = None
    if config.fault_plan_path is not None:
        from ..faults import load_fault_plan

        fault_plan = load_fault_plan(config.fault_plan_path)
    runs = {}
    trace_file = None
    span_summary = None
    fault_report: dict | None = None
    for label in ("naive", "adaptive"):
        bnn_fn, dmu, host_fn, scores = synthetic_serving_stack(config)
        injector = None
        if fault_plan is not None:
            from ..faults import wrap_stack

            bnn_fn, dmu, host_fn, injector = wrap_stack(fault_plan, bnn_fn, dmu, host_fn)
        if label == "adaptive":
            # Start from the same bad operating point the naive run uses:
            # convergence, not initialization, must close the gap.
            controller: AdaptiveThresholdController | float = AdaptiveThresholdController(
                initial_threshold=config.naive_threshold,
                target_rerun_ratio=config.target_rerun_ratio,
                gain=config.controller_gain,
            )
        else:
            controller = config.naive_threshold
        server = CascadeServer(
            bnn_fn,
            dmu,
            host_fn,
            controller=controller,
            max_batch_size=config.max_batch_size,
            batch_delay_s=config.batch_delay_s,
            host_queue_capacity=config.host_queue_capacity,
            num_host_workers=config.num_host_workers,
            host_workers=config.host_process_workers,
            host_batch_size=config.host_batch_size,
            deadline_s=config.deadline_s,
        )
        # Trace only the adaptive leg: one representative timeline, and
        # the naive leg stays a tracer-free control for the overhead claim.
        trace_this = config.trace_path is not None and label == "adaptive"
        if trace_this:
            with obs.tracing() as tracer:
                with server:
                    total, steady = _drive(server, scores, config, label)
                    final_threshold = server.threshold
            trace_file = str(obs.write_chrome_trace(tracer, config.trace_path))
            span_summary = obs.trace_summary(tracer)
        else:
            with server:
                total, steady = _drive(server, scores, config, label)
                final_threshold = server.threshold
        eq1 = obs.eq1_residual(
            measured_seconds_per_image=(
                steady.wall_seconds / steady.completed if steady.completed else float("nan")
            ),
            t_fp=config.t_fp,
            t_bnn=config.t_bnn,
            rerun_ratio=steady.rerun_ratio,
            num_host_workers=config.host_parallelism,
        )
        runs[label] = ServeBenchRun(
            label=label,
            total=total,
            steady=steady,
            final_threshold=final_threshold,
            analytic_bound_fps=config.analytic_bound_fps,
            eq1=eq1,
        )
        if injector is not None:
            from ..faults import STAGES

            fault_report = fault_report or {}
            fault_report[label] = {
                "injected": {
                    stage: injector.log.counts_by_kind(stage) for stage in STAGES
                },
                "stage_calls": {stage: injector.calls(stage) for stage in STAGES},
                "observed": {
                    "faults": dict(total.faults),
                    "retries": total.retries,
                    "deadline_missed": total.deadline_missed,
                    "failed": total.failed,
                    "degraded": total.degraded,
                    "breaker_trips": total.breaker_trips,
                    "breaker_open_seconds": total.breaker_open_seconds,
                    "answered": total.completed,
                    "submitted": total.submitted,
                },
            }
    return ServeBenchReport(
        config=config,
        naive=runs["naive"],
        adaptive=runs["adaptive"],
        trace_file=trace_file,
        span_summary=span_summary,
        fault_report=fault_report,
    )


def format_serve_bench(report: ServeBenchReport) -> str:
    cfg = report.config
    rows = []
    for run in (report.naive, report.adaptive):
        host_queue = run.total.queues["host"]
        rows.append(
            [
                run.label,
                f"{run.final_threshold:.3f}",
                format_percent(run.steady.rerun_ratio),
                format_percent(run.steady.degraded_ratio),
                format_rate(run.steady.images_per_second),
                format_rate(run.analytic_bound_fps),
                f"{run.bound_fraction:.2f}x",
                f"{host_queue.max_depth}/{host_queue.capacity}",
            ]
        )
    table = render_table(
        [
            "policy",
            "final thr",
            "R_rerun",
            "degraded",
            "img/s (steady)",
            "Eq.(1) bound",
            "of bound",
            "host q max",
        ],
        rows,
        title=(
            "serve-bench: adaptive DMU threshold vs naive static threshold\n"
            f"(target R_rerun={cfg.target_rerun_ratio:.2f}, t_fp={cfg.t_fp * 1e3:.1f} ms, "
            f"t_bnn={cfg.t_bnn * 1e3:.2f} ms, {cfg.num_host_workers} host thread(s) x "
            f"{cfg.host_process_workers or 1} host process(es), "
            f"offered {cfg.offered_fps:.0f} img/s = {cfg.arrival_rate_fraction:.0%} of the "
            f"Eq. (1) bound, {cfg.num_requests} requests/run)"
        ),
    )
    trajectory = report.adaptive.total.threshold_trajectory
    chart = ""
    if len(trajectory) >= 2:
        chart = "\n\n" + line_chart(
            list(range(len(trajectory))),
            {"threshold": list(trajectory)},
            title="adaptive threshold trajectory (per BNN batch)",
            x_label="batch",
            y_label="thr",
        )
    residual_lines = []
    for run in (report.naive, report.adaptive):
        if run.eq1 is None:
            continue
        residual_lines.append(
            f"  {run.label:<9} predicted "
            f"{run.eq1['predicted_seconds_per_image'] * 1e3:.2f} ms/img, measured "
            f"{run.eq1['measured_seconds_per_image'] * 1e3:.2f} ms/img "
            f"({run.eq1['relative_residual']:+.0%})"
        )
    residuals = ""
    if residual_lines:
        residuals = (
            "\n\nEq. (1) residual at each policy's *realized* steady R_rerun:\n"
            + "\n".join(residual_lines)
        )
    host_lines = []
    for run in (report.naive, report.adaptive):
        stage = run.total.stages.get("host")
        wait = run.total.stages.get("host_queue_wait")
        if stage is None or stage.count == 0:
            continue
        line = (
            f"  {run.label:<9} pure-inference {stage.mean_seconds * 1e3:.2f} ms/img, "
            f"queue-wait "
            f"{(wait.mean_seconds * 1e3 if wait is not None and wait.count else 0.0):.2f}"
            f" ms/img over {stage.count} rerun images"
        )
        if run.total.host_parallel_workers:
            shares = ", ".join(
                f"w{worker}:{count}"
                for worker, count in sorted(run.total.host_worker_images.items())
            )
            line += f"; {run.total.host_parallel_workers} procs [{shares}]"
        host_lines.append(line)
    host_split = ""
    if host_lines:
        host_split = (
            "\n\nhost stage split (time parked in the host queue vs compute):\n"
            + "\n".join(host_lines)
        )
    spans = ""
    if report.span_summary is not None:
        spans = "\n\n" + obs.format_span_summaries(
            {
                name: obs.SpanSummary(**row)
                for name, row in report.span_summary["spans"].items()
            },
            title="adaptive-leg span summary (trace written to "
            f"{report.trace_file})",
        )
    faults = ""
    if report.fault_report is not None:
        lines = [f"chaos run under fault plan {cfg.fault_plan_path}:"]
        for label, leg in report.fault_report.items():
            injected = {
                stage: kinds for stage, kinds in leg["injected"].items() if kinds
            }
            seen = leg["observed"]
            lines.append(
                f"  {label:<9} injected {injected or 'none'} over "
                f"{leg['stage_calls']} stage calls"
            )
            lines.append(
                f"  {'':<9} answered {seen['answered']}/{seen['submitted']} "
                f"(failed {seen['failed']}, degraded {seen['degraded']}, "
                f"retries {seen['retries']}, deadline misses "
                f"{seen['deadline_missed']}, breaker trips {seen['breaker_trips']}, "
                f"open {seen['breaker_open_seconds']:.2f}s)"
            )
        faults = "\n\n" + "\n".join(lines)
    notes = (
        "\nnaive saturates the host queue and sheds load (degraded); the\n"
        "controller walks the threshold down until the rerun ratio holds the\n"
        "target, keeping the host pool busy but un-saturated (Eq. (1) regime)."
    )
    return table + chart + residuals + host_split + spans + faults + notes
