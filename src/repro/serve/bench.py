"""Load-test harness for the cascade server (``repro serve-bench``).

Drives :class:`~repro.serve.server.CascadeServer` with a closed-loop
client fleet over a synthetic score stream and compares a *naive* static
threshold (chosen as if the host were infinitely fast) against the
adaptive controller, both against the Eq. (1) analytic throughput bound

    fps_bound = 1 / max(t_fp * R_target / n_hosts, t_bnn)

The synthetic stack keeps the cascade *control* behaviour real while
making the compute cost explicit: each "image" is already a 10-way score
vector, the BNN stage sleeps ``t_bnn`` per image and returns the scores,
the host stage sleeps ``t_fp`` per image and returns the argmax, and a
fixed margin-reading DMU converts scores to confidence.  Timing is then
a controlled experiment in queueing, not in numpy throughput.

``ladder_stage_times`` turns the same harness into an N-stage precision
ladder bench (``docs/LADDER.md``): each middle rung sleeps its ``t_i``
per image, and hop *k*'s DMU reads the margin at sorted-score positions
``(2k, 2k+1)`` — disjoint positions give every hop its own continuous,
largely decorrelated confidence CDF, so every per-hop forward ratio in
(0, 1) is reachable and the multi-knob
:class:`~repro.serve.controller.LadderThresholdController` has a
well-posed plant at each hop.  The report then checks the generalized
Eq. (1N) bound ``max_i t_i * R_i`` and the per-stage books
(``accepted + Σ rerun_i + degraded + failed == submitted``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core.analytic import ladder_interval
from ..core.ascii_chart import line_chart
from ..core.dmu import DecisionMakingUnit
from ..core.ladder import LadderStage
from ..core.report import format_percent, format_rate, render_table
from .controller import AdaptiveThresholdController, LadderThresholdController
from .metrics import MetricsSnapshot
from .server import CascadeServer

__all__ = [
    "ServeBenchConfig",
    "ServeBenchRun",
    "ServeBenchReport",
    "synthetic_serving_stack",
    "synthetic_ladder_stages",
    "folded_bnn_scores_fn",
    "measured_t_bnn",
    "measure_t_host",
    "run_books",
    "run_serve_bench",
    "format_serve_bench",
]


@dataclass(frozen=True)
class ServeBenchConfig:
    """One serve-bench scenario (defaults: host-bound at R_target=0.3).

    The generator offers load at ``arrival_rate_fraction`` of the Eq. (1)
    capacity: right at the knee where a naive (accuracy-only) threshold
    floods the host queue — its flag rate is ``~0.7 / t_fp`` against a
    drain rate of ``1 / t_fp`` — while the target rerun ratio is exactly
    sustainable.  Holding that operating point *is* the controller's job.
    """

    num_requests: int = 3000
    num_clients: int = 8
    #: Offered arrival rate as a fraction of ``analytic_bound_fps``.
    arrival_rate_fraction: float = 0.9
    target_rerun_ratio: float = 0.30
    #: Static threshold a naive deployment might pick for accuracy alone.
    naive_threshold: float = 0.97
    t_bnn: float = 0.00025      # seconds/image, fast stage
    t_fp: float = 0.008         # seconds/image, host stage
    max_batch_size: int = 32
    batch_delay_s: float = 0.004
    host_queue_capacity: int = 48
    num_host_workers: int = 1
    host_batch_size: int = 8
    controller_gain: float = 0.08
    seed: int = 0
    #: Binary-kernel backend for the BNN stage (``repro.bnn.kernels``):
    #: a backend name, "auto", or None for the REPRO_BNN_BACKEND default.
    bnn_backend: str | None = None
    #: When set, replace the constant ``t_bnn`` with a *measured*
    #: seconds/image of the real folded CNV datapath at this width scale
    #: under ``bnn_backend`` — so a faster kernel backend directly raises
    #: the Eq. (1) bound the server is driven against.
    measured_bnn_scale: float | None = None
    #: When set, run the *adaptive* leg under a :mod:`repro.obs` tracer
    #: and write the Chrome trace JSON here; the report gains the span
    #: summary and per-policy Eq. (1) residuals.
    trace_path: str | None = None
    #: Path to a :class:`repro.faults.FaultPlan` JSON; when set, both
    #: legs run with the plan injected into the BNN/DMU/host callables
    #: (fresh injector per leg, so the per-stage fault streams are
    #: identical) and the report gains a fault/retry/breaker section.
    fault_plan_path: str | None = None
    #: Per-request deadline for the server (None disables).
    deadline_s: float | None = None
    #: When set, run both legs with ``CascadeServer(host_workers=N)`` —
    #: the host stage is sharded across N *processes* by a
    #: :class:`repro.parallel.ParallelHostRunner`, the Eq. (1)
    #: ``t_fp -> t_fp / N`` lever this bench then measures.
    host_process_workers: int | None = None
    #: When set, replace the constant ``t_fp`` with a *measured*
    #: seconds/image of the real host Model A inference fast path at this
    #: width scale, sharded over ``host_process_workers`` processes — the
    #: host-side analogue of ``measured_bnn_scale``.
    measured_host_scale: float | None = None
    #: Middle-rung stage times (seconds/image), cheapest-first, between
    #: the BNN and the host: ``(0.002,)`` benches a 3-stage ladder
    #: (bnn -> mid1 -> host).  None keeps the classic 2-stage cascade.
    #: At most 4 middle rungs (each hop's DMU needs its own pair of
    #: sorted-score positions out of 10 classes).
    ladder_stage_times: tuple[float, ...] | None = None
    #: Per-hop target forward ratio for the ladder's adaptive leg
    #: (None = ``target_rerun_ratio`` at every hop).
    ladder_target_forward_ratio: float | None = None
    #: When positive, attach a content-addressed
    #: :class:`repro.cache.CachingFrontend` of this many bytes in front
    #: of each leg's server; the report gains a cache hit-rate column
    #: and the cache's own books (``hits + misses == lookups``).
    cache_max_bytes: int = 0
    #: Fraction of the request stream that repeats an earlier request's
    #: exact bytes — the duplicate mass the cache can win back.  0 keeps
    #: every request unique.
    duplicate_fraction: float = 0.0

    @property
    def host_parallelism(self) -> int:
        """Total host-stage parallelism: threads x processes."""
        return self.num_host_workers * (self.host_process_workers or 1)

    @property
    def stage_times(self) -> tuple[float, ...]:
        """All rung times cheapest-first: (t_bnn, *middles, t_fp)."""
        return (self.t_bnn, *(self.ladder_stage_times or ()), self.t_fp)

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Rung names matching the server's: ("bnn", "mid1", ..., "host")."""
        mids = tuple(
            f"mid{i + 1}" for i in range(len(self.ladder_stage_times or ()))
        )
        return ("bnn", *mids, "host")

    @property
    def hop_target_forward_ratio(self) -> float:
        return (
            self.ladder_target_forward_ratio
            if self.ladder_target_forward_ratio is not None
            else self.target_rerun_ratio
        )

    @property
    def analytic_bound_fps(self) -> float:
        """Eq. (1)/(1N) at the target ratio(s), with the host pool scaled.

        For a ladder, every hop is assumed to forward its target ratio,
        so rung *i*'s reach is ``r_target ** i`` (Eq. (1N) at the
        controller's setpoint).
        """
        if self.ladder_stage_times:
            times = list(self.stage_times)
            times[-1] /= self.host_parallelism
            ratios = [self.hop_target_forward_ratio] * (len(times) - 1)
            return 1.0 / ladder_interval(times, ratios)
        t_host = self.t_fp * self.target_rerun_ratio / self.host_parallelism
        return 1.0 / max(t_host, self.t_bnn)

    @property
    def offered_fps(self) -> float:
        return self.arrival_rate_fraction * self.analytic_bound_fps


def folded_bnn_scores_fn(folded, batch_size: int = 128):
    """Adapt a :class:`repro.bnn.FoldedBNN` to the CascadeServer BNN stage.

    The folded network's kernel backend (``FoldedBNN(backend=...)`` or the
    ``REPRO_BNN_BACKEND`` override) carries through unchanged — this is
    how a deployment serves real images instead of the synthetic stream.

    Packed networks route through one :class:`repro.bnn.CompiledBNNPlan`
    built here and reused for the life of the server (geometry/backends
    resolve on the first batch; every later batch hits preallocated
    buffers); networks the plan cannot compile (``packed=False``) keep
    the uncompiled datapath.  The results are bit-identical either way.
    """
    from ..bnn.plan import PlanUnsupported

    try:
        plan = folded.compile_inference(micro_batch=batch_size)
    except PlanUnsupported:
        plan = None

    def fn(images: np.ndarray) -> np.ndarray:
        if plan is not None:
            return plan.class_scores(images)
        return folded.class_scores(images, batch_size=batch_size)

    return fn


def measured_t_bnn(
    scale: float = 0.25,
    backend: str | None = None,
    batch_size: int = 64,
    num_images: int = 128,
    seed: int = 0,
) -> float:
    """Measured seconds/image of the real folded CNV datapath.

    Uses an untrained width-scaled CNV (kernel cost is independent of the
    weight values), so the serve bench can anchor its Eq. (1) bound to the
    actual BNN throughput of the chosen kernel backend.
    """
    from ..bnn import fold_network
    from ..data import normalize_to_pm1, synthetic_cifar10
    from ..models import build_finn_cnv

    net = build_finn_cnv(scale=scale, rng=np.random.default_rng(seed))
    net.eval_mode()
    folded = fold_network(net, backend=backend)
    images = normalize_to_pm1(
        synthetic_cifar10(num_train=1, num_test=num_images, seed=seed).test.images
    )
    folded.class_scores(images[:batch_size], batch_size=batch_size)  # warmup + autotune
    start = time.perf_counter()
    folded.class_scores(images, batch_size=batch_size)
    return (time.perf_counter() - start) / len(images)


def measure_t_host(
    scale: float = 1.0,
    workers: int = 1,
    num_images: int = 64,
    micro_batch: int = 16,
    seed: int = 0,
) -> float:
    """Measured seconds/image of the real host float path (Model A).

    Times the :class:`repro.nn.InferenceEngine` fast path — serially for
    ``workers <= 1``, else sharded over a
    :class:`repro.parallel.ParallelHostRunner` process pool — so the
    serve bench can anchor its Eq. (1) ``t_fp`` to the actual host
    throughput, exactly like :func:`measured_t_bnn` anchors ``t_bnn``.
    """
    from ..models.host_models import build_model_a

    rng = np.random.default_rng(seed)
    net = build_model_a(scale=scale, rng=rng)
    net.eval_mode()
    images = rng.normal(size=(num_images, 3, 32, 32))
    if workers <= 1:
        engine = net.compile_inference(micro_batch=micro_batch)
        engine.predict_scores(images[:micro_batch])  # warmup
        start = time.perf_counter()
        engine.predict_scores(images)
        return (time.perf_counter() - start) / len(images)
    from ..parallel import ParallelHostRunner

    with ParallelHostRunner(model=net, n_workers=workers, micro_batch=micro_batch) as pool:
        pool.predict_scores(images[:micro_batch])  # warmup (spawns + rings)
        start = time.perf_counter()
        pool.predict_scores(images)
        return (time.perf_counter() - start) / len(images)


def synthetic_serving_stack(config: ServeBenchConfig):
    """(bnn_scores_fn, dmu, host_predict_fn, score_stream) for a scenario.

    The DMU reads the sorted-score margin — ``sigmoid(4*(top1 - top2))``
    — so its confidence CDF is continuous and every rerun ratio in (0, 1)
    is reachable by some threshold, which is what gives the adaptive
    controller a well-posed plant.
    """
    rng = np.random.default_rng(config.seed)
    scores = rng.normal(0.0, 1.0, size=(config.num_requests, 10))
    if not 0.0 <= config.duplicate_fraction < 1.0:
        raise ValueError("duplicate_fraction must be in [0, 1)")
    num_dup = int(round(config.duplicate_fraction * config.num_requests))
    if num_dup:
        # Overwrite a random subset of rows with exact copies of earlier
        # rows, so duplicates (mostly) arrive after their first showing
        # and a content-addressed cache can win them back.
        positions = rng.choice(
            np.arange(1, config.num_requests), size=num_dup, replace=False
        )
        for pos in positions:
            scores[pos] = scores[rng.integers(0, pos)]
    weights = np.zeros(10)
    weights[0], weights[1] = 4.0, -4.0
    dmu = DecisionMakingUnit(weights, bias=0.0, threshold=config.naive_threshold)

    def bnn_scores_fn(images: np.ndarray) -> np.ndarray:
        time.sleep(config.t_bnn * len(images))
        return images

    def host_predict_fn(images: np.ndarray) -> np.ndarray:
        time.sleep(config.t_fp * len(images))
        return images.argmax(axis=1)

    return bnn_scores_fn, dmu, host_predict_fn, scores


def synthetic_ladder_stages(config: ServeBenchConfig) -> list[LadderStage]:
    """Middle rungs for the ladder bench, one per ``ladder_stage_times``.

    Rung *k* sleeps its ``t_k`` per image and returns the scores; its DMU
    reads the margin at sorted-score positions ``(2k, 2k+1)``, a pair no
    other hop reads, so each hop's confidence CDF is continuous and only
    weakly correlated with the hops below it.
    """
    times = config.ladder_stage_times or ()
    if len(times) > 4:
        raise ValueError(
            "at most 4 middle rungs: each hop's DMU needs its own pair of "
            "sorted-score positions out of 10 classes"
        )
    if any(t <= 0 for t in times):
        raise ValueError("ladder stage times must be positive")
    stages = []
    for hop, t_stage in enumerate(times, start=1):
        weights = np.zeros(10)
        weights[2 * hop], weights[2 * hop + 1] = 4.0, -4.0

        def scores_fn(images: np.ndarray, _t: float = t_stage) -> np.ndarray:
            time.sleep(_t * len(images))
            return images

        stages.append(
            LadderStage(
                name=f"mid{hop}",
                scores_fn=scores_fn,
                dmu=DecisionMakingUnit(
                    weights, bias=0.0, threshold=config.naive_threshold
                ),
                t_image=t_stage,
            )
        )
    return stages


@dataclass(frozen=True)
class ServeBenchRun:
    """Outcome of one server configuration under the client fleet."""

    label: str
    total: MetricsSnapshot
    steady: MetricsSnapshot        # second-half window (steady state)
    final_threshold: float
    analytic_bound_fps: float
    #: Eq. (1) residual at the *realized* steady rerun ratio
    #: (:func:`repro.obs.eq1_residual`), set by :func:`run_serve_bench`;
    #: :func:`repro.obs.ladder_eq1_residual` for ladder runs.
    eq1: dict | None = None
    #: Final threshold of every hop, bnn-first (2-stage: one entry).
    final_thresholds: tuple[float, ...] = ()
    #: Drained end-of-run books (``accepted + Σ rerun_stages + degraded +
    #: failed == submitted`` and ``Σ rerun_stages == rerun``), see
    #: :func:`run_books`.
    books: dict | None = None
    #: Cache counters when ``cache_max_bytes`` attached a
    #: :class:`repro.cache.CachingFrontend`: its own books
    #: (``hits + misses == lookups`` under ``balanced``), single-flight
    #: coalescing, and the metrics-side ``served_from_cache`` tally.
    cache: dict | None = None

    @property
    def bound_fraction(self) -> float:
        """Steady throughput as a fraction of the Eq. (1) bound."""
        return self.steady.images_per_second / self.analytic_bound_fps


def run_books(total: MetricsSnapshot) -> dict:
    """Per-stage accounting of a fully drained run.

    ``balanced`` asserts the ladder invariant: every submitted request is
    accounted for exactly once (``accepted + rerun + degraded +
    cache_hits + failed == submitted``) and the per-rung breakdown
    re-sums to the top line (``Σ rerun_stages == rerun``).
    ``cache_hits`` stays zero unless a :class:`repro.cache.CachingFrontend`
    shares the server's metrics.
    """
    answered = (
        total.accepted + total.rerun + total.degraded + total.cache_hits
        + total.failed
    )
    return {
        "submitted": total.submitted,
        "accepted": total.accepted,
        "rerun": total.rerun,
        "rerun_stages": dict(total.rerun_stages),
        "degraded": total.degraded,
        "cache_hits": total.cache_hits,
        "failed": total.failed,
        "balanced": (
            answered == total.submitted
            and total.rerun_stage_total == total.rerun
        ),
    }


@dataclass(frozen=True)
class ServeBenchReport:
    config: ServeBenchConfig
    naive: ServeBenchRun
    adaptive: ServeBenchRun
    #: Chrome trace written for the adaptive leg (``trace_path`` set).
    trace_file: str | None = None
    #: Span summaries + counters of the traced leg (JSON-serializable).
    span_summary: dict | None = None
    #: Injected-fault counts per stage/kind per leg (``fault_plan_path``).
    fault_report: dict | None = None

    @property
    def books_balanced(self) -> bool:
        """True when both legs' per-stage books balance (CI gate)."""
        return all(
            run.books is not None and run.books["balanced"]
            for run in (self.naive, self.adaptive)
        )

    @property
    def cache_books_balanced(self) -> bool:
        """True when no cache is attached, or both legs' cache books
        reconcile (``hits + misses == lookups``) — the serve-bench CLI
        exits nonzero when this fails."""
        return all(
            run.cache is None or run.cache["balanced"]
            for run in (self.naive, self.adaptive)
        )


def _drive(
    server: CascadeServer, scores: np.ndarray, config: ServeBenchConfig, label: str
) -> tuple[MetricsSnapshot, MetricsSnapshot]:
    """Paced open-loop generators: offered rate = ``config.offered_fps``.

    Each generator submits its stride of the stream on an absolute-time
    schedule (no drift accumulation); the server's front-door
    backpressure is the only brake.  All futures are awaited at the end,
    so every request is answered before the final snapshot.
    """
    num_clients = max(1, config.num_clients)
    interval = num_clients / config.offered_fps
    futures: list[list] = [[] for _ in range(num_clients)]

    def generator(lane: int) -> None:
        next_ts = time.monotonic() + interval
        for index in range(lane, len(scores), num_clients):
            try:
                futures[lane].append(server.submit(scores[index]))
            except RuntimeError:
                return  # server closed under us (e.g. Ctrl-C teardown)
            sleep_for = next_ts - time.monotonic()
            if sleep_for > 0:
                time.sleep(sleep_for)
            next_ts += interval

    threads = [
        threading.Thread(target=generator, args=(i,), name=f"{label}-gen-{i}", daemon=True)
        for i in range(num_clients)
    ]
    for t in threads:
        t.start()
    # Steady-state window: everything after the first half completes.
    warmup = len(scores) // 2
    while server.snapshot().completed < warmup:
        time.sleep(0.005)
    mid = server.snapshot()
    for t in threads:
        t.join()
    for lane in futures:
        for future in lane:
            try:
                future.result()
            except Exception:
                # Under a fault plan some requests legitimately resolve to
                # errors (StageFailure / DeadlineExceeded); the snapshot's
                # failed counter carries the tally.
                pass
    end = server.snapshot()
    return end, end.since(mid)


def run_serve_bench(config: ServeBenchConfig | None = None) -> ServeBenchReport:
    config = config or ServeBenchConfig()
    if config.measured_bnn_scale is not None:
        from dataclasses import replace

        config = replace(
            config,
            t_bnn=measured_t_bnn(
                scale=config.measured_bnn_scale,
                backend=config.bnn_backend,
                seed=config.seed,
            ),
        )
    if config.measured_host_scale is not None:
        from dataclasses import replace

        config = replace(
            config,
            t_fp=measure_t_host(
                scale=config.measured_host_scale,
                workers=config.host_process_workers or 1,
                seed=config.seed,
            ),
            # The measured rate already includes the process sharding, so
            # Eq. (1) must not divide by the pool size a second time.
            host_process_workers=None,
        )
    fault_plan = None
    if config.fault_plan_path is not None:
        from ..faults import load_fault_plan

        fault_plan = load_fault_plan(config.fault_plan_path)
    runs = {}
    trace_file = None
    span_summary = None
    fault_report: dict | None = None
    for label in ("naive", "adaptive"):
        bnn_fn, dmu, host_fn, scores = synthetic_serving_stack(config)
        # Fresh middle rungs per leg; the fault plan wraps only the
        # bnn/dmu/host stages (the seeded streams the plans name).
        ladder = synthetic_ladder_stages(config) if config.ladder_stage_times else None
        num_hops = 1 + len(ladder or ())
        injector = None
        if fault_plan is not None:
            from ..faults import wrap_stack

            bnn_fn, dmu, host_fn, injector = wrap_stack(fault_plan, bnn_fn, dmu, host_fn)
        if label == "adaptive":
            # Start from the same bad operating point the naive run uses:
            # convergence, not initialization, must close the gap.
            controller: LadderThresholdController | AdaptiveThresholdController | float
            if ladder is not None:
                controller = LadderThresholdController.from_targets(
                    initial_thresholds=[config.naive_threshold] * num_hops,
                    target_forward_ratios=[config.hop_target_forward_ratio] * num_hops,
                    gain=config.controller_gain,
                )
            else:
                controller = AdaptiveThresholdController(
                    initial_threshold=config.naive_threshold,
                    target_rerun_ratio=config.target_rerun_ratio,
                    gain=config.controller_gain,
                )
        else:
            controller = config.naive_threshold
        server = CascadeServer(
            bnn_fn,
            dmu,
            host_fn,
            controller=controller,
            max_batch_size=config.max_batch_size,
            batch_delay_s=config.batch_delay_s,
            host_queue_capacity=config.host_queue_capacity,
            num_host_workers=config.num_host_workers,
            host_workers=config.host_process_workers,
            host_batch_size=config.host_batch_size,
            deadline_s=config.deadline_s,
            ladder=ladder,
        )
        front = None
        if config.cache_max_bytes:
            from ..cache import CachingFrontend, ResultCache

            front = CachingFrontend(
                server, ResultCache(max_bytes=config.cache_max_bytes)
            )
            server = front  # delegates everything _drive touches
        # Trace only the adaptive leg: one representative timeline, and
        # the naive leg stays a tracer-free control for the overhead claim.
        trace_this = config.trace_path is not None and label == "adaptive"
        if trace_this:
            with obs.tracing() as tracer:
                with server:
                    total, steady = _drive(server, scores, config, label)
                    final_thresholds = tuple(
                        server.stage_threshold(h) for h in range(num_hops)
                    )
            trace_file = str(obs.write_chrome_trace(tracer, config.trace_path))
            span_summary = obs.trace_summary(tracer)
        else:
            with server:
                total, steady = _drive(server, scores, config, label)
                final_thresholds = tuple(
                    server.stage_threshold(h) for h in range(num_hops)
                )
        cache_books = None
        if front is not None:
            csnap = front.cache_snapshot()
            sf = front.single_flight_snapshot()
            cache_books = {
                "lookups": csnap.lookups,
                "hits": csnap.hits,
                "misses": csnap.misses,
                "near_hits": csnap.near_hits,
                "near_rejects": csnap.near_rejects,
                "entries": csnap.entries,
                "bytes": csnap.bytes,
                "max_bytes": csnap.max_bytes,
                "hit_rate": csnap.hit_rate,
                "single_flight_followers": sf.followers,
                "served_from_cache": total.cache_hits,
                "balanced": csnap.balanced,
            }
        measured = (
            steady.wall_seconds / steady.completed if steady.completed else float("nan")
        )
        if ladder is not None:
            names = config.stage_names
            ratios = steady.ladder_forward_ratios
            eq1 = obs.ladder_eq1_residual(
                measured_seconds_per_image=measured,
                stage_times=list(config.stage_times),
                forward_ratios=[ratios.get(n, 0.0) for n in names[:-1]],
                stage_names=list(names),
                num_host_workers=config.host_parallelism,
            )
        else:
            eq1 = obs.eq1_residual(
                measured_seconds_per_image=measured,
                t_fp=config.t_fp,
                t_bnn=config.t_bnn,
                rerun_ratio=steady.rerun_ratio,
                num_host_workers=config.host_parallelism,
            )
        runs[label] = ServeBenchRun(
            label=label,
            total=total,
            steady=steady,
            final_threshold=final_thresholds[0],
            analytic_bound_fps=config.analytic_bound_fps,
            eq1=eq1,
            final_thresholds=final_thresholds,
            books=run_books(total),
            cache=cache_books,
        )
        if injector is not None:
            from ..faults import STAGES

            fault_report = fault_report or {}
            fault_report[label] = {
                "injected": {
                    stage: injector.log.counts_by_kind(stage) for stage in STAGES
                },
                "stage_calls": {stage: injector.calls(stage) for stage in STAGES},
                "observed": {
                    "faults": dict(total.faults),
                    "retries": total.retries,
                    "deadline_missed": total.deadline_missed,
                    "failed": total.failed,
                    "degraded": total.degraded,
                    "breaker_trips": total.breaker_trips,
                    "breaker_open_seconds": total.breaker_open_seconds,
                    "answered": total.completed,
                    "submitted": total.submitted,
                },
            }
    return ServeBenchReport(
        config=config,
        naive=runs["naive"],
        adaptive=runs["adaptive"],
        trace_file=trace_file,
        span_summary=span_summary,
        fault_report=fault_report,
    )


def format_serve_bench(report: ServeBenchReport) -> str:
    cfg = report.config
    rows = []
    for run in (report.naive, report.adaptive):
        host_queue = run.total.queues["host"]
        row = [
            run.label,
            f"{run.final_threshold:.3f}",
            format_percent(run.steady.rerun_ratio),
            format_percent(run.steady.degraded_ratio),
            format_rate(run.steady.images_per_second),
            format_rate(run.analytic_bound_fps),
            f"{run.bound_fraction:.2f}x",
            f"{host_queue.max_depth}/{host_queue.capacity}",
        ]
        if cfg.cache_max_bytes:
            row.append(
                format_percent(run.cache["hit_rate"]) if run.cache else "-"
            )
        rows.append(row)
    headers = [
        "policy",
        "final thr",
        "R_rerun",
        "degraded",
        "img/s (steady)",
        "Eq.(1) bound",
        "of bound",
        "host q max",
    ]
    if cfg.cache_max_bytes:
        headers.append("cache hit")
    table = render_table(
        headers,
        rows,
        title=(
            "serve-bench: adaptive DMU threshold vs naive static threshold\n"
            f"(target R_rerun={cfg.target_rerun_ratio:.2f}, t_fp={cfg.t_fp * 1e3:.1f} ms, "
            f"t_bnn={cfg.t_bnn * 1e3:.2f} ms, {cfg.num_host_workers} host thread(s) x "
            f"{cfg.host_process_workers or 1} host process(es), "
            f"offered {cfg.offered_fps:.0f} img/s = {cfg.arrival_rate_fraction:.0%} of the "
            f"Eq. (1) bound, {cfg.num_requests} requests/run)"
        ),
    )
    trajectory = report.adaptive.total.threshold_trajectory
    chart = ""
    if len(trajectory) >= 2:
        chart = "\n\n" + line_chart(
            list(range(len(trajectory))),
            {"threshold": list(trajectory)},
            title="adaptive threshold trajectory (per BNN batch)",
            x_label="batch",
            y_label="thr",
        )
    residual_lines = []
    for run in (report.naive, report.adaptive):
        if run.eq1 is None:
            continue
        residual_lines.append(
            f"  {run.label:<9} predicted "
            f"{run.eq1['predicted_seconds_per_image'] * 1e3:.2f} ms/img, measured "
            f"{run.eq1['measured_seconds_per_image'] * 1e3:.2f} ms/img "
            f"({run.eq1['relative_residual']:+.0%})"
        )
    residuals = ""
    if residual_lines:
        eq_name = "Eq. (1N)" if cfg.ladder_stage_times else "Eq. (1)"
        residuals = (
            f"\n\n{eq_name} residual at each policy's *realized* steady routing:\n"
            + "\n".join(residual_lines)
        )
    ladder_section = ""
    if cfg.ladder_stage_times and report.adaptive.eq1 is not None:
        stage_rows = [
            [
                stage["name"],
                f"{stage['t_image'] * 1e3:.2f}",
                f"{stage['reach_fraction']:.3f}",
                f"{stage['busy_seconds_per_image'] * 1e3:.2f}",
                format_percent(stage["share_of_bound"]),
            ]
            for stage in report.adaptive.eq1["stages"]
        ]
        ladder_table = render_table(
            ["stage", "t_i ms", "reach R_i", "busy ms/img", "of bound"],
            stage_rows,
            title=(
                f"{len(cfg.stage_names)}-stage ladder "
                f"({' -> '.join(cfg.stage_names)}), adaptive leg's Eq. (1N) "
                f"terms at measured forward ratios; bottleneck = "
                f"{report.adaptive.eq1['bottleneck_stage']}"
            ),
        )
        thr_lines = [
            f"  {run.label:<9} final thresholds "
            + ", ".join(
                f"{name}={thr:.3f}"
                for name, thr in zip(cfg.stage_names[:-1], run.final_thresholds)
            )
            for run in (report.naive, report.adaptive)
        ]
        book_lines = []
        for run in (report.naive, report.adaptive):
            if run.books is None:
                continue
            b = run.books
            splits = " + ".join(
                f"{name}:{count}" for name, count in sorted(b["rerun_stages"].items())
            )
            book_lines.append(
                f"  {run.label:<9} accepted {b['accepted']} + rerun {b['rerun']} "
                f"[{splits or 'none'}] + degraded {b['degraded']} + failed "
                f"{b['failed']} == submitted {b['submitted']}: "
                f"{'OK' if b['balanced'] else 'IMBALANCED'}"
            )
        ladder_section = (
            "\n\n" + ladder_table + "\n\n" + "\n".join(thr_lines)
            + "\n\nper-stage books (accepted + Σ rerun_i + degraded + failed == submitted):\n"
            + "\n".join(book_lines)
        )
    host_lines = []
    for run in (report.naive, report.adaptive):
        stage = run.total.stages.get("host")
        wait = run.total.stages.get("host_queue_wait")
        if stage is None or stage.count == 0:
            continue
        line = (
            f"  {run.label:<9} pure-inference {stage.mean_seconds * 1e3:.2f} ms/img, "
            f"queue-wait "
            f"{(wait.mean_seconds * 1e3 if wait is not None and wait.count else 0.0):.2f}"
            f" ms/img over {stage.count} rerun images"
        )
        if run.total.host_parallel_workers:
            shares = ", ".join(
                f"w{worker}:{count}"
                for worker, count in sorted(run.total.host_worker_images.items())
            )
            line += f"; {run.total.host_parallel_workers} procs [{shares}]"
        host_lines.append(line)
    host_split = ""
    if host_lines:
        host_split = (
            "\n\nhost stage split (time parked in the host queue vs compute):\n"
            + "\n".join(host_lines)
        )
    cache_section = ""
    if cfg.cache_max_bytes:
        cache_lines = []
        for run in (report.naive, report.adaptive):
            c = run.cache
            if c is None:
                continue
            cache_lines.append(
                f"  {run.label:<9} lookups {c['lookups']} = hits {c['hits']} + "
                f"misses {c['misses']} "
                f"({'OK' if c['balanced'] else 'IMBALANCED'}); coalesced "
                f"{c['single_flight_followers']} in flight, served-from-cache "
                f"{c['served_from_cache']}, {c['entries']} entries / "
                f"{c['bytes']}B of {c['max_bytes']}B"
            )
        cache_section = (
            "\n\ncontent-addressed cache books (duplicate fraction "
            f"{cfg.duplicate_fraction:.0%} offered):\n" + "\n".join(cache_lines)
        )
    spans = ""
    if report.span_summary is not None:
        spans = "\n\n" + obs.format_span_summaries(
            {
                name: obs.SpanSummary(**row)
                for name, row in report.span_summary["spans"].items()
            },
            title="adaptive-leg span summary (trace written to "
            f"{report.trace_file})",
        )
    faults = ""
    if report.fault_report is not None:
        lines = [f"chaos run under fault plan {cfg.fault_plan_path}:"]
        for label, leg in report.fault_report.items():
            injected = {
                stage: kinds for stage, kinds in leg["injected"].items() if kinds
            }
            seen = leg["observed"]
            lines.append(
                f"  {label:<9} injected {injected or 'none'} over "
                f"{leg['stage_calls']} stage calls"
            )
            lines.append(
                f"  {'':<9} answered {seen['answered']}/{seen['submitted']} "
                f"(failed {seen['failed']}, degraded {seen['degraded']}, "
                f"retries {seen['retries']}, deadline misses "
                f"{seen['deadline_missed']}, breaker trips {seen['breaker_trips']}, "
                f"open {seen['breaker_open_seconds']:.2f}s)"
            )
        faults = "\n\n" + "\n".join(lines)
    notes = (
        "\nnaive saturates the host queue and sheds load (degraded); the\n"
        "controller walks the threshold down until the rerun ratio holds the\n"
        "target, keeping the host pool busy but un-saturated (Eq. (1) regime)."
    )
    return (
        table + chart + residuals + ladder_section + host_split + cache_section
        + spans + faults + notes
    )
