"""Micro-batcher: coalesce request-at-a-time traffic into BNN batches.

The FPGA-style BNN path is efficient only on batches (the paper streams
batches through the fabric; per-image dispatch would waste it), but a
serving front door receives one image per request.  The batcher holds
requests in a small pending buffer and flushes a batch downstream when it
is *full* (``max_batch_size``) or *old* (the oldest pending request has
waited ``max_delay_s``) — the classic size-or-deadline rule, so light
traffic still meets the latency bound and heavy traffic gets full
batches.

``submit`` applies front-door backpressure: when the pending buffer is at
capacity it blocks until the flusher drains, so an open-loop client can
never grow memory without bound.

Paper anchor: the front door of Fig. 1's cascade — the batch dimension
is what the paper's FPGA streaming (and Eq. (5)'s per-batch overheads)
assume exists.  With a :mod:`repro.obs` tracer installed, each flush
emits a ``serve.batch`` span covering oldest-pending-item -> flush (the
batching latency cost), a pending-depth gauge and flush counters.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Generic, TypeVar

from .. import obs

__all__ = ["MicroBatcher"]

T = TypeVar("T")


class MicroBatcher(Generic[T]):
    """Size/deadline-bounded batch coalescer with a dedicated flush thread.

    Parameters
    ----------
    emit:
        Called with each flushed batch (a non-empty list), from the
        batcher thread.  May block — e.g. a bounded ``Queue.put`` — which
        transparently extends backpressure to ``submit``.
    max_batch_size:
        Flush as soon as this many items are pending.
    max_delay_s:
        Flush no later than this long after the *oldest* pending item
        arrived, regardless of batch size.
    max_pending:
        Capacity of the pending buffer; ``submit`` blocks when reached.
        Defaults to ``2 * max_batch_size``.
    """

    def __init__(
        self,
        emit: Callable[[list[T]], None],
        max_batch_size: int = 32,
        max_delay_s: float = 0.005,
        max_pending: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_delay_s <= 0:
            raise ValueError("max_delay_s must be positive")
        self._emit = emit
        self.max_batch_size = int(max_batch_size)
        self.max_delay_s = float(max_delay_s)
        self.max_pending = int(max_pending) if max_pending is not None else 2 * max_batch_size
        if self.max_pending < self.max_batch_size:
            raise ValueError("max_pending must be >= max_batch_size")
        self._clock = clock
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._has_room = threading.Condition(self._lock)
        self._pending: list[T] = []
        self._oldest_ts: float | None = None
        #: Same instant as ``_oldest_ts`` but on the tracer's clock, so the
        #: "serve.batch" span is consistent with spans the tracer times.
        self._oldest_trace_ts: float | None = None
        self._closed = False
        self._thread = threading.Thread(target=self._run, name="micro-batcher", daemon=True)
        self._thread.start()

    # -- producer side ------------------------------------------------------
    def submit(self, item: T) -> None:
        """Enqueue one item; blocks while the pending buffer is full."""
        with self._lock:
            while len(self._pending) >= self.max_pending and not self._closed:
                self._has_room.wait()
            if self._closed:
                raise RuntimeError("batcher is closed")
            if not self._pending:
                self._oldest_ts = self._clock()
                tracer = obs.active()
                self._oldest_trace_ts = tracer.now() if tracer is not None else None
            self._pending.append(item)
            self._has_work.notify()

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- flusher ------------------------------------------------------------
    def _take_batch_locked(self) -> list[T]:
        batch = self._pending[: self.max_batch_size]
        del self._pending[: self.max_batch_size]
        tracer = obs.active()
        if tracer is not None:
            now = tracer.now()
            start = self._oldest_trace_ts if self._oldest_trace_ts is not None else now
            tracer.add_span("serve.batch", start, now, items=len(batch),
                            pending=len(self._pending))
            tracer.gauge("batcher.pending", len(self._pending))
            tracer.count("batcher.flushed", len(batch))
            self._oldest_trace_ts = now if self._pending else None
        self._oldest_ts = self._clock() if self._pending else None
        self._has_room.notify_all()
        return batch

    def _run(self) -> None:
        while True:
            with self._lock:
                while True:
                    if self._pending:
                        if len(self._pending) >= self.max_batch_size or self._closed:
                            break
                        deadline = self._oldest_ts + self.max_delay_s
                        remaining = deadline - self._clock()
                        if remaining <= 0:
                            break
                        self._has_work.wait(timeout=remaining)
                    elif self._closed:
                        return
                    else:
                        self._has_work.wait()
                batch = self._take_batch_locked()
            # Emit outside the lock: a blocking downstream put must not
            # freeze submitters that still have buffer room.
            self._emit(batch)

    def close(self, timeout: float | None = 5.0) -> None:
        """Flush everything still pending and stop the flusher thread."""
        with self._lock:
            if self._closed:
                self._thread.join(timeout=timeout)
                return
            self._closed = True
            self._has_work.notify_all()
            self._has_room.notify_all()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher[T]":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
