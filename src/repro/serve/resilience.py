"""Resilience primitives for the cascade server: errors, retry, breaker.

The cascade must keep Eq. (1)'s overlap alive when one side misbehaves:
CascadeCNN-style graceful degradation says a failed recovery (host)
stage falls back to the low-precision answer, and FINN's sustained-
throughput contract says a stall must never propagate upstream.  This
module holds the policy pieces :class:`repro.serve.CascadeServer` uses
to enforce both:

* :class:`ServerClosed` / :class:`DeadlineExceeded` /
  :class:`StageFailure` — the exceptions a request future can resolve
  to.  Every submitted request reaches exactly one terminal state: a
  :class:`~repro.serve.server.ServeResult` or one of these.
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  jitter for the host re-inference path.
* :class:`CircuitBreaker` — trips the server into a degraded
  "accept BNN result, skip host" mode after consecutive host failures,
  and probes its way back after a cool-down (closed → open → half-open
  → closed).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "ServerClosed",
    "DeadlineExceeded",
    "StageFailure",
    "RetryPolicy",
    "CircuitBreaker",
]


class ServerClosed(RuntimeError):
    """The server shut down before this request reached a result."""


class DeadlineExceeded(TimeoutError):
    """The request's per-request deadline passed before the BNN answered.

    Only raised while no BNN answer exists yet; once the fast stage has
    answered, a missed deadline degrades to the BNN result instead
    (the low-precision answer is always preferable to no answer).
    """


class StageFailure(RuntimeError):
    """A pipeline stage raised and no fallback answer existed."""

    def __init__(self, stage: str, cause: BaseException):
        super().__init__(f"stage {stage!r} failed: {cause!r}")
        self.stage = stage
        self.__cause__ = cause


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for host re-inference.

    Retry *k* (0-based) sleeps ``min(max_delay_s, base_delay_s * 2**k)``
    scaled by a uniform jitter factor in ``[1 - jitter, 1 + jitter]`` —
    the classic decorrelation so a host crash-loop doesn't resynchronize
    every waiting batch.  ``max_retries=0`` disables retrying (the first
    failure degrades).
    """

    max_retries: int = 2
    base_delay_s: float = 0.01
    max_delay_s: float = 0.25
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, retry_index: int, rng: random.Random | None = None) -> float:
        """Sleep before retry number *retry_index* (0-based)."""
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        delay = min(self.max_delay_s, self.base_delay_s * (2.0 ** retry_index))
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class CircuitBreaker:
    """Consecutive-failure breaker over the host stage (thread-safe).

    States and transitions::

        closed ──(failure_threshold consecutive failures)──► open
        open   ──(cooldown_s elapsed)──► half_open
        half_open ──(probe succeeds)──► closed
        half_open ──(probe fails)────► open   (cool-down restarts)

    ``allow()`` answers "may the host path be used right now?" — the BNN
    worker consults it before enqueueing flagged requests, so while the
    breaker is open the server answers flagged traffic with the BNN
    result (``source == "degraded"``) instead of queueing doomed work.
    In ``half_open`` at most ``half_open_probes`` concurrent probes are
    admitted to test whether the host recovered.

    *on_transition* (``callable(state: str)``) fires outside the breaker
    lock on every state change — the server bridges it into
    :class:`~repro.serve.metrics.ServerMetrics` degraded-mode intervals.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str], None] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = float("-inf")
        self._probes_in_flight = 0
        self._trips = 0
        self._pending_transitions: list[str] = []

    # -- reading -------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            state, transitions = self._refresh_locked(), self._drain_locked()
        self._emit(transitions)
        return state

    @property
    def trips(self) -> int:
        """How many times the breaker has opened."""
        with self._lock:
            return self._trips

    # -- decisions -----------------------------------------------------------
    def allow(self) -> bool:
        """May a host call be attempted right now?"""
        with self._lock:
            state = self._refresh_locked()
            if state == self.CLOSED:
                allowed = True
            elif state == self.OPEN:
                allowed = False
            elif self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                allowed = True
            else:
                allowed = False
            transitions = self._drain_locked()
        self._emit(transitions)
        return allowed

    def record_success(self) -> None:
        with self._lock:
            self._refresh_locked()
            self._consecutive_failures = 0
            self._probes_in_flight = 0
            self._transition_locked(self.CLOSED)
            transitions = self._drain_locked()
        self._emit(transitions)

    def record_failure(self) -> None:
        with self._lock:
            state = self._refresh_locked()
            self._consecutive_failures += 1
            if state == self.HALF_OPEN or (
                state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._probes_in_flight = 0
                self._transition_locked(self.OPEN)
            transitions = self._drain_locked()
        self._emit(transitions)

    # -- internals (all *_locked require self._lock) --------------------------
    def _refresh_locked(self) -> str:
        """Apply the time-driven open → half-open edge; return the state."""
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._probes_in_flight = 0
            self._transition_locked(self.HALF_OPEN)
        return self._state

    def _transition_locked(self, state: str) -> None:
        if state == self._state:
            return
        if state == self.OPEN:
            self._trips += 1
        self._state = state
        self._pending_transitions.append(state)

    def _drain_locked(self) -> list[str]:
        drained = self._pending_transitions
        self._pending_transitions = []
        return drained

    def _emit(self, transitions: list[str]) -> None:
        if self._on_transition is None:
            return
        for state in transitions:
            self._on_transition(state)
