"""ARM host performance model (Table IV's images/sec column)."""

from .cpu import ARM_CORTEX_A53_NEON, ARM_CORTEX_A9_ZC702, CPUModel
from .flops import LayerCost, NetworkCost, analyze_network
from .runtime import HostPerformanceModel, calibrate_to_paper, paper_calibrated_model

__all__ = [
    "CPUModel",
    "ARM_CORTEX_A9_ZC702",
    "ARM_CORTEX_A53_NEON",
    "LayerCost",
    "NetworkCost",
    "analyze_network",
    "HostPerformanceModel",
    "calibrate_to_paper",
    "paper_calibrated_model",
]
