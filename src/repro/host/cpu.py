"""Host CPU catalog.

The paper's host is the ZC702's processing system: a dual-core ARM
Cortex-A9 at (up to) 666 MHz, running Caffe + OpenBLAS compiled with
OpenMP.  The paper notes OpenBLAS does **not** use NEON on 32-bit ARMv7
("due to limited performance gains"), so the peak is the VFP pipeline:
one fused multiply-accumulate (2 FLOPs) per cycle per core.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CPUModel", "ARM_CORTEX_A9_ZC702", "ARM_CORTEX_A53_NEON"]


@dataclass(frozen=True)
class CPUModel:
    """Peak floating-point capability of a host processor."""

    name: str
    cores: int
    clock_hz: float
    flops_per_cycle_per_core: float

    def __post_init__(self):
        if self.cores <= 0 or self.clock_hz <= 0 or self.flops_per_cycle_per_core <= 0:
            raise ValueError("CPU parameters must be positive")

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s with all cores busy."""
        return self.cores * self.clock_hz * self.flops_per_cycle_per_core


#: The paper's host: dual Cortex-A9 @ 666 MHz, VFP only (no NEON).
ARM_CORTEX_A9_ZC702 = CPUModel(
    name="ARM Cortex-A9 (ZC702, VFP, OpenBLAS+OpenMP)",
    cores=2,
    clock_hz=666.7e6,
    flops_per_cycle_per_core=2.0,
)

#: A 64-bit ARMv8 host with active NEON — the paper's future-work target.
ARM_CORTEX_A53_NEON = CPUModel(
    name="ARM Cortex-A53 (ARMv8, NEON/ASIMD)",
    cores=4,
    clock_hz=1.2e9,
    flops_per_cycle_per_core=8.0,
)
