"""Per-layer floating-point workload analysis of a Sequential network.

Walks a :class:`repro.nn.Sequential` with static shape inference and
produces, per layer, the FLOP count and — for GEMM-lowered layers — the
matrix dimensions OpenBLAS would see.  The runtime model uses the GEMM
volume to estimate how efficiently each layer runs on the host.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from ..nn.layers.base import Layer

__all__ = ["LayerCost", "NetworkCost", "analyze_network"]

import math


@dataclass(frozen=True)
class LayerCost:
    """Inference workload of one layer for one image."""

    name: str
    kind: str            # "gemm" | "elementwise" | "none"
    flops: float
    gemm_volume: float   # m*n*k for GEMM layers, 0 otherwise
    output_elements: int

    @property
    def is_gemm(self) -> bool:
        return self.kind == "gemm"


@dataclass(frozen=True)
class NetworkCost:
    """Aggregate inference workload of a network for one image."""

    layers: tuple[LayerCost, ...]
    input_shape: tuple[int, ...]

    @property
    def total_flops(self) -> float:
        return sum(l.flops for l in self.layers)

    @property
    def gemm_flops(self) -> float:
        return sum(l.flops for l in self.layers if l.is_gemm)

    @property
    def elementwise_flops(self) -> float:
        return self.total_flops - self.gemm_flops


def _layer_cost(layer: Layer, in_shape: tuple[int, ...], out_shape: tuple[int, ...]) -> LayerCost:
    out_elems = int(math.prod(out_shape))
    in_elems = int(math.prod(in_shape))

    if isinstance(layer, Conv2D):
        k2id = layer.kernel_size * layer.kernel_size * layer.in_channels
        m = out_shape[1] * out_shape[2]   # output pixels
        n = layer.out_channels
        flops = 2.0 * k2id * m * n
        if layer.bias is not None:
            flops += m * n
        return LayerCost(layer.name, "gemm", flops, float(m) * n * k2id, out_elems)
    if isinstance(layer, Dense):
        flops = 2.0 * layer.in_features * layer.out_features
        if layer.bias is not None:
            flops += layer.out_features
        return LayerCost(
            layer.name, "gemm", flops, float(layer.in_features) * layer.out_features, out_elems
        )
    if isinstance(layer, (MaxPool2D, AvgPool2D)):
        window_ops = layer.window * layer.window
        return LayerCost(layer.name, "elementwise", float(window_ops * out_elems), 0.0, out_elems)
    if isinstance(layer, GlobalAvgPool2D):
        return LayerCost(layer.name, "elementwise", float(in_elems), 0.0, out_elems)
    if isinstance(layer, BatchNorm):
        return LayerCost(layer.name, "elementwise", 2.0 * out_elems, 0.0, out_elems)
    if isinstance(layer, LocalResponseNorm):
        # square, windowed sum, power, divide: ~ (size + 3) ops per element.
        return LayerCost(layer.name, "elementwise", float((layer.size + 3) * out_elems), 0.0, out_elems)
    if isinstance(layer, (ReLU, Sigmoid, Tanh)):
        return LayerCost(layer.name, "elementwise", float(out_elems), 0.0, out_elems)
    if isinstance(layer, (Dropout, Flatten)):
        return LayerCost(layer.name, "none", 0.0, 0.0, out_elems)
    # Unknown layers are charged one op per output element (conservative).
    return LayerCost(layer.name, "elementwise", float(out_elems), 0.0, out_elems)


def analyze_network(net: Sequential, input_shape: tuple[int, ...] = (3, 32, 32)) -> NetworkCost:
    """Static per-image workload analysis of ``net``."""
    costs: list[LayerCost] = []
    shape = tuple(input_shape)
    for layer in net.layers:
        out_shape = layer.output_shape(shape)
        costs.append(_layer_cost(layer, shape, out_shape))
        shape = out_shape
    return NetworkCost(layers=tuple(costs), input_shape=tuple(input_shape))
