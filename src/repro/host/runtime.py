"""Calibrated host inference-rate model.

Per-layer execution time is ``flops / (peak * efficiency)`` where the
efficiency of a GEMM layer saturates with its matrix volume —

    eff(v) = eff_max * v / (v + half_sat)

— the standard behaviour of a blocked BLAS on a small cache: tiny GEMMs
are launch/packing-bound, large GEMMs approach the machine's sustained
fraction of peak.  Elementwise layers run at a fixed memory-bound
efficiency.

The two free parameters (``eff_max``, ``half_sat``) are calibrated once
against the paper's two measured anchors (Model A = 29.68 img/s and
Model B = 3.63 img/s on the dual Cortex-A9); Model C's rate is then a
*prediction* the test suite checks against the paper's 3.09 img/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.optimize import brentq

from ..nn import Sequential
from .cpu import ARM_CORTEX_A9_ZC702, CPUModel
from .flops import NetworkCost, analyze_network

__all__ = ["HostPerformanceModel", "calibrate_to_paper", "paper_calibrated_model"]

#: Memory-bound efficiency of elementwise layers (fraction of peak FLOPs).
_ELEMENTWISE_EFF = 0.04


@dataclass(frozen=True)
class HostPerformanceModel:
    """Host images/sec predictor."""

    cpu: CPUModel
    eff_max: float        # asymptotic fraction of peak for large GEMMs
    half_sat: float       # GEMM volume (m*n*k) at half efficiency

    def __post_init__(self):
        if not 0 < self.eff_max <= 1:
            raise ValueError("eff_max must be in (0, 1]")
        if self.half_sat < 0:
            raise ValueError("half_sat must be non-negative")

    def layer_seconds(self, cost) -> float:
        if cost.flops == 0:
            return 0.0
        if cost.is_gemm:
            eff = self.eff_max * cost.gemm_volume / (cost.gemm_volume + self.half_sat)
        else:
            eff = _ELEMENTWISE_EFF
        return cost.flops / (self.cpu.peak_flops * eff)

    def seconds_per_image(self, net_or_cost: Sequential | NetworkCost) -> float:
        """t_fp/img of the paper's Eq. (1)."""
        cost = (
            net_or_cost
            if isinstance(net_or_cost, NetworkCost)
            else analyze_network(net_or_cost)
        )
        return sum(self.layer_seconds(l) for l in cost.layers)

    def images_per_second(self, net_or_cost: Sequential | NetworkCost) -> float:
        return 1.0 / self.seconds_per_image(net_or_cost)


def calibrate_to_paper(
    cost_a: NetworkCost,
    cost_b: NetworkCost,
    rate_a: float = 29.68,
    rate_b: float = 3.63,
    cpu: CPUModel = ARM_CORTEX_A9_ZC702,
) -> HostPerformanceModel:
    """Fit (eff_max, half_sat) to two measured (network, rate) anchors.

    Solves the 2x2 system: seconds(model_a) = 1/rate_a and
    seconds(model_b) = 1/rate_b.
    """

    def split_seconds(half_sat: float, cost: NetworkCost) -> tuple[float, float]:
        """(GEMM seconds at eff_max=1, fixed elementwise seconds)."""
        probe = HostPerformanceModel(cpu, 1.0, half_sat)
        gemm = sum(probe.layer_seconds(l) for l in cost.layers if l.is_gemm)
        fixed = sum(probe.layer_seconds(l) for l in cost.layers if not l.is_gemm)
        return gemm, fixed

    def eff_for(half_sat: float, cost: NetworkCost, target_seconds: float) -> float:
        # seconds = gemm/eff_max + fixed: solve eff_max exactly.
        gemm, fixed = split_seconds(half_sat, cost)
        remaining = target_seconds - fixed
        if remaining <= 0:
            raise ValueError("elementwise time alone exceeds the anchor rate")
        return gemm / remaining

    def mismatch(half_sat: float) -> float:
        # eff_max implied by anchor A minus eff_max implied by anchor B.
        return eff_for(half_sat, cost_a, 1.0 / rate_a) - eff_for(half_sat, cost_b, 1.0 / rate_b)

    lo, hi = 1.0, 1e12
    if mismatch(lo) * mismatch(hi) > 0:
        raise ValueError(
            "calibration anchors are inconsistent with the saturating-efficiency model"
        )
    half_sat = float(brentq(mismatch, lo, hi, xtol=1e-3, rtol=1e-12))
    eff_max = eff_for(half_sat, cost_a, 1.0 / rate_a)
    if not 0 < eff_max <= 1:
        raise ValueError(f"calibrated eff_max {eff_max:.3f} is unphysical")
    return HostPerformanceModel(cpu, eff_max, half_sat)


def paper_calibrated_model(cpu: CPUModel = ARM_CORTEX_A9_ZC702) -> HostPerformanceModel:
    """The model calibrated on the paper's Model A and Model B rates."""
    from ..models import build_model_a, build_model_b

    cost_a = analyze_network(build_model_a(scale=1.0))
    cost_b = analyze_network(build_model_b(scale=1.0))
    return calibrate_to_paper(cost_a, cost_b, cpu=cpu)
