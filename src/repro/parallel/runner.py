"""Process-parallel host inference: shard batches across warm workers.

:class:`ParallelHostRunner` is a drop-in replacement for the host
callable of :class:`repro.serve.CascadeServer`: it is a plain
``(N, ...) images -> (N,) labels`` callable, but internally it shards
each batch across ``n_workers`` *processes* — side-stepping the GIL that
serializes the server's ``serve-host-*`` threads — and moves pixels and
logits through preallocated :mod:`repro.parallel.shm` ring buffers
(zero-copy slabs, seqlock slot headers) instead of pickles.

Two modes share the machinery:

* **model mode** (``model=Sequential``): each worker compiles the
  network into a :class:`repro.nn.InferenceEngine` once at spawn and
  serves logits.  Shards are cut on the engine's micro-batch boundaries,
  so logits are **bit-identical to the serial engine for any worker
  count** (see the engine's determinism contract).
* **callable mode** (``predict_fn=...``): each worker runs an arbitrary
  host callable on its shard and returns int64 labels.  Used by
  ``serve-bench`` to shard its synthetic host stage, and by the server
  to wrap whatever host callable it was given (``host_workers=N``).

Fault containment and lifecycle
-------------------------------
An exception *inside* a worker's compute fails only that worker's shard:
:meth:`run_sharded` marks those images with a
:class:`~repro.serve.resilience.StageFailure` and every other shard still
resolves.  A *dead* worker (crash, ``kill -9``) is detected at collect
time, its shard fails the same way, and the pool **crash-replaces** the
worker — fresh process, fresh ring, weights re-broadcast — before the
next call, so the pool self-heals.  The strict ``__call__`` facade used
by the server raises the first ``StageFailure`` for the whole batch,
which plugs into the PR 4 retry-with-backoff / degrade-to-BNN contract
unchanged.

Observability: with a :mod:`repro.obs` tracer installed the runner emits
``parallel.shard`` spans (dispatch -> response, per worker),
re-materialized ``parallel.worker.infer`` spans from worker-reported
durations, a ``parallel.inflight`` gauge and ``parallel.images`` /
``parallel.shard_failures`` counters.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import threading
import time

import numpy as np

from .. import obs
from ..serve.resilience import StageFailure
from .shm import SlotRing, ensure_tracker
from .worker import worker_main

__all__ = ["ParallelHostRunner", "ShardOutcome", "ShardReport", "resolve_host_workers"]


def resolve_host_workers(explicit: int | None = None) -> int | None:
    """Worker count from an explicit value or ``REPRO_HOST_WORKERS``.

    Returns ``None`` when parallel host inference is not requested.
    """
    if explicit is not None:
        return int(explicit) if explicit > 0 else None
    env = os.environ.get("REPRO_HOST_WORKERS", "").strip()
    if env:
        value = int(env)
        return value if value > 0 else None
    return None


def _default_start_method() -> str:
    env = os.environ.get("REPRO_MP_START", "").strip()
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class ShardOutcome:
    """Result of one worker's shard within one batch."""

    __slots__ = ("worker", "start", "stop", "values", "error", "infer_seconds")

    def __init__(self, worker, start, stop, values=None, error=None, infer_seconds=0.0):
        self.worker = worker
        self.start = start
        self.stop = stop
        self.values = values          # logits (model mode) or labels (callable mode)
        self.error = error            # StageFailure | None
        self.infer_seconds = infer_seconds

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "ok" if self.ok else f"error={self.error!r}"
        return f"ShardOutcome(worker={self.worker}, [{self.start}:{self.stop}], {state})"


class ShardReport:
    """All shard outcomes of one :meth:`ParallelHostRunner.run_sharded` call."""

    __slots__ = ("n", "outcomes")

    def __init__(self, n: int, outcomes: list[ShardOutcome]):
        self.n = n
        self.outcomes = outcomes

    @property
    def errors(self) -> list[ShardOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.errors

    def failed_indices(self) -> np.ndarray:
        """Global indices of images whose shard failed."""
        bad = [np.arange(o.start, o.stop) for o in self.errors]
        return np.concatenate(bad) if bad else np.empty(0, dtype=np.int64)

    def assemble(self) -> np.ndarray:
        """Stitch shard values back into batch order (all shards must be ok)."""
        first_err = next((o.error for o in self.outcomes if not o.ok), None)
        if first_err is not None:
            raise first_err
        parts = [o.values for o in sorted(self.outcomes, key=lambda o: o.start)]
        return np.concatenate(parts, axis=0)


class _Worker:
    __slots__ = ("index", "proc", "conn", "ring", "images", "infer_seconds", "replacements")

    def __init__(self, index: int):
        self.index = index
        self.proc = None
        self.conn = None
        self.ring: SlotRing | None = None
        self.images = 0
        self.infer_seconds = 0.0
        self.replacements = 0


class ParallelHostRunner:
    """Multiprocess shared-memory host-inference pool (see module docs).

    Parameters
    ----------
    model:
        A :class:`repro.nn.Sequential` host network (model mode).
    predict_fn:
        An arbitrary ``images -> labels`` host callable (callable mode).
        Exactly one of *model* / *predict_fn* must be given.  Under the
        default ``fork`` start method closures work; ``spawn`` requires
        a picklable callable.
    n_workers:
        Pool size; defaults to ``REPRO_HOST_WORKERS`` or ``os.cpu_count()``.
    dtype, micro_batch:
        Engine precision and micro-batch (model mode; see
        :class:`repro.nn.InferenceEngine`).  float32 is the paper host's
        inference precision.
    slots_per_worker:
        Ring depth per worker.  Two slots let the runner publish call
        *k+1*'s shard while the response of call *k* is still being read.
    start_method:
        ``fork`` (default on POSIX; zero-copy weight broadcast) or
        ``spawn`` (portable; weights pickled once).  ``REPRO_MP_START``
        overrides the default.
    shard_timeout_s:
        Per-shard collect timeout.  ``None`` (default) waits for the
        response or worker death; set it to bound hung-worker stalls —
        a timed-out worker is killed and crash-replaced.
    spawn_timeout_s:
        Deadline for a worker to report ready at (re)spawn.
    """

    def __init__(
        self,
        model=None,
        predict_fn=None,
        n_workers: int | None = None,
        dtype=np.float32,
        micro_batch: int = 16,
        slots_per_worker: int = 2,
        start_method: str | None = None,
        shard_timeout_s: float | None = None,
        spawn_timeout_s: float = 60.0,
    ):
        if (model is None) == (predict_fn is None):
            raise ValueError("pass exactly one of model= or predict_fn=")
        resolved = resolve_host_workers(n_workers)
        self.n_workers = resolved if resolved is not None else max(1, os.cpu_count() or 1)
        self.mode = "model" if model is not None else "callable"
        self.dtype = np.dtype(dtype)
        self.micro_batch = int(micro_batch)
        if self.micro_batch < 1:
            raise ValueError("micro_batch must be >= 1")
        self.slots_per_worker = int(slots_per_worker)
        self.start_method = start_method or _default_start_method()
        self.shard_timeout_s = shard_timeout_s
        self.spawn_timeout_s = spawn_timeout_s
        self._model = model
        if self.mode == "model":
            self._payload = ("model", model, {"dtype": self.dtype.str, "micro_batch": self.micro_batch})
        else:
            self._payload = ("callable", predict_fn, {})
        self._ctx = multiprocessing.get_context(self.start_method)
        self._lock = threading.Lock()
        self._geometry: tuple | None = None  # (item_shape, item_dtype, resp_shape, resp_dtype, capacity)
        self._metrics = None
        self._closed = False
        self._workers = [_Worker(i) for i in range(self.n_workers)]
        # Worker indices are never reused across resize(): per-worker
        # metrics/stats keys stay unambiguous for the whole pool lifetime.
        self._next_index = self.n_workers
        ensure_tracker()  # children must inherit the parent's tracker
        try:
            for w in self._workers:
                self._spawn(w)
        except Exception:
            self.close()
            raise

    # -- lifecycle ------------------------------------------------------------
    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(worker.index, child_conn, self._payload),
            name=f"repro-host-{worker.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker.proc, worker.conn, worker.ring = proc, parent_conn, None
        reply = self._recv(worker, timeout=self.spawn_timeout_s)
        if reply is None or reply[0] != "ready":
            detail = reply[1] if reply and reply[0] == "init_error" else reply
            self._kill(worker)
            raise RuntimeError(f"worker {worker.index} failed to start: {detail}")
        if self._geometry is not None:
            self._issue_ring(worker)

    def _respawn(self, worker: _Worker) -> None:
        """Crash-replace: fresh process + fresh ring, weights re-broadcast."""
        self._kill(worker)
        worker.replacements += 1
        self._spawn(worker)
        obs.count("parallel.worker_replacements", 1)

    def _kill(self, worker: _Worker) -> None:
        if worker.conn is not None:
            try:
                worker.conn.close()
            except Exception:
                pass
            worker.conn = None
        if worker.proc is not None:
            if worker.proc.is_alive():
                worker.proc.terminate()
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - last resort
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
            worker.proc = None
        if worker.ring is not None:
            worker.ring.close()
            worker.ring = None

    def resize(self, n: int) -> int:
        """Grow or shrink the pool to *n* workers; returns the new size.

        Shrinking stops and reaps the highest-numbered workers; growing
        spawns fresh processes (ring issued immediately when geometry is
        already known).  The pool lock serializes this against
        :meth:`run_sharded`, so a resize only ever lands *between*
        batches — shards are re-cut on the next call and, in model mode,
        stay on micro-batch boundaries, preserving bit-identity across
        the resize.  Crash-safe: ``n_workers`` is re-derived from the
        live worker list even if a spawn fails partway.
        """
        n = int(n)
        if n < 1:
            raise ValueError("n_workers must be >= 1")
        with self._lock:
            self._require_open()
            if n == len(self._workers):
                return self.n_workers
            try:
                while len(self._workers) > n:
                    worker = self._workers.pop()
                    if worker.conn is not None:
                        try:
                            worker.conn.send(("stop",))
                        except Exception:
                            pass
                    if worker.proc is not None:
                        worker.proc.join(timeout=5.0)
                    self._kill(worker)
                while len(self._workers) < n:
                    worker = _Worker(self._next_index)
                    self._next_index += 1
                    self._spawn(worker)
                    self._workers.append(worker)
            finally:
                self.n_workers = len(self._workers)
                if self._metrics is not None:
                    self._metrics.set_host_parallel_workers(self.n_workers)
            obs.gauge("parallel.pool_size", self.n_workers)
            return self.n_workers

    def close(self, timeout: float = 10.0) -> None:
        """Stop all workers and unlink every shm segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for w in self._workers:
                if w.conn is not None:
                    try:
                        w.conn.send(("stop",))
                    except Exception:
                        pass
            for w in self._workers:
                if w.proc is not None:
                    w.proc.join(timeout=timeout)
                self._kill(w)

    def __enter__(self) -> "ParallelHostRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- plumbing -------------------------------------------------------------
    def _recv(self, worker: _Worker, timeout: float | None):
        """Next control message, or ``None`` on timeout / dead worker."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                wait = None if deadline is None else max(0.0, deadline - time.monotonic())
                if worker.conn.poll(wait if wait is not None else None):
                    return worker.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                return None
            if deadline is not None and time.monotonic() >= deadline:
                return None

    def _issue_ring(self, worker: _Worker) -> None:
        """(Re)allocate this worker's ring at the current geometry."""
        item_shape, item_dtype, resp_shape, resp_dtype, capacity = self._geometry
        if worker.ring is not None:
            worker.ring.close()
        worker.ring = SlotRing(
            capacity=capacity,
            item_shape=item_shape,
            item_dtype=item_dtype,
            resp_shape=resp_shape,
            resp_dtype=resp_dtype,
            n_slots=self.slots_per_worker,
        )
        worker.conn.send(("attach", worker.ring.spec()))
        reply = self._recv(worker, timeout=self.spawn_timeout_s)
        if reply is None or reply[0] != "attached":
            self._kill(worker)
            raise RuntimeError(f"worker {worker.index} failed to attach ring: {reply}")

    def _ensure_geometry(self, images: np.ndarray, max_shard: int) -> None:
        item_shape = images.shape[1:]
        if self.mode == "model":
            item_dtype = self.dtype            # cast once, in the parent, via the slab
            out_shape = tuple(self._model.output_shape(item_shape))
            resp_shape, resp_dtype = out_shape, self.dtype
        else:
            item_dtype = images.dtype
            resp_shape, resp_dtype = (), np.dtype(np.int64)
        needed_capacity = max(max_shard, self.micro_batch)
        geom = self._geometry
        if (
            geom is not None
            and geom[0] == item_shape
            and geom[1] == item_dtype
            and geom[2] == resp_shape
            and geom[3] == resp_dtype
            and geom[4] >= needed_capacity
        ):
            return
        capacity = max(needed_capacity, 0 if geom is None else geom[4])
        self._geometry = (item_shape, np.dtype(item_dtype), resp_shape, np.dtype(resp_dtype), capacity)
        for w in self._workers:
            if w.conn is not None:
                self._issue_ring(w)

    def _shards(self, n: int) -> list[tuple[int, int]]:
        """Contiguous (start, stop) per worker, cut on micro-batch boundaries.

        Model mode splits whole micro-batches so every chunk a worker
        processes is exactly a chunk the serial engine would process —
        the bit-identity invariant.  Callable mode splits plain images.
        """
        unit = self.micro_batch if self.mode == "model" else 1
        n_units = math.ceil(n / unit)
        per, extra = divmod(n_units, self.n_workers)
        shards = []
        unit_start = 0
        for i in range(self.n_workers):
            take = per + (1 if i < extra else 0)
            if take == 0:
                continue
            start = unit_start * unit
            stop = min(n, (unit_start + take) * unit)
            shards.append((start, stop))
            unit_start += take
        return shards

    # -- health ---------------------------------------------------------------
    def ping(self, timeout: float = 5.0) -> list[bool]:
        """Round-trip health check; ``True`` per worker that answered."""
        with self._lock:
            self._require_open()
            results = []
            for w in self._workers:
                token = time.monotonic_ns()
                ok = False
                if w.conn is not None and w.proc is not None and w.proc.is_alive():
                    try:
                        w.conn.send(("ping", token))
                        while True:
                            reply = self._recv(w, timeout)
                            if reply is None:
                                break
                            if reply[0] == "pong" and reply[1] == token:
                                ok = True
                                break
                            # stale shard traffic from a timed-out call: skip
                    except (OSError, BrokenPipeError):
                        ok = False
                results.append(ok)
            return results

    def ensure_healthy(self, timeout: float = 5.0) -> int:
        """Ping all workers, crash-replace the dead; returns replacements."""
        alive = self.ping(timeout=timeout)
        replaced = 0
        with self._lock:
            self._require_open()
            for w, ok in zip(self._workers, alive):
                if not ok:
                    self._respawn(w)
                    replaced += 1
        return replaced

    def worker_stats(self) -> list[dict]:
        """Per-worker counters (images served, inference seconds, restarts)."""
        return [
            {
                "worker": w.index,
                "pid": None if w.proc is None else w.proc.pid,
                "alive": w.proc is not None and w.proc.is_alive(),
                "images": w.images,
                "infer_seconds": w.infer_seconds,
                "replacements": w.replacements,
            }
            for w in self._workers
        ]

    def set_metrics(self, metrics) -> None:
        """Attach a :class:`repro.serve.metrics.ServerMetrics` bridge."""
        self._metrics = metrics
        if metrics is not None:
            metrics.set_host_parallel_workers(self.n_workers)

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("ParallelHostRunner is closed")

    # -- inference ------------------------------------------------------------
    def run_sharded(self, images: np.ndarray) -> ShardReport:
        """Shard one batch across the pool; per-shard failure containment."""
        images = np.asarray(images)
        n = images.shape[0]
        with self._lock:
            self._require_open()
            if n == 0:
                return ShardReport(0, [])
            shards = self._shards(n)
            self._ensure_geometry(images, max(stop - start for start, stop in shards))

            tracer = obs.active()
            pending = []  # (worker, start, stop, slot, seq, t_dispatch)
            for (start, stop), worker in zip(shards, self._workers):
                if worker.proc is None or not worker.proc.is_alive():
                    try:
                        self._respawn(worker)
                    except Exception as exc:
                        pending.append((worker, start, stop, None, None, None, exc))
                        continue
                try:
                    slot, seq, count = worker.ring.publish(images[start:stop])
                    worker.conn.send(("run", slot, seq, count))
                    t0 = None if tracer is None else tracer.now()
                    pending.append((worker, start, stop, slot, seq, t0, None))
                except (OSError, BrokenPipeError, ValueError) as exc:
                    pending.append((worker, start, stop, None, None, None, exc))
            obs.gauge("parallel.inflight", len(pending))

            outcomes = []
            dead: list[_Worker] = []
            for worker, start, stop, slot, seq, t0, dispatch_exc in pending:
                if dispatch_exc is not None:
                    outcomes.append(
                        ShardOutcome(worker.index, start, stop,
                                     error=StageFailure("host", dispatch_exc))
                    )
                    if worker.proc is None or not worker.proc.is_alive():
                        dead.append(worker)
                    continue
                outcome = self._collect(worker, start, stop, slot, seq, t0, tracer)
                if not outcome.ok and (worker.proc is None or not worker.proc.is_alive()):
                    dead.append(worker)
                outcomes.append(outcome)

            # Crash-replace *now* so the pool is healthy for the next call.
            for worker in dead:
                try:
                    self._respawn(worker)
                except Exception:  # replacement itself failed; retried next call
                    pass

            ok_images = sum(o.stop - o.start for o in outcomes if o.ok)
            obs.count("parallel.images", ok_images)
            failures = len([o for o in outcomes if not o.ok])
            if failures:
                obs.count("parallel.shard_failures", failures)
            obs.gauge("parallel.inflight", 0)
            return ShardReport(n, outcomes)

    def _collect(self, worker, start, stop, slot, seq, t0, tracer) -> ShardOutcome:
        while True:
            reply = self._recv(worker, self.shard_timeout_s)
            if reply is None:
                alive = worker.proc is not None and worker.proc.is_alive()
                detail = "hung (timeout)" if alive else "died mid-batch"
                if alive:  # hung: kill so the replacement starts clean
                    self._kill(worker)
                return ShardOutcome(
                    worker.index, start, stop,
                    error=StageFailure("host", RuntimeError(
                        f"parallel host worker {worker.index} {detail}")),
                )
            kind = reply[0]
            if kind == "done" and reply[1] == slot and reply[2] == seq:
                _, _, _, count, seconds = reply
                values = worker.ring.read_response(slot, seq, count)
                worker.images += count
                worker.infer_seconds += seconds
                if tracer is not None:
                    end = tracer.now()
                    tracer.add_span("parallel.shard", t0, end,
                                    category="parallel", worker=worker.index,
                                    images=count)
                    # Re-materialized from the worker's reported duration
                    # (its clock is unsynchronized; anchor on receipt).
                    tracer.add_span("parallel.worker.infer", end - seconds, end,
                                    category="parallel", worker=worker.index,
                                    images=count)
                if self._metrics is not None:
                    self._metrics.record_host_worker_images(worker.index, count, seconds)
                return ShardOutcome(worker.index, start, stop, values=values,
                                    infer_seconds=seconds)
            if kind == "error" and reply[1] == slot and reply[2] == seq:
                return ShardOutcome(
                    worker.index, start, stop,
                    error=StageFailure("host", RuntimeError(
                        f"parallel host worker {worker.index} failed:\n{reply[3]}")),
                )
            # anything else is stale traffic from an earlier timed-out shard

    def predict_scores(self, images: np.ndarray) -> np.ndarray:
        """Logits ``(N, C)`` — model mode only; raises on any shard failure."""
        if self.mode != "model":
            raise RuntimeError("predict_scores requires model mode")
        images = np.asarray(images)
        report = self.run_sharded(images)
        if report.n == 0:
            resp_shape = (
                self._geometry[2]
                if self._geometry is not None
                else tuple(self._model.output_shape(images.shape[1:]))
            )
            return np.empty((0,) + resp_shape, self.dtype)
        return report.assemble()

    def predict_classes(self, images: np.ndarray) -> np.ndarray:
        """Labels ``(N,)`` — the strict host-callable facade.

        Any shard failure raises its :class:`StageFailure` (after every
        other shard finished and dead workers were replaced), which is
        exactly the whole-batch error contract the
        :class:`~repro.serve.server.CascadeServer` retry path expects.
        """
        images = np.asarray(images)
        if images.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        report = self.run_sharded(images)
        values = report.assemble()  # raises the first StageFailure, if any
        if self.mode == "model":
            return values.argmax(axis=1)
        return values

    __call__ = predict_classes
