"""Worker process entry point for the parallel host-inference engine.

A worker is spawned warm: the model (or host callable) arrives once as a
process argument — under the default ``fork`` start method that is a
zero-copy inheritance of the parent's weights; under ``spawn`` it is one
pickle — and, in model mode, the :class:`repro.nn.InferenceEngine` is
compiled *before* the worker reports ready, so the first real batch never
pays compilation cost.

Control plane (one duplex pipe per worker):

================  =============================  ==========================
parent -> worker  worker -> parent               meaning
================  =============================  ==========================
``('attach', spec)``  ``('attached',)``          map the shm ring, warm up
``('run', slot, seq, n)``  ``('done', slot, seq, n, secs)``  process a shard
\\                 ``('error', slot, seq, tb)``   shard failed (contained)
``('ping', tok)``  ``('pong', tok)``             health check
``('stop',)``      —                             drain and exit 0
================  =============================  ==========================

Data plane: the :mod:`repro.parallel.shm` request/response slabs — images
in, logits (model mode) or int64 labels (callable mode) out.  A failure
inside the user callable / engine is *contained*: the worker reports
``('error', ...)`` and keeps serving; only process death (crash, kill)
loses the worker, and the parent then crash-replaces it.

Workers emit ``parallel.worker.infer`` spans when a :mod:`repro.obs`
tracer is installed *in the worker process* (by default none is — the
parent re-materializes worker timing from the reported durations
instead, so the trace stays single-process).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from multiprocessing.connection import wait as _conn_wait

import numpy as np

from .. import obs
from .shm import RingSpec, WorkerRing

__all__ = ["worker_main"]


def _build_compute(payload):
    """Resolve the spawn payload into a ``images -> values`` function."""
    mode, target, options = payload
    if mode == "model":
        engine = target.compile_inference(
            dtype=np.dtype(options["dtype"]), micro_batch=options["micro_batch"]
        )
        return engine.predict_scores
    if mode == "callable":
        def compute(images: np.ndarray) -> np.ndarray:
            return np.asarray(target(images)).reshape(len(images))
        return compute
    raise ValueError(f"unknown worker mode {mode!r}")


def worker_main(worker_id: int, conn, payload) -> None:
    """Run the worker loop until ``('stop',)`` or pipe EOF."""
    try:
        compute = _build_compute(payload)
    except BaseException:
        try:
            conn.send(("init_error", traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ready", worker_id))

    # Watch the parent's death sentinel alongside the pipe: if the parent
    # is SIGKILLed, sibling workers' forked copies of our pipe keep it
    # from ever reaching EOF, so a blocking recv() would orphan us — and
    # orphans pin the parent's inherited stdout/stderr pipes open,
    # wedging any harness that waits for EOF on them (CI, pytest | tail).
    parent = multiprocessing.parent_process()
    watch = [conn] if parent is None else [conn, parent.sentinel]

    ring: WorkerRing | None = None
    while True:
        try:
            if conn not in _conn_wait(watch):
                break  # parent died with nothing left to read: exit
            msg = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone: exit quietly
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "ping":
            conn.send(("pong", msg[1]))
            continue
        if kind == "attach":
            spec: RingSpec = msg[1]
            if ring is not None:
                ring.close()
            ring = WorkerRing(spec)
            # Warm-up: run one item through so every numpy buffer and BLAS
            # code path is hot before the first real shard arrives.
            try:
                warm = np.zeros((1,) + spec.item_shape, dtype=np.dtype(spec.item_dtype))
                compute(warm)
            except Exception:
                pass  # real batches will surface any genuine failure
            conn.send(("attached",))
            continue
        if kind == "run":
            _, slot, seq, n = msg
            if ring is None:
                conn.send(("error", slot, seq, "run before attach"))
                continue
            try:
                images = ring.read_request(slot, seq, n)
                start = time.perf_counter()
                with obs.trace_span("parallel.worker.infer", worker=worker_id, images=n):
                    values = np.asarray(compute(images))
                seconds = time.perf_counter() - start
                if values.shape[0] != n:
                    raise ValueError(
                        f"compute returned {values.shape[0]} results for {n} images"
                    )
                ring.write_response(slot, seq, values)
                conn.send(("done", slot, seq, n, seconds))
            except BaseException:
                conn.send(("error", slot, seq, traceback.format_exc()))
            continue
        conn.send(("error", -1, -1, f"unknown message {msg!r}"))
    if ring is not None:
        ring.close()
    conn.close()
