"""Process-parallel host inference over shared-memory rings.

The paper's Eq. (1) bound ``t_multi ~= max(t_fp * R_rerun, t_bnn)`` is
dominated by the host float path once the BNN stage is fast; this
subpackage attacks ``t_fp`` directly by sharding rerun batches across
``N`` warm worker processes (``t_fp -> t_fp / N`` on an ``N``-core
host).  Images and logits travel through preallocated
``multiprocessing.shared_memory`` slot rings (:mod:`repro.parallel.shm`)
rather than pickles; shard cuts align with the
:class:`repro.nn.InferenceEngine` micro-batch so parallel logits are
bit-identical to serial for any worker count.

Entry points:

* :class:`ParallelHostRunner` — the pool; a drop-in host callable for
  :class:`repro.serve.CascadeServer` (``host_workers=N`` /
  ``REPRO_HOST_WORKERS``).
* :func:`repro.parallel.bench.run_parallel_bench` — the
  ``repro bench-parallel`` measurement harness.
"""

from .runner import ParallelHostRunner, ShardOutcome, ShardReport, resolve_host_workers
from .shm import RingSpec, SlotRing, WorkerRing
from .worker import worker_main

__all__ = [
    "ParallelHostRunner",
    "ShardOutcome",
    "ShardReport",
    "resolve_host_workers",
    "RingSpec",
    "SlotRing",
    "WorkerRing",
    "worker_main",
]
