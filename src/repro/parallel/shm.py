"""Shared-memory slot rings for zero-copy parent <-> worker image transfer.

One :class:`SlotRing` connects the :class:`~repro.parallel.runner.ParallelHostRunner`
(parent, single producer) to one worker process (single consumer).  It is
three ``multiprocessing.shared_memory`` segments:

* **header** — ``(n_slots, HEADER_INTS)`` int64 seqlock-style slot headers,
* **request slab** — ``(n_slots, capacity, *item_shape)`` image payload
  (NCHW items; NHWC conversion happens inside the worker's engine),
* **response slab** — ``(n_slots, capacity, *resp_shape)`` logits (model
  mode) or int64 labels (callable mode).

Publication protocol (SPSC seqlock, no locks, no torn reads)
------------------------------------------------------------
The parent publishes a request into slot *s* with sequence number *q*::

    header[s, REQ_SEQ] = WRITING          # odd sentinel: payload in flux
    request[s, :n] = images               # zero-copy into the slab
    header[s, N_ITEMS] = n
    header[s, REQ_SEQ] = q                # even: published

then kicks the worker over its control pipe (``('run', s, q, n)``).  The
worker checks ``header[s, REQ_SEQ] == q`` *before and after* copying the
payload out — any mismatch means a torn or stale write and is reported
as an error instead of silently computing on garbage.  The response
travels the same way through ``RESP_SEQ`` and the response slab, followed
by a ``('done', ...)`` control message.  Because each ring has exactly
one producer (the runner, under its dispatch lock) and one consumer (the
worker), the two sequence fields never need atomic read-modify-write —
int64 stores are atomic on every platform numpy targets.

Sequence numbers are even and strictly increasing per slot; ``WRITING``
(an odd sentinel) marks payload-in-flux.  Ring teardown unlinks the
segments; workers attach with tracking disabled so the resource tracker
does not double-count the parent's segments.
"""

from __future__ import annotations

import math
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SlotRing", "RingSpec", "HEADER_INTS", "REQ_SEQ", "RESP_SEQ", "N_ITEMS", "WRITING"]

# Header field indices (one int64 row per slot).
REQ_SEQ = 0    # last published request sequence (even), or WRITING
RESP_SEQ = 1   # last published response sequence (even), or WRITING
N_ITEMS = 2    # item count of the current request
GENERATION = 3 # bumped by the parent when a ring is re-issued to a new worker
HEADER_INTS = 4

WRITING = -1   # odd-state sentinel: payload is being written


def ensure_tracker() -> None:
    """Start the multiprocessing resource tracker in *this* process.

    Must run in the parent **before** workers are forked: a child forked
    without a running tracker would lazily start its own when it attaches
    a segment, and that private tracker unlinks the parent's live
    segments when the child exits.  Forked (and spawned) children of a
    process with a running tracker share it instead.
    """
    try:  # pragma: no cover - trivially platform-dependent
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:
        pass


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment owned by the parent.

    Workers share the parent's resource-tracker process (fork inherits
    its fd; spawn forwards it in the preparation data), and the tracker
    cache is a set — so the attach-side register is a no-op and must NOT
    be undone here: unregistering from a worker would strip the parent's
    own registration and make its later ``unlink()`` race the tracker.
    """
    return shared_memory.SharedMemory(name=name)


class RingSpec:
    """Picklable description of a ring, sent to workers over the pipe."""

    __slots__ = (
        "header_name", "req_name", "resp_name",
        "n_slots", "capacity", "item_shape", "item_dtype", "resp_shape", "resp_dtype",
    )

    def __init__(self, header_name, req_name, resp_name, n_slots, capacity,
                 item_shape, item_dtype, resp_shape, resp_dtype):
        self.header_name = header_name
        self.req_name = req_name
        self.resp_name = resp_name
        self.n_slots = int(n_slots)
        self.capacity = int(capacity)
        self.item_shape = tuple(item_shape)
        self.item_dtype = np.dtype(item_dtype).str
        self.resp_shape = tuple(resp_shape)
        self.resp_dtype = np.dtype(resp_dtype).str

    def __getstate__(self):
        return {k: getattr(self, k) for k in self.__slots__}

    def __setstate__(self, state):
        for k, v in state.items():
            setattr(self, k, v)


class SlotRing:
    """Owner (parent) side of one worker's request/response ring."""

    def __init__(
        self,
        capacity: int,
        item_shape: tuple[int, ...],
        item_dtype,
        resp_shape: tuple[int, ...],
        resp_dtype,
        n_slots: int = 2,
        name_hint: str = "repro",
    ):
        if capacity < 1 or n_slots < 1:
            raise ValueError("capacity and n_slots must be >= 1")
        self.capacity = int(capacity)
        self.n_slots = int(n_slots)
        self.item_shape = tuple(int(s) for s in item_shape)
        self.item_dtype = np.dtype(item_dtype)
        self.resp_shape = tuple(int(s) for s in resp_shape)
        self.resp_dtype = np.dtype(resp_dtype)

        header_bytes = self.n_slots * HEADER_INTS * 8
        req_bytes = self.n_slots * self.capacity * max(
            1, int(math.prod(self.item_shape))
        ) * self.item_dtype.itemsize
        resp_bytes = self.n_slots * self.capacity * max(
            1, int(math.prod(self.resp_shape))
        ) * self.resp_dtype.itemsize
        self._header_shm = shared_memory.SharedMemory(create=True, size=header_bytes)
        self._req_shm = shared_memory.SharedMemory(create=True, size=req_bytes)
        self._resp_shm = shared_memory.SharedMemory(create=True, size=resp_bytes)
        self.header = np.ndarray(
            (self.n_slots, HEADER_INTS), dtype=np.int64, buffer=self._header_shm.buf
        )
        self.header[...] = 0
        self.request = np.ndarray(
            (self.n_slots, self.capacity) + self.item_shape,
            dtype=self.item_dtype,
            buffer=self._req_shm.buf,
        )
        self.response = np.ndarray(
            (self.n_slots, self.capacity) + self.resp_shape,
            dtype=self.resp_dtype,
            buffer=self._resp_shm.buf,
        )
        self._seq = 0
        self._next_slot = 0
        self._closed = False

    # -- parent-side protocol -------------------------------------------------
    def publish(self, images: np.ndarray) -> tuple[int, int, int]:
        """Seqlock-publish *images* into the next slot; returns (slot, seq, n)."""
        n = images.shape[0]
        if n > self.capacity:
            raise ValueError(f"batch of {n} exceeds ring capacity {self.capacity}")
        slot = self._next_slot
        self._next_slot = (slot + 1) % self.n_slots
        self._seq += 2  # even, strictly increasing
        seq = self._seq
        h = self.header[slot]
        h[REQ_SEQ] = WRITING
        self.request[slot, :n] = images  # cast happens here if dtypes differ
        h[N_ITEMS] = n
        h[REQ_SEQ] = seq
        return slot, seq, n

    def read_response(self, slot: int, seq: int, n: int) -> np.ndarray:
        """Copy out a published response, validating its seqlock."""
        if self.header[slot, RESP_SEQ] != seq:
            raise RuntimeError(
                f"response seqlock mismatch in slot {slot}: "
                f"expected {seq}, found {self.header[slot, RESP_SEQ]}"
            )
        return np.array(self.response[slot, :n])  # copy: slab is reused

    def spec(self) -> RingSpec:
        return RingSpec(
            self._header_shm.name, self._req_shm.name, self._resp_shm.name,
            self.n_slots, self.capacity,
            self.item_shape, self.item_dtype, self.resp_shape, self.resp_dtype,
        )

    def close(self) -> None:
        """Release and unlink the segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Drop numpy views before closing the mmaps (else BufferError).
        self.header = self.request = self.response = None  # type: ignore[assignment]
        for seg in (self._header_shm, self._req_shm, self._resp_shm):
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class WorkerRing:
    """Worker (consumer) side of a :class:`SlotRing`, built from a spec."""

    def __init__(self, spec: RingSpec):
        self.spec = spec
        self._segs = [
            _attach(spec.header_name), _attach(spec.req_name), _attach(spec.resp_name)
        ]
        self.header = np.ndarray(
            (spec.n_slots, HEADER_INTS), dtype=np.int64, buffer=self._segs[0].buf
        )
        self.request = np.ndarray(
            (spec.n_slots, spec.capacity) + spec.item_shape,
            dtype=np.dtype(spec.item_dtype),
            buffer=self._segs[1].buf,
        )
        self.response = np.ndarray(
            (spec.n_slots, spec.capacity) + spec.resp_shape,
            dtype=np.dtype(spec.resp_dtype),
            buffer=self._segs[2].buf,
        )

    def read_request(self, slot: int, seq: int, n: int) -> np.ndarray:
        """Seqlock-validated copy of a published request."""
        h = self.header[slot]
        if h[REQ_SEQ] != seq:
            raise RuntimeError(
                f"request seqlock mismatch in slot {slot}: "
                f"expected {seq}, found {h[REQ_SEQ]}"
            )
        images = np.array(self.request[slot, :n])
        if h[REQ_SEQ] != seq:  # re-check: detect a torn concurrent rewrite
            raise RuntimeError(f"request slot {slot} rewritten during read")
        return images

    def write_response(self, slot: int, seq: int, values: np.ndarray) -> None:
        h = self.header[slot]
        h[RESP_SEQ] = WRITING
        self.response[slot, : values.shape[0]] = values
        h[RESP_SEQ] = seq

    def close(self) -> None:
        self.header = self.request = self.response = None  # type: ignore[assignment]
        for seg in self._segs:
            try:
                seg.close()
            except Exception:  # pragma: no cover
                pass
