"""``repro bench-parallel``: measure the parallel host-inference engine.

Times the host float path through every execution mode on identical
images and verifies the determinism contract while doing so:

* ``serial-legacy`` — ``Sequential.predict`` (float64 training forward),
  the pre-existing baseline every speedup is quoted against;
* ``serial-engine-f64`` — the :class:`repro.nn.InferenceEngine` fast
  path at float64 (isolates the dataflow/fusion win from precision);
* ``serial-engine`` — the engine at the serving dtype (float32, the
  paper host's inference precision) — the *reference logits* that every
  parallel mode must reproduce bit-for-bit;
* ``threads-K`` — the same engine sharded across K Python threads (the
  GIL control group);
* ``procs-K`` — :class:`repro.parallel.ParallelHostRunner` with K
  shared-memory worker processes, K in ``worker_counts``.

The report is honest about the machine: it records ``cpu_count`` and the
scheduler affinity, and on a single-core box it says outright that the
process legs cannot exceed serial — there the measured end-to-end
speedup comes from the engine fast path, and the process legs document
the sharding overhead instead.  Each leg also carries its Eq. (1)
implication: with host seconds/image ``t_fp`` from that leg,
``t_multi = max(t_fp * R_rerun / 1, t_bnn)`` — the cascade bound the
serving layer would operate under if this leg were its host stage.
"""

from __future__ import annotations

import json
import os
import platform
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.report import format_rate, render_table
from .runner import ParallelHostRunner

__all__ = [
    "ParallelBenchConfig",
    "run_parallel_bench",
    "format_parallel_bench",
    "write_parallel_bench",
]

_BUILDERS = {"a": "build_model_a", "b": "build_model_b", "c": "build_model_c"}


@dataclass(frozen=True)
class ParallelBenchConfig:
    """One bench-parallel scenario."""

    model: str = "a"                 # host model: a | b | c (Table III)
    scale: float = 1.0               # width scale of the host model
    num_images: int = 256
    micro_batch: int = 16
    worker_counts: tuple[int, ...] = (1, 2, 4)
    repeats: int = 3                 # best-of timing per leg
    seed: int = 0
    t_bnn: float = 0.00025           # Eq. (1) fast-stage seconds/image
    target_rerun_ratio: float = 0.30 # Eq. (1) R_rerun operating point
    smoke: bool = False              # CI mode: shrink images/repeats

    def resolved(self) -> "ParallelBenchConfig":
        if not self.smoke:
            return self
        from dataclasses import replace

        return replace(self, num_images=min(self.num_images, 64), repeats=1)


def _time_best(fn, images: np.ndarray, repeats: int) -> tuple[float, np.ndarray]:
    """(best seconds, last output) of ``fn(images)`` over *repeats* runs."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn(images)
        best = min(best, time.perf_counter() - start)
    return best, out


def _threaded_predict(net, images, k, dtype, micro_batch):
    """Shard across K threads, one engine each — the GIL control group."""
    engines = [net.compile_inference(dtype=dtype, micro_batch=micro_batch) for _ in range(k)]
    n_chunks = -(-images.shape[0] // micro_batch)
    bounds = [
        (int(b[0]) * micro_batch, min(images.shape[0], int(b[-1] + 1) * micro_batch))
        for b in np.array_split(np.arange(n_chunks), k)
        if len(b)
    ]

    def run(images):
        with ThreadPoolExecutor(max_workers=len(bounds)) as pool:
            parts = list(
                pool.map(
                    lambda ie: ie[1].predict_scores(images[ie[0][0]:ie[0][1]]),
                    zip(bounds, engines),
                )
            )
        return np.concatenate(parts, axis=0)

    return run


def _leg(name, seconds, images, spi_legacy, config, workers=None, **extra):
    spi = seconds / images
    t_host = spi * config.target_rerun_ratio
    row = {
        "name": name,
        "seconds": seconds,
        "images": images,
        "img_per_s": images / seconds,
        "seconds_per_image": spi,
        "speedup_vs_legacy": spi_legacy / spi,
        "eq1": {
            "t_fp": spi,
            "t_bnn": config.t_bnn,
            "rerun_ratio": config.target_rerun_ratio,
            "t_multi": max(t_host, config.t_bnn),
            "bound_fps": 1.0 / max(t_host, config.t_bnn),
        },
    }
    if workers is not None:
        row["workers"] = workers
    row.update(extra)
    return row


def run_parallel_bench(config: ParallelBenchConfig | None = None) -> dict:
    config = (config or ParallelBenchConfig()).resolved()
    from ..models import host_models

    builder = getattr(host_models, _BUILDERS[config.model])
    rng = np.random.default_rng(config.seed)
    net = builder(scale=config.scale, rng=rng)
    net.eval_mode()
    images = rng.normal(size=(config.num_images, 3, 32, 32))

    legs: list[dict] = []

    # -- serial baselines -----------------------------------------------------
    net.predict(images[: config.micro_batch])  # warmup
    sec_legacy, scores_legacy = _time_best(net.predict, images, config.repeats)
    spi_legacy = sec_legacy / config.num_images
    legs.append(_leg("serial-legacy", sec_legacy, config.num_images, spi_legacy, config))

    engine64 = net.compile_inference(dtype=np.float64, micro_batch=config.micro_batch)
    engine64.predict_scores(images[: config.micro_batch])
    sec_e64, scores_e64 = _time_best(engine64.predict_scores, images, config.repeats)
    legs.append(
        _leg(
            "serial-engine-f64", sec_e64, config.num_images, spi_legacy, config,
            max_abs_diff_vs_legacy=float(np.abs(scores_e64 - scores_legacy).max()),
            argmax_match_legacy=bool(
                np.array_equal(scores_e64.argmax(axis=1), scores_legacy.argmax(axis=1))
            ),
        )
    )

    engine32 = net.compile_inference(micro_batch=config.micro_batch)
    engine32.predict_scores(images[: config.micro_batch])
    sec_e32, reference = _time_best(engine32.predict_scores, images, config.repeats)
    spi_serial_engine = sec_e32 / config.num_images
    legs.append(
        _leg(
            "serial-engine", sec_e32, config.num_images, spi_legacy, config,
            dtype="float32",
            argmax_match_legacy=bool(
                np.array_equal(reference.argmax(axis=1), scores_legacy.argmax(axis=1))
            ),
        )
    )

    # -- threads (GIL control) ------------------------------------------------
    k_threads = max(config.worker_counts)
    run_threads = _threaded_predict(net, images, k_threads, np.float32, config.micro_batch)
    run_threads(images[: config.micro_batch * k_threads])  # warmup
    sec_thr, scores_thr = _time_best(run_threads, images, config.repeats)
    legs.append(
        _leg(
            f"threads-{k_threads}", sec_thr, config.num_images, spi_legacy, config,
            workers=k_threads,
            bit_identical_to_serial_engine=bool(np.array_equal(scores_thr, reference)),
        )
    )

    # -- processes ------------------------------------------------------------
    for k in config.worker_counts:
        with ParallelHostRunner(
            model=net, n_workers=k, micro_batch=config.micro_batch
        ) as pool:
            pool.predict_scores(images[: config.micro_batch])  # warmup: rings + engines
            sec_k, scores_k = _time_best(pool.predict_scores, images, config.repeats)
            stats = pool.worker_stats()
        ideal_spi = spi_serial_engine / k
        spi_k = sec_k / config.num_images
        legs.append(
            _leg(
                f"procs-{k}", sec_k, config.num_images, spi_legacy, config,
                workers=k,
                bit_identical_to_serial_engine=bool(np.array_equal(scores_k, reference)),
                parallel_efficiency=ideal_spi / spi_k,
                worker_images={str(s["worker"]): s["images"] for s in stats},
            )
        )

    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        affinity = None

    # -- BNN stage (thread-vs-process composition) ----------------------------
    # The Eq. (1) bound above uses the configured t_bnn constant; measure the
    # real compiled-plan BNN stage at 1 and 2 GEMM threads so the report shows
    # how intra-stage threads (REPRO_BNN_THREADS) compose with the host-side
    # process sharding timed by the procs-* legs.
    from ..serve.bench import measured_t_bnn

    bnn_images = 32 if config.smoke else 128
    bnn_stage = {
        "t_bnn_config": config.t_bnn,
        "t_bnn_measured": {
            spec: measured_t_bnn(
                backend=f"threaded@{k}", num_images=bnn_images, seed=config.seed
            )
            for spec, k in (("threaded@1", 1), ("threaded@2", 2))
        },
        "composition": (
            "BNN GEMM threads run inside each worker process; size "
            "REPRO_BNN_THREADS so threads-per-worker x host workers <= cores"
        ),
    }

    procs_max = next(leg for leg in reversed(legs) if leg["name"].startswith("procs-"))
    report = {
        "config": asdict(config),
        "machine": {
            "cpu_count": os.cpu_count(),
            "sched_affinity": affinity,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "single_core": affinity == 1 or os.cpu_count() == 1,
        "bnn_stage": bnn_stage,
        "legs": legs,
        "summary": {
            "speedup_procs_max_vs_serial_legacy": procs_max["speedup_vs_legacy"],
            "speedup_engine_vs_serial_legacy": spi_legacy / spi_serial_engine,
            "bit_identical_all": all(
                leg.get("bit_identical_to_serial_engine", True) for leg in legs
            ),
        },
    }
    if report["single_core"]:
        report["note"] = (
            "single-core machine: process sharding cannot beat serial here; the "
            "end-to-end speedup is carried by the inference fast path (dataflow "
            "engine + float32), and the procs-* legs document sharding overhead."
        )
    return report


def format_parallel_bench(report: dict) -> str:
    cfg = report["config"]
    rows = []
    for leg in report["legs"]:
        ident = leg.get("bit_identical_to_serial_engine")
        rows.append(
            [
                leg["name"],
                str(leg.get("workers", "-")),
                format_rate(leg["img_per_s"]),
                f"{leg['speedup_vs_legacy']:.2f}x",
                f"{leg['eq1']['t_multi'] * 1e3:.2f} ms",
                format_rate(leg["eq1"]["bound_fps"]),
                "-" if ident is None else ("yes" if ident else "NO"),
            ]
        )
    table = render_table(
        ["leg", "workers", "host img/s", "vs legacy", "Eq.(1) t_multi", "bound fps",
         "bit-identical"],
        rows,
        title=(
            f"bench-parallel: host Model {cfg['model'].upper()} "
            f"(scale={cfg['scale']}, {cfg['num_images']} images, "
            f"micro_batch={cfg['micro_batch']}, best of {cfg['repeats']}) — "
            f"cpu_count={report['machine']['cpu_count']}, "
            f"affinity={report['machine']['sched_affinity']}"
        ),
    )
    lines = [table]
    summary = report["summary"]
    lines.append(
        f"\nengine fast path: {summary['speedup_engine_vs_serial_legacy']:.2f}x vs legacy; "
        f"largest process pool: {summary['speedup_procs_max_vs_serial_legacy']:.2f}x vs "
        f"legacy; bit-identical across modes: "
        f"{'yes' if summary['bit_identical_all'] else 'NO'}"
    )
    if report.get("note"):
        lines.append("note: " + report["note"])
    bnn = report.get("bnn_stage")
    if bnn:
        measured = ", ".join(
            f"{spec} {spi * 1e3:.2f} ms/img"
            for spec, spi in sorted(bnn["t_bnn_measured"].items())
        )
        lines.append(f"BNN stage (compiled plan): {measured} — {bnn['composition']}")
    lines.append(
        "Eq.(1) column: t_multi = max(t_fp * R_rerun, t_bnn) with this leg as the "
        f"host stage (R_rerun={cfg['target_rerun_ratio']}, "
        f"t_bnn={cfg['t_bnn'] * 1e3:.2f} ms)."
    )
    return "\n".join(lines)


def write_parallel_bench(report: dict, path: str | os.PathLike) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out
