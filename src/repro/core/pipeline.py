"""The multi-precision cascade (functional behaviour).

``MultiPrecisionPipeline`` wires the three components of Fig. 1 together:
the high-throughput BNN classifies every image, the DMU estimates
per-image confidence, and the high-accuracy floating-point network
re-classifies only the flagged subset.  This module computes *what* the
system answers; *when* it answers is the job of :mod:`repro.hetero`
(pipelined timing) and :mod:`repro.core.analytic` (closed forms).

This is the 2-rung special case of the N-stage precision ladder
(:mod:`repro.core.ladder`, ``docs/LADDER.md``): the BNN is rung 0, the
host is the final rung, ``rerun_ratio`` is the single forward ratio
``r_0``, and Eqs. (1)/(2) are Eq. (1N)/(2N) at N=2.  New code that may
ever grow a third stage should target :class:`repro.core.PrecisionLadder`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..bnn.inference import FoldedBNN
from ..nn import Sequential
from .dmu import DecisionMakingUnit

__all__ = ["CascadeResult", "MultiPrecisionPipeline"]


@dataclass
class CascadeResult:
    """Per-image outcome of one cascade run."""

    predictions: np.ndarray       # final multi-precision predictions
    bnn_predictions: np.ndarray   # what the BNN alone would answer
    confidence: np.ndarray        # DMU confidence per image
    rerun_mask: np.ndarray        # True where the host re-classified
    host_predictions: np.ndarray  # host answers on the rerun subset (compact)

    @property
    def rerun_ratio(self) -> float:
        """R_rerun: fraction of images re-processed on the host."""
        return float(self.rerun_mask.mean()) if self.rerun_mask.size else 0.0

    def accuracy(self, labels: np.ndarray) -> float:
        labels = np.asarray(labels)
        if labels.shape != self.predictions.shape:
            raise ValueError("labels shape mismatch")
        return float((self.predictions == labels).mean()) if labels.size else 0.0

    def bnn_accuracy(self, labels: np.ndarray) -> float:
        labels = np.asarray(labels)
        return float((self.bnn_predictions == labels).mean()) if labels.size else 0.0

    def host_subset_accuracy(self, labels: np.ndarray) -> float:
        """Host accuracy on the flagged (hard) subset — Table V's footnote."""
        labels = np.asarray(labels)[self.rerun_mask]
        if labels.size == 0:
            return float("nan")
        return float((self.host_predictions == labels).mean())


class MultiPrecisionPipeline:
    """BNN + DMU + floating-point host network cascade.

    Parameters
    ----------
    bnn:
        Deployment-form binarized network (:class:`repro.bnn.FoldedBNN`).
    dmu:
        Trained confidence unit.
    host_net:
        Floating-point network (:class:`repro.nn.Sequential`) used for
        re-inference of flagged images.
    threshold:
        DMU threshold; defaults to the DMU's own setting.
    """

    def __init__(
        self,
        bnn: FoldedBNN,
        dmu: DecisionMakingUnit,
        host_net: Sequential,
        threshold: float | None = None,
    ):
        self.bnn = bnn
        self.dmu = dmu
        self.host_net = host_net
        self.threshold = dmu.threshold if threshold is None else float(threshold)
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")

    def classify(
        self,
        images: np.ndarray,
        bnn_images: np.ndarray | None = None,
        batch_size: int = 128,
    ) -> CascadeResult:
        """Run the full cascade.

        Parameters
        ----------
        images:
            Host-network input images (N, 3, H, W), scaled as the host
            network was trained.
        bnn_images:
            Optionally a differently-scaled copy for the BNN (BinaryNet
            expects [-1, 1] inputs); defaults to ``images``.
        """
        if images.ndim != 4:
            raise ValueError("images must be (N, C, H, W)")
        bnn_in = images if bnn_images is None else bnn_images
        if bnn_in.shape[0] != images.shape[0]:
            raise ValueError("images and bnn_images must align")

        with obs.trace_span("cascade.bnn", images=int(images.shape[0])):
            scores = self.bnn.class_scores(bnn_in, batch_size=batch_size)
        with obs.trace_span("cascade.dmu"):
            bnn_pred = scores.argmax(axis=1)
            confidence = self.dmu.confidence(scores)
            rerun = confidence < self.threshold

        predictions = bnn_pred.copy()
        if rerun.any():
            with obs.trace_span("cascade.host", images=int(rerun.sum())):
                host_pred = self.host_net.predict_classes(images[rerun], batch_size=batch_size)
            predictions[rerun] = host_pred
        else:
            host_pred = np.empty(0, dtype=bnn_pred.dtype)
        obs.count("cascade.rerun", int(rerun.sum()))
        return CascadeResult(
            predictions=predictions,
            bnn_predictions=bnn_pred,
            confidence=confidence,
            rerun_mask=rerun,
            host_predictions=host_pred,
        )
