"""Decision-Making Unit (Section III-B).

The DMU estimates, per image, whether the BNN classification succeeded.
Per the paper it is a trained single Softmax/logistic layer: "every
inference by the trained single-layer Softmax function consists of ten
floating-point multiplications and their sum, a bias addition, and
application of a Sigmoid positive transfer function."

Trained on the BNN's scores over the *training* set labelled with
success/failure, thresholded at deployment to trade accuracy against the
host re-inference rate.

In the N-stage precision ladder (``docs/LADDER.md``,
:mod:`repro.core.ladder`) every rung but the last carries one of these
units: rung ``i``'s DMU decides accept-vs-forward, its flag rate is the
per-hop forward ratio ``r_i`` of Eq. (1'), and the 2-stage quantities
below are the ``i = 0`` specialization (``rerun_ratio`` = ``r_0``,
``rerun_err_ratio`` = ``R_err_1``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.score_dataset import ScoreDataset
from ..nn import BinaryCrossEntropy, Dense, SGD, Sequential
from ..nn import functional as F

__all__ = ["DMUCategories", "DecisionMakingUnit", "train_dmu", "threshold_sweep"]


@dataclass(frozen=True)
class DMUCategories:
    """The paper's four image categories, as fractions of the total.

    * ``fs``         (FS):   BNN correct,   DMU accepts  — FINN's net contribution.
    * ``fbar_sbar``  (F̄S̄): BNN incorrect, DMU flags    — useful reruns.
    * ``fbar_s``     (F̄S):  BNN incorrect, DMU accepts  — caps achievable accuracy.
    * ``f_sbar``     (FS̄):  BNN correct,   DMU flags    — wasted reruns.
    """

    fs: float
    fbar_sbar: float
    fbar_s: float
    f_sbar: float
    threshold: float

    def __post_init__(self):
        total = self.fs + self.fbar_sbar + self.fbar_s + self.f_sbar
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"category fractions must sum to 1, got {total}")

    @property
    def dmu_accuracy(self) -> float:
        """Softmax-layer accuracy = FS + F̄S̄ (paper Section III-B)."""
        return self.fs + self.fbar_sbar

    @property
    def rerun_ratio(self) -> float:
        """R_rerun of Eq. (1): fraction of images sent to the host.

        In ladder notation this is the stage's forward ratio ``r_i`` —
        the fraction of *its own arrivals* the DMU sends up one rung.
        """
        return self.fbar_sbar + self.f_sbar

    @property
    def rerun_err_ratio(self) -> float:
        """R_rerun_err of Eq. (2): correctly-classified images rerun anyway.

        The per-hop wasted-forward term ``R_err_{i+1}`` of Eq. (2N).
        """
        return self.f_sbar

    @property
    def max_achievable_accuracy(self) -> float:
        """1 - F̄S: the multi-precision accuracy cap (perfect host)."""
        return 1.0 - self.fbar_s


class DecisionMakingUnit:
    """Trained logistic confidence layer over the BNN's 10 class scores.

    The deployed arithmetic is exactly what the paper costs out — ten
    multiplications, a sum, a bias addition and a sigmoid.  The score
    vector is pre-sorted descending (``sort_inputs=True``, the default)
    so the unit is permutation-invariant over classes: correctness signal
    lives in the *shape* of the score distribution (winning margin), not
    in which class won.  Sorting costs nothing material next to the BNN
    inference and keeps the unit a single trainable linear layer.
    """

    def __init__(
        self,
        weights: np.ndarray,
        bias: float,
        threshold: float = 0.84,
        sort_inputs: bool = True,
    ):
        weights = np.asarray(weights, dtype=np.float64).reshape(-1)
        if weights.ndim != 1:
            raise ValueError("weights must be 1-D")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.weights = weights
        self.bias = float(bias)
        self.threshold = float(threshold)
        self.sort_inputs = bool(sort_inputs)

    @property
    def num_inputs(self) -> int:
        return int(self.weights.shape[0])

    def _features(self, scores: np.ndarray) -> np.ndarray:
        scores = np.atleast_2d(np.asarray(scores, dtype=np.float64))
        if scores.shape[1] != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} scores per image, got {scores.shape[1]}"
            )
        if self.sort_inputs:
            return -np.sort(-scores, axis=1)
        return scores

    def confidence(self, scores: np.ndarray) -> np.ndarray:
        """P(BNN correct) for each score row — the Softmax estimate."""
        return F.sigmoid(self._features(scores) @ self.weights + self.bias)

    def accept(self, scores: np.ndarray, threshold: float | None = None) -> np.ndarray:
        """True where the BNN result is accepted (no host rerun)."""
        thr = self.threshold if threshold is None else threshold
        return self.confidence(scores) >= thr

    def flag_for_rerun(self, scores: np.ndarray, threshold: float | None = None) -> np.ndarray:
        """True where the image is sent to the high-accuracy host network."""
        return ~self.accept(scores, threshold)

    def categorize(
        self, dataset: ScoreDataset, threshold: float | None = None
    ) -> DMUCategories:
        """Compute the FS / F̄S̄ / F̄S / FS̄ fractions on a score dataset."""
        thr = self.threshold if threshold is None else threshold
        if len(dataset) == 0:
            raise ValueError("cannot categorize an empty dataset")
        accepted = self.accept(dataset.scores, thr)
        correct = dataset.correct.astype(bool)
        n = len(dataset)
        return DMUCategories(
            fs=float((correct & accepted).sum()) / n,
            fbar_sbar=float((~correct & ~accepted).sum()) / n,
            fbar_s=float((~correct & accepted).sum()) / n,
            f_sbar=float((correct & ~accepted).sum()) / n,
            threshold=thr,
        )


def train_dmu(
    dataset: ScoreDataset,
    epochs: int = 60,
    lr: float = 0.05,
    batch_size: int = 128,
    threshold: float = 0.84,
    rng: np.random.Generator | None = None,
) -> DecisionMakingUnit:
    """Train the logistic confidence layer on BNN training-set scores.

    Mirrors the paper's procedure: "we executed the FINN classification on
    CIFAR-10 training dataset and created a new dataset composed of the
    FINN output scores and its identification result ... used to train a
    Softmax layer with the 10 scores used as the input and the single
    identification result as the label."
    """
    if len(dataset) == 0:
        raise ValueError("cannot train a DMU on an empty dataset")
    rng = rng or np.random.default_rng(0)
    num_inputs = dataset.scores.shape[1]
    features = -np.sort(-dataset.scores, axis=1)

    # Standardize features for stable optimization, then fold the affine
    # standardization back into the deployed weights.
    mean = features.mean(axis=0)
    std = features.std(axis=0) + 1e-8
    x = (features - mean) / std
    y = dataset.correct

    net = Sequential([Dense(num_inputs, 1, rng=rng)])
    loss = BinaryCrossEntropy()
    opt = SGD(net.params(), lr=lr, momentum=0.9)
    n = x.shape[0]
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            opt.zero_grad()
            logits = net.forward(x[idx])
            loss.forward(logits, y[idx])
            net.backward(loss.backward())
            opt.step()

    dense = net[0]
    w_std = dense.weight.value.reshape(-1)
    b_std = float(dense.bias.value[0])
    weights = w_std / std
    bias = b_std - float((w_std * mean / std).sum())
    return DecisionMakingUnit(weights, bias, threshold)


def threshold_sweep(
    dmu: DecisionMakingUnit,
    dataset: ScoreDataset,
    thresholds: np.ndarray | None = None,
) -> list[DMUCategories]:
    """Fig. 5: category fractions across a threshold range (default 0.5-1)."""
    if thresholds is None:
        thresholds = np.arange(0.5, 1.0001, 0.05)
    return [dmu.categorize(dataset, float(t)) for t in thresholds]
