"""Minimal ASCII line charts for figure reproductions.

The paper's Figs. 3-5 are plots; the benchmark harness regenerates their
data as tables, and this module renders the same series as terminal
charts so the *shape* (monotonicity, crossovers, divergence) is visible
at a glance in ``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["line_chart"]


def line_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y-series over shared x values as ASCII art.

    Each series gets a distinct marker; points are plotted on a
    ``width x height`` grid scaled to the joint data range.
    """
    if not series:
        raise ValueError("need at least one series")
    n = len(x)
    if n < 2:
        raise ValueError("need at least two x values")
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(f"series {name!r} length does not match x")

    markers = "*o+x#@%&"
    x_min, x_max = min(x), max(x)
    all_y = [v for ys in series.values() for v in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), markers):
        for xv, yv in zip(x, ys):
            col = int(round((xv - x_min) / x_span * (width - 1)))
            row = height - 1 - int(round((yv - y_min) / y_span * (height - 1)))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:g}"
    bottom_label = f"{y_min:g}"
    pad = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(" " * pad + f"  {x_min:g}".ljust(width // 2) + f"{x_max:g}".rjust(width // 2))
    if x_label or y_label:
        lines.append(f"   x: {x_label}   y: {y_label}")
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append("   " + legend)
    return "\n".join(lines)
