"""Plain-text table rendering shared by the experiment runners."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_percent", "format_rate"]


def format_percent(value: float, digits: int = 1) -> str:
    """0.825 -> '82.5%'."""
    return f"{100.0 * value:.{digits}f}%"


def format_rate(value: float, digits: int = 2) -> str:
    """Images/sec with fixed precision."""
    return f"{value:.{digits}f}"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table (all cells stringified)."""
    cells = [[str(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(row):
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(r) for r in cells)
    return "\n".join(lines)
