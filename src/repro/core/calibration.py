"""Confidence-calibration diagnostics for the DMU.

The DMU is only useful if its confidence tracks the true probability that
the BNN classified correctly.  This module quantifies that: reliability
curves (predicted-confidence bins vs empirical correctness) and the
expected calibration error (ECE), plus AUROC of the confidence as a
correct/incorrect discriminator — the standard diagnostics for the
selective-classification setting the paper's DMU lives in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReliabilityBin", "CalibrationReport", "calibration_report", "auroc"]


@dataclass(frozen=True)
class ReliabilityBin:
    """One confidence bin of the reliability diagram."""

    lower: float
    upper: float
    count: int
    mean_confidence: float
    empirical_accuracy: float

    @property
    def gap(self) -> float:
        """Calibration gap within the bin (confidence minus accuracy)."""
        return self.mean_confidence - self.empirical_accuracy


@dataclass
class CalibrationReport:
    """Reliability diagram + summary statistics."""

    bins: list[ReliabilityBin]
    total: int

    @property
    def expected_calibration_error(self) -> float:
        """ECE: count-weighted mean absolute bin gap."""
        if self.total == 0:
            return 0.0
        return sum(b.count * abs(b.gap) for b in self.bins) / self.total

    @property
    def max_calibration_error(self) -> float:
        occupied = [abs(b.gap) for b in self.bins if b.count > 0]
        return max(occupied) if occupied else 0.0

    def format(self) -> str:
        lines = ["reliability diagram (confidence bin -> empirical accuracy):"]
        for b in self.bins:
            if b.count == 0:
                continue
            bar = "#" * int(round(40 * b.empirical_accuracy))
            lines.append(
                f"  [{b.lower:.2f}, {b.upper:.2f})  n={b.count:5d}  "
                f"conf={b.mean_confidence:.3f}  acc={b.empirical_accuracy:.3f}  |{bar}"
            )
        lines.append(f"ECE = {self.expected_calibration_error:.4f}   "
                     f"max gap = {self.max_calibration_error:.4f}")
        return "\n".join(lines)


def calibration_report(
    confidence: np.ndarray, correct: np.ndarray, num_bins: int = 10
) -> CalibrationReport:
    """Bin confidences uniformly on [0, 1] and compare to outcomes."""
    confidence = np.asarray(confidence, dtype=np.float64).reshape(-1)
    correct = np.asarray(correct).reshape(-1).astype(bool)
    if confidence.shape != correct.shape:
        raise ValueError("confidence and correct must align")
    if num_bins < 1:
        raise ValueError("num_bins must be positive")
    if confidence.size and (confidence.min() < 0 or confidence.max() > 1):
        raise ValueError("confidence values must be in [0, 1]")

    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bins: list[ReliabilityBin] = []
    for i in range(num_bins):
        lo, hi = edges[i], edges[i + 1]
        mask = (confidence >= lo) & (confidence < hi if i < num_bins - 1 else confidence <= hi)
        count = int(mask.sum())
        bins.append(
            ReliabilityBin(
                lower=float(lo),
                upper=float(hi),
                count=count,
                mean_confidence=float(confidence[mask].mean()) if count else 0.0,
                empirical_accuracy=float(correct[mask].mean()) if count else 0.0,
            )
        )
    return CalibrationReport(bins=bins, total=int(confidence.size))


def auroc(confidence: np.ndarray, correct: np.ndarray) -> float:
    """Area under the ROC curve of confidence as a correctness score.

    0.5 = uninformative, 1.0 = perfect separation.  Computed via the
    rank-sum (Mann-Whitney U) formulation with tie handling.
    """
    confidence = np.asarray(confidence, dtype=np.float64).reshape(-1)
    correct = np.asarray(correct).reshape(-1).astype(bool)
    if confidence.shape != correct.shape:
        raise ValueError("confidence and correct must align")
    pos = correct.sum()
    neg = correct.size - pos
    if pos == 0 or neg == 0:
        return float("nan")
    order = np.argsort(confidence, kind="mergesort")
    ranks = np.empty(confidence.size, dtype=np.float64)
    sorted_conf = confidence[order]
    # average ranks for ties
    i = 0
    while i < sorted_conf.size:
        j = i
        while j + 1 < sorted_conf.size and sorted_conf[j + 1] == sorted_conf[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[correct].sum()
    u = rank_sum - pos * (pos + 1) / 2.0
    return float(u / (pos * neg))
