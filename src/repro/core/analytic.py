"""Closed-form performance/accuracy models — the paper's Eqs. (1) and (2).

    t_multi/img  ~= max(t_fp/img * R_rerun, t_bnn/img)              (1)
    Acc_multi    ~= Acc_bnn + Acc_fp * R_rerun - R_rerun_err        (2)

with the host timing gain ``t_fp * (1 - R_rerun)`` per image.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "multi_precision_interval",
    "multi_precision_accuracy",
    "host_timing_gain",
    "MultiPrecisionEstimate",
    "estimate",
]


def _check_ratio(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def multi_precision_interval(t_fp: float, t_bnn: float, r_rerun: float) -> float:
    """Eq. (1): average per-image interval of the multi-precision system.

    Parameters
    ----------
    t_fp:
        Seconds per image of the floating-point network on the host.
    t_bnn:
        Seconds per image of the binarized network on the FPGA.
    r_rerun:
        Fraction of images re-processed on the host (0..1).
    """
    if t_fp <= 0 or t_bnn <= 0:
        raise ValueError("per-image times must be positive")
    _check_ratio("r_rerun", r_rerun)
    return max(t_fp * r_rerun, t_bnn)


def multi_precision_accuracy(
    acc_bnn: float, acc_fp: float, r_rerun: float, r_rerun_err: float
) -> float:
    """Eq. (2): accuracy of the multi-precision system (0-1 scale).

    ``r_rerun_err`` is the fraction of images initially classified
    correctly by the BNN but re-processed (and thus exposed to host
    error) due to DMU mistakes.  The paper notes the realized accuracy is
    somewhat lower because the host sees a hard-to-classify subset.
    """
    _check_ratio("acc_bnn", acc_bnn)
    _check_ratio("acc_fp", acc_fp)
    _check_ratio("r_rerun", r_rerun)
    _check_ratio("r_rerun_err", r_rerun_err)
    return acc_bnn + acc_fp * r_rerun - r_rerun_err


def host_timing_gain(t_fp: float, r_rerun: float) -> float:
    """Per-image host time saved versus running everything on the host."""
    if t_fp <= 0:
        raise ValueError("t_fp must be positive")
    _check_ratio("r_rerun", r_rerun)
    return t_fp * (1.0 - r_rerun)


@dataclass(frozen=True)
class MultiPrecisionEstimate:
    """Bundled Eq. (1)/(2) prediction for one configuration."""

    interval_seconds: float
    images_per_second: float
    accuracy: float
    bottleneck: str  # "host" or "fpga"


def estimate(
    t_fp: float,
    t_bnn: float,
    acc_bnn: float,
    acc_fp: float,
    r_rerun: float,
    r_rerun_err: float,
) -> MultiPrecisionEstimate:
    """Joint Eq. (1) + Eq. (2) estimate."""
    interval = multi_precision_interval(t_fp, t_bnn, r_rerun)
    accuracy = multi_precision_accuracy(acc_bnn, acc_fp, r_rerun, r_rerun_err)
    bottleneck = "host" if t_fp * r_rerun >= t_bnn else "fpga"
    return MultiPrecisionEstimate(
        interval_seconds=interval,
        images_per_second=1.0 / interval,
        accuracy=accuracy,
        bottleneck=bottleneck,
    )
