"""Closed-form performance/accuracy models — Eqs. (1)/(2) and their N-stage form.

The paper's two-stage cascade obeys

    t_multi/img  ~= max(t_fp/img * R_rerun, t_bnn/img)              (1)
    Acc_multi    ~= Acc_bnn + Acc_fp * R_rerun - R_rerun_err        (2)

with the host timing gain ``t_fp * (1 - R_rerun)`` per image.

An N-stage precision ladder (``docs/LADDER.md``) generalizes both.  Let
stage ``i`` (0-indexed) cost ``t_i`` seconds/image and forward the
fraction ``r_i`` of *its own* traffic upward, so the fraction of all
submitted traffic reaching stage ``i`` is the product

    R_i = prod_{j < i} r_j          (R_0 = 1).                      (1')

With every stage pipelined against the others (the paper's Fig. 1
overlap argument applied hop by hop), the steady-state interval is the
busiest stage:

    t_ladder/img ~= max_i  t_i * R_i                                (1N)

and telescoping Eq. (2) over the hops gives

    Acc_ladder   ~= Acc_0 + sum_{i >= 1} (Acc_i * R_i - R_err_i)    (2N)

where ``R_err_i`` is the fraction of *all* traffic that stage ``i-1``
classified correctly but forwarded anyway (the generalized wasted-rerun
term; at N=2 these reduce exactly to Eqs. (1)/(2) with ``r_0 = R_rerun``
and ``R_err_1 = R_rerun_err``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "multi_precision_interval",
    "multi_precision_accuracy",
    "host_timing_gain",
    "MultiPrecisionEstimate",
    "estimate",
    "ladder_reach_fractions",
    "ladder_interval",
    "ladder_accuracy",
    "ladder_bottleneck_stage",
]


def _check_ratio(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def multi_precision_interval(t_fp: float, t_bnn: float, r_rerun: float) -> float:
    """Eq. (1): average per-image interval of the multi-precision system.

    The two-stage case of Eq. (1N): :func:`ladder_interval` with
    ``stage_times=[t_bnn, t_fp]`` and ``forward_ratios=[r_rerun]``
    (``docs/LADDER.md`` derives the general form).

    Parameters
    ----------
    t_fp:
        Seconds per image of the floating-point network on the host.
    t_bnn:
        Seconds per image of the binarized network on the FPGA.
    r_rerun:
        Fraction of images re-processed on the host (0..1).
    """
    if t_fp <= 0 or t_bnn <= 0:
        raise ValueError("per-image times must be positive")
    _check_ratio("r_rerun", r_rerun)
    return max(t_fp * r_rerun, t_bnn)


def multi_precision_accuracy(
    acc_bnn: float, acc_fp: float, r_rerun: float, r_rerun_err: float
) -> float:
    """Eq. (2): accuracy of the multi-precision system (0-1 scale).

    ``r_rerun_err`` is the fraction of images initially classified
    correctly by the BNN but re-processed (and thus exposed to host
    error) due to DMU mistakes.  The paper notes the realized accuracy is
    somewhat lower because the host sees a hard-to-classify subset.
    This is the two-stage case of Eq. (2N) — :func:`ladder_accuracy`
    with ``R_1 = r_rerun`` and ``R_err_1 = r_rerun_err``.
    """
    _check_ratio("acc_bnn", acc_bnn)
    _check_ratio("acc_fp", acc_fp)
    _check_ratio("r_rerun", r_rerun)
    _check_ratio("r_rerun_err", r_rerun_err)
    return acc_bnn + acc_fp * r_rerun - r_rerun_err


def host_timing_gain(t_fp: float, r_rerun: float) -> float:
    """Per-image host time saved versus running everything on the host."""
    if t_fp <= 0:
        raise ValueError("t_fp must be positive")
    _check_ratio("r_rerun", r_rerun)
    return t_fp * (1.0 - r_rerun)


def ladder_reach_fractions(forward_ratios: Sequence[float]) -> list[float]:
    """Eq. (1'): ``R_i = prod_{j<i} r_j`` for every stage of the ladder.

    ``forward_ratios`` holds ``r_0 .. r_{N-2}`` (the final stage forwards
    nothing); the returned list has one entry per *stage*, starting with
    ``R_0 = 1``.
    """
    for i, r in enumerate(forward_ratios):
        _check_ratio(f"forward_ratios[{i}]", r)
    reach = [1.0]
    for r in forward_ratios:
        reach.append(reach[-1] * r)
    return reach


def ladder_interval(
    stage_times: Sequence[float], forward_ratios: Sequence[float]
) -> float:
    """Eq. (1N): ``t_ladder = max_i t_i * R_i`` seconds/image.

    Parameters
    ----------
    stage_times:
        Per-image seconds of each stage, fastest first (``t_0`` is the
        BNN, the last entry the float host).
    forward_ratios:
        Per-stage forward ratios ``r_0 .. r_{N-2}`` — each the fraction
        of the traffic *arriving* at that stage that its DMU sends up.
    """
    if len(stage_times) < 2:
        raise ValueError("a ladder needs at least 2 stages")
    if len(forward_ratios) != len(stage_times) - 1:
        raise ValueError(
            f"need exactly {len(stage_times) - 1} forward ratios for "
            f"{len(stage_times)} stages, got {len(forward_ratios)}"
        )
    if any(t <= 0 for t in stage_times):
        raise ValueError("per-image stage times must be positive")
    reach = ladder_reach_fractions(forward_ratios)
    return max(t * w for t, w in zip(stage_times, reach))


def ladder_bottleneck_stage(
    stage_times: Sequence[float], forward_ratios: Sequence[float]
) -> int:
    """Index of the stage whose ``t_i * R_i`` dominates Eq. (1N)."""
    reach = ladder_reach_fractions(forward_ratios)
    if len(forward_ratios) != len(stage_times) - 1:
        raise ValueError("forward_ratios must have one entry per hop")
    busy = [t * w for t, w in zip(stage_times, reach)]
    return max(range(len(busy)), key=busy.__getitem__)


def ladder_accuracy(
    stage_accuracies: Sequence[float],
    forward_ratios: Sequence[float],
    err_fractions: Sequence[float] | None = None,
) -> float:
    """Eq. (2N): telescoped accuracy of an N-stage ladder (0-1 scale).

    ``stage_accuracies[i]`` is stage ``i``'s standalone accuracy over the
    full distribution; ``err_fractions[i]`` (one per hop, default all 0)
    is ``R_err_{i+1}`` — the fraction of *all* traffic that stage ``i``
    classified correctly but forwarded anyway.  Like Eq. (2), this is an
    upper-bound flavour: the traffic actually reaching late stages is the
    hard residue, so realized accuracy sits somewhat below it.
    """
    if len(stage_accuracies) < 2:
        raise ValueError("a ladder needs at least 2 stages")
    if len(forward_ratios) != len(stage_accuracies) - 1:
        raise ValueError("forward_ratios must have one entry per hop")
    if err_fractions is None:
        err_fractions = [0.0] * len(forward_ratios)
    if len(err_fractions) != len(forward_ratios):
        raise ValueError("err_fractions must have one entry per hop")
    for i, acc in enumerate(stage_accuracies):
        _check_ratio(f"stage_accuracies[{i}]", acc)
    for i, err in enumerate(err_fractions):
        _check_ratio(f"err_fractions[{i}]", err)
    reach = ladder_reach_fractions(forward_ratios)
    total = stage_accuracies[0]
    for i in range(1, len(stage_accuracies)):
        total += stage_accuracies[i] * reach[i] - err_fractions[i - 1]
    return total


@dataclass(frozen=True)
class MultiPrecisionEstimate:
    """Bundled Eq. (1)/(2) prediction for one configuration."""

    interval_seconds: float
    images_per_second: float
    accuracy: float
    bottleneck: str  # "host" or "fpga"


def estimate(
    t_fp: float,
    t_bnn: float,
    acc_bnn: float,
    acc_fp: float,
    r_rerun: float,
    r_rerun_err: float,
) -> MultiPrecisionEstimate:
    """Joint Eq. (1) + Eq. (2) estimate."""
    interval = multi_precision_interval(t_fp, t_bnn, r_rerun)
    accuracy = multi_precision_accuracy(acc_bnn, acc_fp, r_rerun, r_rerun_err)
    bottleneck = "host" if t_fp * r_rerun >= t_bnn else "fpga"
    return MultiPrecisionEstimate(
        interval_seconds=interval,
        images_per_second=1.0 / interval,
        accuracy=accuracy,
        bottleneck=bottleneck,
    )
