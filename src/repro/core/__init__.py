"""The paper's contribution: the multi-precision CNN framework.

* :mod:`repro.core.dmu` — the trainable Softmax/logistic Decision-Making
  Unit and the FS/F̄S̄/F̄S/FS̄ taxonomy (Section III-B, Fig. 5, Table II).
* :mod:`repro.core.analytic` — Eqs. (1) and (2).
* :mod:`repro.core.pipeline` — the BNN + DMU + float-network cascade.
"""

from .ascii_chart import line_chart
from .calibration import CalibrationReport, ReliabilityBin, auroc, calibration_report
from .analytic import (
    MultiPrecisionEstimate,
    estimate,
    host_timing_gain,
    multi_precision_accuracy,
    multi_precision_interval,
)
from .dmu import DecisionMakingUnit, DMUCategories, threshold_sweep, train_dmu
from .pipeline import CascadeResult, MultiPrecisionPipeline
from .report import format_percent, format_rate, render_table

__all__ = [
    "line_chart",
    "CalibrationReport",
    "ReliabilityBin",
    "auroc",
    "calibration_report",
    "DecisionMakingUnit",
    "DMUCategories",
    "train_dmu",
    "threshold_sweep",
    "multi_precision_interval",
    "multi_precision_accuracy",
    "host_timing_gain",
    "MultiPrecisionEstimate",
    "estimate",
    "MultiPrecisionPipeline",
    "CascadeResult",
    "render_table",
    "format_percent",
    "format_rate",
]
