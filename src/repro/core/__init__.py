"""The paper's contribution: the multi-precision CNN framework.

* :mod:`repro.core.dmu` — the trainable Softmax/logistic Decision-Making
  Unit and the FS/F̄S̄/F̄S/FS̄ taxonomy (Section III-B, Fig. 5, Table II).
* :mod:`repro.core.analytic` — Eqs. (1) and (2) plus their N-stage
  generalizations Eq. (1N)/(2N) (``docs/LADDER.md``).
* :mod:`repro.core.pipeline` — the 2-stage BNN + DMU + float cascade.
* :mod:`repro.core.ladder` — the N-stage precision ladder the cascade
  is a special case of (per-stage DMUs, static threshold routing).
"""

from .ascii_chart import line_chart
from .calibration import CalibrationReport, ReliabilityBin, auroc, calibration_report
from .analytic import (
    MultiPrecisionEstimate,
    estimate,
    host_timing_gain,
    ladder_accuracy,
    ladder_bottleneck_stage,
    ladder_interval,
    ladder_reach_fractions,
    multi_precision_accuracy,
    multi_precision_interval,
)
from .dmu import DecisionMakingUnit, DMUCategories, threshold_sweep, train_dmu
from .ladder import LadderResult, LadderStage, PrecisionLadder
from .pipeline import CascadeResult, MultiPrecisionPipeline
from .report import format_percent, format_rate, render_table

__all__ = [
    "line_chart",
    "CalibrationReport",
    "ReliabilityBin",
    "auroc",
    "calibration_report",
    "DecisionMakingUnit",
    "DMUCategories",
    "train_dmu",
    "threshold_sweep",
    "multi_precision_interval",
    "multi_precision_accuracy",
    "host_timing_gain",
    "MultiPrecisionEstimate",
    "estimate",
    "ladder_reach_fractions",
    "ladder_interval",
    "ladder_accuracy",
    "ladder_bottleneck_stage",
    "LadderStage",
    "LadderResult",
    "PrecisionLadder",
    "MultiPrecisionPipeline",
    "CascadeResult",
    "render_table",
    "format_percent",
    "format_rate",
]
