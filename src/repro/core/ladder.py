"""N-stage precision ladder — the generalized cascade (``docs/LADDER.md``).

The paper's system is a 2-rung ladder: a BNN answers everything cheap,
a DMU forwards its low-confidence residue to one float host.  CascadeCNN
(PAPERS.md) shows the general form: a *ladder* of precision stages,
each with its own confidence unit, where stage ``i`` answers what it is
sure about and forwards only the residue to stage ``i+1``::

    images ──> stage 0 ──r_0──> stage 1 ──r_1──> ... ──> stage N-1
                 │a_0             │a_1                      │a_{N-1}
                 └answers         └answers                  └answers all

Every image is answered by exactly one stage (the partition invariant
that :meth:`LadderResult.check_partition` enforces), the fraction of
traffic reaching stage ``i`` is ``R_i = prod_{j<i} r_j`` (Eq. (1') in
:mod:`repro.core.analytic`), and the steady-state interval follows
Eq. (1N): ``t_ladder = max_i t_i * R_i``.

This module computes *what* the ladder answers on in-memory batches;
:class:`repro.serve.CascadeServer` runs the same topology as a live
multi-queue service, and :func:`repro.obs.ladder_eq1_residual` checks
measured serving numbers against the Eq. (1N) prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import obs
from .analytic import ladder_bottleneck_stage, ladder_interval, ladder_reach_fractions
from .dmu import DecisionMakingUnit

__all__ = ["LadderStage", "LadderResult", "PrecisionLadder"]


@dataclass
class LadderStage:
    """One rung: a scoring engine plus (except on the last rung) its DMU.

    Parameters
    ----------
    name:
        Unique stage label, used in metrics/spans (``ladder.<name>``).
    scores_fn:
        ``(n, C, H, W) images -> (n, num_classes) scores``.  Any engine
        with this shape fits: :meth:`repro.bnn.FoldedBNN.class_scores`,
        a :class:`repro.nn.QuantizedEngine`, a float
        :class:`repro.nn.InferenceEngine`, or a plain closure.
    dmu:
        Per-stage confidence unit deciding accept-vs-forward.  Required
        on every rung except the last (which answers unconditionally).
    threshold:
        Override of ``dmu.threshold`` for this rung — the static knob of
        the routing policy.  ``None`` defers to the DMU's own setting.
    t_image:
        Optional seconds/image for this stage, feeding the Eq. (1N)
        prediction helpers on :class:`PrecisionLadder`.
    """

    name: str
    scores_fn: Callable[[np.ndarray], np.ndarray]
    dmu: DecisionMakingUnit | None = None
    threshold: float | None = None
    t_image: float | None = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("stage name must be non-empty")
        if self.threshold is not None and not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if self.t_image is not None and self.t_image <= 0:
            raise ValueError("t_image must be positive")

    @property
    def effective_threshold(self) -> float | None:
        if self.threshold is not None:
            return self.threshold
        return self.dmu.threshold if self.dmu is not None else None


@dataclass
class LadderResult:
    """Per-image outcome of one ladder run (generalizes ``CascadeResult``).

    ``stage_of[k]`` is the index of the rung that answered image ``k``;
    the compact per-stage arrays are ordered by arrival within each rung.
    """

    predictions: np.ndarray            # (n,) final answers
    stage_of: np.ndarray               # (n,) answering stage index
    stage_names: tuple[str, ...]
    arrived: np.ndarray                # (num_stages,) images reaching each rung
    forwarded: np.ndarray              # (num_stages,) images each rung sent up
    confidences: tuple[np.ndarray, ...] = field(default_factory=tuple)
    # ^ one compact array per non-final rung, over that rung's arrivals.

    @property
    def num_stages(self) -> int:
        return len(self.stage_names)

    @property
    def answered(self) -> np.ndarray:
        """Images answered per rung: ``arrived - forwarded``."""
        return self.arrived - self.forwarded

    @property
    def forward_ratios(self) -> list[float]:
        """Measured ``r_i`` per hop: forwarded / arrived (0 if starved)."""
        out = []
        for i in range(self.num_stages - 1):
            a = int(self.arrived[i])
            out.append(int(self.forwarded[i]) / a if a else 0.0)
        return out

    @property
    def reach_fractions(self) -> list[float]:
        """Measured ``R_i`` per rung: arrived / submitted."""
        n = int(self.predictions.shape[0])
        return [int(a) / n if n else 0.0 for a in self.arrived]

    @property
    def rerun_ratio(self) -> float:
        """2-stage compatibility: fraction answered above rung 0."""
        n = int(self.predictions.shape[0])
        return float((self.stage_of > 0).mean()) if n else 0.0

    def check_partition(self) -> None:
        """Every image answered by exactly one rung, books balancing.

        Raises ``ValueError`` if any sample was dropped or duplicated —
        the batch-level form of the serving-books invariant
        ``accepted + Σ rerun_i + degraded + failed == submitted``.
        """
        n = int(self.predictions.shape[0])
        if self.stage_of.shape != (n,):
            raise ValueError("stage_of must align with predictions")
        if int(self.answered.sum()) != n:
            raise ValueError(
                f"partition broken: stages answered {int(self.answered.sum())} "
                f"of {n} images"
            )
        counts = np.bincount(self.stage_of, minlength=self.num_stages)
        if not np.array_equal(counts, self.answered):
            raise ValueError("stage_of disagrees with per-stage answered counts")
        if int(self.forwarded[-1]) != 0:
            raise ValueError("the final rung cannot forward")

    def accuracy(self, labels: np.ndarray) -> float:
        labels = np.asarray(labels)
        if labels.shape != self.predictions.shape:
            raise ValueError("labels shape mismatch")
        return float((self.predictions == labels).mean()) if labels.size else 0.0

    def stage_accuracy(self, labels: np.ndarray, stage: int) -> float:
        """Accuracy on the subset a rung answered (NaN if it answered none)."""
        labels = np.asarray(labels)
        mask = self.stage_of == stage
        if not mask.any():
            return float("nan")
        return float((self.predictions[mask] == labels[mask]).mean())


class PrecisionLadder:
    """Ordered rungs, cheapest first; the last rung answers everything left.

    Every rung except the last needs a DMU.  ``classify`` walks the
    rungs over a shrinking active-index set, so each image is scored by
    every rung up to (and including) the one that answers it — exactly
    the multi-hop topology :class:`repro.serve.CascadeServer` runs live.
    """

    def __init__(self, stages: Sequence[LadderStage]):
        stages = list(stages)
        if len(stages) < 2:
            raise ValueError("a ladder needs at least 2 stages")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")
        for stage in stages[:-1]:
            if stage.dmu is None:
                raise ValueError(
                    f"stage {stage.name!r} forwards traffic and needs a DMU"
                )
        self.stages = tuple(stages)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.stages)

    @property
    def stage_times(self) -> list[float]:
        """Per-rung ``t_i`` for Eq. (1N); requires every ``t_image`` set."""
        times = [s.t_image for s in self.stages]
        if any(t is None for t in times):
            missing = [s.name for s in self.stages if s.t_image is None]
            raise ValueError(f"stages missing t_image: {missing}")
        return [float(t) for t in times]

    def predicted_interval(self, forward_ratios: Sequence[float]) -> float:
        """Eq. (1N) prediction from stage ``t_image`` and measured ``r_i``."""
        return ladder_interval(self.stage_times, forward_ratios)

    def bottleneck_stage(self, forward_ratios: Sequence[float]) -> str:
        """Name of the rung dominating Eq. (1N)."""
        return self.stages[
            ladder_bottleneck_stage(self.stage_times, forward_ratios)
        ].name

    def predicted_reach(self, forward_ratios: Sequence[float]) -> list[float]:
        """Eq. (1'): ``R_i`` products for the given per-hop ratios."""
        if len(forward_ratios) != self.num_stages - 1:
            raise ValueError("need one forward ratio per hop")
        return ladder_reach_fractions(forward_ratios)

    def classify(
        self,
        images: np.ndarray,
        stage_images: Sequence[np.ndarray] | None = None,
    ) -> LadderResult:
        """Run the full ladder over a batch.

        Parameters
        ----------
        images:
            Input batch ``(N, C, H, W)`` fed to every rung by default.
        stage_images:
            Optional per-rung input variants (one array per rung, each
            aligned with ``images`` along axis 0) for engines trained on
            different scalings — the N-stage form of the 2-stage
            pipeline's ``bnn_images`` argument.
        """
        images = np.asarray(images)
        if images.ndim != 4:
            raise ValueError("images must be (N, C, H, W)")
        n = images.shape[0]
        if stage_images is None:
            stage_views: list[np.ndarray] = [images] * self.num_stages
        else:
            stage_views = [np.asarray(a) for a in stage_images]
            if len(stage_views) != self.num_stages:
                raise ValueError("stage_images must have one array per stage")
            if any(a.shape[0] != n for a in stage_views):
                raise ValueError("stage_images must align with images")

        predictions = np.full(n, -1, dtype=np.int64)
        stage_of = np.full(n, -1, dtype=np.int64)
        arrived = np.zeros(self.num_stages, dtype=np.int64)
        forwarded = np.zeros(self.num_stages, dtype=np.int64)
        confidences: list[np.ndarray] = []

        active = np.arange(n)
        for i, stage in enumerate(self.stages):
            arrived[i] = active.shape[0]
            if active.shape[0] == 0:
                if i < self.num_stages - 1:
                    confidences.append(np.empty(0, dtype=np.float64))
                continue
            with obs.trace_span(
                f"ladder.{stage.name}", images=int(active.shape[0]), stage=i
            ):
                scores = np.asarray(stage.scores_fn(stage_views[i][active]))
            preds = scores.argmax(axis=1)
            if i == self.num_stages - 1:
                accept = np.ones(active.shape[0], dtype=bool)
            else:
                conf = np.asarray(stage.dmu.confidence(scores), dtype=np.float64)
                confidences.append(conf)
                accept = conf >= stage.effective_threshold
            answered_idx = active[accept]
            predictions[answered_idx] = preds[accept]
            stage_of[answered_idx] = i
            forwarded[i] = int((~accept).sum())
            obs.count(f"ladder.{stage.name}.forwarded", int(forwarded[i]))
            active = active[~accept]

        result = LadderResult(
            predictions=predictions,
            stage_of=stage_of,
            stage_names=self.stage_names,
            arrived=arrived,
            forwarded=forwarded,
            confidences=tuple(confidences),
        )
        result.check_partition()
        return result
