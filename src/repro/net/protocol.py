"""Length-prefixed binary wire protocol for the cascade service.

The paper's cascade only pays off at scale once low-confidence residue
can reach the FP host from *outside* the device, so the serving layer
needs a real request path (FINN's throughput claims likewise assume a
wire in front of the accelerator).  This module is the pure byte layer
of that path: framing, encoding and decoding with **no sockets and no
I/O** — :mod:`repro.net.frontend` / :mod:`repro.net.client` move the
bytes, everything here is deterministic and unit-testable.

Frame layout (all integers big-endian)::

    +-------+---------+------+----------------+= = = = = = =+
    | magic | version | type |  body length   |    body     |
    |  2 B  |   1 B   | 1 B  |  4 B (uint32)  |  length B   |
    +-------+---------+------+----------------+= = = = = = =+
      "RN"      0x01                             <= 16 MiB

Request/response flow for one classification (client frames on the
left, server frames on the right)::

    REQUEST(id, image) ──►
                         ◄── ACCEPTED(id)            admission granted
                         ◄── DECISION(id, ...)       cascade answer
                         ◄── LOGITS(id, confidences) terminal frame
    -- or --
                         ◄── REJECTED(id, code)      admission refused (503)
    -- or --
                         ◄── ERROR(id, code)         typed terminal failure

``PING``/``PONG`` carry health-check nonces; ``SHUTDOWN`` is the typed
connection-scoped farewell :meth:`repro.net.frontend.NetFrontend.close`
sends so half-read connections never observe a silent reset.

Arrays (the image payload and the ``LOGITS`` vector) are encoded as
``dtype code (1 B) | ndim (1 B) | shape dims (uint32 each) | raw
C-order bytes`` — a fixed dtype-code table rather than pickled dtypes,
so the format is stable across numpy versions and releases (the golden
fixtures in ``tests/net`` pin it).

Decoding is strict: bad magic, an unknown version or frame type, an
oversize length, or a body whose size disagrees with its own header all
raise a typed :class:`ProtocolError` subclass — a malformed peer can
never hang or crash the frontend, only fail its own connection.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = [
    "MAGIC",
    "VERSION",
    "PROTOCOL_MINOR",
    "HEADER_SIZE",
    "MAX_FRAME_BODY",
    "FRAME_TYPES",
    "SOURCE_TO_CODE",
    "CODE_TO_SOURCE",
    "SOURCE_NAMED",
    "REJECT_QUEUE_FULL",
    "REJECT_CLOSING",
    "REJECT_NO_REPLICA",
    "REJECT_TENANT",
    "REJECT_NAMES",
    "ERR_PROTOCOL",
    "ERR_STAGE_FAILURE",
    "ERR_DEADLINE",
    "ERR_SERVER_CLOSED",
    "ERR_REPLICA_FAILURE",
    "ERR_SHUTDOWN",
    "ERR_INTERNAL",
    "ERROR_NAMES",
    "ProtocolError",
    "TruncatedFrame",
    "BadMagic",
    "BadVersion",
    "UnknownFrameType",
    "FrameTooLarge",
    "CorruptFrame",
    "Request",
    "Ping",
    "Pong",
    "Accepted",
    "Rejected",
    "Decision",
    "Logits",
    "Error",
    "Shutdown",
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
]

MAGIC = b"RN"
VERSION = 1

#: In-band extension level of this build.  The header version byte stays
#: 1 — every extension rides *inside* existing frame bodies so old
#: frames decode byte-identically: minor 1 added :data:`SOURCE_NAMED`
#: ladder sources, minor 2 adds the optional tenant suffix on
#: ``REQUEST`` (``docs/TENANCY.md``), the ``"cache"`` decision source
#: and :data:`REJECT_TENANT`.  A minor-2 feature sent to a minor-1 peer
#: fails that peer's decode loudly (typed ``CorruptFrame``), never
#: silently.
PROTOCOL_MINOR = 2

_HEADER = struct.Struct(">2sBBI")
HEADER_SIZE = _HEADER.size  # 8 bytes

#: Hard ceiling on a frame body; an advertised length beyond this is
#: rejected from the header alone (no buffering of attacker-sized bodies).
MAX_FRAME_BODY = 16 * 1024 * 1024

# -- frame type codes ---------------------------------------------------------
_T_REQUEST = 0x01
_T_PING = 0x02
_T_ACCEPTED = 0x10
_T_REJECTED = 0x11
_T_DECISION = 0x12
_T_LOGITS = 0x13
_T_ERROR = 0x14
_T_SHUTDOWN = 0x15
_T_PONG = 0x16

FRAME_TYPES = {
    "request": _T_REQUEST,
    "ping": _T_PING,
    "accepted": _T_ACCEPTED,
    "rejected": _T_REJECTED,
    "decision": _T_DECISION,
    "logits": _T_LOGITS,
    "error": _T_ERROR,
    "shutdown": _T_SHUTDOWN,
    "pong": _T_PONG,
}

#: ``ServeResult.source`` on the wire (1 byte).  Codes 0-2 cover the
#: fixed 2-stage cascade; code 3 (minor 2) marks an answer re-served by
#: a :class:`repro.cache.CachingFrontend`; :data:`SOURCE_NAMED` flags a
#: ladder rung (``docs/LADDER.md``): the stage name rides as a utf-8
#: suffix after the decision's fixed fields.  Frames from 2-stage
#: servers are byte-identical to protocol version 1 before the
#: extensions.
SOURCE_TO_CODE = {"bnn": 0, "host": 1, "degraded": 2, "cache": 3}
CODE_TO_SOURCE = {code: name for name, code in SOURCE_TO_CODE.items()}
SOURCE_NAMED = 255

#: ``REJECTED`` reason codes (admission control; the 503 analogues).
REJECT_QUEUE_FULL = 1   # frontend at max in-flight (or tenant at quota)
REJECT_CLOSING = 2      # frontend is shutting down
REJECT_NO_REPLICA = 3   # router found no healthy replica
REJECT_TENANT = 4       # request named a tenant the server doesn't run
REJECT_NAMES = {
    REJECT_QUEUE_FULL: "queue_full",
    REJECT_CLOSING: "closing",
    REJECT_NO_REPLICA: "no_healthy_replica",
    REJECT_TENANT: "unknown_tenant",
}

#: ``ERROR`` codes (typed terminal failures).
ERR_PROTOCOL = 1          # peer sent malformed bytes
ERR_STAGE_FAILURE = 2     # repro.serve.StageFailure
ERR_DEADLINE = 3          # repro.serve.DeadlineExceeded
ERR_SERVER_CLOSED = 4     # repro.serve.ServerClosed
ERR_REPLICA_FAILURE = 5   # repro.net.router.ReplicaFailure
ERR_SHUTDOWN = 6          # frontend closed with the request in flight
ERR_INTERNAL = 7          # anything else
ERROR_NAMES = {
    ERR_PROTOCOL: "protocol",
    ERR_STAGE_FAILURE: "stage_failure",
    ERR_DEADLINE: "deadline_exceeded",
    ERR_SERVER_CLOSED: "server_closed",
    ERR_REPLICA_FAILURE: "replica_failure",
    ERR_SHUTDOWN: "shutdown",
    ERR_INTERNAL: "internal",
}


# -- errors -------------------------------------------------------------------
class ProtocolError(ValueError):
    """Base class of every framing/encoding violation."""


class TruncatedFrame(ProtocolError):
    """The buffer ends mid-frame (valid prefix; feed more bytes)."""


class BadMagic(ProtocolError):
    """The first two bytes are not ``b"RN"`` — not our protocol."""


class BadVersion(ProtocolError):
    """Unsupported protocol version byte."""


class UnknownFrameType(ProtocolError):
    """Frame type byte outside :data:`FRAME_TYPES`."""


class FrameTooLarge(ProtocolError):
    """Advertised body length exceeds the decoder's ceiling."""


class CorruptFrame(ProtocolError):
    """Complete frame whose body contradicts its own layout."""


# -- array payload ------------------------------------------------------------
_DTYPE_BY_CODE = {
    1: np.dtype("float32"),
    2: np.dtype("float64"),
    3: np.dtype("int32"),
    4: np.dtype("int64"),
    5: np.dtype("uint8"),
    6: np.dtype("bool"),
}
_CODE_BY_DTYPE = {dtype: code for code, dtype in _DTYPE_BY_CODE.items()}
_MAX_NDIM = 8


def _encode_array(array: np.ndarray) -> bytes:
    array = np.asarray(array)
    if not array.flags.c_contiguous:
        # Not ascontiguousarray: that would promote 0-d arrays to 1-d.
        array = np.ascontiguousarray(array)
    code = _CODE_BY_DTYPE.get(array.dtype)
    if code is None:
        raise ProtocolError(
            f"unsupported wire dtype {array.dtype!r} "
            f"(supported: {sorted(str(d) for d in _CODE_BY_DTYPE)})"
        )
    if array.ndim > _MAX_NDIM:
        raise ProtocolError(f"array ndim {array.ndim} exceeds wire limit {_MAX_NDIM}")
    head = struct.pack(">BB", code, array.ndim)
    dims = b"".join(struct.pack(">I", d) for d in array.shape)
    return head + dims + array.tobytes()


def _decode_array(body: bytes, offset: int) -> tuple[np.ndarray, int]:
    if len(body) - offset < 2:
        raise CorruptFrame("array header truncated")
    code, ndim = struct.unpack_from(">BB", body, offset)
    offset += 2
    dtype = _DTYPE_BY_CODE.get(code)
    if dtype is None:
        raise CorruptFrame(f"unknown array dtype code {code}")
    if ndim > _MAX_NDIM:
        raise CorruptFrame(f"array ndim {ndim} exceeds wire limit {_MAX_NDIM}")
    if len(body) - offset < 4 * ndim:
        raise CorruptFrame("array shape truncated")
    shape = struct.unpack_from(f">{ndim}I" if ndim else ">", body, offset)
    offset += 4 * ndim
    count = 1
    for dim in shape:
        count *= dim
    nbytes = count * dtype.itemsize
    if len(body) - offset < nbytes:
        raise CorruptFrame(
            f"array body short: need {nbytes} bytes, have {len(body) - offset}"
        )
    array = np.frombuffer(body, dtype=dtype, count=count, offset=offset).reshape(shape)
    return array.copy(), offset + nbytes


def _array_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return (
        a.dtype == b.dtype
        and a.shape == b.shape
        and a.tobytes() == b.tobytes()  # bitwise: NaNs compare equal
    )


# -- frames -------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class Request:
    """Client → server: classify one image (``flags`` is reserved).

    ``tenant`` (minor 2) selects the model on a multi-tenant server; it
    rides as a length-prefixed utf-8 suffix *after* the image array, so
    a request with no tenant is byte-identical to the pre-tenancy
    encoding and an old frame decodes with ``tenant == ""`` — the
    frontend routes those to its sole/default tenant.
    """

    request_id: int
    image: np.ndarray
    flags: int = 0
    tenant: str = ""

    type_name = "request"

    def __eq__(self, other):
        return (
            isinstance(other, Request)
            and self.request_id == other.request_id
            and self.flags == other.flags
            and self.tenant == other.tenant
            and _array_equal(np.asarray(self.image), np.asarray(other.image))
        )


@dataclass(frozen=True)
class Ping:
    """Client → server health probe; echoed back as :class:`Pong`."""

    nonce: int

    type_name = "ping"


@dataclass(frozen=True)
class Pong:
    """Server → client echo of a :class:`Ping` nonce."""

    nonce: int

    type_name = "pong"


@dataclass(frozen=True)
class Accepted:
    """Server → client: the request passed admission control."""

    request_id: int

    type_name = "accepted"


@dataclass(frozen=True)
class Rejected:
    """Server → client: admission refused (terminal; the 503 frame)."""

    request_id: int
    code: int
    detail: str = ""

    type_name = "rejected"

    @property
    def reason(self) -> str:
        return REJECT_NAMES.get(self.code, f"code_{self.code}")


@dataclass(frozen=True)
class Decision:
    """Server → client: the cascade's answer for one request."""

    request_id: int
    prediction: int
    bnn_prediction: int
    source: str               # "bnn" | "host" | "degraded" | ladder stage name
    confidence: float
    latency_seconds: float

    type_name = "decision"


@dataclass(frozen=True, eq=False)
class Logits:
    """Server → client: per-stage confidence vector (terminal frame).

    Today the cascade has one confidence unit, so the vector has one
    entry; the frame is shaped for the N-stage precision ladder
    (ROADMAP item 2) where each stage contributes a confidence.
    """

    request_id: int
    values: np.ndarray

    type_name = "logits"

    def __eq__(self, other):
        return (
            isinstance(other, Logits)
            and self.request_id == other.request_id
            and _array_equal(np.asarray(self.values), np.asarray(other.values))
        )


@dataclass(frozen=True)
class Error:
    """Server → client: typed terminal failure for one request.

    ``request_id == 0`` marks connection-scoped errors (e.g. a protocol
    violation detected before any request id could be parsed).
    """

    request_id: int
    code: int
    detail: str = ""

    type_name = "error"

    @property
    def reason(self) -> str:
        return ERROR_NAMES.get(self.code, f"code_{self.code}")


@dataclass(frozen=True)
class Shutdown:
    """Server → client: the frontend is closing this connection."""

    detail: str = ""

    type_name = "shutdown"


Frame = Request | Ping | Pong | Accepted | Rejected | Decision | Logits | Error | Shutdown


# -- encoding -----------------------------------------------------------------
def _utf8(detail: str) -> bytes:
    return detail.encode("utf-8")


def _encode_body(frame) -> tuple[int, bytes]:
    if isinstance(frame, Request):
        suffix = b""
        if frame.tenant:
            tenant = _utf8(frame.tenant)
            if len(tenant) > 255:
                raise ProtocolError(
                    f"tenant name is {len(tenant)} utf-8 bytes (max 255)"
                )
            suffix = struct.pack(">B", len(tenant)) + tenant
        return _T_REQUEST, (
            struct.pack(">IB", frame.request_id, frame.flags)
            + _encode_array(np.asarray(frame.image))
            + suffix
        )
    if isinstance(frame, Ping):
        return _T_PING, struct.pack(">Q", frame.nonce)
    if isinstance(frame, Pong):
        return _T_PONG, struct.pack(">Q", frame.nonce)
    if isinstance(frame, Accepted):
        return _T_ACCEPTED, struct.pack(">I", frame.request_id)
    if isinstance(frame, Rejected):
        return _T_REJECTED, (
            struct.pack(">IB", frame.request_id, frame.code) + _utf8(frame.detail)
        )
    if isinstance(frame, Decision):
        source_code = SOURCE_TO_CODE.get(frame.source)
        suffix = b""
        if source_code is None:
            # A ladder rung answered: carry its stage name as the tail.
            if not frame.source:
                raise ProtocolError("decision source must be non-empty")
            source_code = SOURCE_NAMED
            suffix = _utf8(frame.source)
        return _T_DECISION, struct.pack(
            ">IiiBdd",
            frame.request_id,
            frame.prediction,
            frame.bnn_prediction,
            source_code,
            frame.confidence,
            frame.latency_seconds,
        ) + suffix
    if isinstance(frame, Logits):
        return _T_LOGITS, (
            struct.pack(">I", frame.request_id) + _encode_array(np.asarray(frame.values))
        )
    if isinstance(frame, Error):
        return _T_ERROR, (
            struct.pack(">IB", frame.request_id, frame.code) + _utf8(frame.detail)
        )
    if isinstance(frame, Shutdown):
        return _T_SHUTDOWN, _utf8(frame.detail)
    raise ProtocolError(f"cannot encode {type(frame).__name__}")


def encode_frame(frame) -> bytes:
    """Serialize one frame to its complete wire bytes."""
    frame_type, body = _encode_body(frame)
    if len(body) > MAX_FRAME_BODY:
        raise FrameTooLarge(
            f"{frame.type_name} body is {len(body)} bytes (max {MAX_FRAME_BODY})"
        )
    return _HEADER.pack(MAGIC, VERSION, frame_type, len(body)) + body


# -- decoding -----------------------------------------------------------------
def _need(body: bytes, nbytes: int, what: str) -> None:
    if len(body) < nbytes:
        raise CorruptFrame(f"{what}: need {nbytes} bytes, have {len(body)}")


def _decode_request(body: bytes) -> Request:
    _need(body, 5, "request header")
    request_id, flags = struct.unpack_from(">IB", body, 0)
    image, offset = _decode_array(body, 5)
    tenant = ""
    if offset != len(body):
        # Minor-2 tenant suffix: 1-byte utf-8 length + name, nothing after.
        declared = body[offset]
        suffix = body[offset + 1:]
        if len(suffix) != declared:
            raise CorruptFrame(
                f"request has {len(body) - offset} trailing bytes that are "
                f"not a tenant suffix (declares {declared}, has {len(suffix)})"
            )
        try:
            tenant = suffix.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptFrame(f"request tenant is not utf-8: {exc}") from None
    return Request(request_id, image, flags, tenant)


def _decode_fixed(fmt: str, body: bytes, what: str) -> tuple:
    size = struct.calcsize(fmt)
    if len(body) != size:
        raise CorruptFrame(f"{what}: need exactly {size} bytes, have {len(body)}")
    return struct.unpack(fmt, body)


def _decode_code_detail(body: bytes, what: str) -> tuple[int, int, str]:
    _need(body, 5, what)
    request_id, code = struct.unpack_from(">IB", body, 0)
    try:
        detail = body[5:].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CorruptFrame(f"{what} detail is not utf-8: {exc}") from None
    return request_id, code, detail


def _decode_decision(body: bytes) -> Decision:
    fixed = struct.calcsize(">IiiBdd")
    _need(body, fixed, "decision")
    request_id, prediction, bnn_prediction, source_code, confidence, latency = (
        struct.unpack_from(">IiiBdd", body, 0)
    )
    suffix = body[fixed:]
    if source_code == SOURCE_NAMED:
        if not suffix:
            raise CorruptFrame("named decision source is empty")
        try:
            source = suffix.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptFrame(f"decision source is not utf-8: {exc}") from None
    else:
        source = CODE_TO_SOURCE.get(source_code)
        if source is None:
            raise CorruptFrame(f"unknown decision source code {source_code}")
        if suffix:
            raise CorruptFrame(
                f"decision: {len(suffix)} unexpected bytes after fixed body"
            )
    return Decision(request_id, prediction, bnn_prediction, source, confidence, latency)


def _decode_logits(body: bytes) -> Logits:
    _need(body, 4, "logits header")
    (request_id,) = struct.unpack_from(">I", body, 0)
    values, offset = _decode_array(body, 4)
    if offset != len(body):
        raise CorruptFrame(f"logits has {len(body) - offset} trailing bytes")
    return Logits(request_id, values)


def _decode_shutdown(body: bytes) -> Shutdown:
    try:
        return Shutdown(body.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise CorruptFrame(f"shutdown detail is not utf-8: {exc}") from None


_DECODERS = {
    _T_REQUEST: _decode_request,
    _T_PING: lambda body: Ping(*_decode_fixed(">Q", body, "ping")),
    _T_PONG: lambda body: Pong(*_decode_fixed(">Q", body, "pong")),
    _T_ACCEPTED: lambda body: Accepted(*_decode_fixed(">I", body, "accepted")),
    _T_REJECTED: lambda body: Rejected(*_decode_code_detail(body, "rejected")),
    _T_DECISION: _decode_decision,
    _T_LOGITS: _decode_logits,
    _T_ERROR: lambda body: Error(*_decode_code_detail(body, "error")),
    _T_SHUTDOWN: _decode_shutdown,
}


def decode_frame(buf: bytes | bytearray | memoryview, max_body: int = MAX_FRAME_BODY):
    """Decode one frame from the head of *buf*; return ``(frame, consumed)``.

    Raises :class:`TruncatedFrame` when *buf* is a valid but incomplete
    prefix (the incremental decoder treats that as "wait for more
    bytes") and another :class:`ProtocolError` subclass when the bytes
    can never become a valid frame.  Header validation happens before
    body completeness, so an oversize or alien frame is rejected from
    its first 8 bytes.
    """
    buf = bytes(buf) if not isinstance(buf, bytes) else buf
    if len(buf) < HEADER_SIZE:
        raise TruncatedFrame(f"incomplete header ({len(buf)}/{HEADER_SIZE} bytes)")
    magic, version, frame_type, length = _HEADER.unpack_from(buf, 0)
    if magic != MAGIC:
        raise BadMagic(f"bad magic {magic!r} (want {MAGIC!r})")
    if version != VERSION:
        raise BadVersion(f"unsupported protocol version {version} (want {VERSION})")
    if frame_type not in _DECODERS:
        raise UnknownFrameType(f"unknown frame type 0x{frame_type:02x}")
    if length > max_body:
        raise FrameTooLarge(f"advertised body {length} bytes exceeds max {max_body}")
    if len(buf) < HEADER_SIZE + length:
        raise TruncatedFrame(
            f"incomplete body ({len(buf) - HEADER_SIZE}/{length} bytes)"
        )
    body = buf[HEADER_SIZE:HEADER_SIZE + length]
    return _DECODERS[frame_type](body), HEADER_SIZE + length


class FrameDecoder:
    """Incremental stream reassembler: feed chunks, get whole frames.

    Raises the underlying :class:`ProtocolError` (except
    :class:`TruncatedFrame`, which just means "buffer and wait") as soon
    as the stream can no longer produce a valid frame; after an error
    the decoder is poisoned and every further ``feed`` re-raises, which
    matches the frontend's fail-the-connection semantics.
    """

    def __init__(self, max_body: int = MAX_FRAME_BODY):
        self._buffer = bytearray()
        self._max_body = max_body
        self._error: ProtocolError | None = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list:
        """Append *data*; return every complete frame now available."""
        if self._error is not None:
            raise self._error
        self._buffer.extend(data)
        frames = []
        while self._buffer:
            try:
                frame, consumed = decode_frame(bytes(self._buffer), self._max_body)
            except TruncatedFrame:
                break
            except ProtocolError as exc:
                self._error = exc
                raise
            del self._buffer[:consumed]
            frames.append(frame)
        return frames
