"""Asyncio socket frontend: the wire in front of the cascade.

Wraps any *backend* exposing the :meth:`repro.serve.CascadeServer.submit`
contract (``submit(image) -> Future[ServeResult]`` — a single server or
a :class:`repro.net.router.ShardRouter`) behind a TCP listener speaking
the :mod:`repro.net.protocol` frames.  The frontend is the admission
layer of ROADMAP's "millions of users" step: FINN-style sustained
throughput only holds if overload is shed at the door, so a request
either enters the cascade (``ACCEPTED``) or is refused immediately with
a typed ``REJECTED`` frame (the 503 analogue) — it is never silently
queued into an unbounded buffer.

Concurrency model
-----------------
One daemon thread runs a private asyncio event loop; all connection
state (in-flight counts, per-connection pending maps) is touched only
from that loop, so no locks are needed beyond the metrics facade.
``backend.submit`` may *block* (the cascade's backpressure contract), so
it runs on the loop's default executor; backend futures resolve on
serving threads and re-enter the loop via ``call_soon_threadsafe``.
Per-connection writes are serialized by an ``asyncio.Lock`` and awaited
through ``drain()`` — a slow reader backpressures only its own
connection.

Shutdown contract (the socket-layer mirror of PR 4's
``ServerClosed`` stranded-futures fix): :meth:`NetFrontend.close` stops
accepting, waits up to ``drain_timeout`` for in-flight requests, then
resolves every still-pending request with a typed ``ERROR(shutdown)``
frame and sends each open connection — including half-read ones whose
decoder holds a partial frame — a ``SHUTDOWN`` frame before the socket
closes.  No client ever observes a silent reset with work in flight.

Observability: ``net.accept`` / ``net.request`` / ``net.answered`` /
``net.rejected`` / ``net.failed`` counters and a ``net.decode`` span
around frame reassembly (see ``docs/NETWORK.md``).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..serve.resilience import DeadlineExceeded, ServerClosed, StageFailure
from ..serve.tenancy import TenantQuotaExceeded, UnknownTenant
from . import protocol
from .protocol import (
    Accepted,
    Decision,
    Error,
    FrameDecoder,
    Logits,
    Ping,
    Pong,
    ProtocolError,
    Rejected,
    Request,
    Shutdown,
    encode_frame,
)
from .router import NoHealthyReplica, ReplicaFailure

__all__ = ["NetMetrics", "NetMetricsSnapshot", "NetFrontend"]


@dataclass(frozen=True)
class NetMetricsSnapshot:
    """Point-in-time view of the frontend's wire accounting.

    The invariant chaos tests assert once traffic has drained::

        answered + rejected + failed == requests
    """

    connections: int          # connections accepted
    connections_closed: int
    requests: int             # REQUEST frames read off the wire
    answered: int             # DECISION+LOGITS sent (the request got a result)
    rejected: int             # REJECTED sent (admission refused)
    failed: int               # ERROR sent (typed terminal failure)
    protocol_errors: int      # connections failed by malformed bytes
    pings: int

    @property
    def terminal(self) -> int:
        """Requests that reached *any* terminal frame."""
        return self.answered + self.rejected + self.failed

    @property
    def in_flight(self) -> int:
        return self.requests - self.terminal

    @property
    def balanced(self) -> bool:
        return self.in_flight == 0


class NetMetrics:
    """Thread-safe counters for the socket frontend (ServerMetrics-style)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._connections = 0
        self._connections_closed = 0
        self._requests = 0
        self._answered = 0
        self._rejected = 0
        self._failed = 0
        self._protocol_errors = 0
        self._pings = 0

    def record_connection(self) -> None:
        with self._lock:
            self._connections += 1

    def record_connection_closed(self) -> None:
        with self._lock:
            self._connections_closed += 1

    def record_request(self) -> None:
        with self._lock:
            self._requests += 1

    def record_answered(self) -> None:
        with self._lock:
            self._answered += 1

    def record_rejected(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_failed(self) -> None:
        with self._lock:
            self._failed += 1

    def record_protocol_error(self) -> None:
        with self._lock:
            self._protocol_errors += 1

    def record_ping(self) -> None:
        with self._lock:
            self._pings += 1

    def snapshot(self) -> NetMetricsSnapshot:
        with self._lock:
            return NetMetricsSnapshot(
                connections=self._connections,
                connections_closed=self._connections_closed,
                requests=self._requests,
                answered=self._answered,
                rejected=self._rejected,
                failed=self._failed,
                protocol_errors=self._protocol_errors,
                pings=self._pings,
            )


def _error_code_for(exc: BaseException) -> int:
    if isinstance(exc, ReplicaFailure):
        return protocol.ERR_REPLICA_FAILURE
    if isinstance(exc, StageFailure):
        return protocol.ERR_STAGE_FAILURE
    if isinstance(exc, DeadlineExceeded):
        return protocol.ERR_DEADLINE
    if isinstance(exc, ServerClosed):
        return protocol.ERR_SERVER_CLOSED
    return protocol.ERR_INTERNAL


class _Connection:
    """Loop-thread-only per-connection state."""

    __slots__ = ("writer", "decoder", "write_lock", "pending", "closed")

    def __init__(self, writer: asyncio.StreamWriter, max_frame_bytes: int):
        self.writer = writer
        self.decoder = FrameDecoder(max_body=max_frame_bytes)
        self.write_lock = asyncio.Lock()
        self.pending: dict[int, object] = {}  # request_id -> backend future
        self.closed = False


class NetFrontend:
    """TCP frontend over a cascade backend (see module docs).

    Parameters
    ----------
    backend:
        Object with ``submit(image) -> concurrent.futures.Future``
        resolving to a :class:`~repro.serve.server.ServeResult` — a
        :class:`~repro.serve.CascadeServer` or a
        :class:`~repro.net.router.ShardRouter`.  The frontend does
        **not** own the backend; close it separately (backend last, so
        in-flight work can still resolve during the drain window).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read
        :attr:`address` after :meth:`start`).
    max_inflight:
        Admission-control bound on requests admitted but not yet
        answered, across all connections.  Beyond it new requests get a
        ``REJECTED(queue_full)`` frame instead of queueing.
    max_frame_bytes:
        Per-connection decoder ceiling on frame bodies.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 256,
        max_frame_bytes: int = protocol.MAX_FRAME_BODY,
        metrics: NetMetrics | None = None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self._backend = backend
        self._host = host
        self._port = port
        self._max_inflight = max_inflight
        self._max_frame_bytes = max_frame_bytes
        self.metrics = metrics if metrics is not None else NetMetrics()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._conns: set[_Connection] = set()
        self._inflight = 0
        self._drained: asyncio.Event | None = None
        self._closing = False
        self._closed = False
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        self._address: tuple[str, int] | None = None

    # -- lifecycle ------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (valid after :meth:`start`)."""
        if self._address is None:
            raise RuntimeError("frontend not started")
        return self._address

    def start(self) -> tuple[str, int]:
        """Bind and serve on a dedicated event-loop thread; return address."""
        if self._thread is not None:
            raise RuntimeError("frontend already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="net-frontend", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._start_error is not None:
            self._thread.join(timeout=5.0)
            raise RuntimeError(f"frontend failed to start: {self._start_error!r}")
        if self._address is None:
            raise RuntimeError("frontend failed to bind within 30 s")
        return self._address

    def _run_loop(self) -> None:
        loop = self._loop
        asyncio.set_event_loop(loop)
        self._drained = asyncio.Event()
        self._drained.set()
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self._host, self._port)
            )
        except Exception as exc:
            self._start_error = exc
            self._started.set()
            loop.close()
            return
        self._server = server
        sock = server.sockets[0]
        self._address = sock.getsockname()[:2]
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def close(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain, then shut every connection down *typed*.

        Requests still unanswered after *drain_timeout* resolve with an
        ``ERROR(shutdown)`` frame; every open connection then receives a
        ``SHUTDOWN`` frame before its socket closes (including
        connections mid-way through writing a frame to us).  Idempotent.
        """
        if self._closed or self._loop is None or self._address is None:
            self._closed = True
            return
        self._closed = True
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(drain_timeout), self._loop
        )
        try:
            future.result(timeout=drain_timeout + 10.0)
        except Exception:  # pragma: no cover - the loop stops regardless
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    async def _shutdown(self, drain_timeout: float) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._inflight > 0:
            self._drained.clear()
            try:
                await asyncio.wait_for(self._drained.wait(), timeout=drain_timeout)
            except asyncio.TimeoutError:
                pass
        for conn in list(self._conns):
            for request_id in list(conn.pending):
                conn.pending.pop(request_id, None)
                self._dec_inflight()
                self.metrics.record_failed()
                obs.count("net.failed", 1)
                await self._send(
                    conn,
                    Error(request_id, protocol.ERR_SHUTDOWN, "frontend closing"),
                )
            await self._send(conn, Shutdown("frontend closing"))
            conn.closed = True
            try:
                conn.writer.close()
            except Exception:
                pass
        self._conns.clear()

    def __enter__(self) -> "NetFrontend":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- connection handling ---------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        conn = _Connection(writer, self._max_frame_bytes)
        self._conns.add(conn)
        self.metrics.record_connection()
        obs.count("net.accept", 1)
        try:
            while not conn.closed:
                data = await reader.read(1 << 16)
                if not data:
                    break
                try:
                    with obs.trace_span("net.decode", nbytes=len(data)):
                        frames = conn.decoder.feed(data)
                except ProtocolError as exc:
                    self.metrics.record_protocol_error()
                    await self._send(
                        conn,
                        Error(0, protocol.ERR_PROTOCOL, f"{type(exc).__name__}: {exc}"),
                    )
                    break
                for frame in frames:
                    await self._dispatch(conn, frame)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if conn in self._conns:
                self._conns.discard(conn)
                conn.closed = True
                # The peer is gone; its admitted requests still resolve in
                # the backend, but their response writes become no-ops.
                try:
                    writer.close()
                except Exception:
                    pass
            self.metrics.record_connection_closed()

    async def _dispatch(self, conn: _Connection, frame) -> None:
        if isinstance(frame, Request):
            await self._handle_request(conn, frame)
        elif isinstance(frame, Ping):
            self.metrics.record_ping()
            await self._send(conn, Pong(frame.nonce))
        else:
            # Server-to-client frame types arriving here are nonsense.
            self.metrics.record_protocol_error()
            await self._send(
                conn,
                Error(
                    0,
                    protocol.ERR_PROTOCOL,
                    f"unexpected client frame {frame.type_name!r}",
                ),
            )
            conn.closed = True

    async def _handle_request(self, conn: _Connection, frame: Request) -> None:
        self.metrics.record_request()
        obs.count("net.request", 1)
        if self._closing:
            self.metrics.record_rejected()
            obs.count("net.rejected", 1)
            await self._send(
                conn, Rejected(frame.request_id, protocol.REJECT_CLOSING, "closing")
            )
            return
        if self._inflight >= self._max_inflight:
            self.metrics.record_rejected()
            obs.count("net.rejected", 1)
            await self._send(
                conn,
                Rejected(
                    frame.request_id,
                    protocol.REJECT_QUEUE_FULL,
                    f"{self._inflight} requests in flight (max {self._max_inflight})",
                ),
            )
            return
        if frame.tenant and getattr(self._backend, "tenant_names", None) is None:
            # Tenant-addressed frame, single-tenant backend: typed refusal
            # beats silently answering with the wrong model.
            self.metrics.record_rejected()
            obs.count("net.rejected", 1)
            await self._send(
                conn,
                Rejected(
                    frame.request_id,
                    protocol.REJECT_TENANT,
                    f"backend is single-tenant, cannot serve {frame.tenant!r}",
                ),
            )
            return
        self._inflight += 1
        await self._send(conn, Accepted(frame.request_id))
        loop = asyncio.get_running_loop()
        if frame.tenant:
            submit = lambda: self._backend.submit(frame.image, tenant=frame.tenant)
        else:
            submit = lambda: self._backend.submit(frame.image)
        try:
            # submit() may block on the cascade's backpressure: executor.
            backend_future = await loop.run_in_executor(None, submit)
        except UnknownTenant as exc:
            self._dec_inflight()
            self.metrics.record_rejected()
            obs.count("net.rejected", 1)
            await self._send(
                conn, Rejected(frame.request_id, protocol.REJECT_TENANT, str(exc))
            )
            return
        except TenantQuotaExceeded as exc:
            self._dec_inflight()
            self.metrics.record_rejected()
            obs.count("net.rejected", 1)
            await self._send(
                conn, Rejected(frame.request_id, protocol.REJECT_QUEUE_FULL, str(exc))
            )
            return
        except NoHealthyReplica as exc:
            self._dec_inflight()
            self.metrics.record_rejected()
            obs.count("net.rejected", 1)
            await self._send(
                conn, Rejected(frame.request_id, protocol.REJECT_NO_REPLICA, str(exc))
            )
            return
        except Exception as exc:
            self._dec_inflight()
            self.metrics.record_failed()
            obs.count("net.failed", 1)
            await self._send(
                conn, Error(frame.request_id, _error_code_for(exc), repr(exc))
            )
            return
        conn.pending[frame.request_id] = backend_future
        request_id = frame.request_id

        def _on_done(fut, conn=conn, request_id=request_id):
            # Runs on a backend serving thread: hop back onto the loop.
            try:
                self._loop.call_soon_threadsafe(
                    lambda: self._loop.create_task(self._finish(conn, request_id, fut))
                )
            except RuntimeError:  # loop already closed; shutdown path answered
                pass

        backend_future.add_done_callback(_on_done)

    async def _finish(self, conn: _Connection, request_id: int, fut) -> None:
        if conn.pending.pop(request_id, None) is None:
            return  # already answered by the shutdown path — exactly once
        self._dec_inflight()
        exc = fut.exception()
        if exc is None:
            result = fut.result()
            self.metrics.record_answered()
            obs.count("net.answered", 1)
            await self._send(
                conn,
                Decision(
                    request_id,
                    int(result.prediction),
                    int(result.bnn_prediction),
                    result.source,
                    float(result.confidence),
                    float(result.latency_seconds),
                ),
            )
            await self._send(
                conn,
                Logits(request_id, np.asarray([result.confidence], dtype=np.float64)),
            )
        else:
            self.metrics.record_failed()
            obs.count("net.failed", 1)
            await self._send(conn, Error(request_id, _error_code_for(exc), repr(exc)))

    def _dec_inflight(self) -> None:
        self._inflight -= 1
        if self._inflight <= 0 and self._drained is not None:
            self._drained.set()

    async def _send(self, conn: _Connection, frame) -> None:
        if conn.closed:
            return
        try:
            async with conn.write_lock:
                conn.writer.write(encode_frame(frame))
                await conn.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            conn.closed = True
