"""Shard router: fan requests across N cascade replica processes.

One :class:`~repro.serve.CascadeServer` is one interpreter — one GIL,
one BNN, one host pool.  The router is the horizontal lever of
ROADMAP's "millions of users" step: it owns ``N`` replicas (each a full
BNN → DMU → host cascade, usually in its own *process*) and places each
request on one of them, so aggregate throughput scales with replica
count the same way Eq. (1) scales the host stage with workers.

Placement
---------
``round_robin`` rotates the first-choice replica per request;
``rendezvous`` ranks replicas by highest-random-weight hash of the
image bytes, so the same image always lands on the same replica (the
placement that makes a per-replica result cache effective, ROADMAP
item 5) and removing a replica only remaps that replica's share.

Failover and accounting
-----------------------
Each replica is guarded by a
:class:`~repro.serve.resilience.CircuitBreaker`: dispatch failures and
failed results count against it, and an open breaker takes the replica
out of the candidate order, so a dead replica's *new* traffic drains to
survivors (``net.failover``).  Requests already in flight on a replica
that dies are **not** resubmitted — they fail with the typed
:class:`ReplicaFailure`, which the frontend maps to an
``ERROR(replica_failure)`` frame (silent replays could double-classify;
CascadeCNN's cascade is stateless but callers may not be).  Every
submitted request lands in exactly one bucket, the invariant chaos
tests assert::

    routed + rejected + failed == submitted

where ``routed`` counts requests answered by a replica, ``rejected``
counts admission refusals (:class:`NoHealthyReplica`), and ``failed``
counts typed terminal errors after placement.

The replica control plane is a duplex pipe like
:mod:`repro.parallel.runner`'s worker plane (ping/submit/stop
messages); images ride the pipe because the router is a control-path
fan-out — the data-path shared-memory rings stay where the bandwidth
is, inside each replica's host pool.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..serve.resilience import CircuitBreaker
from ..serve.server import ServeResult
from ..util.hashing import rendezvous_order

__all__ = [
    "ReplicaFailure",
    "NoHealthyReplica",
    "RouterMetrics",
    "RouterSnapshot",
    "InProcessReplica",
    "ProcessReplica",
    "replica_main",
    "ShardRouter",
]

PLACEMENTS = ("round_robin", "rendezvous")


class ReplicaFailure(RuntimeError):
    """A replica died or errored with this request in flight (typed)."""

    def __init__(self, replica: int, detail):
        super().__init__(f"replica {replica} failed: {detail}")
        self.replica = replica
        self.detail = detail


class NoHealthyReplica(RuntimeError):
    """Admission refused: every replica is dead or breaker-open."""


@dataclass(frozen=True)
class RouterSnapshot:
    """Point-in-time view of the router's books.

    ``routed + rejected + failed == submitted`` once traffic drains.
    """

    submitted: int
    routed: int               # answered by a replica
    rejected: int             # NoHealthyReplica at admission
    failed: int               # typed terminal error after placement
    failovers: int            # placements that skipped >= 1 preferred replica
    replica_routed: dict[int, int] = field(default_factory=dict)
    replica_failed: dict[int, int] = field(default_factory=dict)

    @property
    def terminal(self) -> int:
        return self.routed + self.rejected + self.failed

    @property
    def in_flight(self) -> int:
        return self.submitted - self.terminal

    @property
    def balanced(self) -> bool:
        return self.in_flight == 0


class RouterMetrics:
    """Thread-safe routed/rejected/failed accounting (ServerMetrics-style)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._submitted = 0
        self._routed = 0
        self._rejected = 0
        self._failed = 0
        self._failovers = 0
        self._replica_routed: dict[int, int] = {}
        self._replica_failed: dict[int, int] = {}

    def record_submitted(self) -> None:
        with self._lock:
            self._submitted += 1

    def record_routed(self, replica: int) -> None:
        with self._lock:
            self._routed += 1
            self._replica_routed[replica] = self._replica_routed.get(replica, 0) + 1

    def record_rejected(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_failed(self, replica: int | None = None) -> None:
        with self._lock:
            self._failed += 1
            if replica is not None:
                self._replica_failed[replica] = self._replica_failed.get(replica, 0) + 1

    def record_failover(self) -> None:
        with self._lock:
            self._failovers += 1

    def snapshot(self) -> RouterSnapshot:
        with self._lock:
            return RouterSnapshot(
                submitted=self._submitted,
                routed=self._routed,
                rejected=self._rejected,
                failed=self._failed,
                failovers=self._failovers,
                replica_routed=dict(self._replica_routed),
                replica_failed=dict(self._replica_failed),
            )


# -- replica handles ----------------------------------------------------------
class InProcessReplica:
    """A replica backed by an in-process server (tests, single-node dev).

    Wraps any object with ``submit(image) -> Future[ServeResult]`` and
    ``close()`` — normally a :class:`~repro.serve.CascadeServer`.
    """

    def __init__(self, index: int, server):
        self.index = index
        self._server = server
        self._dead = False

    def submit(self, image: np.ndarray) -> Future:
        if self._dead:
            raise ReplicaFailure(self.index, "replica is closed")
        return self._server.submit(image)

    def alive(self) -> bool:
        return not self._dead

    def ping(self, timeout: float = 5.0) -> bool:
        return self.alive()

    def kill(self) -> None:
        """Test hook: drop dead exactly like a crashed process replica."""
        self._dead = True
        self._server.close(timeout=0.1)

    def close(self) -> None:
        self._dead = True
        self._server.close()


def _default_start_method() -> str:
    env = os.environ.get("REPRO_MP_START", "").strip()
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def replica_main(conn, factory: Callable[[], dict]) -> None:
    """Child-process body: build a cascade and serve the control pipe.

    *factory* returns the keyword arguments for
    :class:`~repro.serve.CascadeServer` (it runs in the child, so heavy
    state — trained networks, fault injectors — is built post-fork).
    Three extra keys are popped before the server is built and, when
    ``cache_max_bytes`` is truthy, wrap the replica in a per-replica
    :class:`~repro.cache.CachingFrontend`: ``cache_max_bytes``,
    ``cache_near_duplicate`` and ``cache_atol``.  Per-replica caches
    compose with rendezvous placement — the same image bytes that pick
    a replica also name that replica's cache entry, so repeats of an
    image always land where its answer is already cached.
    Messages: ``("submit", rid, image)`` → ``("result", rid, ...)`` or
    ``("error", rid, repr)``; ``("ping", token)`` → ``("pong", token)``;
    ``("stop",)`` drains and exits.
    """
    from ..serve.server import CascadeServer

    try:
        kwargs = factory()
        cache_max_bytes = kwargs.pop("cache_max_bytes", 0)
        cache_near_duplicate = kwargs.pop("cache_near_duplicate", False)
        cache_atol = kwargs.pop("cache_atol", 0.0)
        server = CascadeServer(**kwargs)
        if cache_max_bytes:
            from ..cache import CachingFrontend, ResultCache

            server = CachingFrontend(
                server,
                ResultCache(
                    max_bytes=int(cache_max_bytes),
                    near_duplicate=bool(cache_near_duplicate),
                    atol=float(cache_atol),
                ),
            )
    except Exception as exc:
        try:
            conn.send(("init_error", repr(exc)))
        except Exception:
            pass
        return
    send_lock = threading.Lock()

    def reply(message) -> None:
        with send_lock:
            try:
                conn.send(message)
            except Exception:
                pass

    def on_done(fut, rid):
        exc = fut.exception()
        if exc is None:
            r = fut.result()
            reply((
                "result", rid, int(r.prediction), int(r.bnn_prediction),
                float(r.confidence), r.source, float(r.latency_seconds),
            ))
        else:
            reply(("error", rid, repr(exc)))

    conn.send(("ready", os.getpid()))
    # Watch the parent's death sentinel alongside the control pipe: the
    # replica is non-daemonic (it may own a host worker pool), so if the
    # router's process is SIGKILLed a blocking recv() would leave the
    # replica — and its workers — orphaned forever.
    parent = multiprocessing.parent_process()
    watch = [conn] if parent is None else [conn, parent.sentinel]
    while True:
        try:
            if conn not in _conn_wait(watch):
                break  # parent died with nothing left to read
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "ping":
            reply(("pong", message[1]))
            continue
        if kind == "submit":
            _, rid, image = message
            try:
                fut = server.submit(image)
            except Exception as exc:
                reply(("error", rid, repr(exc)))
                continue
            fut.add_done_callback(lambda f, rid=rid: on_done(f, rid))
    server.close()


class ProcessReplica:
    """A full cascade replica in its own process.

    The parent keeps a duplex pipe: a writer lock serializes submits, a
    reader thread resolves futures as results stream back.  Death (EOF
    on the pipe, or the process gone) fails every in-flight future with
    :class:`ReplicaFailure` and marks the replica dead — the router's
    breakers then drain its traffic to survivors.
    """

    def __init__(
        self,
        index: int,
        factory: Callable[[], dict],
        *,
        start_method: str | None = None,
        spawn_timeout_s: float = 60.0,
    ):
        self.index = index
        self._ctx = multiprocessing.get_context(start_method or _default_start_method())
        parent_conn, child_conn = self._ctx.Pipe()
        self._conn = parent_conn
        # Not a daemon: the replica's own CascadeServer may spawn a
        # host worker pool (REPRO_HOST_WORKERS), and daemonic processes
        # cannot have children.  close()/kill() own the lifecycle.
        self._proc = self._ctx.Process(
            target=replica_main,
            args=(child_conn, factory),
            name=f"repro-replica-{index}",
            daemon=False,
        )
        self._proc.start()
        child_conn.close()
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._pongs: dict[int, threading.Event] = {}
        self._rid = itertools.count(1)
        self._dead = False
        if not self._conn.poll(spawn_timeout_s):
            self._fail_all("replica failed to start in time")
            self.kill()
            raise RuntimeError(f"replica {index} failed to start in time")
        reply = self._conn.recv()
        if reply[0] != "ready":
            detail = reply[1] if len(reply) > 1 else reply
            self.kill()
            raise RuntimeError(f"replica {index} failed to start: {detail}")
        self._reader = threading.Thread(
            target=self._read_loop, name=f"replica-{index}-reader", daemon=True
        )
        self._reader.start()

    # -- parent-side plumbing --------------------------------------------------
    def _read_loop(self) -> None:
        while True:
            try:
                message = self._conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "result":
                _, rid, prediction, bnn_prediction, confidence, source, latency = message
                fut = self._pop_pending(rid)
                if fut is not None:
                    fut.set_result(ServeResult(
                        prediction=prediction,
                        bnn_prediction=bnn_prediction,
                        confidence=confidence,
                        source=source,
                        latency_seconds=latency,
                    ))
            elif kind == "error":
                _, rid, detail = message
                fut = self._pop_pending(rid)
                if fut is not None:
                    fut.set_exception(ReplicaFailure(self.index, detail))
            elif kind == "pong":
                event = self._pongs.pop(message[1], None)
                if event is not None:
                    event.set()
        self._fail_all("replica process died")

    def _pop_pending(self, rid: int) -> Future | None:
        with self._pending_lock:
            return self._pending.pop(rid, None)

    def _fail_all(self, detail: str) -> None:
        self._dead = True
        with self._pending_lock:
            stranded = list(self._pending.values())
            self._pending.clear()
        for fut in stranded:
            if not fut.done():
                fut.set_exception(ReplicaFailure(self.index, detail))

    # -- replica handle API ----------------------------------------------------
    @property
    def pid(self) -> int | None:
        return None if self._proc is None else self._proc.pid

    def submit(self, image: np.ndarray) -> Future:
        if self._dead or not self._proc.is_alive():
            raise ReplicaFailure(self.index, "replica is dead")
        rid = next(self._rid)
        fut: Future = Future()
        with self._pending_lock:
            self._pending[rid] = fut
        try:
            with self._send_lock:
                self._conn.send(("submit", rid, np.asarray(image)))
        except (OSError, BrokenPipeError, ValueError) as exc:
            self._pop_pending(rid)
            self._fail_all("replica pipe broke")
            raise ReplicaFailure(self.index, exc) from exc
        return fut

    def alive(self) -> bool:
        return not self._dead and self._proc.is_alive()

    def ping(self, timeout: float = 5.0) -> bool:
        if not self.alive():
            return False
        token = time.monotonic_ns()
        event = threading.Event()
        self._pongs[token] = event
        try:
            with self._send_lock:
                self._conn.send(("ping", token))
        except (OSError, BrokenPipeError):
            self._pongs.pop(token, None)
            return False
        ok = event.wait(timeout)
        self._pongs.pop(token, None)
        return ok

    def kill(self) -> None:
        """Chaos hook: hard-kill the replica process (SIGKILL)."""
        self._dead = True
        if self._proc.is_alive():
            self._proc.kill()
        self._proc.join(timeout=5.0)
        try:
            self._conn.close()
        except Exception:
            pass
        self._fail_all("replica killed")

    def close(self, timeout: float = 10.0) -> None:
        self._dead = True
        try:
            with self._send_lock:
                self._conn.send(("stop",))
        except Exception:
            pass
        self._proc.join(timeout=timeout)
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=5.0)
        try:
            self._conn.close()
        except Exception:
            pass
        self._fail_all("replica closed")


# -- router -------------------------------------------------------------------
class ShardRouter:
    """Place requests across replicas with breakers and failover.

    Parameters
    ----------
    replicas:
        Replica handles (:class:`InProcessReplica` /
        :class:`ProcessReplica`).  :meth:`spawn` builds process replicas
        from a factory.
    placement:
        ``"round_robin"`` (default) or ``"rendezvous"`` (see module docs).
    breaker_factory:
        Builds the per-replica :class:`CircuitBreaker`; the default
        (3 consecutive failures, 0.5 s cool-down) takes a crashed
        replica out of rotation within a handful of requests.
    """

    def __init__(
        self,
        replicas: Sequence,
        *,
        placement: str = "round_robin",
        metrics: RouterMetrics | None = None,
        breaker_factory: Callable[[], CircuitBreaker] | None = None,
    ):
        if not replicas:
            raise ValueError("need at least one replica")
        if placement not in PLACEMENTS:
            raise ValueError(f"placement must be one of {PLACEMENTS}, got {placement!r}")
        self._replicas = list(replicas)
        self._placement = placement
        self.metrics = metrics if metrics is not None else RouterMetrics()
        if breaker_factory is None:
            breaker_factory = lambda: CircuitBreaker(failure_threshold=3, cooldown_s=0.5)
        self._breakers = [breaker_factory() for _ in self._replicas]
        self._rr = itertools.count()
        self._rr_lock = threading.Lock()
        self._closed = False

    @classmethod
    def spawn(
        cls,
        factory: Callable[[], dict],
        n_replicas: int,
        *,
        start_method: str | None = None,
        **kwargs,
    ) -> "ShardRouter":
        """Spawn *n_replicas* :class:`ProcessReplica` from one factory."""
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        replicas: list[ProcessReplica] = []
        try:
            for index in range(n_replicas):
                replicas.append(
                    ProcessReplica(index, factory, start_method=start_method)
                )
        except Exception:
            for replica in replicas:
                replica.close(timeout=2.0)
            raise
        return cls(replicas, **kwargs)

    @property
    def replicas(self) -> tuple:
        return tuple(self._replicas)

    # -- placement -------------------------------------------------------------
    def _order(self, image: np.ndarray) -> list[int]:
        n = len(self._replicas)
        if self._placement == "round_robin":
            with self._rr_lock:
                start = next(self._rr) % n
            return [(start + i) % n for i in range(n)]
        # Rendezvous (highest-random-weight): deterministic per image.
        # The keyed-blake2b construction lives in repro.util.hashing so
        # the cache keys the same bytes; placement is pinned by a golden
        # test and must stay byte-identical.
        return rendezvous_order(image, n)

    # -- submission ------------------------------------------------------------
    def submit(self, image: np.ndarray) -> Future:
        """Place one image; returns a future resolving to a ServeResult.

        Raises :class:`NoHealthyReplica` (and books a rejection) when no
        replica can take the request right now.
        """
        if self._closed:
            raise NoHealthyReplica("router is closed")
        self.metrics.record_submitted()
        image = np.asarray(image)
        with obs.trace_span("net.route"):
            order = self._order(image)
            for position, index in enumerate(order):
                replica = self._replicas[index]
                breaker = self._breakers[index]
                if not replica.alive() or not breaker.allow():
                    continue
                try:
                    inner = replica.submit(image)
                except Exception:
                    breaker.record_failure()
                    self.metrics.record_failover()
                    obs.count("net.failover", 1)
                    continue
                if position > 0:
                    self.metrics.record_failover()
                    obs.count("net.failover", 1)
                outer: Future = Future()
                inner.add_done_callback(
                    lambda fut, index=index, outer=outer: self._settle(outer, index, fut)
                )
                return outer
        self.metrics.record_rejected()
        obs.count("net.rejected", 1)
        raise NoHealthyReplica(
            f"no healthy replica among {len(self._replicas)} "
            f"(alive: {[r.alive() for r in self._replicas]})"
        )

    def _settle(self, outer: Future, index: int, inner: Future) -> None:
        exc = inner.exception()
        if exc is None:
            self.metrics.record_routed(index)
            self._breakers[index].record_success()
            outer.set_result(inner.result())
        else:
            self.metrics.record_failed(index)
            self._breakers[index].record_failure()
            outer.set_exception(exc)

    def classify_many(self, images, timeout: float | None = None) -> list:
        futures = [self.submit(image) for image in images]
        return [f.result(timeout=timeout) for f in futures]

    # -- health ----------------------------------------------------------------
    def ping(self, timeout: float = 5.0) -> list[bool]:
        """Health-check every replica over its control plane."""
        return [replica.ping(timeout=timeout) for replica in self._replicas]

    def alive(self) -> list[bool]:
        return [replica.alive() for replica in self._replicas]

    def breaker_states(self) -> list[str]:
        return [breaker.state for breaker in self._breakers]

    def snapshot(self) -> RouterSnapshot:
        return self.metrics.snapshot()

    def close(self, timeout: float = 10.0) -> None:
        """Close every replica (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for replica in self._replicas:
            replica.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
